//! Product record linkage on hand-crafted profiles.
//!
//! Reproduces the paper's running example (Figure 1: smartphone offers from
//! two shops, with heterogeneous schemata) and walks through every stage of
//! the workflow explicitly: blocking, the blocking graph, feature vectors,
//! the probabilistic classifier and pruning — the level of control a library
//! user needs when plugging their own data in.
//!
//! ```bash
//! cargo run --release --example product_dedup
//! ```

use gsmb::blocking::{standard_blocking_workflow, BlockStats, CandidatePairs};
use gsmb::core::{Dataset, EntityCollection, EntityId, EntityProfile, GroundTruth, PairId};
use gsmb::eval::Effectiveness;
use gsmb::features::{FeatureContext, FeatureMatrix, FeatureSet};
use gsmb::learn::{
    balanced_undersample, Classifier, LogisticRegression, LogisticRegressionConfig,
    ProbabilisticClassifier, TrainingSet,
};
use gsmb::meta::pruning::AlgorithmKind;
use gsmb::meta::scoring::CachedScores;

/// Shop A: structured product records.
fn shop_a() -> Vec<EntityProfile> {
    let rows = [
        ("a1", "Apple iPhone X 64GB", "Smartphone"),
        ("a2", "Samsung Galaxy S20 128GB", "smartphone"),
        ("a3", "Huawei Mate 20 Pro", "smartphone"),
        ("a4", "Google Pixel 4a", "smartphone"),
        ("a5", "Samsung Galaxy Fold", "foldable smartphone"),
        ("a6", "Nokia 3310 classic", "feature phone"),
        ("a7", "Apple iPhone 12 mini", "Smartphone"),
        ("a8", "OnePlus 8T 256GB", "smartphone"),
    ];
    rows.iter()
        .map(|(id, model, category)| {
            EntityProfile::new(*id)
                .with_attribute("model", *model)
                .with_attribute("category", *category)
        })
        .collect()
}

/// Shop B: free-text offers with a different schema.
fn shop_b() -> Vec<EntityProfile> {
    let rows = [
        ("b1", "iPhone 10 by Apple, 64 GB storage, great smartphone"),
        ("b2", "Samsung S20 smartphone 128 GB"),
        ("b3", "Mate 20 Pro from Huawei - flagship smartphone"),
        ("b4", "Pixel 4a Google phone"),
        ("b5", "Galaxy Fold foldable phone by Samsung"),
        ("b6", "Sony WH-1000XM4 headphones"),
        ("b7", "Apple iPad Air tablet"),
        ("b8", "OnePlus 8T smartphone 256 GB"),
    ];
    rows.iter()
        .map(|(id, offer)| EntityProfile::new(*id).with_attribute("offer", *offer))
        .collect()
}

fn main() {
    // Ground truth over the flattened id space: shop A entities take ids 0..8,
    // shop B entities 8..16.
    let matches = [(0u32, 8u32), (1, 9), (2, 10), (3, 11), (4, 12), (7, 15)];
    let dataset = Dataset::clean_clean(
        "smartphones",
        EntityCollection::new("shop-a", shop_a()),
        EntityCollection::new("shop-b", shop_b()),
        GroundTruth::from_pairs(matches.iter().map(|&(a, b)| (EntityId(a), EntityId(b)))),
    )
    .expect("dataset construction failed");

    // 1. Blocking.
    let blocks = standard_blocking_workflow(&dataset);
    println!("blocking produced {} blocks:", blocks.num_blocks());
    for block in &blocks.blocks {
        let members: Vec<String> = block
            .entities
            .iter()
            .map(|e| dataset.profile(*e).external_id.clone())
            .collect();
        println!("  {:<12} {}", block.key, members.join(", "));
    }

    // 2. Candidate pairs and features.
    let stats = BlockStats::new(&blocks);
    let candidates = CandidatePairs::from_blocks(&blocks);
    let context = FeatureContext::new(&stats, &candidates);
    let feature_set = FeatureSet::blast_optimal();
    let matrix = FeatureMatrix::build(&context, feature_set);
    println!(
        "\n{} distinct candidate pairs, {} features each ({feature_set})",
        candidates.len(),
        matrix.num_features()
    );

    // 3. Train the probabilistic classifier on a tiny balanced sample.
    let mut rng = gsmb::core::seeded_rng(7);
    let sample = balanced_undersample(candidates.pairs(), &dataset.ground_truth, 4, &mut rng)
        .expect("sampling failed");
    let mut training = TrainingSet::new();
    for (&idx, &label) in sample.pair_indices.iter().zip(&sample.labels) {
        training.push(matrix.row(PairId::from(idx)).to_vec(), label);
    }
    let model = LogisticRegression::fit(&LogisticRegressionConfig::default(), &training)
        .expect("training failed");

    // 4. Score every candidate pair and prune with BLAST.
    let probabilities: Vec<f64> = (0..matrix.num_pairs())
        .map(|i| {
            model
                .probability(matrix.row(PairId::from(i)))
                .clamp(0.0, 1.0)
        })
        .collect();
    let scores = CachedScores::new(probabilities);
    let pruner = AlgorithmKind::Blast.build(&blocks);
    let retained = pruner.prune(&candidates, &scores);

    println!("\nretained pairs (probability, shop A record, shop B record, match?):");
    let retained_pairs: Vec<_> = retained.iter().map(|&id| candidates.pair(id)).collect();
    for &id in &retained {
        let (a, b) = candidates.pair(id);
        println!(
            "  {:.3}  {:<4} ↔ {:<4}  {}",
            scores.as_slice()[id.index()],
            dataset.profile(a).external_id,
            dataset.profile(b).external_id,
            if dataset.ground_truth.is_match(a, b) {
                "MATCH"
            } else {
                "superfluous"
            }
        );
    }

    let quality = Effectiveness::evaluate(
        &retained_pairs,
        &dataset.ground_truth,
        dataset.num_duplicates(),
    );
    println!(
        "\n{} of {} candidate pairs retained — {quality}",
        retained.len(),
        candidates.len()
    );
}
