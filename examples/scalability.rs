//! Scalability demo: Dirty ER (deduplication) on growing synthetic datasets.
//!
//! Generates the D10K…D300K analogues at a configurable scale, deduplicates
//! each with BLAST and RCNP (50 labelled instances, logistic regression) and
//! reports effectiveness, run-time and the speedup measure of the paper's
//! Figure 18.
//!
//! ```bash
//! cargo run --release --example scalability            # default scale
//! GSMB_DIRTY_SCALE=0.1 cargo run --release --example scalability
//! ```

use gsmb::datasets::CatalogOptions;
use gsmb::eval::scalability::{run_scalability, speedup_series};
use gsmb::meta::pruning::AlgorithmKind;

fn main() {
    let dirty_scale = std::env::var("GSMB_DIRTY_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.02);
    let options = CatalogOptions {
        dirty_scale,
        ..CatalogOptions::default()
    };
    println!("running the Dirty ER scalability workflow (dirty_scale = {dirty_scale})");

    let algorithms = [AlgorithmKind::Blast, AlgorithmKind::Rcnp];
    let points = run_scalability(&options, &algorithms, 2).expect("scalability run failed");

    println!(
        "\n{:<8} {:<7} {:>10} {:>12} {:>8} {:>10} {:>8} {:>9}",
        "dataset", "algo", "entities", "|C|", "recall", "precision", "F1", "RT(s)"
    );
    for point in &points {
        println!(
            "{:<8} {:<7} {:>10} {:>12} {:>8.4} {:>10.4} {:>8.4} {:>9.3}",
            point.dataset,
            point.algorithm.name(),
            point.num_entities,
            point.num_candidates,
            point.effectiveness.recall,
            point.effectiveness.precision,
            point.effectiveness.f1,
            point.rt_seconds
        );
    }

    println!("\nspeedup relative to the smallest dataset (1.0 = linear scalability):");
    for algorithm in algorithms {
        let series = speedup_series(&points, algorithm);
        let rendered: Vec<String> = series
            .iter()
            .map(|(name, value)| format!("{name}={value:.2}"))
            .collect();
        println!("  {:<7} {}", algorithm.name(), rendered.join("  "));
    }
}
