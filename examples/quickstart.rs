//! Quick start: run Generalized Supervised Meta-blocking end-to-end on a
//! synthetic product-matching dataset and print what it achieved.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use gsmb::datasets::{generate_catalog_dataset, CatalogOptions, DatasetName};
use gsmb::eval::Effectiveness;
use gsmb::meta::pipeline::{MetaBlockingConfig, MetaBlockingPipeline};
use gsmb::meta::pruning::AlgorithmKind;

fn main() {
    // 1. A Clean-Clean ER dataset: two product catalogues with ~1k entities
    //    each and a known ground truth (an AbtBuy-like analogue).
    let options = CatalogOptions::default();
    let dataset =
        generate_catalog_dataset(DatasetName::AbtBuy, &options).expect("dataset generation failed");
    println!(
        "dataset {}: |E1| = {}, |E2| = {}, |D| = {}",
        dataset.name,
        dataset.len_e1(),
        dataset.len_e2(),
        dataset.num_duplicates()
    );

    // 2. Run the full pipeline: blocking, features, a 50-instance training
    //    set, probabilistic classification and BLAST pruning.
    let config = MetaBlockingConfig::default();
    let pipeline = MetaBlockingPipeline::new(config);
    let outcome = pipeline
        .run(&dataset, AlgorithmKind::Blast)
        .expect("pipeline failed");

    // 3. Compare the input block collection with the pruned output.
    let input_pairs: Vec<_> = outcome.candidates.pairs().to_vec();
    let input_quality = Effectiveness::evaluate(
        &input_pairs,
        &dataset.ground_truth,
        dataset.num_duplicates(),
    );
    let output_quality = Effectiveness::evaluate(
        &outcome.retained_pairs(),
        &dataset.ground_truth,
        dataset.num_duplicates(),
    );

    println!(
        "blocking produced {} candidate pairs: {input_quality}",
        outcome.num_candidates
    );
    println!(
        "BLAST retained {} pairs:              {output_quality}",
        outcome.retained.len()
    );
    println!(
        "run-time: blocking {:.2?}, features {:.2?}, training {:.2?}, scoring {:.2?}, pruning {:.2?}",
        outcome.timings.blocking,
        outcome.timings.features,
        outcome.timings.training,
        outcome.timings.scoring,
        outcome.timings.pruning
    );
    println!(
        "precision improved {:.0}× while keeping {:.1}% of the recall",
        output_quality.precision / input_quality.precision.max(f64::MIN_POSITIVE),
        100.0 * output_quality.recall / input_quality.recall.max(f64::MIN_POSITIVE)
    );
}
