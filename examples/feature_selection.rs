//! Feature-selection demo: how the choice of weighting schemes affects
//! effectiveness and run-time.
//!
//! Compares the original Supervised Meta-blocking feature set with the two
//! new sets selected by the paper (and the full 8-scheme set) for BLAST and
//! RCNP on one dataset, mirroring the reasoning behind Tables 3 and 4.
//!
//! ```bash
//! cargo run --release --example feature_selection
//! ```

use gsmb::datasets::{generate_catalog_dataset, CatalogOptions, DatasetName};
use gsmb::eval::experiment::{run_averaged, PreparedDataset, RunConfig};
use gsmb::features::FeatureSet;
use gsmb::meta::pruning::AlgorithmKind;

fn main() {
    let dataset = generate_catalog_dataset(DatasetName::DblpAcm, &CatalogOptions::default())
        .expect("generation failed");
    let prepared = PreparedDataset::prepare(dataset).expect("blocking failed");
    println!(
        "dataset {}: {} candidate pairs, input quality {}",
        prepared.dataset.name,
        prepared.num_candidates(),
        prepared.block_quality()
    );

    let candidates = [
        ("original (CF-IBF, RACCB, JS, LCP)", FeatureSet::original()),
        (
            "BLAST-optimal (CF-IBF, RACCB, RS, NRS)",
            FeatureSet::blast_optimal(),
        ),
        (
            "RCNP-optimal (CF-IBF, RACCB, JS, LCP, WJS)",
            FeatureSet::rcnp_optimal(),
        ),
        ("all eight schemes", FeatureSet::all_schemes()),
    ];

    for algorithm in [AlgorithmKind::Blast, AlgorithmKind::Rcnp] {
        println!("\n=== {} ===", algorithm.name());
        println!(
            "{:<45} {:>8} {:>10} {:>8} {:>9}",
            "feature set", "recall", "precision", "F1", "RT(s)"
        );
        for (label, set) in candidates {
            let config = RunConfig {
                feature_set: set,
                per_class: 25,
                ..Default::default()
            };
            let result = run_averaged(&prepared, algorithm, &config, 3).expect("experiment failed");
            println!(
                "{:<45} {:>8.4} {:>10.4} {:>8.4} {:>9.3}",
                label,
                result.effectiveness.recall,
                result.effectiveness.precision,
                result.effectiveness.f1,
                result.mean_rt_seconds
            );
        }
    }
}
