//! Facade-level persistence flow: prepared datasets, trained models and
//! streaming state all survive a save → load (or crash → recover) cycle
//! through the `gsmb::persist` layer.

use std::fs;
use std::path::PathBuf;

use gsmb::core::EntityId;
use gsmb::datasets::{generate_catalog_dataset, CatalogOptions, DatasetName};
use gsmb::eval::experiment::PreparedDataset;
use gsmb::learn::{load_model, save_model, ProbabilisticClassifier};
use gsmb::meta::pipeline::MetaBlockingConfig;
use gsmb::meta::{DurableStreamingPipeline, StreamingPipeline};
use gsmb::stream::{dataset_prefix, DurableMetaBlocker, StreamingConfig, StreamingMetaBlocker};

fn scratch(test: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("e2e-{test}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn prepared_dataset_and_model_survive_disk() {
    let dir = scratch("prepared-and-model");
    let dataset = generate_catalog_dataset(DatasetName::AbtBuy, &CatalogOptions::tiny()).unwrap();
    let prepared = PreparedDataset::prepare(dataset).unwrap();
    let path = dir.join("prepared.gsmb");
    prepared.save(&path).unwrap();
    let loaded = PreparedDataset::load(&path).unwrap();
    assert_eq!(loaded.candidates.pairs(), prepared.candidates.pairs());

    // Train through the pipeline's classifier config, save, load, and
    // require bit-identical probabilities.
    let config = MetaBlockingConfig::default();
    let (matrix, _) = prepared.build_features(config.feature_set);
    let mut training = gsmb::learn::TrainingSet::new();
    for (i, &(a, b)) in prepared.candidates.pairs().iter().enumerate().take(40) {
        training.push(
            matrix.row(gsmb::core::PairId::from(i)).to_vec(),
            prepared.dataset.ground_truth.is_match(a, b),
        );
    }
    let model = config.classifier.fit_saved(&training).unwrap();
    let model_path = dir.join("model.gsmb");
    save_model(&model_path, &model).unwrap();
    let loaded_model = load_model(&model_path, Some(config.feature_set.vector_len())).unwrap();
    for i in 0..20usize {
        let row = matrix.row(gsmb::core::PairId::from(i));
        assert_eq!(
            model.probability(row).to_bits(),
            loaded_model.probability(row).to_bits()
        );
    }
    // Loading with the wrong width fails cleanly.
    assert!(load_model(&model_path, Some(99)).is_err());
}

#[test]
fn streaming_state_survives_a_crash_through_the_facade() {
    let dir = scratch("stream-crash");
    let dataset = generate_catalog_dataset(DatasetName::AbtBuy, &CatalogOptions::tiny()).unwrap();
    let half = dataset.split + (dataset.num_entities() - dataset.split) / 2;

    let config = StreamingConfig {
        threads: 2,
        ..StreamingConfig::for_dataset(&dataset)
    };
    let mut durable = StreamingMetaBlocker::new(config, gsmb::blocking::TokenKeys)
        .persist_to(&dir)
        .unwrap();
    durable.ingest(&dataset.profiles[..half]).unwrap();
    durable.compact().unwrap(); // snapshot + WAL truncation
    durable.ingest(&dataset.profiles[half..]).unwrap(); // WAL tail
    drop(durable); // crash

    let mut recovered =
        DurableMetaBlocker::recover_from(&dir, gsmb::blocking::TokenKeys, 2).unwrap();
    assert_eq!(recovered.num_entities(), dataset.num_entities());
    let streamed = recovered.compact().unwrap();
    let batch = gsmb::blocking::build_blocks(&dataset, &gsmb::blocking::TokenKeys, 2);
    assert_eq!(
        streamed.to_block_collection().blocks,
        batch.to_block_collection().blocks
    );
}

#[test]
fn pipeline_state_survives_a_crash_through_the_facade() {
    let dir = scratch("pipeline-crash");
    let dataset = generate_catalog_dataset(DatasetName::DblpAcm, &CatalogOptions::tiny()).unwrap();
    let seed_count = dataset.split + (dataset.num_entities() - dataset.split) / 2;
    let seed = dataset_prefix(&dataset, seed_count);
    let config = MetaBlockingConfig {
        per_class: 15,
        threads: Some(2),
        ..Default::default()
    };

    let mut durable = StreamingPipeline::bootstrap(&config, &seed)
        .unwrap()
        .persist_to(&dir)
        .unwrap();
    durable.ingest(&dataset.profiles[seed_count..]).unwrap();
    durable
        .remove(&[EntityId((dataset.num_entities() - 1) as u32)])
        .unwrap();
    drop(durable); // crash

    let mut recovered = DurableStreamingPipeline::recover_from(&dir, 2).unwrap();
    assert!(recovered.pipeline().schedule().pending() > 0);
    let drained = recovered.next_batch(50);
    assert!(!drained.is_empty());
    // Everything drained is a live candidate pair of the surviving corpus.
    for ((a, b), probability) in &drained {
        assert!(a < b);
        assert!((0.0..=1.0).contains(probability));
    }
}
