//! Property-based tests over the core data structures and invariants.
//!
//! The properties are driven by a deterministic seeded generator (the
//! workspace has no network access, so `proptest` is unavailable): every test
//! runs `CASES` randomized collections derived from a fixed seed, printing
//! the failing case seed on assertion failure.

use gsmb::blocking::reference::{self, naive_candidate_pairs, NaiveBlockStats};
use gsmb::blocking::{
    block_filtering, block_purging, qgrams_blocking_csr, standard_blocking_workflow_csr,
    suffix_array_blocking_csr, token_blocking_csr, Block, BlockCollection, BlockStats,
    CandidatePairs, SuffixArrayConfig,
};
use gsmb::core::{
    seeded_rng, Dataset, DatasetKind, EntityCollection, EntityId, EntityProfile, GroundTruth,
};
use gsmb::eval::Effectiveness;
use gsmb::features::reference::NaiveFeatureContext;
use gsmb::features::{FeatureContext, FeatureMatrix, FeatureSet, Scheme};
use gsmb::learn::{
    Classifier, LogisticRegression, LogisticRegressionConfig, PlattScaler, ProbabilisticClassifier,
    Standardizer, TrainingSet,
};
use gsmb::meta::pruning::{AlgorithmKind, CardinalityThresholds};
use gsmb::meta::scoring::CachedScores;
use rand::rngs::StdRng;
use rand::Rng;

/// Randomized cases per property.
const CASES: u64 = 64;

/// A random redundancy-positive block collection over a small entity space.
fn random_collection(rng: &mut StdRng, kind: DatasetKind) -> BlockCollection {
    let (split, total) = match kind {
        DatasetKind::CleanClean => {
            let n1 = rng.gen_range(3usize..=12);
            let n2 = rng.gen_range(3usize..=12);
            (n1, n1 + n2)
        }
        DatasetKind::Dirty => {
            let n = rng.gen_range(4usize..=20);
            (n, n)
        }
    };
    let num_blocks = rng.gen_range(3usize..=20);
    let blocks: Vec<Block> = (0..num_blocks)
        .map(|i| {
            let size = rng.gen_range(2usize..=6);
            let members: Vec<EntityId> = (0..size)
                .map(|_| EntityId(rng.gen_range(0..total as u32)))
                .collect();
            Block::new(format!("k{i}"), members)
        })
        .filter(|b| b.is_useful(kind, split))
        .collect();
    BlockCollection {
        dataset_name: "prop".into(),
        kind,
        split,
        num_entities: total,
        blocks,
    }
}

/// Runs `check` over `CASES` seeded Clean-Clean collections.
fn for_random_clean_collections(test_seed: u64, mut check: impl FnMut(&BlockCollection, u64)) {
    for case in 0..CASES {
        let seed = gsmb::core::rng::derive_seed(test_seed, case);
        let mut rng = seeded_rng(seed);
        let collection = random_collection(&mut rng, DatasetKind::CleanClean);
        check(&collection, seed);
    }
}

/// Runs `check` over `CASES` seeded collections alternating Clean-Clean and
/// Dirty ER.
fn for_random_collections_both_kinds(test_seed: u64, mut check: impl FnMut(&BlockCollection, u64)) {
    for case in 0..CASES {
        let seed = gsmb::core::rng::derive_seed(test_seed, case);
        let mut rng = seeded_rng(seed);
        let kind = if case % 2 == 0 {
            DatasetKind::CleanClean
        } else {
            DatasetKind::Dirty
        };
        let collection = random_collection(&mut rng, kind);
        check(&collection, seed);
    }
}

/// Vocabulary for random entity profiles: short and long tokens, digits,
/// shared stems (for q-gram/suffix overlap) and non-ASCII characters.
const VOCAB: &[&str] = &[
    "apple",
    "samsung",
    "galaxy",
    "iphone",
    "iphnoe",
    "smartphone",
    "smartphones",
    "foldable",
    "mate",
    "ultimate",
    "20",
    "2048",
    "s20",
    "café",
    "cafeteria",
    "naïveté",
    "x",
    "pro",
];

/// A random entity profile with 1–3 attributes of 1–4 vocabulary tokens,
/// joined by assorted separators to exercise the tokenizer.
fn random_profile(rng: &mut StdRng, id: usize) -> EntityProfile {
    let mut profile = EntityProfile::new(format!("p{id}"));
    for a in 0..rng.gen_range(1usize..=3) {
        let mut value = String::new();
        for t in 0..rng.gen_range(1usize..=4) {
            if t > 0 {
                value.push_str([" ", "-", ", ", " / "][rng.gen_range(0usize..4)]);
            }
            value.push_str(VOCAB[rng.gen_range(0..VOCAB.len())]);
        }
        profile.push_attribute(format!("a{a}"), value);
    }
    profile
}

/// A random Clean-Clean or Dirty dataset over the shared vocabulary.
fn random_dataset(rng: &mut StdRng, kind: DatasetKind) -> Dataset {
    match kind {
        DatasetKind::CleanClean => {
            let n1 = rng.gen_range(3usize..=10);
            let n2 = rng.gen_range(3usize..=10);
            let e1 = EntityCollection::new("a", (0..n1).map(|i| random_profile(rng, i)).collect());
            let e2 =
                EntityCollection::new("b", (0..n2).map(|i| random_profile(rng, n1 + i)).collect());
            Dataset::clean_clean("prop-cc", e1, e2, GroundTruth::default()).unwrap()
        }
        DatasetKind::Dirty => {
            let n = rng.gen_range(4usize..=16);
            let coll = EntityCollection::new("d", (0..n).map(|i| random_profile(rng, i)).collect());
            Dataset::dirty("prop-dirty", coll, GroundTruth::default()).unwrap()
        }
    }
}

/// Runs `check` over `CASES` seeded random datasets alternating Clean-Clean
/// and Dirty ER.
fn for_random_datasets(test_seed: u64, mut check: impl FnMut(&Dataset, u64)) {
    for case in 0..CASES {
        let seed = gsmb::core::rng::derive_seed(test_seed, case);
        let mut rng = seeded_rng(seed);
        let kind = if case % 2 == 0 {
            DatasetKind::CleanClean
        } else {
            DatasetKind::Dirty
        };
        let dataset = random_dataset(&mut rng, kind);
        check(&dataset, seed);
    }
}

/// The parallel block-building engine produces bit-identical output to the
/// retained sequential builders, for all three schemes, on Clean-Clean and
/// Dirty collections alike, at every thread count.
#[test]
fn parallel_blocking_matches_sequential_reference() {
    let suffix_config = SuffixArrayConfig {
        min_length: 3,
        max_block_size: 8,
    };
    for_random_datasets(0x5020, |dataset, seed| {
        let token_ref = reference::token_blocking(dataset);
        let qgram_ref = reference::qgrams_blocking(dataset, 3);
        let suffix_ref = reference::suffix_array_blocking(dataset, suffix_config);
        for threads in [1, 2, 4, 8] {
            let token = token_blocking_csr(dataset, threads).to_block_collection();
            assert_eq!(
                token.blocks, token_ref.blocks,
                "seed {seed} threads {threads}"
            );
            let qgram = qgrams_blocking_csr(dataset, 3, threads).to_block_collection();
            assert_eq!(
                qgram.blocks, qgram_ref.blocks,
                "seed {seed} threads {threads}"
            );
            let suffix =
                suffix_array_blocking_csr(dataset, suffix_config, threads).to_block_collection();
            assert_eq!(
                suffix.blocks, suffix_ref.blocks,
                "seed {seed} threads {threads}"
            );
        }
    });
}

/// The CSR-native standard workflow (parallel Token Blocking + CSR Purging +
/// CSR Filtering) equals the nested Vec<Block> workflow, and the statistics
/// and candidates derived from the CSR representation equal the ones derived
/// from the nested view.
#[test]
fn csr_workflow_matches_nested_workflow() {
    for_random_datasets(0x5021, |dataset, seed| {
        let nested = block_filtering(
            &block_purging(&reference::token_blocking(dataset)),
            gsmb::blocking::DEFAULT_FILTERING_RATIO,
        );
        for threads in [1, 4] {
            let csr = standard_blocking_workflow_csr(dataset, threads);
            let view = csr.to_block_collection();
            assert_eq!(view.blocks, nested.blocks, "seed {seed} threads {threads}");
            assert_eq!(view.num_entities, nested.num_entities, "seed {seed}");

            let stats_csr = BlockStats::from_csr(&csr);
            let stats_nested = BlockStats::new(&nested);
            assert_eq!(
                stats_csr.total_comparisons(),
                stats_nested.total_comparisons(),
                "seed {seed}"
            );
            for e in 0..nested.num_entities {
                let entity = EntityId(e as u32);
                assert_eq!(
                    stats_csr.blocks_of(entity),
                    stats_nested.blocks_of(entity),
                    "seed {seed} entity {e}"
                );
                assert_eq!(
                    stats_csr.entity_comparisons(entity),
                    stats_nested.entity_comparisons(entity),
                    "seed {seed} entity {e}"
                );
            }

            if !nested.is_empty() {
                let from_stats = CandidatePairs::from_stats(&stats_csr, threads);
                let from_blocks = CandidatePairs::from_blocks(&nested);
                assert_eq!(from_stats.pairs(), from_blocks.pairs(), "seed {seed}");
                assert_eq!(
                    from_stats.entity_candidate_counts(),
                    from_blocks.entity_candidate_counts(),
                    "seed {seed}"
                );
            }
        }
    });
}

/// Block Purging and Filtering never add comparisons and never invent
/// entities.
#[test]
fn purging_and_filtering_only_shrink() {
    for_random_clean_collections(0x5011, |collection, seed| {
        let purged = block_purging(collection);
        assert!(
            purged.total_comparisons() <= collection.total_comparisons(),
            "seed {seed}"
        );
        assert!(
            purged.num_blocks() <= collection.num_blocks(),
            "seed {seed}"
        );
        let filtered = block_filtering(&purged, 0.8);
        assert!(
            filtered.total_comparisons() <= purged.total_comparisons(),
            "seed {seed}"
        );
        for block in &filtered.blocks {
            assert!(
                block.is_useful(filtered.kind, filtered.split),
                "seed {seed}"
            );
            for e in &block.entities {
                assert!(e.index() < filtered.num_entities, "seed {seed}");
            }
        }
    });
}

/// The candidate-pair set contains each comparable pair at most once and its
/// per-entity counts are consistent.
#[test]
fn candidate_pairs_are_distinct_and_consistent() {
    for_random_collections_both_kinds(0x5012, |collection, seed| {
        let candidates = CandidatePairs::from_blocks(collection);
        let mut seen = std::collections::HashSet::new();
        let mut degree = vec![0u32; collection.num_entities];
        for &(a, b) in candidates.pairs() {
            assert!(a < b, "seed {seed}");
            assert!(collection.is_comparable(a, b), "seed {seed}");
            assert!(seen.insert((a, b)), "seed {seed}");
            degree[a.index()] += 1;
            degree[b.index()] += 1;
        }
        for (i, &d) in degree.iter().enumerate() {
            assert_eq!(
                d,
                candidates.candidates_of(EntityId(i as u32)),
                "seed {seed}"
            );
        }
    });
}

/// The CSR block statistics agree with the retained naive `Vec<Vec<_>>`
/// implementation on every per-entity and per-pair quantity.
#[test]
fn csr_block_stats_match_naive_reference() {
    for_random_collections_both_kinds(0x5013, |collection, seed| {
        let stats = BlockStats::new(collection);
        let naive = NaiveBlockStats::new(collection);
        for e in 0..collection.num_entities {
            let entity = EntityId(e as u32);
            assert_eq!(
                stats.blocks_of(entity),
                naive.blocks_of(entity),
                "seed {seed} entity {e}"
            );
            assert_eq!(
                stats.entity_comparisons(entity),
                naive.entity_comparisons(entity),
                "seed {seed} entity {e}"
            );
        }
        for a in 0..collection.num_entities.min(8) {
            for b in 0..collection.num_entities {
                let (a, b) = (EntityId(a as u32), EntityId(b as u32));
                assert_eq!(
                    stats.common_blocks(a, b),
                    naive.common_blocks(a, b),
                    "seed {seed}"
                );
            }
        }
    });
}

/// The hash-free candidate extraction produces bit-identical pair lists and
/// counts to the retained hash-based reference, on Clean-Clean and Dirty
/// collections alike, for any thread count.
#[test]
fn candidate_extraction_matches_naive_reference() {
    for_random_collections_both_kinds(0x5014, |collection, seed| {
        let (naive_pairs, naive_counts) = naive_candidate_pairs(collection);
        let candidates = CandidatePairs::from_blocks(collection);
        assert_eq!(candidates.pairs(), naive_pairs.as_slice(), "seed {seed}");
        assert_eq!(
            candidates.entity_candidate_counts(),
            naive_counts.as_slice(),
            "seed {seed}"
        );

        let stats = BlockStats::new(collection);
        for threads in [1, 2, 4] {
            let parallel = CandidatePairs::from_blocks_with_stats(collection, &stats, threads);
            assert_eq!(
                parallel.pairs(),
                naive_pairs.as_slice(),
                "seed {seed} threads {threads}"
            );
            assert_eq!(
                parallel.entity_candidate_counts(),
                naive_counts.as_slice(),
                "seed {seed} threads {threads}"
            );
        }
    });
}

/// The fused single-pass feature matrix equals the retained pre-refactor
/// engine within 1e-12, and the parallel build equals the sequential build
/// exactly.
#[test]
fn feature_matrix_matches_naive_reference() {
    for_random_collections_both_kinds(0x5015, |collection, seed| {
        let stats = BlockStats::new(collection);
        let candidates = CandidatePairs::from_blocks(collection);
        if candidates.is_empty() {
            return;
        }
        let ctx = FeatureContext::new(&stats, &candidates);
        let naive_ctx = NaiveFeatureContext::new(collection, &candidates);
        for set in [FeatureSet::all_schemes(), FeatureSet::blast_optimal()] {
            let reference = naive_ctx.build_matrix(set, 1);
            let fused = FeatureMatrix::build(&ctx, set);
            let parallel = FeatureMatrix::build_with_threads(&ctx, set, 4);
            assert_eq!(fused.num_pairs(), reference.num_pairs(), "seed {seed}");
            for (id, expected) in reference.rows() {
                for (x, y) in fused.row(id).iter().zip(expected) {
                    assert!((x - y).abs() < 1e-12, "seed {seed} {set}: {x} vs {y}");
                }
                assert_eq!(parallel.row(id), fused.row(id), "seed {seed} {set}");
            }

            let scored = FeatureMatrix::score_rows(&ctx, set, 4, |row| {
                row.iter().sum::<f64>() / row.len() as f64
            });
            for (id, row) in fused.rows() {
                let expected = row.iter().sum::<f64>() / row.len() as f64;
                assert_eq!(scored[id.index()], expected, "seed {seed} {set}");
            }
        }
    });
}

/// Weighting schemes are non-negative; the normalised ones stay in [0,1];
/// and every scheme is symmetric in its arguments.
#[test]
fn weighting_schemes_bounds_and_symmetry() {
    for_random_clean_collections(0x5016, |collection, seed| {
        let stats = BlockStats::new(collection);
        let candidates = CandidatePairs::from_blocks(collection);
        let ctx = FeatureContext::new(&stats, &candidates);
        for &(a, b) in candidates.pairs().iter().take(50) {
            for scheme in Scheme::ALL {
                let v = ctx.score(scheme, a, b);
                assert!(v.is_finite(), "seed {seed}");
                assert!(v >= 0.0, "seed {seed}: {scheme} produced {v}");
                if matches!(scheme, Scheme::Js | Scheme::Wjs | Scheme::Nrs) {
                    assert!(v <= 1.0 + 1e-9, "seed {seed}: {scheme} produced {v}");
                }
                if scheme != Scheme::Lcp {
                    let reversed = ctx.score(scheme, b, a);
                    assert!(
                        (v - reversed).abs() < 1e-9,
                        "seed {seed}: {scheme} not symmetric"
                    );
                }
            }
        }
    });
}

/// Pruning-algorithm invariants for arbitrary probabilities: outputs are
/// subsets of the valid pairs, reciprocal variants are subsets of their base
/// variants, and CEP respects its budget.
#[test]
fn pruning_invariants() {
    for_random_clean_collections(0x5017, |collection, seed| {
        let candidates = CandidatePairs::from_blocks(collection);
        if candidates.is_empty() {
            return;
        }
        let mut rng = seeded_rng(seed ^ 0xabcd);
        let probabilities: Vec<f64> = (0..candidates.len())
            .map(|_| rng.gen_range(0.0..=1.0))
            .collect();
        let scores = CachedScores::new(probabilities.clone());
        let thresholds = CardinalityThresholds::from_blocks(collection);

        let run = |kind: AlgorithmKind| -> std::collections::HashSet<_> {
            kind.build(collection)
                .prune(&candidates, &scores)
                .into_iter()
                .collect()
        };

        let bcl = run(AlgorithmKind::Bcl);
        let wep = run(AlgorithmKind::Wep);
        let wnp = run(AlgorithmKind::Wnp);
        let rwnp = run(AlgorithmKind::Rwnp);
        let blast = run(AlgorithmKind::Blast);
        let cep = run(AlgorithmKind::Cep);
        let cnp = run(AlgorithmKind::Cnp);
        let rcnp = run(AlgorithmKind::Rcnp);

        // Everything is a subset of the valid pairs (= BCl's output).
        for (name, result) in [
            ("WEP", &wep),
            ("WNP", &wnp),
            ("RWNP", &rwnp),
            ("BLAST", &blast),
            ("CEP", &cep),
            ("CNP", &cnp),
            ("RCNP", &rcnp),
        ] {
            assert!(
                result.is_subset(&bcl),
                "seed {seed}: {name} retained an invalid pair"
            );
        }
        assert!(rwnp.is_subset(&wnp), "seed {seed}");
        assert!(rcnp.is_subset(&cnp), "seed {seed}");
        assert!(cep.len() <= thresholds.global_k, "seed {seed}");
        // Retained probabilities are all valid.
        for &id in bcl.iter() {
            assert!(probabilities[id.index()] >= 0.5, "seed {seed}");
        }
    });
}

/// Effectiveness measures always land in [0,1] and F1 is the harmonic mean
/// of recall and precision.
#[test]
fn effectiveness_bounds() {
    let mut rng = seeded_rng(0x5018);
    for _ in 0..CASES * 4 {
        let dups = rng.gen_range(1usize..100);
        let tp = rng.gen_range(0usize..100).min(dups);
        let extra = rng.gen_range(0usize..100);
        let eff = Effectiveness::from_counts(tp, tp + extra, dups);
        assert!((0.0..=1.0).contains(&eff.recall));
        assert!((0.0..=1.0).contains(&eff.precision));
        assert!((0.0..=1.0).contains(&eff.f1));
        if eff.recall + eff.precision > 0.0 {
            let expected = 2.0 * eff.recall * eff.precision / (eff.recall + eff.precision);
            assert!((eff.f1 - expected).abs() < 1e-12);
        }
    }
}

/// Ground truth lookups are order-insensitive.
#[test]
fn ground_truth_symmetry() {
    let mut rng = seeded_rng(0x5019);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..40);
        let pairs: Vec<(u32, u32)> = (0..n)
            .map(|_| (rng.gen_range(0u32..50), rng.gen_range(0u32..50)))
            .collect();
        let truth = GroundTruth::from_pairs(
            pairs
                .iter()
                .filter(|(a, b)| a != b)
                .map(|&(a, b)| (EntityId(a), EntityId(b))),
        );
        for &(a, b) in &pairs {
            assert_eq!(
                truth.is_match(EntityId(a), EntityId(b)),
                truth.is_match(EntityId(b), EntityId(a))
            );
        }
    }
}

/// The standardiser maps every training row to finite values and the
/// logistic regression always emits probabilities in [0,1].
#[test]
fn classifier_probabilities_stay_in_unit_interval() {
    let mut rng = seeded_rng(0x501a);
    for _ in 0..CASES {
        let n = rng.gen_range(8usize..40);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..3).map(|_| rng.gen_range(-100.0f64..100.0)).collect())
            .collect();
        let mut labels: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        // Ensure both classes are present.
        labels[0] = true;
        labels[1] = false;
        let training = TrainingSet::from_parts(rows, labels).unwrap();
        let scaler = Standardizer::fit(training.features().iter().map(|r| r.as_slice()), 3);
        for row in training.features() {
            assert!(scaler.transform(row).iter().all(|v| v.is_finite()));
        }
        let model =
            LogisticRegression::fit(&LogisticRegressionConfig::default(), &training).unwrap();
        for row in training.features() {
            let p = model.probability(row);
            assert!((0.0..=1.0).contains(&p), "probability {p}");
        }
    }
}

/// Platt scaling is monotone in the decision value.
#[test]
fn platt_scaling_is_monotone() {
    let mut rng = seeded_rng(0x501b);
    for _ in 0..CASES {
        let offset = rng.gen_range(-5.0f64..5.0);
        let spread = rng.gen_range(0.5f64..5.0);
        let decisions: Vec<f64> = (-10..=10)
            .map(|i| offset + spread * f64::from(i) / 10.0)
            .collect();
        let labels: Vec<bool> = decisions.iter().map(|&d| d > offset).collect();
        if labels.iter().all(|&l| l) || labels.iter().all(|&l| !l) {
            continue;
        }
        let scaler = PlattScaler::fit(&decisions, &labels).unwrap();
        let mut previous = f64::NEG_INFINITY;
        for i in -20..=20 {
            let p = scaler.probability(offset + spread * f64::from(i) / 10.0);
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= previous - 1e-9, "not monotone");
            previous = p;
        }
    }
}
