//! Property-based tests over the core data structures and invariants.

use gsmb::blocking::{block_filtering, block_purging, Block, BlockCollection, BlockStats, CandidatePairs};
use gsmb::core::{DatasetKind, EntityId, GroundTruth};
use gsmb::eval::Effectiveness;
use gsmb::features::{FeatureContext, Scheme};
use gsmb::learn::{Classifier, LogisticRegression, LogisticRegressionConfig, PlattScaler, ProbabilisticClassifier, Standardizer, TrainingSet};
use gsmb::meta::pruning::{AlgorithmKind, CardinalityThresholds};
use gsmb::meta::scoring::CachedScores;
use proptest::prelude::*;

/// Strategy: a random redundancy-positive Clean-Clean block collection.
fn arb_block_collection() -> impl Strategy<Value = BlockCollection> {
    // num entities per source in 3..=12, 3..=20 blocks of 2..=6 entities.
    (3usize..=12, 3usize..=12, 3usize..=20).prop_flat_map(|(n1, n2, num_blocks)| {
        let total = n1 + n2;
        let block = proptest::collection::vec(0..total as u32, 2..=6);
        proptest::collection::vec(block, num_blocks).prop_map(move |blocks| BlockCollection {
            dataset_name: "prop".into(),
            kind: DatasetKind::CleanClean,
            split: n1,
            num_entities: total,
            blocks: blocks
                .into_iter()
                .enumerate()
                .map(|(i, members)| {
                    Block::new(format!("k{i}"), members.into_iter().map(EntityId).collect())
                })
                .filter(|b| b.is_useful(DatasetKind::CleanClean, n1))
                .collect(),
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Block Purging and Filtering never add comparisons and never invent
    /// entities.
    #[test]
    fn purging_and_filtering_only_shrink(collection in arb_block_collection()) {
        let purged = block_purging(&collection);
        prop_assert!(purged.total_comparisons() <= collection.total_comparisons());
        prop_assert!(purged.num_blocks() <= collection.num_blocks());
        let filtered = block_filtering(&purged, 0.8);
        prop_assert!(filtered.total_comparisons() <= purged.total_comparisons());
        for block in &filtered.blocks {
            prop_assert!(block.is_useful(filtered.kind, filtered.split));
            for e in &block.entities {
                prop_assert!(e.index() < filtered.num_entities);
            }
        }
    }

    /// The candidate-pair set contains each comparable pair at most once and
    /// its per-entity counts are consistent.
    #[test]
    fn candidate_pairs_are_distinct_and_consistent(collection in arb_block_collection()) {
        let candidates = CandidatePairs::from_blocks(&collection);
        let mut seen = std::collections::HashSet::new();
        let mut degree = vec![0u32; collection.num_entities];
        for &(a, b) in candidates.pairs() {
            prop_assert!(a < b);
            prop_assert!(collection.is_comparable(a, b));
            prop_assert!(seen.insert((a, b)));
            degree[a.index()] += 1;
            degree[b.index()] += 1;
        }
        for (i, &d) in degree.iter().enumerate() {
            prop_assert_eq!(d, candidates.candidates_of(EntityId(i as u32)));
        }
    }

    /// Weighting schemes are non-negative; the normalised ones stay in [0,1];
    /// and every scheme is symmetric in its arguments.
    #[test]
    fn weighting_schemes_bounds_and_symmetry(collection in arb_block_collection()) {
        let stats = BlockStats::new(&collection);
        let candidates = CandidatePairs::from_blocks(&collection);
        let ctx = FeatureContext::new(&stats, &candidates);
        for &(a, b) in candidates.pairs().iter().take(50) {
            for scheme in Scheme::ALL {
                let v = ctx.score(scheme, a, b);
                prop_assert!(v.is_finite());
                prop_assert!(v >= 0.0, "{scheme} produced {v}");
                if matches!(scheme, Scheme::Js | Scheme::Wjs | Scheme::Nrs) {
                    prop_assert!(v <= 1.0 + 1e-9, "{scheme} produced {v}");
                }
                if scheme != Scheme::Lcp {
                    let reversed = ctx.score(scheme, b, a);
                    prop_assert!((v - reversed).abs() < 1e-9, "{scheme} not symmetric");
                }
            }
        }
    }

    /// Pruning-algorithm invariants for arbitrary probabilities: outputs are
    /// subsets of the valid pairs, reciprocal variants are subsets of their
    /// base variants, and CEP respects its budget.
    #[test]
    fn pruning_invariants(collection in arb_block_collection(), seed in 0u64..1000) {
        let candidates = CandidatePairs::from_blocks(&collection);
        prop_assume!(!candidates.is_empty());
        let mut rng = gsmb::core::seeded_rng(seed);
        let probabilities: Vec<f64> = (0..candidates.len())
            .map(|_| rand::Rng::gen_range(&mut rng, 0.0..=1.0))
            .collect();
        let scores = CachedScores::new(probabilities.clone());
        let thresholds = CardinalityThresholds::from_blocks(&collection);

        let run = |kind: AlgorithmKind| -> std::collections::HashSet<_> {
            kind.build(&collection)
                .prune(&candidates, &scores)
                .into_iter()
                .collect()
        };

        let bcl = run(AlgorithmKind::Bcl);
        let wep = run(AlgorithmKind::Wep);
        let wnp = run(AlgorithmKind::Wnp);
        let rwnp = run(AlgorithmKind::Rwnp);
        let blast = run(AlgorithmKind::Blast);
        let cep = run(AlgorithmKind::Cep);
        let cnp = run(AlgorithmKind::Cnp);
        let rcnp = run(AlgorithmKind::Rcnp);

        // Everything is a subset of the valid pairs (= BCl's output).
        for (name, result) in [("WEP", &wep), ("WNP", &wnp), ("RWNP", &rwnp), ("BLAST", &blast), ("CEP", &cep), ("CNP", &cnp), ("RCNP", &rcnp)] {
            prop_assert!(result.is_subset(&bcl), "{name} retained an invalid pair");
        }
        prop_assert!(rwnp.is_subset(&wnp));
        prop_assert!(rcnp.is_subset(&cnp));
        prop_assert!(cep.len() <= thresholds.global_k);
        // Retained probabilities are all valid.
        for &id in bcl.iter() {
            prop_assert!(probabilities[id.index()] >= 0.5);
        }
    }

    /// Effectiveness measures always land in [0,1] and F1 is the harmonic
    /// mean of recall and precision.
    #[test]
    fn effectiveness_bounds(tp in 0usize..100, extra in 0usize..100, dups in 1usize..100) {
        let tp = tp.min(dups);
        let eff = Effectiveness::from_counts(tp, tp + extra, dups);
        prop_assert!((0.0..=1.0).contains(&eff.recall));
        prop_assert!((0.0..=1.0).contains(&eff.precision));
        prop_assert!((0.0..=1.0).contains(&eff.f1));
        if eff.recall + eff.precision > 0.0 {
            let expected = 2.0 * eff.recall * eff.precision / (eff.recall + eff.precision);
            prop_assert!((eff.f1 - expected).abs() < 1e-12);
        }
    }

    /// Ground truth lookups are order-insensitive.
    #[test]
    fn ground_truth_symmetry(pairs in proptest::collection::vec((0u32..50, 0u32..50), 1..40)) {
        let truth = GroundTruth::from_pairs(
            pairs.iter().filter(|(a, b)| a != b).map(|&(a, b)| (EntityId(a), EntityId(b))),
        );
        for &(a, b) in &pairs {
            prop_assert_eq!(
                truth.is_match(EntityId(a), EntityId(b)),
                truth.is_match(EntityId(b), EntityId(a))
            );
        }
    }

    /// The standardiser maps every training row to finite values and the
    /// logistic regression always emits probabilities in [0,1].
    #[test]
    fn classifier_probabilities_stay_in_unit_interval(
        rows in proptest::collection::vec(proptest::collection::vec(-100.0f64..100.0, 3), 8..40),
        flips in proptest::collection::vec(any::<bool>(), 8..40),
    ) {
        let n = rows.len().min(flips.len());
        let mut labels: Vec<bool> = flips[..n].to_vec();
        // Ensure both classes are present.
        labels[0] = true;
        if let Some(l) = labels.get_mut(1) { *l = false; }
        let training = TrainingSet::from_parts(rows[..n].to_vec(), labels).unwrap();
        let scaler = Standardizer::fit(training.features().iter().map(|r| r.as_slice()), 3);
        for row in training.features() {
            prop_assert!(scaler.transform(row).iter().all(|v| v.is_finite()));
        }
        let model = LogisticRegression::fit(&LogisticRegressionConfig::default(), &training).unwrap();
        for row in training.features() {
            let p = model.probability(row);
            prop_assert!((0.0..=1.0).contains(&p), "probability {p}");
        }
    }

    /// Platt scaling is monotone in the decision value.
    #[test]
    fn platt_scaling_is_monotone(offset in -5.0f64..5.0, spread in 0.5f64..5.0) {
        let decisions: Vec<f64> = (-10..=10).map(|i| offset + spread * f64::from(i) / 10.0).collect();
        let labels: Vec<bool> = decisions.iter().map(|&d| d > offset).collect();
        if labels.iter().all(|&l| l) || labels.iter().all(|&l| !l) {
            return Ok(());
        }
        let scaler = PlattScaler::fit(&decisions, &labels).unwrap();
        let mut previous = f64::NEG_INFINITY;
        for i in -20..=20 {
            let p = scaler.probability(offset + spread * f64::from(i) / 10.0);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p >= previous - 1e-9, "not monotone");
            previous = p;
        }
    }
}
