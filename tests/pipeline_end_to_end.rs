//! End-to-end integration tests spanning every crate: dataset generation,
//! blocking, feature generation, training, scoring and pruning.

use gsmb::datasets::{generate_catalog_dataset, CatalogOptions, DatasetName};
use gsmb::eval::experiment::{run_once, PreparedDataset, RunConfig};
use gsmb::eval::Effectiveness;
use gsmb::features::FeatureSet;
use gsmb::meta::pipeline::{MetaBlockingConfig, MetaBlockingPipeline};
use gsmb::meta::pruning::AlgorithmKind;

fn prepared(name: DatasetName) -> PreparedDataset {
    let dataset = generate_catalog_dataset(name, &CatalogOptions::tiny()).unwrap();
    PreparedDataset::prepare(dataset).unwrap()
}

#[test]
fn blocking_keeps_high_recall_and_low_precision_on_every_dataset() {
    for name in [
        DatasetName::AbtBuy,
        DatasetName::DblpAcm,
        DatasetName::ImdbTmdb,
        DatasetName::WalmartAmazon,
    ] {
        let prepared = prepared(name);
        let quality = prepared.block_quality();
        assert!(
            quality.recall > 0.7,
            "{name}: blocking recall {:.3} too low",
            quality.recall
        );
        assert!(
            quality.precision < 0.2,
            "{name}: blocking precision {:.3} suspiciously high",
            quality.precision
        );
    }
}

#[test]
fn every_pruning_algorithm_improves_precision_over_the_input_blocks() {
    let prepared = prepared(DatasetName::DblpAcm);
    let input_precision = prepared.block_quality().precision;
    let config = RunConfig {
        per_class: 20,
        ..Default::default()
    };
    for algorithm in AlgorithmKind::all() {
        let result = run_once(&prepared, algorithm, &config).unwrap();
        assert!(
            result.effectiveness.precision > input_precision,
            "{algorithm}: precision {:.4} did not improve over {:.4}",
            result.effectiveness.precision,
            input_precision
        );
        assert!(result.retained > 0, "{algorithm}: retained nothing");
        assert!(
            result.retained < prepared.num_candidates(),
            "{algorithm}: retained every candidate pair"
        );
    }
}

#[test]
fn retained_pairs_are_a_subset_of_the_candidates_and_unique() {
    let dataset = generate_catalog_dataset(DatasetName::AbtBuy, &CatalogOptions::tiny()).unwrap();
    let outcome = MetaBlockingPipeline::new(MetaBlockingConfig::default())
        .run(&dataset, AlgorithmKind::Rcnp)
        .unwrap();
    let mut seen = std::collections::HashSet::new();
    for &id in &outcome.retained {
        assert!(id.index() < outcome.num_candidates);
        assert!(seen.insert(id), "pair {id:?} retained twice");
    }
}

#[test]
fn weight_based_algorithms_nest_as_expected() {
    // BCl ⊇ WNP ⊇ RWNP and BCl ⊇ WEP for the same probabilities.
    let prepared = prepared(DatasetName::ImdbTmdb);
    let config = RunConfig {
        per_class: 20,
        feature_set: FeatureSet::original(),
        ..Default::default()
    };
    let (matrix, _) = prepared.build_features(config.feature_set);
    let seed = 42;
    let run = |algorithm| {
        gsmb::eval::experiment::run_with_matrix(
            &prepared,
            &matrix,
            std::time::Duration::ZERO,
            algorithm,
            &config,
            seed,
        )
        .unwrap()
    };
    let bcl = run(AlgorithmKind::Bcl);
    let wep = run(AlgorithmKind::Wep);
    let wnp = run(AlgorithmKind::Wnp);
    let rwnp = run(AlgorithmKind::Rwnp);
    assert!(wep.retained <= bcl.retained);
    assert!(wnp.retained <= bcl.retained);
    assert!(rwnp.retained <= wnp.retained);
}

#[test]
fn cardinality_algorithms_respect_their_budgets() {
    let prepared = prepared(DatasetName::TmdbTvdb);
    let thresholds = gsmb::meta::pruning::CardinalityThresholds::from_csr(&prepared.blocks);
    let config = RunConfig {
        per_class: 15,
        ..Default::default()
    };
    let cep = run_once(&prepared, AlgorithmKind::Cep, &config).unwrap();
    assert!(
        cep.retained <= thresholds.global_k,
        "CEP retained {} > K = {}",
        cep.retained,
        thresholds.global_k
    );
    let rcnp = run_once(&prepared, AlgorithmKind::Rcnp, &config).unwrap();
    let cnp = run_once(&prepared, AlgorithmKind::Cnp, &config).unwrap();
    assert!(
        rcnp.retained <= cnp.retained,
        "RCNP must prune deeper than CNP"
    );
}

#[test]
fn pipeline_works_on_dirty_datasets_too() {
    let configs = gsmb::datasets::dirty_catalog(&CatalogOptions::tiny());
    let dataset = gsmb::datasets::generate_dirty(&configs[0]).unwrap();
    let num_duplicates = dataset.num_duplicates();
    let outcome = MetaBlockingPipeline::new(MetaBlockingConfig::default())
        .run(&dataset, AlgorithmKind::Blast)
        .unwrap();
    let quality = Effectiveness::evaluate(
        &outcome.retained_pairs(),
        &dataset.ground_truth,
        num_duplicates,
    );
    assert!(quality.recall > 0.5, "dirty ER recall too low: {quality}");
}

#[test]
fn svm_and_logistic_classifiers_agree_on_the_easy_pairs() {
    use gsmb::learn::LinearSvmConfig;
    use gsmb::meta::pipeline::ClassifierKind;

    let dataset = generate_catalog_dataset(DatasetName::DblpAcm, &CatalogOptions::tiny()).unwrap();
    let logistic = MetaBlockingPipeline::new(MetaBlockingConfig::default())
        .run(&dataset, AlgorithmKind::Bcl)
        .unwrap();
    let svm = MetaBlockingPipeline::new(MetaBlockingConfig {
        classifier: ClassifierKind::Svm(LinearSvmConfig::default()),
        ..MetaBlockingConfig::default()
    })
    .run(&dataset, AlgorithmKind::Bcl)
    .unwrap();

    let eval = |outcome: &gsmb::meta::MetaBlockingOutcome| {
        Effectiveness::evaluate(
            &outcome.retained_pairs(),
            &dataset.ground_truth,
            dataset.num_duplicates(),
        )
    };
    let logistic_quality = eval(&logistic);
    let svm_quality = eval(&svm);
    // The paper reports SVC and logistic regression yield almost identical
    // results; on this clean dataset both must reach high recall and the F1
    // gap must stay small.
    assert!(logistic_quality.recall > 0.8, "{logistic_quality}");
    assert!(svm_quality.recall > 0.8, "{svm_quality}");
    assert!(
        (logistic_quality.f1 - svm_quality.f1).abs() < 0.25,
        "classifiers disagree too much: {logistic_quality} vs {svm_quality}"
    );
}
