//! Integration tests asserting the paper's qualitative claims on the
//! synthetic benchmark analogues (scaled down, so only the *shape* of each
//! claim is checked — who wins, and in which direction).

use gsmb::datasets::{generate_catalog_dataset, CatalogOptions, DatasetName};
use gsmb::eval::experiment::{run_averaged, PreparedDataset, RunConfig};
use gsmb::eval::Effectiveness;
use gsmb::features::FeatureSet;
use gsmb::meta::pruning::AlgorithmKind;

fn catalog_options() -> CatalogOptions {
    CatalogOptions {
        scale: 0.3,
        ..CatalogOptions::default()
    }
}

fn prepare(name: DatasetName) -> PreparedDataset {
    let dataset = generate_catalog_dataset(name, &catalog_options()).unwrap();
    PreparedDataset::prepare(dataset).unwrap()
}

fn averaged(
    prepared: &[PreparedDataset],
    algorithm: AlgorithmKind,
    feature_set: FeatureSet,
    per_class: usize,
) -> Effectiveness {
    let config = RunConfig {
        feature_set,
        per_class,
        ..Default::default()
    };
    let results: Vec<Effectiveness> = prepared
        .iter()
        .map(|p| {
            run_averaged(p, algorithm, &config, 3)
                .unwrap()
                .effectiveness
        })
        .collect();
    Effectiveness::mean(&results)
}

fn evaluation_datasets() -> Vec<PreparedDataset> {
    [
        DatasetName::AbtBuy,
        DatasetName::DblpAcm,
        DatasetName::AmazonGP,
        DatasetName::ImdbTmdb,
    ]
    .into_iter()
    .map(prepare)
    .collect()
}

/// Section 5.2: the new weight-based algorithms trade recall for much higher
/// precision, and BLAST beats the BCl baseline on precision/F1.
#[test]
fn weight_based_selection_claims() {
    let prepared = evaluation_datasets();
    let set = FeatureSet::original();
    let bcl = averaged(&prepared, AlgorithmKind::Bcl, set, 100);
    let wep = averaged(&prepared, AlgorithmKind::Wep, set, 100);
    let rwnp = averaged(&prepared, AlgorithmKind::Rwnp, set, 100);
    let blast = averaged(&prepared, AlgorithmKind::Blast, set, 100);

    assert!(wep.precision > bcl.precision, "WEP {wep} vs BCl {bcl}");
    assert!(rwnp.precision > bcl.precision, "RWNP {rwnp} vs BCl {bcl}");
    assert!(
        wep.recall <= bcl.recall + 1e-9,
        "WEP cannot beat BCl recall"
    );
    assert!(blast.f1 > bcl.f1, "BLAST {blast} must beat BCl {bcl} on F1");
    assert!(
        blast.recall >= bcl.recall * 0.97,
        "BLAST must not sacrifice recall: {blast} vs {bcl}"
    );
}

/// Section 5.2: RCNP is the best cardinality-based algorithm — higher
/// precision and F1 than CNP at a small recall cost.
#[test]
fn cardinality_based_selection_claims() {
    let prepared = evaluation_datasets();
    let set = FeatureSet::original();
    let cnp = averaged(&prepared, AlgorithmKind::Cnp, set, 100);
    let rcnp = averaged(&prepared, AlgorithmKind::Rcnp, set, 100);

    assert!(rcnp.precision > cnp.precision, "RCNP {rcnp} vs CNP {cnp}");
    assert!(rcnp.f1 > cnp.f1, "RCNP {rcnp} vs CNP {cnp}");
    assert!(
        rcnp.recall <= cnp.recall + 1e-9,
        "RCNP prunes deeper than CNP"
    );
    assert!(
        rcnp.recall > cnp.recall * 0.8,
        "RCNP's recall loss must stay small: {rcnp} vs {cnp}"
    );
}

/// Section 5.3: the new feature sets perform at least as well as the original
/// one for their respective algorithms (robustness of the feature choice).
#[test]
fn new_feature_sets_are_competitive() {
    let prepared = evaluation_datasets();
    let blast_original = averaged(&prepared, AlgorithmKind::Blast, FeatureSet::original(), 100);
    let blast_new = averaged(
        &prepared,
        AlgorithmKind::Blast,
        FeatureSet::blast_optimal(),
        100,
    );
    assert!(
        blast_new.f1 > blast_original.f1 * 0.9,
        "BLAST with the new features must stay competitive: {blast_new} vs {blast_original}"
    );

    let rcnp_original = averaged(&prepared, AlgorithmKind::Rcnp, FeatureSet::original(), 100);
    let rcnp_new = averaged(
        &prepared,
        AlgorithmKind::Rcnp,
        FeatureSet::rcnp_optimal(),
        100,
    );
    assert!(
        rcnp_new.f1 > rcnp_original.f1 * 0.9,
        "RCNP with the new features must stay competitive: {rcnp_new} vs {rcnp_original}"
    );
}

/// Section 5.4: a 50-instance training set suffices — going to 500 instances
/// must not improve F1 materially (the paper observes it *drops*).
#[test]
fn small_training_sets_suffice() {
    let prepared = evaluation_datasets();
    let small = averaged(
        &prepared,
        AlgorithmKind::Blast,
        FeatureSet::blast_optimal(),
        25,
    );
    let large = averaged(
        &prepared,
        AlgorithmKind::Blast,
        FeatureSet::blast_optimal(),
        250,
    );
    assert!(
        small.f1 >= large.f1 * 0.9,
        "50 labelled instances must be competitive with 500: {small} vs {large}"
    );
    assert!(small.recall > 0.6, "small-training recall too low: {small}");
}

/// Figures 15/16: datasets whose duplicates often share only one block have
/// lower blocking recall than clean datasets.
#[test]
fn common_block_distribution_explains_recall() {
    use gsmb::eval::report::CommonBlockDistribution;
    let noisy = prepare(DatasetName::AbtBuy);
    let clean = prepare(DatasetName::DblpAcm);
    let noisy_distribution = CommonBlockDistribution::build(&noisy);
    let clean_distribution = CommonBlockDistribution::build(&clean);
    assert!(
        noisy_distribution.portion_at_most_one() > clean_distribution.portion_at_most_one(),
        "AbtBuy ({:.3}) should have more weak duplicates than DblpAcm ({:.3})",
        noisy_distribution.portion_at_most_one(),
        clean_distribution.portion_at_most_one()
    );
    assert!(noisy.block_quality().recall <= clean.block_quality().recall + 1e-9);
}
