//! End-to-end observability: a durable sharded run must leave a registry
//! snapshot with nonzero durability and shard metrics, emit the structured
//! recovery event, and render both exporter formats.
//!
//! This is the acceptance gate of the er-obs layer: every subsystem the
//! pipeline touches (streaming deltas, per-shard WAL group commit, fsync
//! latency, checkpoints, epoch publication, recovery) shows up in one
//! `render_prometheus` pass with no bespoke side channels.

use std::path::PathBuf;

use gsmb::blocking::TokenKeys;
use gsmb::core::{Dataset, EntityId};
use gsmb::datasets::{dirty_catalog, generate_dirty, CatalogOptions};
use gsmb::features::FeatureSet;
use gsmb::obs::event::CapturingSink;
use gsmb::shard::{DurableShardedService, ShardedStreamingService};
use gsmb::stream::{MutationRecord, StreamingConfig};

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dataset() -> Dataset {
    generate_dirty(&dirty_catalog(&CatalogOptions::tiny())[0]).unwrap()
}

fn config(dataset: &Dataset) -> StreamingConfig {
    StreamingConfig {
        feature_set: FeatureSet::blast_optimal(),
        threads: 2,
        ..StreamingConfig::for_dataset(dataset)
    }
}

#[test]
fn durable_sharded_run_populates_the_registry_and_emits_recovery_events() {
    let sink = CapturingSink::shared();
    gsmb::obs::event::set_sink(sink.clone());

    let ds = dataset();
    let n = ds.profiles.len();
    let dir = scratch("obs-durable-sharded");

    // A durable sharded run: grouped mutations (one fsync per touched
    // shard WAL), a checkpoint, more WAL tail, reader loads, then a crash.
    let mut durable = ShardedStreamingService::new(config(&ds), TokenKeys, 3)
        .unwrap()
        .persist_to(&dir)
        .unwrap();
    let mid = n / 2;
    durable
        .apply_group(&[
            MutationRecord::Ingest(ds.profiles[..mid].to_vec()),
            MutationRecord::Remove(vec![EntityId(1)]),
        ])
        .unwrap();
    durable.checkpoint().unwrap();
    durable.ingest(&ds.profiles[mid..]).unwrap();
    let reader = durable.reader();
    assert!(reader.load().num_entities > 0);
    drop(durable); // crash: the second ingest lives only in the WALs

    let recovered = DurableShardedService::recover_from(&dir, TokenKeys, 2).unwrap();
    let report = recovered.recovery_report().unwrap();
    assert!(report.records_replayed > 0, "the WAL tail must replay");

    // The report's one-line logfmt rendering names its key fields.
    let line = report.to_string();
    assert!(line.starts_with("recovery "), "unexpected Display: {line}");
    assert!(line.contains("clean="), "unexpected Display: {line}");
    assert!(
        line.contains("records_replayed="),
        "unexpected Display: {line}"
    );

    // The recovery was emitted as a structured event with the same fields.
    gsmb::obs::event::clear_sink();
    let recovery_events: Vec<_> = sink
        .take()
        .into_iter()
        .filter(|e| e.name == "persist_recovery")
        .collect();
    assert!(!recovery_events.is_empty(), "no persist_recovery event");
    let event = recovery_events.last().unwrap();
    assert_eq!(
        event.get("records_replayed"),
        Some(report.records_replayed.to_string().as_str())
    );
    assert_eq!(event.get("clean"), Some("true"));

    // Every subsystem the run touched shows up nonzero in one snapshot.
    let snapshot = gsmb::obs::snapshot();
    let nonzero = |name: &str| {
        let value = snapshot
            .value(name)
            .unwrap_or_else(|| panic!("{name} not registered"));
        assert!(value > 0, "{name} stayed zero");
    };
    nonzero("persist_wal_appends_total");
    nonzero("persist_wal_fsyncs_total");
    nonzero("persist_snapshot_writes_total");
    nonzero("persist_snapshot_bytes_total");
    nonzero("persist_recoveries_total");
    nonzero("persist_wal_records_replayed_total");
    nonzero("shard_groups_applied_total");
    nonzero("shard_epochs_published_total");

    let nonzero_histogram = |name: &str| {
        let h = snapshot
            .histogram(name)
            .unwrap_or_else(|| panic!("{name} not registered"));
        assert!(h.count > 0, "{name} recorded nothing");
    };
    nonzero_histogram("persist_fsync_ns");
    nonzero_histogram("persist_recovery_ns");
    nonzero_histogram("shard_group_fsyncs");
    nonzero_histogram("shard_group_batches");
    nonzero_histogram("shard_epoch_publish_ns");
    nonzero_histogram("shard_reader_view_age_batches");
    nonzero_histogram("streaming_delta_pairs");

    // Both exporters render the same registry: the Prometheus text carries
    // type headers and bucketed fsync latency, the JSON the scalar series.
    let prometheus = snapshot.render_prometheus();
    assert!(prometheus.contains("# TYPE persist_fsync_ns histogram"));
    assert!(prometheus.contains("persist_fsync_ns_bucket"));
    assert!(prometheus.contains("# TYPE shard_groups_applied_total counter"));
    assert!(prometheus.contains("streaming_ingest_batches_total"));
    let json = snapshot.render_json();
    assert!(json.contains("\"persist_wal_appends_total\""));
    assert!(json.contains("\"shard_epochs_published_total\""));
}
