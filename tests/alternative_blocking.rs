//! Integration tests for the alternative redundancy-positive blocking methods
//! (Q-Grams, Suffix Arrays) and the progressive/materialisation extensions:
//! meta-blocking must work unchanged on any redundancy-positive block
//! collection, exactly as the paper states.

use std::time::Duration;

use gsmb::blocking::{
    block_filtering, block_purging, qgrams_blocking, suffix_array_blocking, BlockStats,
    CandidatePairs, SuffixArrayConfig,
};
use gsmb::core::PairId;
use gsmb::datasets::{generate_catalog_dataset, CatalogOptions, DatasetName};
use gsmb::eval::experiment::{run_with_matrix, train_and_score, PreparedDataset, RunConfig};
use gsmb::eval::Effectiveness;
use gsmb::features::{FeatureContext, FeatureMatrix, FeatureSet};
use gsmb::learn::balanced_undersample;
use gsmb::learn::TrainingSet;
use gsmb::meta::materialize::{materialize_blocks_csr, PruningSummary};
use gsmb::meta::progressive::ProgressiveSchedule;
use gsmb::meta::pruning::AlgorithmKind;
use gsmb::meta::scoring::ProbabilitySource;

fn tiny_dataset() -> gsmb::core::Dataset {
    generate_catalog_dataset(DatasetName::AbtBuy, &CatalogOptions::tiny()).unwrap()
}

/// Runs the supervised meta-blocking core on an arbitrary block collection.
fn run_on_blocks(
    dataset: &gsmb::core::Dataset,
    blocks: gsmb::blocking::BlockCollection,
) -> (Effectiveness, usize) {
    let stats = BlockStats::new(&blocks);
    let candidates = CandidatePairs::from_blocks(&blocks);
    assert!(!candidates.is_empty());
    let context = FeatureContext::new(&stats, &candidates);
    let matrix = FeatureMatrix::build(&context, FeatureSet::blast_optimal());

    let mut rng = gsmb::core::seeded_rng(11);
    let per_class = (candidates.count_positives(&dataset.ground_truth) / 2).clamp(5, 25);
    let sample = balanced_undersample(
        candidates.pairs(),
        &dataset.ground_truth,
        per_class,
        &mut rng,
    )
    .unwrap();
    let mut training = TrainingSet::new();
    for (&idx, &label) in sample.pair_indices.iter().zip(&sample.labels) {
        training.push(matrix.row(PairId::from(idx)).to_vec(), label);
    }
    let model = gsmb::meta::pipeline::ClassifierKind::default()
        .fit(&training)
        .unwrap();
    let probabilities: Vec<f64> = (0..matrix.num_pairs())
        .map(|i| {
            model
                .probability(matrix.row(PairId::from(i)))
                .clamp(0.0, 1.0)
        })
        .collect();
    let scores = gsmb::meta::scoring::CachedScores::new(probabilities);
    let pruner = AlgorithmKind::Blast.build(&blocks);
    let retained = pruner.prune(&candidates, &scores);
    let retained_pairs: Vec<_> = retained.iter().map(|&id| candidates.pair(id)).collect();
    (
        Effectiveness::evaluate(
            &retained_pairs,
            &dataset.ground_truth,
            dataset.num_duplicates(),
        ),
        candidates.len(),
    )
}

#[test]
fn qgrams_blocking_supports_the_full_workflow() {
    let dataset = tiny_dataset();
    let blocks = block_filtering(&block_purging(&qgrams_blocking(&dataset, 4)), 0.8);
    let (quality, num_candidates) = run_on_blocks(&dataset, blocks);
    assert!(num_candidates > 0);
    assert!(quality.recall > 0.5, "q-grams recall too low: {quality}");
    assert!(quality.precision > 0.0);
}

#[test]
fn suffix_array_blocking_supports_the_full_workflow() {
    let dataset = tiny_dataset();
    let raw = suffix_array_blocking(
        &dataset,
        SuffixArrayConfig {
            min_length: 4,
            max_block_size: 60,
        },
    );
    let blocks = block_filtering(&block_purging(&raw), 0.8);
    let (quality, num_candidates) = run_on_blocks(&dataset, blocks);
    assert!(num_candidates > 0);
    assert!(
        quality.recall > 0.4,
        "suffix-array recall too low: {quality}"
    );
}

#[test]
fn materialized_output_matches_pruning_summary() {
    let dataset = tiny_dataset();
    let prepared = PreparedDataset::prepare(dataset).unwrap();
    let config = RunConfig {
        per_class: 20,
        feature_set: FeatureSet::blast_optimal(),
        ..Default::default()
    };
    let (matrix, _) = prepared.build_features(config.feature_set);
    let (scores, _, _) = train_and_score(&prepared, &matrix, &config, 3).unwrap();
    let pruner = AlgorithmKind::Rcnp.build_csr(&prepared.blocks);
    let retained = pruner.prune(&prepared.candidates, &scores);

    let output = materialize_blocks_csr(&prepared.blocks, &prepared.candidates, &retained);
    assert_eq!(output.num_blocks(), retained.len());
    assert_eq!(output.total_comparisons() as usize, retained.len());

    let summary = PruningSummary::new(
        &prepared.candidates,
        &retained,
        &prepared.dataset.ground_truth,
    );
    assert_eq!(
        summary.retained_positives + summary.retained_negatives,
        retained.len()
    );
    assert!(
        summary.negative_reduction() > 0.5,
        "pruning should remove most negatives"
    );

    // The run_with_matrix effectiveness must agree with the summary counts.
    let run = run_with_matrix(
        &prepared,
        &matrix,
        Duration::ZERO,
        AlgorithmKind::Rcnp,
        &config,
        3,
    )
    .unwrap();
    assert_eq!(run.retained, retained.len());
}

#[test]
fn progressive_schedule_front_loads_the_duplicates() {
    let dataset = tiny_dataset();
    let prepared = PreparedDataset::prepare(dataset).unwrap();
    let config = RunConfig {
        per_class: 20,
        feature_set: FeatureSet::blast_optimal(),
        ..Default::default()
    };
    let (matrix, _) = prepared.build_features(config.feature_set);
    let (scores, _, _) = train_and_score(&prepared, &matrix, &config, 5).unwrap();

    let mut schedule = ProgressiveSchedule::new(&prepared.candidates, &scores);
    let total = schedule.remaining();
    let budget = total / 10;
    let first_batch = schedule.next_batch(budget).to_vec();
    let truth = &prepared.dataset.ground_truth;
    let early_matches = first_batch
        .iter()
        .filter(|&&(id, _)| {
            let (a, b) = prepared.candidates.pair(id);
            truth.is_match(a, b)
        })
        .count();
    let early_rate = early_matches as f64 / first_batch.len() as f64;
    let overall_rate = prepared.candidates.count_positives(truth) as f64 / total as f64;
    assert!(
        early_rate > overall_rate * 3.0,
        "progressive emission should front-load duplicates: {early_rate:.4} vs {overall_rate:.4}"
    );

    // The valid-only schedule never emits probabilities below 0.5.
    let valid = ProgressiveSchedule::valid_only(&prepared.candidates, &scores);
    assert!(valid
        .ranked()
        .iter()
        .all(|&(id, p)| p >= 0.5 && scores.is_valid(id)));
}
