//! Property suite for the memory-bounded candidate stream: at every thread
//! count and chunk size — including chunks that split one entity's partner
//! run — the streamed path must reproduce the materialised batch path
//! **bit-identically**: same pairs in the same order, same per-entity LCP
//! counts, same feature values, same probabilities.

use er_blocking::{
    standard_blocking_workflow_csr, Block, BlockCollection, BlockStats, CandidatePairs,
    CandidateStream, ChunkArena, DEFAULT_CHUNK_PAIRS,
};
use er_core::{DatasetKind, EntityId, PairId};
use er_datasets::{generate_catalog_dataset, CatalogOptions, DatasetName};
use er_features::{
    FeatureContext, FeatureMatrix, FeatureSet, ScoreboardConfig, StreamFeatureContext,
};
use meta_blocking::{AlgorithmKind, MetaBlockingConfig, MetaBlockingPipeline};

const THREADS: [usize; 3] = [1, 2, 4];
const CHUNKS: [usize; 3] = [1, 64, usize::MAX / 2];

fn feature_sets() -> [FeatureSet; 3] {
    [
        FeatureSet::original(),
        FeatureSet::blast_optimal(),
        FeatureSet::all_schemes(),
    ]
}

/// A Clean-Clean fixture produced by the real blocking workflow on a
/// generated catalog corpus — realistic block-size skew.
fn clean_clean_stats() -> BlockStats {
    let dataset = generate_catalog_dataset(DatasetName::DblpAcm, &CatalogOptions::tiny()).unwrap();
    let csr = standard_blocking_workflow_csr(&dataset, 2);
    BlockStats::from_csr(&csr)
}

/// A hand-built Dirty fixture with overlapping blocks and one high-degree
/// entity, so chunk boundaries are guaranteed to split partner runs.
fn dirty_stats() -> BlockStats {
    let ids = |v: &[u32]| v.iter().copied().map(EntityId).collect::<Vec<_>>();
    let bc = BlockCollection {
        dataset_name: "dirty-fixture".into(),
        kind: DatasetKind::Dirty,
        split: 8,
        num_entities: 8,
        blocks: vec![
            Block::new("a", ids(&[0, 1, 2, 5])),
            Block::new("b", ids(&[0, 2, 3, 4, 6])),
            Block::new("c", ids(&[1, 3, 5, 7])),
            Block::new("d", ids(&[0, 1, 2, 3, 4, 5, 6, 7])),
            Block::new("e", ids(&[4, 6])),
        ],
    };
    BlockStats::new(&bc)
}

fn fixtures() -> [BlockStats; 2] {
    [clean_clean_stats(), dirty_stats()]
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// A deterministic stand-in for a trained model: a fixed weighted fold of
/// the feature vector.  Any f64 divergence between paths shows up here.
fn pseudo_probability(row: &[f64]) -> f64 {
    let mut acc = 0.37;
    for (i, &v) in row.iter().enumerate() {
        acc += v * (0.11 + 0.07 * i as f64);
    }
    (acc.sin() * 0.5 + 0.5).clamp(0.0, 1.0)
}

#[test]
fn chunked_extraction_reproduces_the_materialised_pairs_and_lcp() {
    for stats in fixtures() {
        let cands = CandidatePairs::from_stats(&stats, 2);
        for threads in THREADS {
            let stream = CandidateStream::from_stats(&stats, threads);
            assert_eq!(stream.total_pairs(), cands.len() as u64);
            assert_eq!(stream.lcp_table(), cands.entity_candidate_counts());
            for chunk_pairs in CHUNKS {
                let chunks = stream.chunks(chunk_pairs);
                let mut arena = ChunkArena::new();
                let mut collected = Vec::new();
                for chunk in &chunks {
                    stream.extract_chunk(*chunk, &mut arena);
                    collected.extend_from_slice(arena.pairs());
                }
                assert_eq!(
                    collected,
                    cands.pairs(),
                    "threads={threads} chunk={chunk_pairs}"
                );
            }
            // With single-pair chunks, every multi-partner run is split
            // across chunk boundaries — assert the fixture exercises that.
            assert!(
                stream.lcp_table().iter().any(|&c| c >= 2),
                "fixture must contain an entity whose run spans chunks"
            );
        }
    }
}

#[test]
fn streamed_feature_columns_are_bit_identical_to_the_matrix() {
    let scoreboard = ScoreboardConfig::default();
    for stats in fixtures() {
        let cands = CandidatePairs::from_stats(&stats, 2);
        let context = FeatureContext::new(&stats, &cands);
        for set in feature_sets() {
            let matrix = FeatureMatrix::build_parallel(&context, set);
            for threads in THREADS {
                let stream = CandidateStream::from_stats(&stats, threads);
                let stream_context = StreamFeatureContext::new(&stats, stream.lcp_table());
                for chunk_pairs in CHUNKS {
                    // Reconstruct every feature column through the streamed
                    // pass by projecting one coordinate at a time.
                    for k in 0..set.vector_len() {
                        let column = FeatureMatrix::score_stream_with(
                            &stream_context,
                            &stream,
                            set,
                            threads,
                            &scoreboard,
                            chunk_pairs,
                            |row| row[k],
                        );
                        let expected: Vec<f64> = (0..matrix.num_pairs())
                            .map(|i| matrix.row(PairId::from(i))[k])
                            .collect();
                        assert_eq!(
                            bits(&column),
                            bits(&expected),
                            "set={set} threads={threads} chunk={chunk_pairs} feature={k}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn streamed_probabilities_are_bit_identical_to_batch_scoring() {
    let scoreboard = ScoreboardConfig::default();
    for stats in fixtures() {
        let cands = CandidatePairs::from_stats(&stats, 2);
        let context = FeatureContext::new(&stats, &cands);
        for set in feature_sets() {
            let batch =
                FeatureMatrix::score_rows_with(&context, set, 2, &scoreboard, pseudo_probability);
            for threads in THREADS {
                let stream = CandidateStream::from_stats(&stats, threads);
                let stream_context = StreamFeatureContext::new(&stats, stream.lcp_table());
                for chunk_pairs in CHUNKS {
                    let streamed = FeatureMatrix::score_stream_with(
                        &stream_context,
                        &stream,
                        set,
                        threads,
                        &scoreboard,
                        chunk_pairs,
                        pseudo_probability,
                    );
                    assert_eq!(
                        bits(&streamed),
                        bits(&batch),
                        "set={set} threads={threads} chunk={chunk_pairs}"
                    );

                    // The chunk-walk consumer sees the same pairs and the
                    // same probabilities, in materialised order.
                    let mut walked_pairs = Vec::new();
                    let mut walked_probs = Vec::new();
                    er_features::for_each_scored_chunk(
                        &stream_context,
                        &stream,
                        set,
                        threads,
                        &scoreboard,
                        chunk_pairs,
                        pseudo_probability,
                        |pairs, probs| {
                            walked_pairs.extend_from_slice(pairs);
                            walked_probs.extend_from_slice(probs);
                        },
                    );
                    assert_eq!(walked_pairs, cands.pairs());
                    assert_eq!(bits(&walked_probs), bits(&batch));
                }
            }
        }
    }
}

#[test]
fn pipeline_outcome_is_invariant_under_streamed_scoring() {
    let dataset = generate_catalog_dataset(DatasetName::DblpAcm, &CatalogOptions::tiny()).unwrap();
    let baseline_config = MetaBlockingConfig {
        threads: Some(2),
        ..Default::default()
    };
    let baseline = MetaBlockingPipeline::new(baseline_config)
        .run(&dataset, AlgorithmKind::Blast)
        .unwrap();
    for chunk_pairs in [1usize, 64, DEFAULT_CHUNK_PAIRS] {
        for threads in [1usize, 4] {
            let config = MetaBlockingConfig {
                threads: Some(threads),
                candidate_chunk_pairs: Some(chunk_pairs),
                ..Default::default()
            };
            let streamed = MetaBlockingPipeline::new(config)
                .run(&dataset, AlgorithmKind::Blast)
                .unwrap();
            assert_eq!(
                bits(streamed.probabilities.as_slice()),
                bits(baseline.probabilities.as_slice()),
                "threads={threads} chunk={chunk_pairs}"
            );
            assert_eq!(streamed.retained, baseline.retained);
        }
    }
}
