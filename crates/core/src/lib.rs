//! Generalized Supervised Meta-blocking.
//!
//! This crate implements the paper's primary contribution: casting
//! meta-blocking as a *probabilistic* binary classification task and feeding
//! the per-pair matching probabilities to weight-based and cardinality-based
//! pruning algorithms.
//!
//! * [`scoring`] — probability sources (cached scores or model-on-the-fly);
//! * [`pruning`] — the supervised pruning algorithms WEP, WNP, RWNP, BLAST,
//!   CEP, CNP, RCNP and the BCl baseline of the original Supervised
//!   Meta-blocking paper;
//! * [`pipeline`] — the end-to-end `blocking → features → training → scoring →
//!   pruning` workflow with run-time accounting;
//! * [`streaming`] — the incremental counterpart: bootstrap a classifier on a
//!   seed corpus, ingest live batches through `er_stream`, and progressively
//!   re-rank candidates;
//! * [`durable`] — crash durability for the streaming pipeline: snapshots of
//!   the index + model + schedule plus a mutation write-ahead log
//!   (`persist_to`/`recover_from`);
//! * [`unsupervised`] — classic (single-weight) meta-blocking baselines for
//!   reference.
//!
//! ```
//! use er_datasets::{generate_catalog_dataset, CatalogOptions, DatasetName};
//! use meta_blocking::pipeline::{ClassifierKind, MetaBlockingConfig, MetaBlockingPipeline};
//! use meta_blocking::pruning::AlgorithmKind;
//!
//! let dataset = generate_catalog_dataset(DatasetName::AbtBuy, &CatalogOptions::tiny()).unwrap();
//! let config = MetaBlockingConfig::default();
//! let outcome = MetaBlockingPipeline::new(config)
//!     .run(&dataset, AlgorithmKind::Blast)
//!     .unwrap();
//! assert!(outcome.retained.len() <= outcome.num_candidates);
//! ```

pub mod durable;
pub mod live_view;
pub mod materialize;
pub mod pipeline;
pub mod progressive;
pub mod pruning;
pub mod scoring;
pub mod streaming;
pub mod unsupervised;

pub use durable::DurableStreamingPipeline;
pub use live_view::{LiveView, ViewDelta};
pub use materialize::{materialize_blocks, materialize_blocks_csr, PruningSummary};
pub use pipeline::{ClassifierKind, MetaBlockingConfig, MetaBlockingOutcome, MetaBlockingPipeline};
pub use progressive::{ProgressiveSchedule, StreamingSchedule};
pub use pruning::{AlgorithmKind, CardinalityThresholds, PruningAlgorithm};
pub use scoring::{CachedScores, ModelScorer, ProbabilitySource, VALIDITY_THRESHOLD};
pub use streaming::StreamingPipeline;
