//! Probability sources: how pruning algorithms obtain the matching
//! probability of a candidate pair.
//!
//! The paper's pseudo-code calls `M.getProbability(c_ij)` on every iteration
//! over the candidate set.  Two strategies implement that call here:
//!
//! * [`ModelScorer`] — re-evaluates the classifier on the pair's feature
//!   vector every time, exactly like the pseudo-code;
//! * [`CachedScores`] — evaluates every pair once and stores the probability,
//!   trading memory for speed.
//!
//! Both implement [`ProbabilitySource`], so every pruning algorithm works with
//! either (the ablation bench `ablation_probability_cache` measures the
//! difference).
//!
//! The pipeline's cached path is filled by
//! [`er_features::FeatureMatrix::score_rows_with`] — the fused feature +
//! probability pass running on the scoreboard engine selected by
//! `MetaBlockingConfig::scoreboard` — so the probabilities here are
//! bit-identical for every engine, tile width and thread count.

use er_core::PairId;
use er_features::FeatureMatrix;
use er_learn::ProbabilisticClassifier;
use serde::{Deserialize, Serialize};

/// The validity threshold of Generalized Supervised Meta-blocking: pairs with
/// a matching probability below 0.5 are discarded before pruning.
pub const VALIDITY_THRESHOLD: f64 = 0.5;

/// Provides the matching probability of each candidate pair.
pub trait ProbabilitySource {
    /// Number of candidate pairs covered.
    fn num_pairs(&self) -> usize;

    /// The matching probability of one pair, in `[0, 1]`.
    fn probability(&self, pair: PairId) -> f64;

    /// True if the pair is *valid*, i.e. its probability reaches the 0.5
    /// threshold.
    fn is_valid(&self, pair: PairId) -> bool {
        self.probability(pair) >= VALIDITY_THRESHOLD
    }
}

/// Scores pairs by running the classifier on their feature vectors on demand.
pub struct ModelScorer<'a> {
    model: &'a dyn ProbabilisticClassifier,
    features: &'a FeatureMatrix,
}

impl<'a> ModelScorer<'a> {
    /// Creates a scorer over a trained model and the feature matrix of all
    /// candidate pairs.
    pub fn new(model: &'a dyn ProbabilisticClassifier, features: &'a FeatureMatrix) -> Self {
        ModelScorer { model, features }
    }

    /// Materialises every probability into a [`CachedScores`], scoring rows
    /// in parallel with the workspace's shared chunk-queue driver.
    pub fn cache(&self) -> CachedScores {
        self.cache_with_threads(er_core::available_threads())
    }

    /// Materialises every probability with an explicit worker-thread count.
    ///
    /// The output is deterministic and identical to the sequential pass for
    /// any thread count (each slot is written independently).
    pub fn cache_with_threads(&self, threads: usize) -> CachedScores {
        let num_pairs = self.features.num_pairs();
        let mut probabilities = vec![0.0f64; num_pairs];
        let threads = if num_pairs < 1024 { 1 } else { threads.max(1) };
        er_core::fill_rows_parallel(&mut probabilities, 1, threads, 4096, |first, chunk| {
            for (offset, slot) in chunk.iter_mut().enumerate() {
                *slot = self.probability(PairId::from(first + offset));
            }
        });
        CachedScores::new(probabilities)
    }
}

impl ProbabilitySource for ModelScorer<'_> {
    fn num_pairs(&self) -> usize {
        self.features.num_pairs()
    }

    fn probability(&self, pair: PairId) -> f64 {
        self.model.probability(self.features.row(pair))
    }
}

/// Pre-computed probabilities for every candidate pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CachedScores {
    probabilities: Vec<f64>,
}

impl CachedScores {
    /// Wraps a probability vector (one entry per candidate pair).
    ///
    /// # Panics
    /// Panics if any probability is not a finite number in `[0, 1]`.
    pub fn new(probabilities: Vec<f64>) -> Self {
        assert!(
            probabilities
                .iter()
                .all(|p| p.is_finite() && (0.0..=1.0).contains(p)),
            "probabilities must be finite and within [0, 1]"
        );
        CachedScores { probabilities }
    }

    /// The underlying probability slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.probabilities
    }
}

impl ProbabilitySource for CachedScores {
    fn num_pairs(&self) -> usize {
        self.probabilities.len()
    }

    fn probability(&self, pair: PairId) -> f64 {
        self.probabilities[pair.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_blocking::{Block, BlockCollection, BlockStats, CandidatePairs};
    use er_core::{DatasetKind, EntityId};
    use er_features::{FeatureContext, FeatureSet};

    struct FirstFeature;

    impl ProbabilisticClassifier for FirstFeature {
        fn probability(&self, features: &[f64]) -> f64 {
            features[0].clamp(0.0, 1.0)
        }
    }

    fn fixture() -> (BlockCollection, CandidatePairs) {
        let ids = |v: &[u32]| v.iter().copied().map(EntityId).collect::<Vec<_>>();
        let bc = BlockCollection {
            dataset_name: "t".into(),
            kind: DatasetKind::CleanClean,
            split: 2,
            num_entities: 4,
            blocks: vec![
                Block::new("a", ids(&[0, 2])),
                Block::new("b", ids(&[0, 1, 2, 3])),
            ],
        };
        let cands = CandidatePairs::from_blocks(&bc);
        (bc, cands)
    }

    #[test]
    fn model_scorer_and_cache_agree() {
        let (bc, cands) = fixture();
        let stats = BlockStats::new(&bc);
        let ctx = FeatureContext::new(&stats, &cands);
        let matrix =
            FeatureMatrix::build(&ctx, FeatureSet::from_schemes([er_features::Scheme::Js]));
        let model = FirstFeature;
        let scorer = ModelScorer::new(&model, &matrix);
        let cached = scorer.cache();
        assert_eq!(scorer.num_pairs(), cached.num_pairs());
        for i in 0..scorer.num_pairs() {
            let id = PairId::from(i);
            assert!((scorer.probability(id) - cached.probability(id)).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_cache_matches_sequential_cache() {
        let (bc, cands) = fixture();
        let stats = BlockStats::new(&bc);
        let ctx = FeatureContext::new(&stats, &cands);
        let matrix = FeatureMatrix::build(&ctx, FeatureSet::all_schemes());
        let model = FirstFeature;
        let scorer = ModelScorer::new(&model, &matrix);
        let sequential = scorer.cache_with_threads(1);
        for threads in [2, 4, 8] {
            let parallel = scorer.cache_with_threads(threads);
            assert_eq!(
                parallel.as_slice(),
                sequential.as_slice(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn validity_threshold_is_half() {
        let scores = CachedScores::new(vec![0.49, 0.5, 0.9]);
        assert!(!scores.is_valid(PairId(0)));
        assert!(scores.is_valid(PairId(1)));
        assert!(scores.is_valid(PairId(2)));
    }

    #[test]
    #[should_panic(expected = "probabilities must be finite")]
    fn invalid_probabilities_rejected() {
        let _ = CachedScores::new(vec![1.5]);
    }
}
