//! Supervised Weighted Node Pruning (Algorithm 2 of the paper).
//!
//! WNP replaces WEP's single global threshold with one threshold per entity:
//! the average probability of the entity's valid incident pairs.  A valid
//! pair is retained if it reaches the average of *either* endpoint, which
//! makes WNP the most recall-friendly of the node-centric algorithms.

use er_blocking::CandidatePairs;
use er_core::PairId;

use crate::pruning::{per_entity_average_probabilities, PruningAlgorithm};
use crate::scoring::{ProbabilitySource, VALIDITY_THRESHOLD};

/// Supervised Weighted Node Pruning.
#[derive(Debug, Clone, Copy, Default)]
pub struct Wnp;

impl PruningAlgorithm for Wnp {
    fn name(&self) -> &'static str {
        "WNP"
    }

    fn prune(&self, candidates: &CandidatePairs, scores: &dyn ProbabilitySource) -> Vec<PairId> {
        let averages = per_entity_average_probabilities(candidates, scores);
        candidates
            .iter()
            .filter(|&(id, a, b)| {
                let p = scores.probability(id);
                if p < VALIDITY_THRESHOLD {
                    return false;
                }
                let above_a = averages[a.index()].is_some_and(|avg| avg <= p);
                let above_b = averages[b.index()].is_some_and(|avg| avg <= p);
                above_a || above_b
            })
            .map(|(id, _, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pruning::test_support::{retained_pairs, scored_pairs};

    #[test]
    fn local_thresholds_keep_contextually_strong_pairs() {
        // Entity 0 has pairs with probabilities 0.9 and 0.6 → average 0.75.
        // Entity 1 has a single pair 0.6 → average 0.6.
        // The 0.6 pair (0,4) fails entity 0's average but there is no other
        // endpoint rescue; the 0.6 pair (1,5) passes entity 1's own average.
        let (candidates, scores) = scored_pairs(6, &[(0, 3, 0.9), (0, 4, 0.6), (1, 5, 0.6)]);
        let retained = retained_pairs(&Wnp, &candidates, &scores);
        assert!(retained.contains(&(0, 3)));
        assert!(retained.contains(&(1, 5)));
        // (0,4): entity 0 average 0.75 > 0.6, entity 4 average = 0.6 ≤ 0.6 →
        // rescued by the other endpoint, exactly the "context" behaviour the
        // paper describes.
        assert!(retained.contains(&(0, 4)));
    }

    #[test]
    fn invalid_pairs_are_never_retained() {
        let (candidates, scores) = scored_pairs(4, &[(0, 2, 0.45), (1, 3, 0.7)]);
        let retained = retained_pairs(&Wnp, &candidates, &scores);
        assert_eq!(retained, vec![(1, 3)]);
    }

    #[test]
    fn pair_below_both_averages_is_pruned() {
        // Entity 0: pairs 0.9, 0.95, 0.55 → average 0.8.
        // Entity 5 (the weak pair's other endpoint): pairs 0.55, 0.9 → avg 0.725.
        // The 0.55 pair is below both endpoint averages → pruned.
        let (candidates, scores) =
            scored_pairs(7, &[(0, 3, 0.9), (0, 4, 0.95), (0, 5, 0.55), (1, 5, 0.9)]);
        let retained = retained_pairs(&Wnp, &candidates, &scores);
        assert!(!retained.contains(&(0, 5)));
        assert!(retained.contains(&(0, 3)));
        assert!(retained.contains(&(0, 4)));
        assert!(retained.contains(&(1, 5)));
    }

    #[test]
    fn retains_no_more_than_bcl() {
        use crate::pruning::Bcl;
        let (candidates, scores) = scored_pairs(
            10,
            &[
                (0, 5, 0.55),
                (0, 6, 0.92),
                (1, 6, 0.61),
                (2, 7, 0.97),
                (2, 8, 0.53),
                (3, 9, 0.2),
            ],
        );
        let wnp = Wnp.prune(&candidates, &scores);
        let bcl = Bcl.prune(&candidates, &scores);
        assert!(wnp.len() <= bcl.len());
        assert!(wnp.iter().all(|id| bcl.contains(id)));
    }
}
