//! Supervised Cardinality Edge Pruning (Algorithm 4 of the paper).
//!
//! CEP retains the `K` top-weighted valid pairs globally, with
//! `K = Σ_b |b| / 2` derived from the input block collection.  It bounds the
//! number of retained comparisons explicitly, favouring precision.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use er_blocking::CandidatePairs;
use er_core::PairId;

use crate::pruning::PruningAlgorithm;
use crate::scoring::{ProbabilitySource, VALIDITY_THRESHOLD};

/// A candidate pair with its probability, ordered so that the *lowest*
/// probability sits at the top of a max-heap (i.e. reverse ordering), which
/// lets the heap act as a bounded "keep the best K" structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct HeapEntry {
    pub probability: f64,
    pub pair: PairId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse by probability; ties broken by pair id (larger id = "worse")
        // so the outcome is deterministic.
        other
            .probability
            .partial_cmp(&self.probability)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.pair.cmp(&self.pair).reverse())
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Supervised Cardinality Edge Pruning.
#[derive(Debug, Clone, Copy)]
pub struct Cep {
    k: usize,
}

impl Cep {
    /// Creates CEP retaining at most `k` pairs.
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "CEP requires K >= 1");
        Cep { k }
    }

    /// The maximum number of retained pairs.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl PruningAlgorithm for Cep {
    fn name(&self) -> &'static str {
        "CEP"
    }

    fn prune(&self, candidates: &CandidatePairs, scores: &dyn ProbabilitySource) -> Vec<PairId> {
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(self.k + 1);
        for (id, _, _) in candidates.iter() {
            let p = scores.probability(id);
            if p < VALIDITY_THRESHOLD {
                continue;
            }
            heap.push(HeapEntry {
                probability: p,
                pair: id,
            });
            if heap.len() > self.k {
                heap.pop();
            }
        }
        let mut retained: Vec<PairId> = heap.into_iter().map(|e| e.pair).collect();
        retained.sort_unstable();
        retained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pruning::test_support::{retained_pairs, scored_pairs};

    #[test]
    fn keeps_the_top_k_valid_pairs() {
        let (candidates, scores) = scored_pairs(
            10,
            &[
                (0, 5, 0.9),
                (1, 6, 0.8),
                (2, 7, 0.7),
                (3, 8, 0.6),
                (4, 9, 0.3),
            ],
        );
        let retained = retained_pairs(&Cep::new(2), &candidates, &scores);
        assert_eq!(retained, vec![(0, 5), (1, 6)]);
    }

    #[test]
    fn never_exceeds_k() {
        let triples: Vec<(u32, u32, f64)> = (0..20u32)
            .map(|i| (i, i + 20, 0.5 + f64::from(i) * 0.02))
            .collect();
        let (candidates, scores) = scored_pairs(40, &triples);
        assert_eq!(Cep::new(7).prune(&candidates, &scores).len(), 7);
    }

    #[test]
    fn retains_fewer_when_not_enough_valid_pairs() {
        let (candidates, scores) = scored_pairs(6, &[(0, 3, 0.9), (1, 4, 0.2), (2, 5, 0.1)]);
        assert_eq!(Cep::new(5).prune(&candidates, &scores).len(), 1);
    }

    #[test]
    fn ties_are_resolved_deterministically() {
        let (candidates, scores) =
            scored_pairs(8, &[(0, 4, 0.8), (1, 5, 0.8), (2, 6, 0.8), (3, 7, 0.8)]);
        let a = Cep::new(2).prune(&candidates, &scores);
        let b = Cep::new(2).prune(&candidates, &scores);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "K >= 1")]
    fn zero_k_panics() {
        let _ = Cep::new(0);
    }
}
