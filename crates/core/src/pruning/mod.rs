//! Supervised pruning algorithms.
//!
//! Every algorithm receives the candidate pairs and a [`ProbabilitySource`]
//! and returns the subset of pair ids to retain; a new block is created per
//! retained pair.  Algorithms are grouped into two families:
//!
//! * **weight-based** ([`Wep`], [`Wnp`], [`Rwnp`], [`Blast`], plus the
//!   baseline [`Bcl`]) determine the probability above which a pair is
//!   retained, globally or per entity — these favour recall;
//! * **cardinality-based** ([`Cep`], [`Cnp`], [`Rcnp`]) determine how many
//!   top-weighted pairs to retain, globally or per entity — these favour
//!   precision.

mod bcl;
mod blast;
pub(crate) mod cep;
mod cnp;
mod rcnp;
mod rwnp;
mod wep;
mod wnp;

pub use bcl::Bcl;
pub use blast::Blast;
pub use cep::Cep;
pub use cnp::Cnp;
pub use rcnp::Rcnp;
pub use rwnp::Rwnp;
pub use wep::Wep;
pub use wnp::Wnp;

use er_blocking::{BlockCollection, CandidatePairs, CsrBlockCollection};
use er_core::PairId;
use serde::{Deserialize, Serialize};

use crate::scoring::ProbabilitySource;

/// A supervised pruning algorithm.
pub trait PruningAlgorithm {
    /// Short name used in experiment reports ("BLAST", "RCNP", …).
    fn name(&self) -> &'static str;

    /// Returns the ids of the retained candidate pairs, in ascending order.
    fn prune(&self, candidates: &CandidatePairs, scores: &dyn ProbabilitySource) -> Vec<PairId>;
}

/// The thresholds of the cardinality-based algorithms, derived from the input
/// block collection exactly as in the paper:
/// `K = Σ_b |b| / 2` for CEP and `k = max(1, Σ_b |b| / (|E1| + |E2|))` for
/// CNP/RCNP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CardinalityThresholds {
    /// Global number of retained pairs (CEP's `K`).
    pub global_k: usize,
    /// Per-entity queue size (CNP/RCNP's `k`).
    pub per_entity_k: usize,
}

impl CardinalityThresholds {
    /// Derives both thresholds from a block collection.
    pub fn from_blocks(blocks: &BlockCollection) -> Self {
        Self::from_parts(blocks.sum_block_sizes(), blocks.num_entities)
    }

    /// Derives both thresholds straight from a CSR collection — identical
    /// values to [`CardinalityThresholds::from_blocks`] on the nested view,
    /// without materialising it.
    pub fn from_csr(blocks: &CsrBlockCollection) -> Self {
        Self::from_parts(blocks.sum_block_sizes(), blocks.num_entities)
    }

    fn from_parts(sum_sizes: u64, num_entities: usize) -> Self {
        let global_k = (sum_sizes / 2).max(1) as usize;
        let per_entity_k =
            ((sum_sizes as f64 / num_entities.max(1) as f64).floor() as usize).max(1);
        CardinalityThresholds {
            global_k,
            per_entity_k,
        }
    }
}

/// Identifies one of the supervised pruning algorithms; used by the
/// experiment harness to construct algorithms uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgorithmKind {
    /// The original Supervised Meta-blocking binary classifier (retain every
    /// pair with probability ≥ 0.5).
    Bcl,
    /// Weighted Edge Pruning.
    Wep,
    /// Weighted Node Pruning.
    Wnp,
    /// Reciprocal Weighted Node Pruning.
    Rwnp,
    /// BLAST (per-entity maximum-probability threshold).
    Blast,
    /// Cardinality Edge Pruning.
    Cep,
    /// Cardinality Node Pruning.
    Cnp,
    /// Reciprocal Cardinality Node Pruning.
    Rcnp,
}

impl AlgorithmKind {
    /// The weight-based algorithms compared in Figure 5.
    pub fn weight_based() -> [AlgorithmKind; 5] {
        [
            AlgorithmKind::Bcl,
            AlgorithmKind::Wep,
            AlgorithmKind::Wnp,
            AlgorithmKind::Rwnp,
            AlgorithmKind::Blast,
        ]
    }

    /// The cardinality-based algorithms compared in Figure 6.
    pub fn cardinality_based() -> [AlgorithmKind; 3] {
        [AlgorithmKind::Cep, AlgorithmKind::Cnp, AlgorithmKind::Rcnp]
    }

    /// All algorithms.
    pub fn all() -> [AlgorithmKind; 8] {
        [
            AlgorithmKind::Bcl,
            AlgorithmKind::Wep,
            AlgorithmKind::Wnp,
            AlgorithmKind::Rwnp,
            AlgorithmKind::Blast,
            AlgorithmKind::Cep,
            AlgorithmKind::Cnp,
            AlgorithmKind::Rcnp,
        ]
    }

    /// True for the cardinality-based family.
    pub fn is_cardinality_based(self) -> bool {
        matches!(
            self,
            AlgorithmKind::Cep | AlgorithmKind::Cnp | AlgorithmKind::Rcnp
        )
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmKind::Bcl => "BCl",
            AlgorithmKind::Wep => "WEP",
            AlgorithmKind::Wnp => "WNP",
            AlgorithmKind::Rwnp => "RWNP",
            AlgorithmKind::Blast => "BLAST",
            AlgorithmKind::Cep => "CEP",
            AlgorithmKind::Cnp => "CNP",
            AlgorithmKind::Rcnp => "RCNP",
        }
    }

    /// Builds the algorithm, deriving cardinality thresholds from the block
    /// collection and using the paper's default BLAST ratio of 0.35.
    pub fn build(self, blocks: &BlockCollection) -> Box<dyn PruningAlgorithm> {
        self.build_with(blocks, Blast::DEFAULT_RATIO)
    }

    /// Builds the algorithm with an explicit BLAST pruning ratio.
    pub fn build_with(
        self,
        blocks: &BlockCollection,
        blast_ratio: f64,
    ) -> Box<dyn PruningAlgorithm> {
        self.build_from_thresholds(CardinalityThresholds::from_blocks(blocks), blast_ratio)
    }

    /// Builds the algorithm from a CSR collection with the default BLAST
    /// ratio (no nested view required).
    pub fn build_csr(self, blocks: &CsrBlockCollection) -> Box<dyn PruningAlgorithm> {
        self.build_with_csr(blocks, Blast::DEFAULT_RATIO)
    }

    /// Builds the algorithm from a CSR collection with an explicit BLAST
    /// pruning ratio.
    pub fn build_with_csr(
        self,
        blocks: &CsrBlockCollection,
        blast_ratio: f64,
    ) -> Box<dyn PruningAlgorithm> {
        self.build_from_thresholds(CardinalityThresholds::from_csr(blocks), blast_ratio)
    }

    fn build_from_thresholds(
        self,
        thresholds: CardinalityThresholds,
        blast_ratio: f64,
    ) -> Box<dyn PruningAlgorithm> {
        match self {
            AlgorithmKind::Bcl => Box::new(Bcl),
            AlgorithmKind::Wep => Box::new(Wep),
            AlgorithmKind::Wnp => Box::new(Wnp),
            AlgorithmKind::Rwnp => Box::new(Rwnp),
            AlgorithmKind::Blast => Box::new(Blast::new(blast_ratio)),
            AlgorithmKind::Cep => Box::new(Cep::new(thresholds.global_k)),
            AlgorithmKind::Cnp => Box::new(Cnp::new(thresholds.per_entity_k)),
            AlgorithmKind::Rcnp => Box::new(Rcnp::new(thresholds.per_entity_k)),
        }
    }
}

impl std::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Shared helper: per-entity average probability of the *valid* incident
/// pairs (used by WNP and RWNP).
pub(crate) fn per_entity_average_probabilities(
    candidates: &CandidatePairs,
    scores: &dyn ProbabilitySource,
) -> Vec<Option<f64>> {
    let n = candidates.num_entities();
    let mut sums = vec![0.0f64; n];
    let mut counts = vec![0u32; n];
    for (id, a, b) in candidates.iter() {
        let p = scores.probability(id);
        if p >= crate::scoring::VALIDITY_THRESHOLD {
            sums[a.index()] += p;
            counts[a.index()] += 1;
            sums[b.index()] += p;
            counts[b.index()] += 1;
        }
    }
    sums.into_iter()
        .zip(counts)
        .map(|(sum, count)| {
            if count > 0 {
                Some(sum / f64::from(count))
            } else {
                None
            }
        })
        .collect()
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crate::scoring::CachedScores;
    use er_core::EntityId;

    /// Builds a candidate set and cached scores from explicit `(a, b, p)`
    /// triples.  Pairs are supplied pre-sorted so the ids are predictable.
    pub fn scored_pairs(
        num_entities: usize,
        triples: &[(u32, u32, f64)],
    ) -> (CandidatePairs, CachedScores) {
        let pairs: Vec<(EntityId, EntityId)> = triples
            .iter()
            .map(|&(a, b, _)| (EntityId(a), EntityId(b)))
            .collect();
        let candidates = CandidatePairs::from_pairs(num_entities, pairs.clone());
        // CandidatePairs sorts pairs, so remap the probabilities accordingly.
        let mut probabilities = vec![0.0; triples.len()];
        for &(a, b, p) in triples {
            let key = if a <= b {
                (EntityId(a), EntityId(b))
            } else {
                (EntityId(b), EntityId(a))
            };
            let idx = candidates
                .pairs()
                .binary_search(&key)
                .expect("pair missing after normalization");
            probabilities[idx] = p;
        }
        (candidates, CachedScores::new(probabilities))
    }

    /// Convenience: runs an algorithm and returns the retained pairs as
    /// `(u32, u32)` tuples for easy assertions.
    pub fn retained_pairs(
        algorithm: &dyn PruningAlgorithm,
        candidates: &CandidatePairs,
        scores: &CachedScores,
    ) -> Vec<(u32, u32)> {
        algorithm
            .prune(candidates, scores)
            .into_iter()
            .map(|id| {
                let (a, b) = candidates.pair(id);
                (a.0, b.0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_blocking::Block;
    use er_core::{DatasetKind, EntityId};

    #[test]
    fn thresholds_follow_the_paper_formulas() {
        let ids = |v: &[u32]| v.iter().copied().map(EntityId).collect::<Vec<_>>();
        let blocks = BlockCollection {
            dataset_name: "t".into(),
            kind: DatasetKind::CleanClean,
            split: 3,
            num_entities: 6,
            blocks: vec![
                Block::new("a", ids(&[0, 3])),
                Block::new("b", ids(&[0, 1, 3, 4])),
                Block::new("c", ids(&[2, 5])),
            ],
        };
        let thresholds = CardinalityThresholds::from_blocks(&blocks);
        // Σ|b| = 2 + 4 + 2 = 8 → K = 4, k = max(1, 8/6) = 1.
        assert_eq!(thresholds.global_k, 4);
        assert_eq!(thresholds.per_entity_k, 1);
    }

    #[test]
    fn algorithm_families_are_disjoint_and_complete() {
        let weight: std::collections::HashSet<_> =
            AlgorithmKind::weight_based().into_iter().collect();
        let cardinality: std::collections::HashSet<_> =
            AlgorithmKind::cardinality_based().into_iter().collect();
        assert!(weight.is_disjoint(&cardinality));
        assert_eq!(weight.len() + cardinality.len(), AlgorithmKind::all().len());
        assert!(AlgorithmKind::Rcnp.is_cardinality_based());
        assert!(!AlgorithmKind::Blast.is_cardinality_based());
    }

    #[test]
    fn display_names() {
        assert_eq!(AlgorithmKind::Blast.to_string(), "BLAST");
        assert_eq!(AlgorithmKind::Bcl.to_string(), "BCl");
    }
}
