//! Supervised BLAST (Algorithm 3 of the paper).
//!
//! BLAST keeps, per entity, the maximum probability among its valid incident
//! pairs.  A valid pair `(i, j)` is retained when its probability reaches
//! `r · (max[i] + max[j])`, with the pruning ratio `r = 0.35` by default (the
//! value the paper selects through preliminary experiments).  BLAST is the
//! paper's pick among the weight-based algorithms: it raises precision while
//! *also* slightly raising recall compared with the binary-classifier
//! baseline.

use er_blocking::CandidatePairs;
use er_core::PairId;

use crate::pruning::PruningAlgorithm;
use crate::scoring::{ProbabilitySource, VALIDITY_THRESHOLD};

/// Supervised BLAST.
#[derive(Debug, Clone, Copy)]
pub struct Blast {
    ratio: f64,
}

impl Blast {
    /// The pruning ratio used throughout the paper's evaluation.
    pub const DEFAULT_RATIO: f64 = 0.35;

    /// Creates BLAST with an explicit pruning ratio `r ∈ (0, 1]`.
    ///
    /// # Panics
    /// Panics if the ratio is outside `(0, 1]`.
    pub fn new(ratio: f64) -> Self {
        assert!(
            ratio > 0.0 && ratio <= 1.0,
            "BLAST pruning ratio must be in (0, 1], got {ratio}"
        );
        Blast { ratio }
    }

    /// The configured pruning ratio.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }
}

impl Default for Blast {
    fn default() -> Self {
        Blast::new(Self::DEFAULT_RATIO)
    }
}

impl PruningAlgorithm for Blast {
    fn name(&self) -> &'static str {
        "BLAST"
    }

    fn prune(&self, candidates: &CandidatePairs, scores: &dyn ProbabilitySource) -> Vec<PairId> {
        // First pass: maximum valid probability per entity.
        let mut max = vec![0.0f64; candidates.num_entities()];
        for (id, a, b) in candidates.iter() {
            let p = scores.probability(id);
            if p >= VALIDITY_THRESHOLD {
                if max[a.index()] < p {
                    max[a.index()] = p;
                }
                if max[b.index()] < p {
                    max[b.index()] = p;
                }
            }
        }

        // Second pass: retain valid pairs above the scaled sum of endpoint
        // maxima.
        candidates
            .iter()
            .filter(|&(id, a, b)| {
                let p = scores.probability(id);
                p >= VALIDITY_THRESHOLD && self.ratio * (max[a.index()] + max[b.index()]) <= p
            })
            .map(|(id, _, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pruning::test_support::{retained_pairs, scored_pairs};

    #[test]
    fn default_ratio_matches_the_paper() {
        assert!((Blast::default().ratio() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn retains_pairs_close_to_their_neighbourhood_maxima() {
        // Entity 0's maximum is 0.9.  With r = 0.35 the pair (0,4) with 0.6
        // needs 0.35 * (0.9 + 0.6) = 0.525 ≤ 0.6 → retained; with r = 0.5 it
        // needs 0.75 → pruned.
        let triples = [(0u32, 3u32, 0.9f64), (0, 4, 0.6), (1, 5, 0.55)];
        let (candidates, scores) = scored_pairs(6, &triples);
        let relaxed = retained_pairs(&Blast::new(0.35), &candidates, &scores);
        let strict = retained_pairs(&Blast::new(0.5), &candidates, &scores);
        assert!(relaxed.contains(&(0, 4)));
        assert!(!strict.contains(&(0, 4)));
        assert!(strict.contains(&(0, 3)));
    }

    #[test]
    fn invalid_pairs_are_discarded_even_with_low_maxima() {
        let (candidates, scores) = scored_pairs(4, &[(0, 2, 0.45), (1, 3, 0.8)]);
        let retained = retained_pairs(&Blast::default(), &candidates, &scores);
        assert_eq!(retained, vec![(1, 3)]);
    }

    #[test]
    fn higher_ratio_prunes_at_least_as_much() {
        let triples = [
            (0u32, 5u32, 0.95f64),
            (0, 6, 0.7),
            (1, 6, 0.55),
            (2, 7, 0.8),
            (2, 8, 0.52),
            (3, 9, 0.62),
        ];
        let (candidates, scores) = scored_pairs(10, &triples);
        let low: std::collections::HashSet<_> = Blast::new(0.35)
            .prune(&candidates, &scores)
            .into_iter()
            .collect();
        let high: std::collections::HashSet<_> = Blast::new(0.6)
            .prune(&candidates, &scores)
            .into_iter()
            .collect();
        assert!(high.is_subset(&low));
    }

    #[test]
    fn context_distinguishes_equal_probabilities() {
        // The paper's motivating example: two pairs with the same probability
        // can be kept or pruned depending on their neighbourhood.  Pair (0,4)
        // and pair (2,5) both have probability 0.55; entity 0 also has a
        // strong 0.95 pair (so 0.55 is far below its maximum with r=0.5),
        // while entity 2's only pair is the 0.55 one.
        let triples = [(0u32, 3u32, 0.95f64), (0, 4, 0.55), (2, 5, 0.55)];
        let (candidates, scores) = scored_pairs(6, &triples);
        let retained = retained_pairs(&Blast::new(0.5), &candidates, &scores);
        assert!(!retained.contains(&(0, 4)));
        assert!(retained.contains(&(2, 5)));
    }

    #[test]
    #[should_panic(expected = "pruning ratio")]
    fn invalid_ratio_panics() {
        let _ = Blast::new(0.0);
    }
}
