//! Supervised Reciprocal Weighted Node Pruning.
//!
//! Identical to WNP except that a pair must reach the per-entity average of
//! *both* endpoints, producing a consistently deeper pruning (higher
//! precision, lower recall).

use er_blocking::CandidatePairs;
use er_core::PairId;

use crate::pruning::{per_entity_average_probabilities, PruningAlgorithm};
use crate::scoring::{ProbabilitySource, VALIDITY_THRESHOLD};

/// Supervised Reciprocal Weighted Node Pruning.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rwnp;

impl PruningAlgorithm for Rwnp {
    fn name(&self) -> &'static str {
        "RWNP"
    }

    fn prune(&self, candidates: &CandidatePairs, scores: &dyn ProbabilitySource) -> Vec<PairId> {
        let averages = per_entity_average_probabilities(candidates, scores);
        candidates
            .iter()
            .filter(|&(id, a, b)| {
                let p = scores.probability(id);
                if p < VALIDITY_THRESHOLD {
                    return false;
                }
                let above_a = averages[a.index()].is_some_and(|avg| avg <= p);
                let above_b = averages[b.index()].is_some_and(|avg| avg <= p);
                above_a && above_b
            })
            .map(|(id, _, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pruning::test_support::{retained_pairs, scored_pairs};
    use crate::pruning::Wnp;

    #[test]
    fn requires_both_endpoint_averages() {
        // (0,4) with 0.6: entity 0 average (0.75) rejects it, entity 4 average
        // (0.6) accepts it → WNP keeps it, RWNP prunes it.
        let (candidates, scores) = scored_pairs(6, &[(0, 3, 0.9), (0, 4, 0.6), (1, 5, 0.6)]);
        let wnp = retained_pairs(&Wnp, &candidates, &scores);
        let rwnp = retained_pairs(&Rwnp, &candidates, &scores);
        assert!(wnp.contains(&(0, 4)));
        assert!(!rwnp.contains(&(0, 4)));
        assert!(rwnp.contains(&(0, 3)));
    }

    #[test]
    fn is_a_subset_of_wnp() {
        let (candidates, scores) = scored_pairs(
            12,
            &[
                (0, 6, 0.9),
                (0, 7, 0.55),
                (1, 7, 0.8),
                (2, 8, 0.65),
                (2, 9, 0.72),
                (3, 10, 0.5),
                (4, 11, 0.97),
                (5, 11, 0.61),
            ],
        );
        let wnp: std::collections::HashSet<_> =
            Wnp.prune(&candidates, &scores).into_iter().collect();
        let rwnp: std::collections::HashSet<_> =
            Rwnp.prune(&candidates, &scores).into_iter().collect();
        assert!(rwnp.is_subset(&wnp));
    }

    #[test]
    fn single_pair_entities_keep_their_only_pair() {
        let (candidates, scores) = scored_pairs(4, &[(0, 2, 0.7), (1, 3, 0.51)]);
        let retained = retained_pairs(&Rwnp, &candidates, &scores);
        assert_eq!(retained, vec![(0, 2), (1, 3)]);
    }

    #[test]
    fn invalid_pairs_never_pass() {
        let (candidates, scores) = scored_pairs(4, &[(0, 2, 0.4), (1, 3, 0.3)]);
        assert!(Rwnp.prune(&candidates, &scores).is_empty());
    }
}
