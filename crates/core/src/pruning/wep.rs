//! Supervised Weighted Edge Pruning (Algorithm 1 of the paper).
//!
//! WEP computes the average probability of all *valid* pairs (probability
//! ≥ 0.5) and retains every pair whose probability reaches that global
//! average.

use er_blocking::CandidatePairs;
use er_core::PairId;

use crate::pruning::PruningAlgorithm;
use crate::scoring::{ProbabilitySource, VALIDITY_THRESHOLD};

/// Supervised Weighted Edge Pruning.
#[derive(Debug, Clone, Copy, Default)]
pub struct Wep;

impl PruningAlgorithm for Wep {
    fn name(&self) -> &'static str {
        "WEP"
    }

    fn prune(&self, candidates: &CandidatePairs, scores: &dyn ProbabilitySource) -> Vec<PairId> {
        // First pass: average probability of the valid pairs.
        let mut sum = 0.0f64;
        let mut count = 0u64;
        for (id, _, _) in candidates.iter() {
            let p = scores.probability(id);
            if p >= VALIDITY_THRESHOLD {
                sum += p;
                count += 1;
            }
        }
        if count == 0 {
            return Vec::new();
        }
        let mean = sum / count as f64;

        // Second pass: retain pairs at or above the global average.
        candidates
            .iter()
            .filter(|&(id, _, _)| scores.probability(id) >= mean)
            .map(|(id, _, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pruning::test_support::{retained_pairs, scored_pairs};

    #[test]
    fn retains_pairs_at_or_above_the_valid_average() {
        // Valid pairs: 0.6, 0.8, 1.0 → mean 0.8; the 0.4 pair is ignored by
        // the average and pruned.
        let (candidates, scores) =
            scored_pairs(8, &[(0, 4, 0.6), (1, 5, 0.8), (2, 6, 1.0), (3, 7, 0.4)]);
        let retained = retained_pairs(&Wep, &candidates, &scores);
        assert_eq!(retained, vec![(1, 5), (2, 6)]);
    }

    #[test]
    fn prunes_more_aggressively_than_bcl() {
        use crate::pruning::Bcl;
        let (candidates, scores) = scored_pairs(
            10,
            &[
                (0, 5, 0.55),
                (1, 6, 0.60),
                (2, 7, 0.95),
                (3, 8, 0.90),
                (4, 9, 0.52),
            ],
        );
        let wep = Wep.prune(&candidates, &scores);
        let bcl = Bcl.prune(&candidates, &scores);
        assert!(wep.len() < bcl.len());
        // Everything WEP keeps, BCl keeps too.
        assert!(wep.iter().all(|id| bcl.contains(id)));
    }

    #[test]
    fn no_valid_pairs_returns_empty() {
        let (candidates, scores) = scored_pairs(4, &[(0, 2, 0.3), (1, 3, 0.2)]);
        assert!(Wep.prune(&candidates, &scores).is_empty());
    }

    #[test]
    fn uniform_probabilities_keep_everything_valid() {
        let (candidates, scores) = scored_pairs(6, &[(0, 3, 0.7), (1, 4, 0.7), (2, 5, 0.7)]);
        assert_eq!(Wep.prune(&candidates, &scores).len(), 3);
    }
}
