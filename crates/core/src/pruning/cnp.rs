//! Supervised Cardinality Node Pruning (Algorithm 5 of the paper).
//!
//! CNP keeps, for every entity, the `k` top-weighted valid pairs incident to
//! it, with `k = max(1, Σ_b |b| / (|E1| + |E2|))`.  A pair is retained if it
//! appears in the top-`k` list of *either* endpoint.

use std::collections::BinaryHeap;

use er_blocking::CandidatePairs;
use er_core::PairId;

use crate::pruning::cep::HeapEntry;
use crate::pruning::PruningAlgorithm;
use crate::scoring::{ProbabilitySource, VALIDITY_THRESHOLD};

/// For every pair, in how many of its endpoints' top-`k` queues it appears
/// (0, 1 or 2).  Shared by CNP and RCNP.
pub(crate) fn per_entity_topk_membership(
    candidates: &CandidatePairs,
    scores: &dyn ProbabilitySource,
    k: usize,
) -> Vec<u8> {
    let mut queues: Vec<BinaryHeap<HeapEntry>> =
        vec![BinaryHeap::with_capacity(k + 1); candidates.num_entities()];
    for (id, a, b) in candidates.iter() {
        let p = scores.probability(id);
        if p < VALIDITY_THRESHOLD {
            continue;
        }
        for endpoint in [a, b] {
            let queue = &mut queues[endpoint.index()];
            queue.push(HeapEntry {
                probability: p,
                pair: id,
            });
            if queue.len() > k {
                queue.pop();
            }
        }
    }
    let mut membership = vec![0u8; candidates.len()];
    for queue in queues {
        for entry in queue {
            membership[entry.pair.index()] += 1;
        }
    }
    membership
}

/// Supervised Cardinality Node Pruning.
#[derive(Debug, Clone, Copy)]
pub struct Cnp {
    k: usize,
}

impl Cnp {
    /// Creates CNP with a per-entity queue size of `k`.
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "CNP requires k >= 1");
        Cnp { k }
    }

    /// The per-entity queue size.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl PruningAlgorithm for Cnp {
    fn name(&self) -> &'static str {
        "CNP"
    }

    fn prune(&self, candidates: &CandidatePairs, scores: &dyn ProbabilitySource) -> Vec<PairId> {
        let membership = per_entity_topk_membership(candidates, scores, self.k);
        candidates
            .iter()
            .filter(|&(id, _, _)| membership[id.index()] >= 1)
            .map(|(id, _, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pruning::test_support::{retained_pairs, scored_pairs};

    #[test]
    fn keeps_top_k_per_entity() {
        // Entity 0 has three valid pairs; with k = 1 only its best (0.9)
        // survives via entity 0, but (0,5) survives via entity 5's own queue.
        let (candidates, scores) =
            scored_pairs(6, &[(0, 3, 0.9), (0, 4, 0.7), (0, 5, 0.6), (1, 5, 0.55)]);
        let retained = retained_pairs(&Cnp::new(1), &candidates, &scores);
        assert!(retained.contains(&(0, 3)));
        // (0,4) is entity 4's only pair → kept through entity 4's queue.
        assert!(retained.contains(&(0, 4)));
        // (0,5) is entity 5's best pair → kept through entity 5's queue.
        assert!(retained.contains(&(0, 5)));
        // (1,5) loses in both queues: entity 1's queue holds it, actually it
        // is entity 1's only pair → kept.  All pairs survive except none here;
        // verify at least the counts are consistent with OR semantics.
        assert_eq!(retained.len(), 4);
    }

    #[test]
    fn deeper_pruning_when_entities_are_crowded() {
        // One hub entity (0) with five pairs, all its neighbours have only
        // this pair.  With k = 2, every pair is still retained through the
        // leaf entities' queues (OR semantics), which is why CNP is the
        // recall-friendlier cardinality algorithm.
        let triples: Vec<(u32, u32, f64)> = (1..=5u32)
            .map(|i| (0, i + 5, 0.5 + f64::from(i) * 0.05))
            .collect();
        let (candidates, scores) = scored_pairs(11, &triples);
        let retained = retained_pairs(&Cnp::new(2), &candidates, &scores);
        assert_eq!(retained.len(), 5);
    }

    #[test]
    fn invalid_pairs_are_dropped() {
        let (candidates, scores) = scored_pairs(4, &[(0, 2, 0.3), (1, 3, 0.9)]);
        let retained = retained_pairs(&Cnp::new(3), &candidates, &scores);
        assert_eq!(retained, vec![(1, 3)]);
    }

    #[test]
    fn larger_k_retains_at_least_as_many() {
        let triples: Vec<(u32, u32, f64)> = (0..10u32)
            .flat_map(|i| {
                (0..3u32).map(move |j| (i, 10 + ((i + j) % 10), 0.5 + f64::from(i * 3 + j) * 0.01))
            })
            .collect();
        let (candidates, scores) = scored_pairs(20, &triples);
        let small = Cnp::new(1).prune(&candidates, &scores).len();
        let large = Cnp::new(3).prune(&candidates, &scores).len();
        assert!(small <= large);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_panics() {
        let _ = Cnp::new(0);
    }
}
