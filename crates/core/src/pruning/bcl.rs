//! BCl: the original Supervised Meta-blocking baseline.
//!
//! The original approach trains a binary classifier and keeps every candidate
//! pair classified as positive.  With a probabilistic classifier this is
//! simply "retain every pair whose probability reaches 0.5" — a single,
//! global, learned threshold.  It approximates WEP and serves as the
//! weight-based baseline in every comparison of the paper.

use er_blocking::CandidatePairs;
use er_core::PairId;

use crate::pruning::PruningAlgorithm;
use crate::scoring::ProbabilitySource;

/// The binary-classifier baseline of the original Supervised Meta-blocking.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bcl;

impl PruningAlgorithm for Bcl {
    fn name(&self) -> &'static str {
        "BCl"
    }

    fn prune(&self, candidates: &CandidatePairs, scores: &dyn ProbabilitySource) -> Vec<PairId> {
        candidates
            .iter()
            .filter(|&(id, _, _)| scores.is_valid(id))
            .map(|(id, _, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pruning::test_support::{retained_pairs, scored_pairs};

    #[test]
    fn retains_exactly_the_valid_pairs() {
        let (candidates, scores) =
            scored_pairs(6, &[(0, 3, 0.9), (0, 4, 0.49), (1, 4, 0.5), (2, 5, 0.1)]);
        let retained = retained_pairs(&Bcl, &candidates, &scores);
        assert_eq!(retained, vec![(0, 3), (1, 4)]);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let (candidates, scores) = scored_pairs(2, &[]);
        assert!(Bcl.prune(&candidates, &scores).is_empty());
    }

    #[test]
    fn all_valid_pairs_survive() {
        let (candidates, scores) = scored_pairs(4, &[(0, 2, 0.8), (1, 3, 0.7), (0, 3, 0.6)]);
        assert_eq!(Bcl.prune(&candidates, &scores).len(), 3);
    }
}
