//! Supervised Reciprocal Cardinality Node Pruning.
//!
//! RCNP tightens CNP by requiring that a retained pair appears in the
//! top-`k` queue of *both* endpoints.  It is the paper's selected
//! cardinality-based algorithm: compared with CNP it trades a little recall
//! for a large precision gain.

use er_blocking::CandidatePairs;
use er_core::PairId;

use crate::pruning::cnp::per_entity_topk_membership;
use crate::pruning::PruningAlgorithm;
use crate::scoring::ProbabilitySource;

/// Supervised Reciprocal Cardinality Node Pruning.
#[derive(Debug, Clone, Copy)]
pub struct Rcnp {
    k: usize,
}

impl Rcnp {
    /// Creates RCNP with a per-entity queue size of `k`.
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "RCNP requires k >= 1");
        Rcnp { k }
    }

    /// The per-entity queue size.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl PruningAlgorithm for Rcnp {
    fn name(&self) -> &'static str {
        "RCNP"
    }

    fn prune(&self, candidates: &CandidatePairs, scores: &dyn ProbabilitySource) -> Vec<PairId> {
        let membership = per_entity_topk_membership(candidates, scores, self.k);
        candidates
            .iter()
            .filter(|&(id, _, _)| membership[id.index()] == 2)
            .map(|(id, _, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pruning::test_support::{retained_pairs, scored_pairs};
    use crate::pruning::Cnp;

    #[test]
    fn requires_membership_in_both_queues() {
        // Hub entity 0 with three pairs, k = 1: only the strongest pair (0,3)
        // is in entity 0's queue.  (0,4) and (0,5) are in their leaves' queues
        // only → CNP keeps them, RCNP prunes them.
        let (candidates, scores) = scored_pairs(6, &[(0, 3, 0.9), (0, 4, 0.7), (0, 5, 0.6)]);
        let cnp = retained_pairs(&Cnp::new(1), &candidates, &scores);
        let rcnp = retained_pairs(&Rcnp::new(1), &candidates, &scores);
        assert_eq!(cnp.len(), 3);
        assert_eq!(rcnp, vec![(0, 3)]);
    }

    #[test]
    fn is_a_subset_of_cnp() {
        let triples: Vec<(u32, u32, f64)> = (0..8u32)
            .flat_map(|i| {
                (0..4u32).map(move |j| {
                    (
                        i,
                        8 + ((i + j) % 8),
                        0.5 + f64::from((i * 4 + j) % 17) * 0.02,
                    )
                })
            })
            .collect();
        let (candidates, scores) = scored_pairs(16, &triples);
        let cnp: std::collections::HashSet<_> = Cnp::new(2)
            .prune(&candidates, &scores)
            .into_iter()
            .collect();
        let rcnp: std::collections::HashSet<_> = Rcnp::new(2)
            .prune(&candidates, &scores)
            .into_iter()
            .collect();
        assert!(rcnp.is_subset(&cnp));
        assert!(rcnp.len() < cnp.len());
    }

    #[test]
    fn mutual_best_pairs_survive() {
        // Two disjoint strong pairs: each is the best of both endpoints.
        let (candidates, scores) = scored_pairs(4, &[(0, 2, 0.95), (1, 3, 0.85)]);
        let retained = retained_pairs(&Rcnp::new(1), &candidates, &scores);
        assert_eq!(retained, vec![(0, 2), (1, 3)]);
    }

    #[test]
    fn invalid_pairs_never_survive() {
        let (candidates, scores) = scored_pairs(4, &[(0, 2, 0.49), (1, 3, 0.2)]);
        assert!(Rcnp::new(3).prune(&candidates, &scores).is_empty());
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_panics() {
        let _ = Rcnp::new(0);
    }
}
