//! The end-to-end Generalized Supervised Meta-blocking pipeline.
//!
//! Given a dataset, the pipeline performs the exact workflow of the paper's
//! evaluation:
//!
//! 1. blocking: Token Blocking → Block Purging → Block Filtering;
//! 2. candidate extraction and block statistics;
//! 3. feature generation for the chosen [`FeatureSet`];
//! 4. balanced undersampling of labelled pairs and classifier training;
//! 5. probability scoring of every candidate pair;
//! 6. pruning with the chosen [`AlgorithmKind`].
//!
//! The outcome records the retained pairs, the probabilities and a run-time
//! breakdown matching the paper's definition of `RT` (feature generation +
//! training + scoring + pruning).
//!
//! Feature generation and scoring are **fused**: the pipeline never
//! materialises the full feature matrix.  Training needs feature vectors for
//! only the ~50 sampled pairs (computed directly from the
//! [`FeatureContext`]), and every candidate's probability is produced by
//! [`FeatureMatrix::score_rows`], which streams each pair's fused feature
//! row straight into the classifier.  The `features` timing therefore covers
//! index construction (block statistics, candidate CSR, per-entity tables)
//! and `scoring` covers the fused feature + probability pass.

use std::time::{Duration, Instant};

use er_blocking::{
    standard_blocking_workflow_csr, BlockCollection, BlockStats, CandidatePairs, CandidateStream,
    CsrBlockCollection,
};
use er_core::{Dataset, PairId, Result};
use er_features::{
    FeatureContext, FeatureMatrix, FeatureSet, ScoreboardConfig, StreamFeatureContext,
};
use er_learn::{
    balanced_undersample, Classifier, LinearSvm, LinearSvmConfig, LogisticRegression,
    LogisticRegressionConfig, ProbabilisticClassifier, SavedModel, TrainingSet,
};
use serde::{Deserialize, Serialize};

use crate::pruning::{AlgorithmKind, Blast};
use crate::scoring::CachedScores;

/// Which probabilistic classifier the pipeline trains.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ClassifierKind {
    /// Logistic regression (the Weka baseline of the scalability analysis).
    Logistic(LogisticRegressionConfig),
    /// Linear SVM with Platt scaling (the scikit-learn SVC analogue).
    Svm(LinearSvmConfig),
}

impl Default for ClassifierKind {
    fn default() -> Self {
        ClassifierKind::Logistic(LogisticRegressionConfig::default())
    }
}

impl ClassifierKind {
    /// Trains the classifier on a labelled training set.
    pub fn fit(&self, training: &TrainingSet) -> Result<Box<dyn ProbabilisticClassifier>> {
        Ok(Box::new(self.fit_saved(training)?))
    }

    /// Trains the classifier into its persistable form
    /// ([`er_learn::SavedModel`]) — the variant the streaming pipeline
    /// keeps so snapshots can store the exact trained model.
    pub fn fit_saved(&self, training: &TrainingSet) -> Result<SavedModel> {
        match self {
            ClassifierKind::Logistic(config) => {
                Ok(SavedModel::from(LogisticRegression::fit(config, training)?))
            }
            ClassifierKind::Svm(config) => Ok(SavedModel::from(LinearSvm::fit(config, training)?)),
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            ClassifierKind::Logistic(_) => "LogisticRegression",
            ClassifierKind::Svm(_) => "LinearSVM",
        }
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetaBlockingConfig {
    /// The weighting schemes forming each pair's feature vector.
    pub feature_set: FeatureSet,
    /// Labelled instances per class (the paper's default experiments use 250,
    /// the final configuration only 25).
    pub per_class: usize,
    /// The classifier to train.
    pub classifier: ClassifierKind,
    /// BLAST's pruning ratio.
    pub blast_ratio: f64,
    /// Seed controlling the training-pair sampling.
    pub seed: u64,
    /// Worker threads for the parallel stages (blocking, candidate
    /// extraction, scoring).  `None` uses [`er_core::available_threads`].
    /// Every stage is deterministic, so the thread count never changes the
    /// output.
    pub threads: Option<usize>,
    /// Scoreboard engine configuration for the fused feature/scoring pass
    /// (tile width, dense-remap limit, optional metrics sink).  Output is
    /// bit-identical for every configuration; this only tunes per-worker
    /// scratch locality.
    pub scoreboard: ScoreboardConfig,
    /// When set, the probability pass runs through the streamed candidate
    /// engine ([`er_blocking::CandidateStream`]) in chunks of this many
    /// pairs instead of walking the materialised pair index — per-worker
    /// scratch stays `O(chunk_pairs)` during scoring.  Probabilities are
    /// bit-identical to the materialised pass for every chunk size and
    /// thread count.  `None` (the default) scores through the materialised
    /// index.
    pub candidate_chunk_pairs: Option<usize>,
}

impl Default for MetaBlockingConfig {
    fn default() -> Self {
        MetaBlockingConfig {
            feature_set: FeatureSet::blast_optimal(),
            per_class: 25,
            classifier: ClassifierKind::default(),
            blast_ratio: Blast::DEFAULT_RATIO,
            seed: 0x6d62_0001,
            threads: None,
            scoreboard: ScoreboardConfig::default(),
            candidate_chunk_pairs: None,
        }
    }
}

impl MetaBlockingConfig {
    /// The effective worker-thread count.
    pub fn effective_threads(&self) -> usize {
        self.threads
            .unwrap_or_else(er_core::available_threads)
            .max(1)
    }
}

/// Wall-clock breakdown of one pipeline run.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Timings {
    /// Blocking workflow (not part of the paper's `RT`, reported separately).
    pub blocking: Duration,
    /// Feature-index construction: block statistics, candidate extraction
    /// and the per-entity aggregate tables.
    pub features: Duration,
    /// Training-set assembly and classifier training.
    pub training: Duration,
    /// The fused feature + probability pass over all candidate pairs.
    pub scoring: Duration,
    /// Pruning.
    pub pruning: Duration,
}

impl Timings {
    /// The paper's `RT`: features + training + scoring + pruning.
    pub fn total_rt(&self) -> Duration {
        self.features + self.training + self.scoring + self.pruning
    }
}

/// The result of one pipeline run.
pub struct MetaBlockingOutcome {
    /// Name of the dataset.
    pub dataset_name: String,
    /// The algorithm that produced the outcome.
    pub algorithm: AlgorithmKind,
    /// The blocking output the pipeline operated on, in the CSR
    /// representation the whole pipeline now runs end-to-end (use
    /// [`CsrBlockCollection::to_block_collection`] for the nested view).
    pub blocks: CsrBlockCollection,
    /// The distinct candidate pairs of the block collection.
    pub candidates: CandidatePairs,
    /// Number of candidate pairs (|C|).
    pub num_candidates: usize,
    /// The probability assigned to every candidate pair.
    pub probabilities: CachedScores,
    /// The ids of the retained pairs.
    pub retained: Vec<PairId>,
    /// Run-time breakdown.
    pub timings: Timings,
}

impl MetaBlockingOutcome {
    /// The retained pairs as entity-id tuples.
    pub fn retained_pairs(&self) -> Vec<(er_core::EntityId, er_core::EntityId)> {
        self.retained
            .iter()
            .map(|&id| self.candidates.pair(id))
            .collect()
    }
}

/// The end-to-end pipeline.
#[derive(Debug, Clone)]
pub struct MetaBlockingPipeline {
    config: MetaBlockingConfig,
}

impl MetaBlockingPipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: MetaBlockingConfig) -> Self {
        MetaBlockingPipeline { config }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &MetaBlockingConfig {
        &self.config
    }

    /// Runs the full workflow on a dataset.
    ///
    /// Blocking runs through the parallel CSR engine
    /// ([`standard_blocking_workflow_csr`]); block statistics, candidate
    /// pairs and pruning thresholds are all derived straight from the CSR
    /// representation — the nested [`BlockCollection`] view is never
    /// materialised.
    pub fn run(&self, dataset: &Dataset, algorithm: AlgorithmKind) -> Result<MetaBlockingOutcome> {
        let threads = self.config.effective_threads();
        let start = Instant::now();
        let csr = standard_blocking_workflow_csr(dataset, threads);
        if csr.is_empty() {
            return Err(er_core::Error::EmptyInput(format!(
                "dataset {} produced no blocks",
                dataset.name
            )));
        }
        let blocking_time = start.elapsed();

        let feature_start = Instant::now();
        let stats = BlockStats::from_csr(&csr);
        let candidates = CandidatePairs::try_from_stats(&stats, threads)?;
        self.finish(
            dataset,
            csr,
            stats,
            candidates,
            algorithm,
            blocking_time,
            feature_start,
        )
    }

    /// Runs the workflow on a pre-computed block collection (used when several
    /// experiments share the same blocking output).
    pub fn run_on_blocks(
        &self,
        dataset: &Dataset,
        blocks: BlockCollection,
        algorithm: AlgorithmKind,
        blocking_time: Duration,
    ) -> Result<MetaBlockingOutcome> {
        if blocks.is_empty() {
            return Err(er_core::Error::EmptyInput(format!(
                "dataset {} produced no blocks",
                dataset.name
            )));
        }

        let threads = self.config.effective_threads();
        let feature_start = Instant::now();
        let stats = BlockStats::new(&blocks);
        let candidates =
            CandidateStream::from_blocks_with_stats(&blocks, &stats, threads).collect(threads)?;
        self.finish(
            dataset,
            CsrBlockCollection::from_block_collection(&blocks),
            stats,
            candidates,
            algorithm,
            blocking_time,
            feature_start,
        )
    }

    /// The shared tail of both entry points: feature context, training,
    /// fused scoring and pruning.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        dataset: &Dataset,
        blocks: CsrBlockCollection,
        stats: BlockStats,
        candidates: CandidatePairs,
        algorithm: AlgorithmKind,
        blocking_time: Duration,
        feature_start: Instant,
    ) -> Result<MetaBlockingOutcome> {
        if candidates.is_empty() {
            return Err(er_core::Error::EmptyInput(format!(
                "dataset {} produced no candidate pairs",
                dataset.name
            )));
        }

        let threads = self.config.effective_threads();
        let set = self.config.feature_set;
        let context = FeatureContext::new(&stats, &candidates);
        let feature_time = feature_start.elapsed();

        // Training: feature vectors are needed for the sampled pairs only.
        let training_start = Instant::now();
        let mut rng = er_core::seeded_rng(self.config.seed);
        let sample = balanced_undersample(
            candidates.pairs(),
            &dataset.ground_truth,
            self.config.per_class,
            &mut rng,
        )?;
        let mut training = TrainingSet::new();
        let mut row = vec![0.0f64; set.vector_len()];
        for (&pair_index, &label) in sample.pair_indices.iter().zip(&sample.labels) {
            let (a, b) = candidates.pair(PairId::from(pair_index));
            context.write_pair_features(a, b, set, &mut row);
            training.push(row.clone(), label);
        }
        let model = self.config.classifier.fit(&training)?;
        let training_time = training_start.elapsed();

        // Scoring: fused feature + probability pass, no materialised matrix.
        // With `candidate_chunk_pairs` set, the pass walks the streamed
        // engine in bounded chunks instead of the materialised pair index —
        // same probabilities, bit for bit.
        let scoring_start = Instant::now();
        let probability = |features: &[f64]| model.probability(features).clamp(0.0, 1.0);
        let probabilities = match self.config.candidate_chunk_pairs {
            Some(chunk_pairs) => {
                let stream = CandidateStream::from_stats(&stats, threads);
                let stream_context = StreamFeatureContext::new(&stats, stream.lcp_table());
                FeatureMatrix::score_stream_with(
                    &stream_context,
                    &stream,
                    set,
                    threads,
                    &self.config.scoreboard,
                    chunk_pairs,
                    probability,
                )
            }
            None => FeatureMatrix::score_rows_with(
                &context,
                set,
                threads,
                &self.config.scoreboard,
                probability,
            ),
        };
        let scores = CachedScores::new(probabilities);
        let scoring_time = scoring_start.elapsed();

        // Pruning.
        let pruning_start = Instant::now();
        let pruner = algorithm.build_with_csr(&blocks, self.config.blast_ratio);
        let retained = pruner.prune(&candidates, &scores);
        let pruning_time = pruning_start.elapsed();

        Ok(MetaBlockingOutcome {
            dataset_name: dataset.name.clone(),
            algorithm,
            blocks,
            num_candidates: candidates.len(),
            candidates,
            probabilities: scores,
            retained,
            timings: Timings {
                blocking: blocking_time,
                features: feature_time,
                training: training_time,
                scoring: scoring_time,
                pruning: pruning_time,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_datasets::{generate_catalog_dataset, CatalogOptions, DatasetName};

    fn tiny_dataset() -> Dataset {
        generate_catalog_dataset(DatasetName::AbtBuy, &CatalogOptions::tiny()).unwrap()
    }

    fn config(per_class: usize) -> MetaBlockingConfig {
        MetaBlockingConfig {
            per_class,
            ..Default::default()
        }
    }

    #[test]
    fn pipeline_runs_end_to_end() {
        let dataset = tiny_dataset();
        let outcome = MetaBlockingPipeline::new(config(25))
            .run(&dataset, AlgorithmKind::Blast)
            .unwrap();
        assert!(outcome.num_candidates > 0);
        assert!(!outcome.retained.is_empty());
        assert!(outcome.retained.len() <= outcome.num_candidates);
        assert_eq!(
            outcome.probabilities.as_slice().len(),
            outcome.num_candidates
        );
    }

    #[test]
    fn pruning_reduces_candidates_substantially() {
        let dataset = tiny_dataset();
        let outcome = MetaBlockingPipeline::new(config(25))
            .run(&dataset, AlgorithmKind::Rcnp)
            .unwrap();
        // RCNP must prune a large share of the superfluous comparisons.
        assert!(outcome.retained.len() * 2 < outcome.num_candidates);
    }

    #[test]
    fn svm_and_logistic_pipelines_both_work() {
        let dataset = tiny_dataset();
        let logistic = MetaBlockingPipeline::new(config(25))
            .run(&dataset, AlgorithmKind::Bcl)
            .unwrap();
        let svm_config = MetaBlockingConfig {
            classifier: ClassifierKind::Svm(LinearSvmConfig::default()),
            ..config(25)
        };
        let svm = MetaBlockingPipeline::new(svm_config)
            .run(&dataset, AlgorithmKind::Bcl)
            .unwrap();
        assert!(!logistic.retained.is_empty());
        assert!(!svm.retained.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let dataset = tiny_dataset();
        let a = MetaBlockingPipeline::new(config(25))
            .run(&dataset, AlgorithmKind::Blast)
            .unwrap();
        let b = MetaBlockingPipeline::new(config(25))
            .run(&dataset, AlgorithmKind::Blast)
            .unwrap();
        assert_eq!(a.retained, b.retained);
    }

    #[test]
    fn thread_count_never_changes_the_outcome() {
        let dataset = tiny_dataset();
        let baseline = MetaBlockingPipeline::new(MetaBlockingConfig {
            threads: Some(1),
            ..config(25)
        })
        .run(&dataset, AlgorithmKind::Blast)
        .unwrap();
        for threads in [2, 4] {
            let outcome = MetaBlockingPipeline::new(MetaBlockingConfig {
                threads: Some(threads),
                ..config(25)
            })
            .run(&dataset, AlgorithmKind::Blast)
            .unwrap();
            assert_eq!(
                outcome.blocks.to_block_collection().blocks,
                baseline.blocks.to_block_collection().blocks
            );
            assert_eq!(outcome.retained, baseline.retained, "{threads} threads");
            assert_eq!(
                outcome.probabilities.as_slice(),
                baseline.probabilities.as_slice()
            );
        }
    }

    #[test]
    fn streamed_scoring_mode_never_changes_the_outcome() {
        let dataset = tiny_dataset();
        let materialised = MetaBlockingPipeline::new(config(25))
            .run(&dataset, AlgorithmKind::Blast)
            .unwrap();
        for chunk_pairs in [1usize, 64, 1 << 20] {
            for threads in [1, 4] {
                let streamed = MetaBlockingPipeline::new(MetaBlockingConfig {
                    candidate_chunk_pairs: Some(chunk_pairs),
                    threads: Some(threads),
                    ..config(25)
                })
                .run(&dataset, AlgorithmKind::Blast)
                .unwrap();
                assert_eq!(
                    streamed.probabilities.as_slice(),
                    materialised.probabilities.as_slice(),
                    "chunk_pairs={chunk_pairs} threads={threads}"
                );
                assert_eq!(streamed.retained, materialised.retained);
            }
        }
    }

    #[test]
    fn timings_are_recorded() {
        let dataset = tiny_dataset();
        let outcome = MetaBlockingPipeline::new(config(25))
            .run(&dataset, AlgorithmKind::Wnp)
            .unwrap();
        assert!(outcome.timings.total_rt() > Duration::ZERO);
    }

    #[test]
    fn too_large_training_request_fails_cleanly() {
        let dataset = tiny_dataset();
        let outcome =
            MetaBlockingPipeline::new(config(1_000_000)).run(&dataset, AlgorithmKind::Bcl);
        assert!(outcome.is_err());
    }
}
