//! Durability for the whole streaming pipeline: one snapshot covering the
//! blocking index, the trained model and the progressive schedule, plus the
//! shared mutation WAL.
//!
//! [`DurableStreamingPipeline`] extends the blocker-level durability of
//! `er_stream::persist` one layer up: the WAL still logs raw mutation
//! batches (the pipeline's inputs), but replay drives them through
//! [`StreamingPipeline::ingest`]/[`remove`](StreamingPipeline::remove)/
//! [`update`](StreamingPipeline::update), so the classifier re-scores every
//! replayed delta and the schedule (and cleaned live view, when enabled)
//! re-derives exactly the state of the never-crashed run.
//!
//! What is durable when:
//!
//! * **mutations** are durable the moment the call returns (WAL append +
//!   fsync before the in-memory apply);
//! * **schedule consumption** ([`DurableStreamingPipeline::next_batch`]) is
//!   durable from the last [`checkpoint`](DurableStreamingPipeline::checkpoint)
//!   — pairs drained after it are re-emitted after a crash (at-least-once
//!   delivery).  Checkpoint after draining when exactly-once matters.
//!
//! The cleaned live view is *derived* state: it is rebuilt from the
//! recovered index (a full [`LiveView`] refresh) rather than persisted,
//! which is exact because the view is a pure function of the index.

use std::path::Path;
use std::sync::Arc;

use er_blocking::{CsrBlockCollection, TokenKeys};
use er_core::{EntityId, EntityProfile, FxHashMap, PersistError, PersistResult};
use er_features::FeatureSet;
use er_learn::SavedModel;
use er_persist::{
    decode_snapshot_payload, Decode, Encode, GenerationStore, Reader, RecoveryReport, RetryPolicy,
    StdVfs, Vfs, WalWriter, Writer,
};
use er_stream::persist::{
    encode_ingest_record, encode_remove_record, encode_update_record, replay_wal_records,
    stream_fingerprint, MutationRecord,
};
use er_stream::{DeltaBatch, StreamingIndex, StreamingMetaBlocker};

use crate::live_view::LiveView;
use crate::progressive::StreamingSchedule;
use crate::streaming::{CleanedState, StreamingPipeline};

/// Snapshot payload tag for pipeline snapshots (distinct from the
/// blocker-level tag, so the two kinds of root never mix).
pub const PIPELINE_SNAPSHOT_TAG: u32 = 0x5050_4c31; // "PPL1"

/// The snapshot payload: everything a pipeline needs beyond the WAL.
struct PipelineSnapshot<'a> {
    applied_seq: u64,
    feature_set: FeatureSet,
    index: &'a StreamingIndex,
    model: &'a SavedModel,
    queued: Vec<((EntityId, EntityId), f64)>,
    emitted: Vec<(EntityId, EntityId)>,
    /// `Some(pool)` iff the pipeline runs in cleaned mode.
    pool: Option<Vec<((EntityId, EntityId), f64)>>,
}

impl<'a> PipelineSnapshot<'a> {
    /// Captures the pipeline's persistent state as of `applied_seq`
    /// (shared by the initial `persist_to` snapshot and every checkpoint).
    fn capture(pipeline: &'a StreamingPipeline, applied_seq: u64) -> Self {
        PipelineSnapshot {
            applied_seq,
            feature_set: pipeline.blocker().feature_set(),
            index: pipeline.blocker().index(),
            model: &pipeline.model,
            queued: pipeline.schedule.queued_entries(),
            emitted: pipeline.schedule.emitted_pairs(),
            pool: pipeline.cleaned.as_ref().map(|state| {
                let mut pool: Vec<((EntityId, EntityId), f64)> =
                    state.pool.iter().map(|(&pair, &p)| (pair, p)).collect();
                pool.sort_unstable_by_key(|entry| entry.0);
                pool
            }),
        }
    }
}

impl Encode for PipelineSnapshot<'_> {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(self.applied_seq);
        w.write_u8(self.feature_set.id());
        self.index.encode(w);
        self.model.encode(w);
        self.queued.encode(w);
        self.emitted.encode(w);
        self.pool.encode(w);
    }
}

struct PipelineSnapshotOwned {
    applied_seq: u64,
    feature_set: FeatureSet,
    index: StreamingIndex,
    model: SavedModel,
    queued: Vec<((EntityId, EntityId), f64)>,
    emitted: Vec<(EntityId, EntityId)>,
    pool: Option<Vec<((EntityId, EntityId), f64)>>,
}

impl Decode for PipelineSnapshotOwned {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        let applied_seq = r.read_u64()?;
        let feature_set = FeatureSet::from_id(r.read_u8()?)
            .ok_or_else(|| PersistError::Corrupt("feature-set id 0 is not valid".into()))?;
        Ok(PipelineSnapshotOwned {
            applied_seq,
            feature_set,
            index: StreamingIndex::decode(r)?,
            model: SavedModel::decode(r)?,
            queued: Vec::<((EntityId, EntityId), f64)>::decode(r)?,
            emitted: Vec::<(EntityId, EntityId)>::decode(r)?,
            pool: Option::<Vec<((EntityId, EntityId), f64)>>::decode(r)?,
        })
    }
}

/// A [`StreamingPipeline`] with crash durability (snapshot + WAL).
///
/// Created by [`StreamingPipeline::persist_to`] after bootstrapping, or by
/// [`DurableStreamingPipeline::recover_from`] after a restart.
pub struct DurableStreamingPipeline {
    inner: StreamingPipeline,
    store: GenerationStore,
    wal: WalWriter,
    next_seq: u64,
    /// The report of the recovery that produced this pipeline, if any.
    recovery: Option<RecoveryReport>,
}

impl std::fmt::Debug for DurableStreamingPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableStreamingPipeline")
            .field("dir", &self.store.dir())
            .field("fingerprint", &self.store.fingerprint())
            .field("generation", &self.store.committed())
            .field("next_seq", &self.next_seq)
            .field("num_entities", &self.inner.num_entities())
            .finish_non_exhaustive()
    }
}

impl StreamingPipeline {
    /// Makes the pipeline durable, rooted at `dir`: commits generation 0
    /// (snapshot of index, model, schedule and cleaned pool + fresh
    /// write-ahead log + manifest) on the production filesystem.
    pub fn persist_to(self, dir: impl AsRef<Path>) -> PersistResult<DurableStreamingPipeline> {
        self.persist_to_with(dir, StdVfs::arc(), RetryPolicy::default_write())
    }

    /// [`persist_to`](StreamingPipeline::persist_to) through an explicit
    /// VFS and write-path retry policy (the fault-injection seam).
    pub fn persist_to_with(
        self,
        dir: impl AsRef<Path>,
        vfs: Arc<dyn Vfs>,
        policy: RetryPolicy,
    ) -> PersistResult<DurableStreamingPipeline> {
        let fingerprint = stream_fingerprint(self.blocker().index());
        let (store, wal) = GenerationStore::create(
            vfs,
            policy,
            dir.as_ref(),
            PIPELINE_SNAPSHOT_TAG,
            fingerprint,
            &PipelineSnapshot::capture(&self, 0),
        )?;
        Ok(DurableStreamingPipeline {
            inner: self,
            store,
            wal,
            next_seq: 0,
            recovery: None,
        })
    }
}

impl DurableStreamingPipeline {
    /// Recovers a durable pipeline: loads the newest readable snapshot
    /// generation (index, model, schedule, pool), rebuilds the derived
    /// state (blocker wiring, cleaned live view) and replays the WAL chain
    /// through the scored pipeline paths.  A corrupt newest generation is
    /// quarantined and the previous one used instead.
    pub fn recover_from(dir: impl AsRef<Path>, threads: usize) -> PersistResult<Self> {
        DurableStreamingPipeline::recover_from_with(
            dir,
            StdVfs::arc(),
            RetryPolicy::default_write(),
            threads,
        )
    }

    /// [`recover_from`](DurableStreamingPipeline::recover_from) through an
    /// explicit VFS and write-path retry policy (the fault-injection
    /// seam).
    pub fn recover_from_with(
        dir: impl AsRef<Path>,
        vfs: Arc<dyn Vfs>,
        policy: RetryPolicy,
        threads: usize,
    ) -> PersistResult<Self> {
        let (mut store, recovered) =
            GenerationStore::recover(vfs, policy, dir.as_ref(), PIPELINE_SNAPSHOT_TAG, None)?;
        let snapshot: PipelineSnapshotOwned = decode_snapshot_payload(&recovered.payload)?;
        let fingerprint = stream_fingerprint(&snapshot.index);
        if fingerprint != recovered.fingerprint {
            return Err(PersistError::FingerprintMismatch {
                expected: fingerprint,
                found: recovered.fingerprint,
            });
        }

        let blocker = StreamingMetaBlocker::from_recovered(
            snapshot.index,
            TokenKeys,
            snapshot.feature_set,
            threads,
        )?
        .with_model(Box::new(snapshot.model.clone()));
        let schedule = StreamingSchedule::restore(&snapshot.queued, &snapshot.emitted);
        let cleaned = snapshot.pool.map(|pool| CleanedState {
            view: LiveView::with_default_ratio(blocker.index()),
            pool: pool.into_iter().collect::<FxHashMap<_, _>>(),
        });
        let mut inner = StreamingPipeline {
            blocker,
            schedule,
            cleaned,
            model: snapshot.model,
        };

        // Replay through the *scored* pipeline paths: the re-attached
        // model reproduces every probability, so the schedule and view
        // move exactly as in the original run.
        let next_seq =
            replay_wal_records(
                &recovered.records,
                snapshot.applied_seq,
                |record| match record {
                    MutationRecord::Ingest(profiles) => {
                        inner.ingest(&profiles);
                    }
                    MutationRecord::Remove(ids) => {
                        inner.remove(&ids);
                    }
                    MutationRecord::Update(updates) => {
                        inner.update(&updates);
                    }
                },
            )?;
        let mut report = recovered.report;
        report.records_replayed = (next_seq - snapshot.applied_seq) as usize;
        // A degraded recovery immediately commits a repair checkpoint,
        // restoring full snapshot redundancy.
        let wal = match recovered.wal_valid_len {
            Some(valid_len) if !recovered.degraded => store.open_committed_wal(valid_len)?,
            _ => {
                report.repair_checkpoint = true;
                store.commit(
                    PIPELINE_SNAPSHOT_TAG,
                    &PipelineSnapshot::capture(&inner, next_seq),
                )?
            }
        };
        report.observe();
        Ok(DurableStreamingPipeline {
            inner,
            store,
            wal,
            next_seq,
            recovery: Some(report),
        })
    }

    /// The durability root directory.
    pub fn dir(&self) -> &Path {
        self.store.dir()
    }

    /// The committed snapshot generation.
    pub fn generation(&self) -> u64 {
        self.store.committed()
    }

    /// What the recovery that produced this pipeline had to do — `None`
    /// for a pipeline created fresh by `persist_to`.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Sequence number the next mutation batch will be logged under.
    pub fn wal_sequence(&self) -> u64 {
        self.next_seq
    }

    /// The wrapped pipeline (read-only; mutations must go through the
    /// durable methods so they hit the log).
    pub fn pipeline(&self) -> &StreamingPipeline {
        &self.inner
    }

    /// Detaches the in-memory pipeline, abandoning durability.
    pub fn into_inner(self) -> StreamingPipeline {
        self.inner
    }

    fn append(&mut self, payload: Vec<u8>) -> PersistResult<()> {
        self.wal.append(&payload)?;
        self.next_seq += 1;
        Ok(())
    }

    /// Logs one ingest batch, then applies it through the pipeline.
    pub fn ingest(&mut self, profiles: &[EntityProfile]) -> PersistResult<DeltaBatch> {
        self.append(encode_ingest_record(self.next_seq, profiles))?;
        Ok(self.inner.ingest(profiles))
    }

    /// Logs one removal batch, then applies it through the pipeline.
    ///
    /// # Panics
    /// Same contract as `StreamingPipeline::remove` (unknown, removed or
    /// duplicate ids) — asserted **before** the WAL append, so an invalid
    /// batch never poisons the log.
    pub fn remove(&mut self, ids: &[EntityId]) -> PersistResult<DeltaBatch> {
        self.inner.blocker().assert_remove_batch(ids);
        self.append(encode_remove_record(self.next_seq, ids))?;
        Ok(self.inner.remove(ids))
    }

    /// Logs one update batch, then applies it through the pipeline.
    ///
    /// # Panics
    /// Same contract as `StreamingPipeline::update` — asserted **before**
    /// the WAL append, so an invalid batch never poisons the log.
    pub fn update(&mut self, updates: &[(EntityId, EntityProfile)]) -> PersistResult<DeltaBatch> {
        self.inner.blocker().assert_update_batch(updates);
        self.append(encode_update_record(self.next_seq, updates))?;
        Ok(self.inner.update(updates))
    }

    /// Emits the next up-to-`budget` comparisons (see
    /// [`StreamingPipeline::next_batch`]).  Consumption becomes durable at
    /// the next [`DurableStreamingPipeline::checkpoint`].
    pub fn next_batch(&mut self, budget: usize) -> Vec<((EntityId, EntityId), f64)> {
        self.inner.next_batch(budget)
    }

    /// Commits a new generation: a fresh snapshot (index, model, schedule,
    /// pool), an empty WAL for it, and the manifest flip.
    pub fn checkpoint(&mut self) -> PersistResult<()> {
        assert!(
            !self.inner.blocker().index().has_open_batch(),
            "checkpoint during an unfinished mutation batch"
        );
        self.wal = self.store.commit(
            PIPELINE_SNAPSHOT_TAG,
            &PipelineSnapshot::capture(&self.inner, self.next_seq),
        )?;
        Ok(())
    }

    /// Folds the accumulated deltas into a fresh baseline CSR and makes the
    /// compaction the snapshot/truncation point of the log.
    pub fn compact(&mut self) -> PersistResult<CsrBlockCollection> {
        let csr = self.inner.compact();
        self.checkpoint()?;
        Ok(csr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::MetaBlockingConfig;
    use er_blocking::build_blocks;
    use er_datasets::{generate_catalog_dataset, CatalogOptions, DatasetName};
    use er_stream::dataset_prefix;
    use std::fs;
    use std::path::PathBuf;

    fn scratch(test: &str) -> PathBuf {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp")
            .join(format!("durable-pipeline-{test}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn dataset() -> er_core::Dataset {
        generate_catalog_dataset(DatasetName::DblpAcm, &CatalogOptions::tiny()).unwrap()
    }

    fn config() -> MetaBlockingConfig {
        MetaBlockingConfig {
            per_class: 15,
            threads: Some(2),
            ..Default::default()
        }
    }

    /// Drains a schedule completely, returning the emission sequence.
    fn drain(pipeline: &mut StreamingPipeline) -> Vec<((EntityId, EntityId), f64)> {
        let mut out = Vec::new();
        while let Some(item) = pipeline.schedule.pop() {
            out.push(item);
        }
        out
    }

    #[test]
    fn restarted_pipeline_matches_the_never_crashed_run() {
        let ds = dataset();
        let seed_count = ds.split + (ds.num_entities() - ds.split) / 2;
        let seed = dataset_prefix(&ds, seed_count);

        // Reference: bootstrap + stream + churn without any persistence.
        let mut reference = StreamingPipeline::bootstrap(&config(), &seed).unwrap();
        // Durable twin: crash and recover at every batch boundary.
        let dir = scratch("restart");
        let mut durable = StreamingPipeline::bootstrap(&config(), &seed)
            .unwrap()
            .persist_to(&dir)
            .unwrap();

        let mut cursor = seed_count;
        let mut step = 0usize;
        while cursor < ds.num_entities() {
            let take = 23.min(ds.num_entities() - cursor);
            let chunk = &ds.profiles[cursor..cursor + take];
            cursor += take;
            let expected = reference.ingest(chunk);
            let actual = durable.ingest(chunk).unwrap();
            assert_eq!(actual.pairs, expected.pairs);
            assert_eq!(actual.probabilities, expected.probabilities);
            step += 1;
            if step.is_multiple_of(2) {
                drop(durable);
                durable = DurableStreamingPipeline::recover_from(&dir, 2).unwrap();
            }
        }
        // Churn with a crash in the middle.
        let removed = [EntityId((ds.num_entities() - 1) as u32)];
        reference.remove(&removed);
        durable.remove(&removed).unwrap();
        drop(durable);
        let mut durable = DurableStreamingPipeline::recover_from(&dir, 4).unwrap();
        let updated = vec![(EntityId(ds.split as u32), ds.profiles[0].clone())];
        reference.update(&updated);
        durable.update(&updated).unwrap();

        // The schedules drain identically (same pairs, same probabilities,
        // same order) and the compacted corpora are bit-identical.
        let mut recovered = durable.into_inner();
        assert_eq!(
            recovered.schedule().pending(),
            reference.schedule().pending()
        );
        assert_eq!(drain(&mut recovered), drain(&mut reference));
        assert_eq!(
            recovered.compact().to_block_collection().blocks,
            reference.compact().to_block_collection().blocks
        );
    }

    #[test]
    fn cleaned_pipeline_recovers_view_and_schedule() {
        let ds = dataset();
        let seed_count = ds.split + (ds.num_entities() - ds.split) / 2;
        let seed = dataset_prefix(&ds, seed_count);
        let mut reference = StreamingPipeline::bootstrap_cleaned(&config(), &seed).unwrap();
        let dir = scratch("cleaned");
        let mut durable = StreamingPipeline::bootstrap_cleaned(&config(), &seed)
            .unwrap()
            .persist_to(&dir)
            .unwrap();

        for chunk in ds.profiles[seed_count..].chunks(31) {
            reference.ingest(chunk);
            durable.ingest(chunk).unwrap();
            drop(durable);
            durable = DurableStreamingPipeline::recover_from(&dir, 2).unwrap();
        }
        let removed = [EntityId((ds.num_entities() - 2) as u32)];
        reference.remove(&removed);
        durable.remove(&removed).unwrap();
        drop(durable);
        let durable = DurableStreamingPipeline::recover_from(&dir, 1).unwrap();

        // The recovered live view equals the incrementally maintained one,
        // and both equal the batch cleaned workflow of the survivors.
        let survivors = er_stream::surviving_dataset(&ds, &removed, &[]);
        let cleaned_batch = er_blocking::standard_blocking_workflow_csr(&survivors, 2);
        let stats = er_blocking::BlockStats::from_csr(&cleaned_batch);
        let batch_pairs = er_blocking::CandidatePairs::from_stats(&stats, 2);
        let mut recovered = durable.into_inner();
        assert_eq!(
            recovered.live_view().unwrap().candidate_pairs().as_slice(),
            batch_pairs.pairs()
        );
        assert_eq!(
            recovered.live_view().unwrap().candidate_pairs(),
            reference.live_view().unwrap().candidate_pairs()
        );
        assert_eq!(drain(&mut recovered), drain(&mut reference));
        let batch = build_blocks(&survivors, &TokenKeys, 2);
        assert_eq!(
            recovered.compact().to_block_collection().blocks,
            batch.to_block_collection().blocks
        );
    }

    #[test]
    fn consumption_is_durable_at_checkpoints() {
        let ds = dataset();
        let seed = dataset_prefix(&ds, ds.split + 30);
        let dir = scratch("consumption");
        let mut durable = StreamingPipeline::bootstrap(&config(), &seed)
            .unwrap()
            .persist_to(&dir)
            .unwrap();
        durable
            .ingest(&ds.profiles[durable.pipeline().num_entities()..])
            .unwrap();

        // Drain a prefix, checkpoint, crash: the drained pairs must stay
        // emitted after recovery (no duplicate delivery).
        let drained = durable.next_batch(25);
        assert_eq!(drained.len(), 25);
        durable.checkpoint().unwrap();
        let pending_at_checkpoint = durable.pipeline().schedule().pending();
        drop(durable);
        let mut durable = DurableStreamingPipeline::recover_from(&dir, 2).unwrap();
        assert_eq!(durable.pipeline().schedule().emitted(), 25);
        assert_eq!(
            durable.pipeline().schedule().pending(),
            pending_at_checkpoint
        );
        let rest = durable.next_batch(usize::MAX);
        let mut all: Vec<(EntityId, EntityId)> = drained
            .iter()
            .chain(rest.iter())
            .map(|&(pair, _)| pair)
            .collect();
        let total = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total, "a pair was delivered twice");

        // Without a checkpoint, post-crash delivery is at-least-once: the
        // pairs drained after the last checkpoint come back.
        durable.checkpoint().unwrap();
        let replayed = durable.next_batch(usize::MAX);
        assert!(replayed.is_empty());
    }
}
