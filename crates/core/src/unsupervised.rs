//! Unsupervised meta-blocking baselines.
//!
//! Classic meta-blocking weighs every edge of the blocking graph with a single
//! weighting scheme and prunes with WEP/WNP/CEP/CNP over those raw weights
//! (no classifier, no 0.5 validity threshold).  These baselines are not part
//! of the paper's evaluation tables but are the reference point its
//! introduction argues against, so they are provided for completeness and for
//! the ablation benchmarks.

use std::collections::BinaryHeap;

use er_blocking::CandidatePairs;
use er_core::PairId;
use er_features::{FeatureContext, Scheme};

use crate::pruning::cep::HeapEntry;

/// The unsupervised pruning strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsupervisedAlgorithm {
    /// Keep edges above the global average weight.
    Wep,
    /// Keep edges above the average weight of either endpoint.
    Wnp,
    /// Keep the K top-weighted edges.
    Cep {
        /// Number of retained edges.
        k: usize,
    },
    /// Keep each entity's k top-weighted edges.
    Cnp {
        /// Per-entity number of retained edges.
        k: usize,
    },
}

/// Computes the raw edge weights of every candidate pair under one weighting
/// scheme.
pub fn edge_weights(context: &FeatureContext<'_>, scheme: Scheme) -> Vec<f64> {
    context
        .candidates()
        .iter()
        .map(|(_, a, b)| context.score(scheme, a, b))
        .collect()
}

/// Runs an unsupervised pruning algorithm over raw edge weights.
///
/// # Panics
/// Panics if `weights.len()` differs from the number of candidate pairs.
pub fn prune_unsupervised(
    candidates: &CandidatePairs,
    weights: &[f64],
    algorithm: UnsupervisedAlgorithm,
) -> Vec<PairId> {
    assert_eq!(
        weights.len(),
        candidates.len(),
        "one weight per candidate pair is required"
    );
    match algorithm {
        UnsupervisedAlgorithm::Wep => {
            if weights.is_empty() {
                return Vec::new();
            }
            let mean = weights.iter().sum::<f64>() / weights.len() as f64;
            candidates
                .iter()
                .filter(|&(id, _, _)| weights[id.index()] >= mean)
                .map(|(id, _, _)| id)
                .collect()
        }
        UnsupervisedAlgorithm::Wnp => {
            let n = candidates.num_entities();
            let mut sums = vec![0.0f64; n];
            let mut counts = vec![0u32; n];
            for (id, a, b) in candidates.iter() {
                let w = weights[id.index()];
                sums[a.index()] += w;
                counts[a.index()] += 1;
                sums[b.index()] += w;
                counts[b.index()] += 1;
            }
            let averages: Vec<f64> = sums
                .iter()
                .zip(&counts)
                .map(|(&s, &c)| {
                    if c > 0 {
                        s / f64::from(c)
                    } else {
                        f64::INFINITY
                    }
                })
                .collect();
            candidates
                .iter()
                .filter(|&(id, a, b)| {
                    let w = weights[id.index()];
                    w >= averages[a.index()] || w >= averages[b.index()]
                })
                .map(|(id, _, _)| id)
                .collect()
        }
        UnsupervisedAlgorithm::Cep { k } => {
            let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
            for (id, _, _) in candidates.iter() {
                heap.push(HeapEntry {
                    probability: weights[id.index()],
                    pair: id,
                });
                if heap.len() > k {
                    heap.pop();
                }
            }
            let mut retained: Vec<PairId> = heap.into_iter().map(|e| e.pair).collect();
            retained.sort_unstable();
            retained
        }
        UnsupervisedAlgorithm::Cnp { k } => {
            let mut queues: Vec<BinaryHeap<HeapEntry>> =
                vec![BinaryHeap::with_capacity(k + 1); candidates.num_entities()];
            for (id, a, b) in candidates.iter() {
                let w = weights[id.index()];
                for endpoint in [a, b] {
                    let queue = &mut queues[endpoint.index()];
                    queue.push(HeapEntry {
                        probability: w,
                        pair: id,
                    });
                    if queue.len() > k {
                        queue.pop();
                    }
                }
            }
            let mut keep = vec![false; candidates.len()];
            for queue in queues {
                for entry in queue {
                    keep[entry.pair.index()] = true;
                }
            }
            candidates
                .iter()
                .filter(|&(id, _, _)| keep[id.index()])
                .map(|(id, _, _)| id)
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_blocking::{Block, BlockCollection, BlockStats};
    use er_core::{DatasetKind, EntityId};

    fn fixture() -> BlockCollection {
        let ids = |v: &[u32]| v.iter().copied().map(EntityId).collect::<Vec<_>>();
        BlockCollection {
            dataset_name: "t".into(),
            kind: DatasetKind::CleanClean,
            split: 3,
            num_entities: 6,
            blocks: vec![
                Block::new("a", ids(&[0, 3])),
                Block::new("b", ids(&[0, 1, 3, 4])),
                Block::new("c", ids(&[1, 4])),
                Block::new("d", ids(&[2, 5])),
                Block::new("e", ids(&[0, 1, 2, 3, 4, 5])),
            ],
        }
    }

    #[test]
    fn edge_weights_cover_all_pairs() {
        let bc = fixture();
        let stats = BlockStats::new(&bc);
        let candidates = CandidatePairs::from_blocks(&bc);
        let ctx = FeatureContext::new(&stats, &candidates);
        let weights = edge_weights(&ctx, Scheme::Js);
        assert_eq!(weights.len(), candidates.len());
        assert!(weights.iter().all(|w| *w >= 0.0));
    }

    #[test]
    fn wep_keeps_above_average_edges() {
        let bc = fixture();
        let candidates = CandidatePairs::from_blocks(&bc);
        let weights: Vec<f64> = (0..candidates.len()).map(|i| i as f64).collect();
        let kept = prune_unsupervised(&candidates, &weights, UnsupervisedAlgorithm::Wep);
        assert!(kept.len() < candidates.len());
        assert!(!kept.is_empty());
    }

    #[test]
    fn cep_bounds_the_output() {
        let bc = fixture();
        let candidates = CandidatePairs::from_blocks(&bc);
        let weights: Vec<f64> = (0..candidates.len()).map(|i| i as f64 * 0.1).collect();
        let kept = prune_unsupervised(&candidates, &weights, UnsupervisedAlgorithm::Cep { k: 3 });
        assert_eq!(kept.len(), 3);
    }

    #[test]
    fn cnp_respects_per_entity_budget() {
        let bc = fixture();
        let candidates = CandidatePairs::from_blocks(&bc);
        let weights: Vec<f64> = (0..candidates.len()).map(|i| 1.0 + i as f64).collect();
        let kept = prune_unsupervised(&candidates, &weights, UnsupervisedAlgorithm::Cnp { k: 1 });
        // Each retained pair must be the top pair of at least one endpoint.
        assert!(!kept.is_empty());
        assert!(kept.len() <= candidates.len());
    }

    #[test]
    fn wnp_is_less_aggressive_than_wep_on_skewed_graphs() {
        let bc = fixture();
        let candidates = CandidatePairs::from_blocks(&bc);
        let weights: Vec<f64> = (0..candidates.len())
            .map(|i| if i % 4 == 0 { 10.0 } else { 1.0 })
            .collect();
        let wep = prune_unsupervised(&candidates, &weights, UnsupervisedAlgorithm::Wep);
        let wnp = prune_unsupervised(&candidates, &weights, UnsupervisedAlgorithm::Wnp);
        assert!(wnp.len() >= wep.len());
    }

    #[test]
    #[should_panic(expected = "one weight per candidate pair")]
    fn mismatched_weights_panic() {
        let bc = fixture();
        let candidates = CandidatePairs::from_blocks(&bc);
        let _ = prune_unsupervised(&candidates, &[1.0], UnsupervisedAlgorithm::Wep);
    }
}
