//! Materialising the pruning output as a new block collection.
//!
//! Both Supervised and Generalized Supervised Meta-blocking define their
//! output as a new block collection `B'` with one block per retained
//! candidate pair; that collection is what a downstream Matching algorithm
//! consumes.  This module builds `B'` and computes the block-collection-level
//! statistics the paper reports (|P_B|, |N_B| and the reduction ratio).

use er_blocking::{Block, BlockCollection, CandidatePairs, CsrBlockCollection};
use er_core::{DatasetKind, GroundTruth, PairId};
use serde::{Deserialize, Serialize};

/// Builds the output block collection `B'`: one two-entity block per retained
/// pair, keyed by the pair's position in the retained list.
pub fn materialize_blocks(
    source: &BlockCollection,
    candidates: &CandidatePairs,
    retained: &[PairId],
) -> BlockCollection {
    materialize_from_shape(
        &source.dataset_name,
        source.kind,
        source.split,
        source.num_entities,
        candidates,
        retained,
    )
}

/// [`materialize_blocks`] for a CSR source collection (the representation
/// the pipeline and the prepared experiment datasets carry end-to-end).
pub fn materialize_blocks_csr(
    source: &CsrBlockCollection,
    candidates: &CandidatePairs,
    retained: &[PairId],
) -> BlockCollection {
    materialize_from_shape(
        &source.dataset_name,
        source.kind,
        source.split,
        source.num_entities,
        candidates,
        retained,
    )
}

fn materialize_from_shape(
    dataset_name: &str,
    kind: DatasetKind,
    split: usize,
    num_entities: usize,
    candidates: &CandidatePairs,
    retained: &[PairId],
) -> BlockCollection {
    let blocks = retained
        .iter()
        .enumerate()
        .map(|(i, &id)| {
            let (a, b) = candidates.pair(id);
            Block::new(format!("pair{i}"), vec![a, b])
        })
        .collect();
    BlockCollection {
        dataset_name: dataset_name.to_string(),
        kind,
        split,
        num_entities,
        blocks,
    }
}

/// The positive/negative pair balance of a candidate set before and after
/// pruning, matching the paper's |P_B| / |N_B| notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruningSummary {
    /// Positive (matching) pairs in the input candidate set, |P_B|.
    pub input_positives: usize,
    /// Negative pairs in the input candidate set, |N_B|.
    pub input_negatives: usize,
    /// Positive pairs retained after pruning, |P_B'|.
    pub retained_positives: usize,
    /// Negative pairs retained after pruning, |N_B'|.
    pub retained_negatives: usize,
}

impl PruningSummary {
    /// Computes the summary for a pruning outcome.
    pub fn new(candidates: &CandidatePairs, retained: &[PairId], truth: &GroundTruth) -> Self {
        let input_positives = candidates.count_positives(truth);
        let input_negatives = candidates.len() - input_positives;
        let retained_positives = retained
            .iter()
            .filter(|&&id| {
                let (a, b) = candidates.pair(id);
                truth.is_match(a, b)
            })
            .count();
        let retained_negatives = retained.len() - retained_positives;
        PruningSummary {
            input_positives,
            input_negatives,
            retained_positives,
            retained_negatives,
        }
    }

    /// The fraction of negative (superfluous) pairs that pruning removed —
    /// the quantity meta-blocking is designed to maximise while keeping the
    /// positives intact.
    pub fn negative_reduction(&self) -> f64 {
        if self.input_negatives == 0 {
            return 0.0;
        }
        1.0 - self.retained_negatives as f64 / self.input_negatives as f64
    }

    /// The fraction of positive pairs that survived pruning.
    pub fn positive_retention(&self) -> f64 {
        if self.input_positives == 0 {
            return 0.0;
        }
        self.retained_positives as f64 / self.input_positives as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::{DatasetKind, EntityId};

    fn fixture() -> (BlockCollection, CandidatePairs, GroundTruth) {
        let source = BlockCollection {
            dataset_name: "t".into(),
            kind: DatasetKind::CleanClean,
            split: 2,
            num_entities: 4,
            blocks: vec![Block::new(
                "b",
                vec![EntityId(0), EntityId(1), EntityId(2), EntityId(3)],
            )],
        };
        let candidates = CandidatePairs::from_blocks(&source);
        let truth = GroundTruth::from_pairs(vec![(EntityId(0), EntityId(2))]);
        (source, candidates, truth)
    }

    #[test]
    fn materialized_collection_has_one_block_per_retained_pair() {
        let (source, candidates, _) = fixture();
        let retained = vec![PairId(0), PairId(2)];
        let output = materialize_blocks(&source, &candidates, &retained);
        assert_eq!(output.num_blocks(), 2);
        assert!(output.blocks.iter().all(|b| b.size() == 2));
        assert_eq!(output.total_comparisons(), 2);
        assert_eq!(output.kind, source.kind);
    }

    #[test]
    fn summary_counts_positives_and_negatives() {
        let (_, candidates, truth) = fixture();
        // Retain the true match and one superfluous pair.
        let match_id = candidates
            .iter()
            .find(|&(_, a, b)| truth.is_match(a, b))
            .map(|(id, _, _)| id)
            .unwrap();
        let non_match_id = candidates
            .iter()
            .find(|&(_, a, b)| !truth.is_match(a, b))
            .map(|(id, _, _)| id)
            .unwrap();
        let summary = PruningSummary::new(&candidates, &[match_id, non_match_id], &truth);
        assert_eq!(summary.input_positives, 1);
        assert_eq!(summary.input_negatives, 3);
        assert_eq!(summary.retained_positives, 1);
        assert_eq!(summary.retained_negatives, 1);
        assert!((summary.positive_retention() - 1.0).abs() < 1e-12);
        assert!((summary.negative_reduction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_retention_reduces_everything() {
        let (_, candidates, truth) = fixture();
        let summary = PruningSummary::new(&candidates, &[], &truth);
        assert_eq!(summary.retained_positives, 0);
        assert!((summary.negative_reduction() - 1.0).abs() < 1e-12);
        assert_eq!(summary.positive_retention(), 0.0);
    }
}
