//! A purging/filtering-aware live view over the streaming index.
//!
//! The raw streaming emission ranks Token Blocking candidates; the batch
//! pipeline, however, cleans its blocks first — Block Purging drops
//! stop-word blocks (more than half the corpus) and Block Filtering removes
//! every entity from its largest 20% of blocks.  [`LiveView`] maintains the
//! **cleaned** candidate set incrementally so that a streaming consumer
//! ranks exactly the pairs the batch `standard_blocking_workflow` would
//! produce for the current surviving corpus:
//!
//! * per key, a *cleaned-survivor* flag (`live ∧ |b| ≤ purging_limit`),
//!   with the handful of oversized (purged) blocks tracked separately so a
//!   growing corpus can release them without a full scan;
//! * per entity, its **kept** block set: the `ceil(0.8 · |B_i|)` smallest
//!   cleaned blocks, ties broken in lexicographic key order — exactly the
//!   `block_filtering_csr` rule via the shared
//!   [`er_blocking::filtering_keep_count`] quota;
//! * the cleaned candidate adjacency: `(a, b)` is a cleaned candidate iff
//!   the pair is comparable and some block keeps *both* endpoints (any such
//!   block yields a comparison, so it survives the batch workflow's
//!   post-filtering drop).
//!
//! Each [`LiveView::refresh`] re-derives decisions only for the *dirty*
//! region of a mutation batch: the mutated entities plus the members of
//! every touched block whose change can actually move their kept/cut
//! boundary.  A key that *flips* cleaned status changes every member's
//! quota, so all members are dirtied; but a key that merely changes size
//! while staying cleaned re-ranks a member only if the new size crosses
//! the member's **rank window** — the gap between its largest kept block
//! size `b` and its smallest cut block size `c`.  A kept block staying
//! strictly below `b` (or an entity with no cut blocks at all) and a cut
//! block staying strictly above `c` cannot change the member's kept set:
//! safe size changes preserve `kept ≤ b ≤ c ≤ cut` with the boundary ties
//! still resolved by the unchanged lexicographic order, so the bounds
//! stay conservative between re-ranks.  Everything else is provably
//! unaffected — an entity's kept set depends only on its own blocks'
//! sizes and survivor flags, and a pair's candidacy only on its
//! endpoints' kept sets.
//!
//! Exactness is property-tested against the batch
//! `standard_blocking_workflow_csr` on the fig7/9 catalog workload, through
//! arbitrary insert/remove/update interleavings.

use er_blocking::{filtering_keep_count, purging_limit, DEFAULT_FILTERING_RATIO};
use er_core::{EntityId, FxHashMap, FxHashSet};
use er_stream::StreamingIndex;

/// How the cleaned candidate set moved across one [`LiveView::refresh`].
#[derive(Debug, Default, Clone)]
pub struct ViewDelta {
    /// Pairs that entered the cleaned candidate set, sorted, smaller
    /// entity first.
    pub added: Vec<(EntityId, EntityId)>,
    /// Pairs that left the cleaned candidate set, sorted, smaller entity
    /// first.
    pub removed: Vec<(EntityId, EntityId)>,
}

/// An incrementally maintained cleaned (purged + filtered) candidate view
/// of a [`StreamingIndex`].
#[derive(Debug)]
pub struct LiveView {
    ratio: f64,
    /// Purging threshold at the last refresh (`num_entities / 2`).
    limit: usize,
    /// Per key: survives cleaning right now (`live ∧ size ≤ limit`).
    unpurged: Vec<bool>,
    /// Live keys currently suppressed only by the purging limit; the only
    /// keys a limit increase can release.
    oversized: FxHashSet<u32>,
    /// Per entity: kept key ids (its smallest cleaned blocks), sorted
    /// ascending for membership tests.
    kept: Vec<Vec<u32>>,
    /// Per entity: size of its largest kept block at the last re-rank (0
    /// with no kept blocks) — the lower edge of the rank window.
    bound_kept: Vec<u32>,
    /// Per entity: size of its smallest cut block at the last re-rank
    /// (`u32::MAX` when every cleaned block is kept) — the upper edge of
    /// the rank window.
    bound_cut: Vec<u32>,
    /// Cleaned candidate adjacency (symmetric partner sets).
    partners: Vec<FxHashSet<u32>>,
    /// Current number of cleaned candidate pairs.
    num_pairs: usize,
}

impl LiveView {
    /// Builds the view for the index's current state with the given Block
    /// Filtering ratio (see [`er_blocking::block_filtering_csr`]).
    pub fn new(index: &StreamingIndex, ratio: f64) -> Self {
        assert!(
            ratio > 0.0 && ratio <= 1.0,
            "filtering ratio must be in (0, 1], got {ratio}"
        );
        let mut view = LiveView {
            ratio,
            limit: 0,
            unpurged: Vec::new(),
            oversized: FxHashSet::default(),
            kept: Vec::new(),
            bound_kept: Vec::new(),
            bound_cut: Vec::new(),
            partners: Vec::new(),
            num_pairs: 0,
        };
        let all_keys: Vec<u32> = (0..index.num_keys() as u32).collect();
        let all_entities = (0..index.num_entities()).map(|e| EntityId(e as u32));
        view.refresh(index, &all_keys, all_entities);
        view
    }

    /// Builds the view with the paper's default 0.8 filtering ratio.
    pub fn with_default_ratio(index: &StreamingIndex) -> Self {
        LiveView::new(index, DEFAULT_FILTERING_RATIO)
    }

    /// The Block Filtering ratio the view maintains.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// Number of cleaned candidate pairs currently in the view.
    pub fn len(&self) -> usize {
        self.num_pairs
    }

    /// True if the cleaned candidate set is empty.
    pub fn is_empty(&self) -> bool {
        self.num_pairs == 0
    }

    /// True if the pair is currently a cleaned candidate.
    pub fn contains(&self, pair: (EntityId, EntityId)) -> bool {
        self.partners
            .get(pair.0.index())
            .is_some_and(|set| set.contains(&pair.1 .0))
    }

    /// The cleaned candidate partners of one entity, sorted ascending.
    pub fn partners_of(&self, entity: EntityId) -> Vec<EntityId> {
        let mut partners: Vec<EntityId> = self.partners[entity.index()]
            .iter()
            .map(|&p| EntityId(p))
            .collect();
        partners.sort_unstable();
        partners
    }

    /// The full cleaned candidate set, sorted, smaller entity first.
    pub fn candidate_pairs(&self) -> Vec<(EntityId, EntityId)> {
        let mut pairs = Vec::with_capacity(self.num_pairs);
        for (e, set) in self.partners.iter().enumerate() {
            let a = EntityId(e as u32);
            pairs.extend(set.iter().filter(|&&p| p > a.0).map(|&p| (a, EntityId(p))));
        }
        pairs.sort_unstable();
        pairs
    }

    /// Re-derives the cleaned candidate set for the dirty region of one
    /// mutation batch and returns exactly how the set moved.
    ///
    /// `touched_keys` is the batch's [`er_stream::DeltaBatch::touched_keys`]
    /// journal; `batch` iterates every entity the batch ingested, removed or
    /// updated ([`er_stream::DeltaBatch::batch_entities`]).
    pub fn refresh(
        &mut self,
        index: &StreamingIndex,
        touched_keys: &[u32],
        batch: impl IntoIterator<Item = EntityId>,
    ) -> ViewDelta {
        self.unpurged.resize(index.num_keys(), false);
        let n = index.num_entities();
        self.kept.resize(n, Vec::new());
        self.bound_kept.resize(n, 0);
        self.bound_cut.resize(n, u32::MAX);
        self.partners.resize(n, FxHashSet::default());

        // Keys needing a survivor-flag recheck: the batch's journal plus
        // the oversized blocks a limit increase releases.
        let limit = purging_limit(n);
        let mut dirty_keys: Vec<u32> = touched_keys.to_vec();
        if limit != self.limit {
            self.limit = limit;
            dirty_keys.extend(
                self.oversized
                    .iter()
                    .copied()
                    .filter(|&k| index.block_size(k) <= limit),
            );
            dirty_keys.sort_unstable();
            dirty_keys.dedup();
        }

        // Dirty entities: the batch plus every member of a touched block
        // whose change can move the member's kept/cut boundary.  A key
        // flipping cleaned status changes every member's filtering quota,
        // so all members re-rank; a key that stays cleaned re-ranks only
        // the members whose rank window its new size enters (see the
        // module docs — safe changes provably preserve each member's kept
        // set and keep the stored bounds conservative).  Blocks that stay
        // purged-away are skipped — their sizes never enter anyone's
        // assignment list.
        let mut dirty: FxHashSet<u32> = batch.into_iter().map(|e| e.0).collect();
        for &k in &dirty_keys {
            let was = self.unpurged[k as usize];
            let live = index.is_block_live(k);
            let size = index.block_size(k);
            let now = live && size <= limit;
            self.unpurged[k as usize] = now;
            if live && size > limit {
                self.oversized.insert(k);
            } else {
                self.oversized.remove(&k);
            }
            if was != now {
                dirty.extend(index.members(k).map(|m| m.0));
            } else if was && now {
                let size = size as u32;
                for m in index.members(k) {
                    if dirty.contains(&m.0) {
                        continue;
                    }
                    let e = m.index();
                    let safe = if self.kept[e].binary_search(&k).is_ok() {
                        // Kept and either nothing is cut (quota keeps every
                        // cleaned block) or still strictly inside the kept
                        // range.
                        self.bound_cut[e] == u32::MAX || size < self.bound_kept[e]
                    } else {
                        // Cut and still strictly above the smallest cut
                        // block.
                        size > self.bound_cut[e]
                    };
                    if !safe {
                        dirty.insert(m.0);
                    }
                }
            }
        }
        let mut dirty_list: Vec<u32> = dirty.iter().copied().collect();
        dirty_list.sort_unstable();

        // Pass 1: recompute every dirty entity's kept set (its
        // `ceil(ratio · |B_i|)` smallest cleaned blocks; assignment lists
        // are built in lexicographic key order, so the stable sort by size
        // reproduces the batch tie-break exactly).
        let mut assignments: Vec<(u32, u32)> = Vec::new();
        for &e in &dirty_list {
            let entity = EntityId(e);
            assignments.clear();
            if index.is_alive(entity) {
                for &k in index.keys_of(entity) {
                    if self.unpurged[k as usize] {
                        assignments.push((index.block_size(k) as u32, k));
                    }
                }
            }
            let kept = &mut self.kept[e as usize];
            kept.clear();
            self.bound_kept[e as usize] = 0;
            self.bound_cut[e as usize] = u32::MAX;
            if assignments.is_empty() {
                continue;
            }
            assignments.sort_by_key(|&(size, _)| size);
            let keep = filtering_keep_count(assignments.len(), self.ratio);
            kept.extend(assignments[..keep].iter().map(|&(_, k)| k));
            kept.sort_unstable();
            // The fresh rank window: later refreshes skip re-ranking this
            // entity for size changes that stay strictly inside one side.
            self.bound_kept[e as usize] = assignments[keep - 1].0;
            self.bound_cut[e as usize] = assignments.get(keep).map_or(u32::MAX, |&(size, _)| size);
        }

        // Pass 2: recompute the dirty entities' partner sets against the
        // refreshed kept sets (a pair is a candidate iff some block keeps
        // both endpoints and the pair is comparable).
        let mut fresh_sets: FxHashMap<u32, FxHashSet<u32>> = FxHashMap::default();
        for &e in &dirty_list {
            let entity = EntityId(e);
            let mut fresh: FxHashSet<u32> = FxHashSet::default();
            for &k in &self.kept[e as usize] {
                for p in index.members(k) {
                    if p.0 == e || !index.is_comparable(p, entity) {
                        continue;
                    }
                    if self.kept[p.index()].binary_search(&k).is_ok() {
                        fresh.insert(p.0);
                    }
                }
            }
            fresh_sets.insert(e, fresh);
        }

        // Diff: each changed pair is reported once — from its smaller
        // endpoint when both endpoints are dirty (the predicate is
        // symmetric, so both sides agree).
        let canonical = |a: u32, b: u32| {
            if a < b {
                (EntityId(a), EntityId(b))
            } else {
                (EntityId(b), EntityId(a))
            }
        };
        let mut delta = ViewDelta::default();
        for &e in &dirty_list {
            let fresh = &fresh_sets[&e];
            let old = &self.partners[e as usize];
            for &p in old {
                if !fresh.contains(&p) && (!dirty.contains(&p) || e < p) {
                    delta.removed.push(canonical(e, p));
                }
            }
            for &p in fresh {
                if !old.contains(&p) && (!dirty.contains(&p) || e < p) {
                    delta.added.push(canonical(e, p));
                }
            }
        }
        // Apply: dirty entities take their fresh sets wholesale; the clean
        // endpoint of a changed pair is patched in place.
        for &(a, b) in &delta.removed {
            if !dirty.contains(&a.0) {
                self.partners[a.index()].remove(&b.0);
            }
            if !dirty.contains(&b.0) {
                self.partners[b.index()].remove(&a.0);
            }
        }
        for &(a, b) in &delta.added {
            if !dirty.contains(&a.0) {
                self.partners[a.index()].insert(b.0);
            }
            if !dirty.contains(&b.0) {
                self.partners[b.index()].insert(a.0);
            }
        }
        for &e in &dirty_list {
            self.partners[e as usize] = fresh_sets.remove(&e).unwrap();
        }
        self.num_pairs += delta.added.len();
        self.num_pairs -= delta.removed.len();
        delta.added.sort_unstable();
        delta.removed.sort_unstable();
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_blocking::{standard_blocking_workflow_csr, BlockStats, CandidatePairs, TokenKeys};
    use er_core::{Dataset, FxHashSet};
    use er_datasets::{generate_catalog_dataset, CatalogOptions, DatasetName};
    use er_features::FeatureSet;
    use er_stream::{surviving_dataset, StreamingConfig, StreamingMetaBlocker};

    /// The batch pipeline's post-cleaning candidate set for a dataset.
    fn cleaned_batch_candidates(dataset: &Dataset) -> Vec<(EntityId, EntityId)> {
        let cleaned = standard_blocking_workflow_csr(dataset, 2);
        if cleaned.is_empty() {
            return Vec::new();
        }
        let stats = BlockStats::from_csr(&cleaned);
        CandidatePairs::from_stats(&stats, 2).pairs().to_vec()
    }

    /// The incremental (rank-window) refresh must agree with a full
    /// rebuild of the view at every point — the equivalence oracle for
    /// the boundary-crossing optimisation.
    fn assert_matches_full_refresh(view: &LiveView, index: &er_stream::StreamingIndex) {
        let full = LiveView::new(index, view.ratio());
        assert_eq!(
            view.candidate_pairs(),
            full.candidate_pairs(),
            "rank-window refresh diverged from a full refresh"
        );
    }

    /// Streams the dataset with churn and asserts the view equals the batch
    /// pipeline's cleaned candidate set after every mutation batch.
    fn assert_view_tracks_batch_cleaning(dataset: &Dataset) {
        let config = StreamingConfig {
            feature_set: FeatureSet::blast_optimal(),
            threads: 2,
            ..StreamingConfig::for_dataset(dataset)
        };
        let mut blocker = StreamingMetaBlocker::new(config, TokenKeys);

        // Grow the corpus in uneven chunks, refreshing the view per batch.
        let mut cursor = 0usize;
        let first = blocker.ingest(&dataset.profiles[..dataset.split.max(1)]);
        cursor += dataset.split.max(1);
        let mut view = LiveView::with_default_ratio(blocker.index());
        // (`new` covers the state before this assertion too — it is a full
        // refresh, so no separate bootstrap path needs testing.)
        let _ = first;
        while cursor < dataset.num_entities() {
            let take = 61.min(dataset.num_entities() - cursor);
            let delta = blocker.ingest(&dataset.profiles[cursor..cursor + take]);
            cursor += take;
            view.refresh(blocker.index(), &delta.touched_keys, delta.batch_entities());
            assert_matches_full_refresh(&view, blocker.index());
        }
        let full = er_stream::dataset_prefix(dataset, dataset.num_entities());
        assert_eq!(
            view.candidate_pairs(),
            cleaned_batch_candidates(&full),
            "{}: ingest-only view diverged from the cleaned batch pipeline",
            dataset.name
        );

        // Churn: remove a spread of entities, then re-key a few others with
        // donor profiles, checking the view after each batch.
        let n = dataset.num_entities();
        let removed: Vec<EntityId> = (0..n)
            .step_by((n / 13).max(1))
            .take(9)
            .map(|e| EntityId(e as u32))
            .collect();
        let delta = blocker.remove(&removed);
        view.refresh(blocker.index(), &delta.touched_keys, delta.batch_entities());
        assert_matches_full_refresh(&view, blocker.index());
        let survivors = surviving_dataset(dataset, &removed, &[]);
        assert_eq!(
            view.candidate_pairs(),
            cleaned_batch_candidates(&survivors),
            "{}: view diverged after removals",
            dataset.name
        );

        let dead: FxHashSet<u32> = removed.iter().map(|e| e.0).collect();
        let updated: Vec<(EntityId, er_core::EntityProfile)> = (0..n)
            .step_by((n / 7).max(1))
            .filter(|e| !dead.contains(&(*e as u32)))
            .take(5)
            .map(|e| {
                let donor = (e * 31 + 17) % n;
                (EntityId(e as u32), dataset.profiles[donor].clone())
            })
            .collect();
        let delta = blocker.update(&updated);
        view.refresh(blocker.index(), &delta.touched_keys, delta.batch_entities());
        assert_matches_full_refresh(&view, blocker.index());
        let survivors = surviving_dataset(dataset, &removed, &updated);
        assert_eq!(
            view.candidate_pairs(),
            cleaned_batch_candidates(&survivors),
            "{}: view diverged after updates",
            dataset.name
        );
    }

    #[test]
    fn live_view_matches_the_cleaned_batch_pipeline_on_the_fig7_9_workload() {
        for name in DatasetName::largest_two() {
            let dataset = generate_catalog_dataset(name, &CatalogOptions::tiny()).unwrap();
            assert_view_tracks_batch_cleaning(&dataset);
        }
    }
}
