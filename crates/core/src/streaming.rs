//! The end-to-end streaming pipeline: bootstrap a classifier on a seed
//! corpus, then ingest live batches and progressively re-rank candidates.
//!
//! This is the streaming counterpart of [`crate::pipeline`]: where the batch
//! pipeline runs `blocking → features → training → scoring → pruning` once,
//! the streaming pipeline trains the classifier **once** on a seed corpus
//! and then, per ingested batch, lets `er_stream` update the blocking index
//! incrementally and emit only the delta candidate pairs — already scored
//! with the trained model — which feed a [`StreamingSchedule`] so a matcher
//! can always drain the most promising comparison discovered so far
//! (Progressive ER under a comparison budget).
//!
//! For Clean-Clean ER the seed corpus must contain all of E1 (the entity id
//! space is append-only, so later arrivals belong to E2); any prefix works
//! for Dirty ER.

use er_blocking::{build_blocks, BlockStats, CandidatePairs, CsrBlockCollection, TokenKeys};
use er_core::{Dataset, EntityProfile, PairId, Result};
use er_features::{FeatureContext, FeatureMatrix};
use er_learn::{balanced_undersample, TrainingSet};
use er_stream::{DeltaBatch, StreamingConfig, StreamingMetaBlocker};

use crate::pipeline::MetaBlockingConfig;
use crate::progressive::StreamingSchedule;

/// A bootstrapped streaming meta-blocking pipeline over Token Blocking.
pub struct StreamingPipeline {
    blocker: StreamingMetaBlocker<TokenKeys>,
    schedule: StreamingSchedule,
}

impl StreamingPipeline {
    /// Trains the configured classifier on `seed_corpus` (batch-built, with
    /// the same sampling and feature path as the batch pipeline), seeds the
    /// streaming index with the corpus, and returns a pipeline ready to
    /// ingest the rest of the stream.
    ///
    /// The seed corpus must yield at least one candidate pair per class for
    /// training; `config.per_class` applies as in the batch pipeline.
    pub fn bootstrap(config: &MetaBlockingConfig, seed_corpus: &Dataset) -> Result<Self> {
        let threads = config.effective_threads();
        let set = config.feature_set;

        let csr = build_blocks(seed_corpus, &TokenKeys, threads);
        if csr.is_empty() {
            return Err(er_core::Error::EmptyInput(format!(
                "seed corpus {} produced no blocks",
                seed_corpus.name
            )));
        }
        let stats = BlockStats::from_csr(&csr);
        let candidates = CandidatePairs::from_stats(&stats, threads);
        if candidates.is_empty() {
            return Err(er_core::Error::EmptyInput(format!(
                "seed corpus {} produced no candidate pairs",
                seed_corpus.name
            )));
        }
        let context = FeatureContext::new(&stats, &candidates);
        let mut rng = er_core::seeded_rng(config.seed);
        let sample = balanced_undersample(
            candidates.pairs(),
            &seed_corpus.ground_truth,
            config.per_class,
            &mut rng,
        )?;
        let mut training = TrainingSet::new();
        let mut row = vec![0.0f64; set.vector_len()];
        for (&pair_index, &label) in sample.pair_indices.iter().zip(&sample.labels) {
            let (a, b) = candidates.pair(PairId::from(pair_index));
            context.write_pair_features(a, b, set, &mut row);
            training.push(row.clone(), label);
        }
        let model = config.classifier.fit(&training)?;

        // The seed corpus is already indexed by the batch pass above — score
        // its candidate pairs once through the fused batch path instead of
        // re-deriving every pair's features during seeding.
        let seed_probabilities = FeatureMatrix::score_rows(&context, set, threads, |row| {
            model.probability(row).clamp(0.0, 1.0)
        });

        let stream_config = StreamingConfig {
            dataset_name: seed_corpus.name.clone(),
            kind: seed_corpus.kind,
            split: seed_corpus.split,
            feature_set: set,
            threads,
        };
        let mut pipeline = StreamingPipeline {
            blocker: StreamingMetaBlocker::new(stream_config, TokenKeys).with_model(model),
            schedule: StreamingSchedule::new(),
        };
        // Seed the index through the unscored ingestion path (same postings,
        // statistics and LCP counters; no duplicate feature pass) and seed
        // the schedule with the batch-scored pairs.
        pipeline.blocker.ingest_unscored(&seed_corpus.profiles);
        pipeline
            .schedule
            .absorb(candidates.pairs(), &seed_probabilities);
        Ok(pipeline)
    }

    /// Ingests one batch of new entities: the blocking index updates
    /// incrementally, the delta pairs are scored with the bootstrapped
    /// model, and the progressive schedule re-ranks (absorbing the new
    /// pairs, tombstoning any retractions).  Returns the raw delta.
    pub fn ingest(&mut self, profiles: &[EntityProfile]) -> DeltaBatch {
        let delta = self.blocker.ingest(profiles);
        self.schedule.absorb(&delta.pairs, &delta.probabilities);
        self.schedule.retract(&delta.retracted);
        delta
    }

    /// Emits the next up-to-`budget` comparisons in decreasing probability
    /// order across everything ingested so far.
    pub fn next_batch(
        &mut self,
        budget: usize,
    ) -> Vec<((er_core::EntityId, er_core::EntityId), f64)> {
        self.schedule.next_batch(budget)
    }

    /// The progressive schedule.
    pub fn schedule(&self) -> &StreamingSchedule {
        &self.schedule
    }

    /// The underlying streaming blocker.
    pub fn blocker(&self) -> &StreamingMetaBlocker<TokenKeys> {
        &self.blocker
    }

    /// Number of entities ingested so far (seed included).
    pub fn num_entities(&self) -> usize {
        self.blocker.num_entities()
    }

    /// Folds the accumulated deltas into a fresh baseline CSR and returns
    /// the batch-equivalent view of the whole ingested corpus.
    pub fn compact(&mut self) -> CsrBlockCollection {
        self.blocker.compact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_datasets::{generate_catalog_dataset, CatalogOptions, DatasetName};
    use er_stream::dataset_prefix;

    fn dataset() -> Dataset {
        generate_catalog_dataset(DatasetName::DblpAcm, &CatalogOptions::tiny()).unwrap()
    }

    fn config() -> MetaBlockingConfig {
        MetaBlockingConfig {
            per_class: 15,
            threads: Some(2),
            ..Default::default()
        }
    }

    #[test]
    fn bootstrap_then_stream_covers_the_whole_corpus() {
        let ds = dataset();
        // Seed: all of E1 plus the first half of E2.
        let seed_count = ds.split + (ds.num_entities() - ds.split) / 2;
        let seed = dataset_prefix(&ds, seed_count);
        let mut pipeline = StreamingPipeline::bootstrap(&config(), &seed).unwrap();
        assert_eq!(pipeline.num_entities(), seed_count);
        assert!(pipeline.schedule().pending() > 0);

        // Stream the remaining E2 entities in small batches.
        let mut streamed_pairs = 0usize;
        for chunk in ds.profiles[seed_count..].chunks(7) {
            let delta = pipeline.ingest(chunk);
            assert_eq!(delta.probabilities.len(), delta.len());
            streamed_pairs += delta.len();
        }
        assert_eq!(pipeline.num_entities(), ds.num_entities());
        assert!(streamed_pairs > 0, "streaming found no new candidates");

        // The compacted state equals a one-shot batch build.
        let compacted = pipeline.compact();
        let batch = build_blocks(&ds, &TokenKeys, 2);
        assert_eq!(
            compacted.to_block_collection().blocks,
            batch.to_block_collection().blocks
        );
    }

    #[test]
    fn schedule_drains_in_decreasing_probability() {
        let ds = dataset();
        let seed = dataset_prefix(&ds, ds.split + 20);
        let mut pipeline = StreamingPipeline::bootstrap(&config(), &seed).unwrap();
        pipeline.ingest(&ds.profiles[pipeline.num_entities()..]);
        let mut last = f64::INFINITY;
        let mut drained = 0usize;
        while let Some((_, p)) = pipeline.schedule.pop() {
            assert!(p <= last + 1e-15, "schedule emitted out of order");
            last = p;
            drained += 1;
        }
        assert!(drained > 0);
        assert_eq!(pipeline.schedule().emitted(), drained);
    }
}
