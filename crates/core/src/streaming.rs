//! The end-to-end streaming pipeline: bootstrap a classifier on a seed
//! corpus, then ingest live batches and progressively re-rank candidates.
//!
//! This is the streaming counterpart of [`crate::pipeline`]: where the batch
//! pipeline runs `blocking → features → training → scoring → pruning` once,
//! the streaming pipeline trains the classifier **once** on a seed corpus
//! and then, per ingested batch, lets `er_stream` update the blocking index
//! incrementally and emit only the delta candidate pairs — already scored
//! with the trained model — which feed a [`StreamingSchedule`] so a matcher
//! can always drain the most promising comparison discovered so far
//! (Progressive ER under a comparison budget).
//!
//! For Clean-Clean ER the seed corpus must contain all of E1 (the entity id
//! space is append-only, so later arrivals belong to E2); any prefix works
//! for Dirty ER.

use er_blocking::{
    build_blocks, BlockStats, CandidatePairs, CandidateStream, CsrBlockCollection, TokenKeys,
};
use er_core::{Dataset, EntityId, EntityProfile, FxHashMap, PairId, Result};
use er_features::{for_each_scored_chunk, FeatureContext, StreamFeatureContext};
use er_learn::{balanced_undersample, ProbabilisticClassifier, TrainingSet};
use er_stream::{DeltaBatch, StreamingConfig, StreamingMetaBlocker};

use crate::live_view::LiveView;
use crate::pipeline::MetaBlockingConfig;
use crate::progressive::StreamingSchedule;

/// The cleaned-view machinery of a [`StreamingPipeline`] running in
/// cleaned mode: the incremental purging/filtering view plus a probability
/// pool holding the latest raw score of every candidate pair, so pairs that
/// enter the cleaned view late (e.g. a block released by Block Purging as
/// the corpus grows) can be scheduled without re-scoring.
pub(crate) struct CleanedState {
    pub(crate) view: LiveView,
    pub(crate) pool: FxHashMap<(EntityId, EntityId), f64>,
}

/// A bootstrapped streaming meta-blocking pipeline over Token Blocking.
pub struct StreamingPipeline {
    pub(crate) blocker: StreamingMetaBlocker<TokenKeys>,
    pub(crate) schedule: StreamingSchedule,
    pub(crate) cleaned: Option<CleanedState>,
    /// The trained classifier in its persistable form; a boxed clone is
    /// attached to the blocker for scoring.
    pub(crate) model: er_learn::SavedModel,
}

impl StreamingPipeline {
    /// Trains the configured classifier on `seed_corpus` (batch-built, with
    /// the same sampling and feature path as the batch pipeline), seeds the
    /// streaming index with the corpus, and returns a pipeline ready to
    /// ingest the rest of the stream.  The schedule ranks the **raw** Token
    /// Blocking candidates; use [`StreamingPipeline::bootstrap_cleaned`]
    /// for a schedule restricted to the cleaned (purged + filtered)
    /// candidate set.
    ///
    /// The seed corpus must yield at least one candidate pair per class for
    /// training; `config.per_class` applies as in the batch pipeline.
    pub fn bootstrap(config: &MetaBlockingConfig, seed_corpus: &Dataset) -> Result<Self> {
        Self::bootstrap_impl(config, seed_corpus, false)
    }

    /// [`StreamingPipeline::bootstrap`] in **cleaned mode**: a
    /// [`LiveView`] maintains Block Purging + Block Filtering incrementally
    /// and the schedule only ever ranks pairs of the cleaned candidate set
    /// — the same set the batch pipeline's standard blocking workflow
    /// produces for the surviving corpus.
    pub fn bootstrap_cleaned(config: &MetaBlockingConfig, seed_corpus: &Dataset) -> Result<Self> {
        Self::bootstrap_impl(config, seed_corpus, true)
    }

    fn bootstrap_impl(
        config: &MetaBlockingConfig,
        seed_corpus: &Dataset,
        cleaned: bool,
    ) -> Result<Self> {
        let threads = config.effective_threads();
        let set = config.feature_set;

        let csr = build_blocks(seed_corpus, &TokenKeys, threads);
        if csr.is_empty() {
            return Err(er_core::Error::EmptyInput(format!(
                "seed corpus {} produced no blocks",
                seed_corpus.name
            )));
        }
        let stats = BlockStats::from_csr(&csr);
        let candidates = CandidatePairs::try_from_stats(&stats, threads)?;
        if candidates.is_empty() {
            return Err(er_core::Error::EmptyInput(format!(
                "seed corpus {} produced no candidate pairs",
                seed_corpus.name
            )));
        }
        let context = FeatureContext::new(&stats, &candidates);
        let mut rng = er_core::seeded_rng(config.seed);
        let sample = balanced_undersample(
            candidates.pairs(),
            &seed_corpus.ground_truth,
            config.per_class,
            &mut rng,
        )?;
        let mut training = TrainingSet::new();
        let mut row = vec![0.0f64; set.vector_len()];
        for (&pair_index, &label) in sample.pair_indices.iter().zip(&sample.labels) {
            let (a, b) = candidates.pair(PairId::from(pair_index));
            context.write_pair_features(a, b, set, &mut row);
            training.push(row.clone(), label);
        }
        let model = config.classifier.fit_saved(&training)?;

        let stream_config = StreamingConfig {
            dataset_name: seed_corpus.name.clone(),
            kind: seed_corpus.kind,
            split: seed_corpus.split,
            feature_set: set,
            threads,
            scoreboard: config.scoreboard.clone(),
        };
        let mut blocker =
            StreamingMetaBlocker::new(stream_config, TokenKeys).with_model(Box::new(model.clone()));
        // Seed the index through the unscored ingestion path (same postings,
        // statistics and LCP counters; no duplicate feature pass).
        blocker.ingest_unscored(&seed_corpus.profiles);

        // Seed the schedule through the streamed chunk walk: chunks arrive
        // in ascending pair order, so the absorbed stamps are identical to
        // one global absorb of the batch-scored vector, while only
        // O(threads × chunk) scored pairs are ever in flight.
        let stream = CandidateStream::from_stats(&stats, threads);
        let stream_context = StreamFeatureContext::new(&stats, stream.lcp_table());
        let chunk_pairs = config
            .candidate_chunk_pairs
            .unwrap_or(er_blocking::DEFAULT_CHUNK_PAIRS);
        let probability = |row: &[f64]| model.probability(row).clamp(0.0, 1.0);
        let mut schedule = StreamingSchedule::new();
        let mut cleaned_state = None;
        if cleaned {
            // The view starts from the seeded index; only the cleaned
            // subset of the scored pairs enters the schedule, the rest
            // waits in the pool until cleaning releases it.
            let view = LiveView::with_default_ratio(blocker.index());
            let mut pool: FxHashMap<(EntityId, EntityId), f64> = FxHashMap::default();
            for_each_scored_chunk(
                &stream_context,
                &stream,
                set,
                threads,
                &config.scoreboard,
                chunk_pairs,
                probability,
                |pairs, probabilities| {
                    for (&pair, &probability) in pairs.iter().zip(probabilities) {
                        pool.insert(pair, probability);
                        if view.contains(pair) {
                            schedule.absorb(&[pair], &[probability]);
                        }
                    }
                },
            );
            cleaned_state = Some(CleanedState { view, pool });
        } else {
            for_each_scored_chunk(
                &stream_context,
                &stream,
                set,
                threads,
                &config.scoreboard,
                chunk_pairs,
                probability,
                |pairs, probabilities| schedule.absorb(pairs, probabilities),
            );
        }
        Ok(StreamingPipeline {
            blocker,
            schedule,
            cleaned: cleaned_state,
            model,
        })
    }

    /// True if the pipeline maintains the cleaned (purged + filtered)
    /// candidate view.
    pub fn is_cleaned(&self) -> bool {
        self.cleaned.is_some()
    }

    /// The cleaned live view, when running in cleaned mode.
    pub fn live_view(&self) -> Option<&LiveView> {
        self.cleaned.as_ref().map(|state| &state.view)
    }

    /// Feeds one delta batch into the schedule.  Raw mode absorbs
    /// additions, re-ranks re-scored survivors and retracts retractions
    /// directly; cleaned mode routes everything through the live view so
    /// the schedule only ever holds cleaned candidates.
    pub(crate) fn apply_delta(&mut self, delta: &DeltaBatch) {
        match &mut self.cleaned {
            None => {
                self.schedule.absorb(&delta.pairs, &delta.probabilities);
                self.schedule
                    .absorb(&delta.rescored_pairs, &delta.rescored_probabilities);
                self.schedule.retract(&delta.retracted);
            }
            Some(state) => {
                for (&pair, &probability) in delta.pairs.iter().zip(&delta.probabilities) {
                    state.pool.insert(pair, probability);
                }
                for (&pair, &probability) in delta
                    .rescored_pairs
                    .iter()
                    .zip(&delta.rescored_probabilities)
                {
                    state.pool.insert(pair, probability);
                }
                for pair in delta.retractions() {
                    state.pool.remove(&pair);
                }
                let moved = state.view.refresh(
                    self.blocker.index(),
                    &delta.touched_keys,
                    delta.batch_entities(),
                );
                self.schedule.retract(&moved.removed);
                for &pair in &moved.added {
                    if let Some(&probability) = state.pool.get(&pair) {
                        self.schedule.absorb(&[pair], &[probability]);
                    }
                }
                // Surviving re-scored pairs that are (and stay) cleaned
                // candidates move to their new rank.
                for (&pair, &probability) in delta
                    .rescored_pairs
                    .iter()
                    .zip(&delta.rescored_probabilities)
                {
                    if state.view.contains(pair) {
                        self.schedule.absorb(&[pair], &[probability]);
                    }
                }
            }
        }
    }

    /// Ingests one batch of new entities: the blocking index updates
    /// incrementally, the delta pairs are scored with the bootstrapped
    /// model, and the progressive schedule re-ranks (absorbing the new
    /// pairs, dropping any retractions).  Returns the raw delta.
    pub fn ingest(&mut self, profiles: &[EntityProfile]) -> DeltaBatch {
        let delta = self.blocker.ingest(profiles);
        self.apply_delta(&delta);
        delta
    }

    /// Removes a batch of entities: their pairs leave the schedule, pairs
    /// revived by shrinking capped blocks enter it, and in cleaned mode the
    /// live view re-derives the affected cleaning decisions.
    pub fn remove(&mut self, ids: &[EntityId]) -> DeltaBatch {
        let delta = self.blocker.remove(ids);
        self.apply_delta(&delta);
        delta
    }

    /// Applies in-place profile updates: lost pairs leave the schedule, new
    /// pairs enter it, and surviving pairs of the updated entities are
    /// re-ranked to their fresh probabilities.
    pub fn update(&mut self, updates: &[(EntityId, EntityProfile)]) -> DeltaBatch {
        let delta = self.blocker.update(updates);
        self.apply_delta(&delta);
        delta
    }

    /// Emits the next up-to-`budget` comparisons in decreasing probability
    /// order across everything ingested so far.
    pub fn next_batch(
        &mut self,
        budget: usize,
    ) -> Vec<((er_core::EntityId, er_core::EntityId), f64)> {
        self.schedule.next_batch(budget)
    }

    /// The progressive schedule.
    pub fn schedule(&self) -> &StreamingSchedule {
        &self.schedule
    }

    /// The underlying streaming blocker.
    pub fn blocker(&self) -> &StreamingMetaBlocker<TokenKeys> {
        &self.blocker
    }

    /// Number of entities ingested so far (seed included).
    pub fn num_entities(&self) -> usize {
        self.blocker.num_entities()
    }

    /// Folds the accumulated deltas into a fresh baseline CSR and returns
    /// the batch-equivalent view of the whole ingested corpus.
    pub fn compact(&mut self) -> CsrBlockCollection {
        self.blocker.compact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_datasets::{generate_catalog_dataset, CatalogOptions, DatasetName};
    use er_stream::dataset_prefix;

    fn dataset() -> Dataset {
        generate_catalog_dataset(DatasetName::DblpAcm, &CatalogOptions::tiny()).unwrap()
    }

    fn config() -> MetaBlockingConfig {
        MetaBlockingConfig {
            per_class: 15,
            threads: Some(2),
            ..Default::default()
        }
    }

    #[test]
    fn bootstrap_then_stream_covers_the_whole_corpus() {
        let ds = dataset();
        // Seed: all of E1 plus the first half of E2.
        let seed_count = ds.split + (ds.num_entities() - ds.split) / 2;
        let seed = dataset_prefix(&ds, seed_count);
        let mut pipeline = StreamingPipeline::bootstrap(&config(), &seed).unwrap();
        assert_eq!(pipeline.num_entities(), seed_count);
        assert!(pipeline.schedule().pending() > 0);

        // Stream the remaining E2 entities in small batches.
        let mut streamed_pairs = 0usize;
        for chunk in ds.profiles[seed_count..].chunks(7) {
            let delta = pipeline.ingest(chunk);
            assert_eq!(delta.probabilities.len(), delta.num_additions());
            streamed_pairs += delta.num_additions();
        }
        assert_eq!(pipeline.num_entities(), ds.num_entities());
        assert!(streamed_pairs > 0, "streaming found no new candidates");

        // The compacted state equals a one-shot batch build.
        let compacted = pipeline.compact();
        let batch = build_blocks(&ds, &TokenKeys, 2);
        assert_eq!(
            compacted.to_block_collection().blocks,
            batch.to_block_collection().blocks
        );
    }

    #[test]
    fn churn_keeps_the_schedule_consistent_with_the_corpus() {
        use er_core::FxHashSet;

        let ds = dataset();
        let seed_count = ds.split + (ds.num_entities() - ds.split) / 2;
        let seed = er_stream::dataset_prefix(&ds, seed_count);
        let mut pipeline = StreamingPipeline::bootstrap(&config(), &seed).unwrap();

        // Stream the rest, then churn: remove a spread of E2 entities and
        // re-key a couple of others.
        pipeline.ingest(&ds.profiles[seed_count..]);
        let removed: Vec<er_core::EntityId> = (ds.split..ds.num_entities())
            .step_by(5)
            .take(6)
            .map(|e| er_core::EntityId(e as u32))
            .collect();
        let delta = pipeline.remove(&removed);
        assert_eq!(delta.num_removed, removed.len());
        let dead: FxHashSet<u32> = removed.iter().map(|e| e.0).collect();
        let updated: Vec<(er_core::EntityId, er_core::EntityProfile)> = (ds.split
            ..ds.num_entities())
            .filter(|e| !dead.contains(&(*e as u32)))
            .take(2)
            .map(|e| {
                (
                    er_core::EntityId(e as u32),
                    ds.profiles[e - ds.split].clone(),
                )
            })
            .collect();
        let delta = pipeline.update(&updated);
        assert_eq!(delta.num_updated, updated.len());

        // Whatever the schedule now drains never touches a removed entity.
        while let Some(((a, b), _)) = pipeline.schedule.pop() {
            assert!(!dead.contains(&a.0) && !dead.contains(&b.0));
        }

        // And the compacted state still equals a batch build of the
        // surviving corpus.
        let survivors = er_stream::surviving_dataset(&ds, &removed, &updated);
        let compacted = pipeline.compact();
        let batch = build_blocks(&survivors, &TokenKeys, 2);
        assert_eq!(
            compacted.to_block_collection().blocks,
            batch.to_block_collection().blocks
        );
    }

    #[test]
    fn cleaned_pipeline_schedules_only_cleaned_candidates() {
        let ds = dataset();
        let seed_count = ds.split + (ds.num_entities() - ds.split) / 2;
        let seed = er_stream::dataset_prefix(&ds, seed_count);
        let mut raw = StreamingPipeline::bootstrap(&config(), &seed).unwrap();
        let mut cleaned = StreamingPipeline::bootstrap_cleaned(&config(), &seed).unwrap();
        assert!(cleaned.is_cleaned() && !raw.is_cleaned());
        assert!(cleaned.schedule().pending() <= raw.schedule().pending());

        for chunk in ds.profiles[seed_count..].chunks(17) {
            raw.ingest(chunk);
            cleaned.ingest(chunk);
        }
        let removed = [er_core::EntityId((ds.num_entities() - 1) as u32)];
        raw.remove(&removed);
        cleaned.remove(&removed);

        // The cleaned schedule drains exactly the live view's candidate
        // set, which in turn equals the batch pipeline's cleaned set.
        let expected: Vec<(er_core::EntityId, er_core::EntityId)> =
            cleaned.live_view().unwrap().candidate_pairs();
        let mut drained: Vec<(er_core::EntityId, er_core::EntityId)> = Vec::new();
        while let Some((pair, _)) = cleaned.schedule.pop() {
            drained.push(pair);
        }
        drained.sort_unstable();
        assert_eq!(drained, expected);

        let survivors = er_stream::surviving_dataset(&ds, &removed, &[]);
        let cleaned_batch = er_blocking::standard_blocking_workflow_csr(&survivors, 2);
        let stats = BlockStats::from_csr(&cleaned_batch);
        let batch_pairs = CandidatePairs::from_stats(&stats, 2);
        assert_eq!(expected.as_slice(), batch_pairs.pairs());
    }

    #[test]
    fn schedule_drains_in_decreasing_probability() {
        let ds = dataset();
        let seed = dataset_prefix(&ds, ds.split + 20);
        let mut pipeline = StreamingPipeline::bootstrap(&config(), &seed).unwrap();
        pipeline.ingest(&ds.profiles[pipeline.num_entities()..]);
        let mut last = f64::INFINITY;
        let mut drained = 0usize;
        while let Some((_, p)) = pipeline.schedule.pop() {
            assert!(p <= last + 1e-15, "schedule emitted out of order");
            last = p;
            drained += 1;
        }
        assert!(drained > 0);
        assert_eq!(pipeline.schedule().emitted(), drained);
    }
}
