//! Progressive emission of candidate pairs.
//!
//! The paper's future-work section plans to use Generalized Supervised
//! Meta-blocking for *Progressive Entity Resolution*: instead of handing the
//! matcher one static block collection, candidate pairs are emitted in
//! decreasing order of matching likelihood so that, under a limited
//! comparison budget, as many duplicates as possible are found early.  The
//! probabilistic weights produced by the trained classifier are exactly the
//! ranking signal this needs.
//!
//! Two schedules cover the two ways candidates arrive:
//!
//! * [`ProgressiveSchedule`] ranks a complete, batch-scored candidate set
//!   once;
//! * [`StreamingSchedule`] re-ranks on every ingested batch: delta pairs
//!   from `er_stream::DeltaBatch` are absorbed into a priority queue, so
//!   the matcher always drains the highest-probability pair the stream has
//!   produced so far.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use er_blocking::CandidatePairs;
use er_core::{EntityId, FxHashMap, PairId};

use crate::scoring::ProbabilitySource;

/// An iterator over candidate pairs in decreasing probability order.
#[derive(Debug, Clone)]
pub struct ProgressiveSchedule {
    ordered: Vec<(PairId, f64)>,
    next: usize,
}

impl ProgressiveSchedule {
    /// Ranks every candidate pair by its probability (descending).  Ties are
    /// broken by pair id so the schedule is deterministic.
    pub fn new(candidates: &CandidatePairs, scores: &dyn ProbabilitySource) -> Self {
        let mut ordered: Vec<(PairId, f64)> = candidates
            .iter()
            .map(|(id, _, _)| (id, scores.probability(id)))
            .collect();
        ordered.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        ProgressiveSchedule { ordered, next: 0 }
    }

    /// Ranks only the *valid* pairs (probability ≥ 0.5), matching the
    /// generalized task definition.
    pub fn valid_only(candidates: &CandidatePairs, scores: &dyn ProbabilitySource) -> Self {
        let mut schedule = Self::new(candidates, scores);
        schedule.ordered.retain(|&(id, _)| scores.is_valid(id));
        schedule
    }

    /// Number of pairs remaining in the schedule.
    pub fn remaining(&self) -> usize {
        self.ordered.len() - self.next
    }

    /// Emits the next batch of up to `budget` pairs.
    pub fn next_batch(&mut self, budget: usize) -> &[(PairId, f64)] {
        let start = self.next;
        let end = (start + budget).min(self.ordered.len());
        self.next = end;
        &self.ordered[start..end]
    }

    /// The full ranked list (without consuming the schedule).
    pub fn ranked(&self) -> &[(PairId, f64)] {
        &self.ordered
    }
}

impl Iterator for ProgressiveSchedule {
    type Item = (PairId, f64);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.ordered.get(self.next).copied();
        if item.is_some() {
            self.next += 1;
        }
        item
    }
}

/// A scored pair in the streaming priority queue, ordered by probability
/// descending with ties broken by ascending pair so draining is
/// deterministic.  The stamp identifies the *generation* of the entry: a
/// re-absorbed (re-ranked) pair leaves its old heap entry behind as a stale
/// record that emission skips.
#[derive(Debug, Clone, Copy)]
struct RankedPair {
    probability: f64,
    pair: (EntityId, EntityId),
    stamp: u64,
}

impl Ord for RankedPair {
    fn cmp(&self, other: &Self) -> Ordering {
        // Probabilities are clamped to [0, 1] upstream, so total_cmp is a
        // plain numeric order here; the max-heap pops the largest first.
        self.probability
            .total_cmp(&other.probability)
            .then_with(|| other.pair.cmp(&self.pair))
            .then_with(|| self.stamp.cmp(&other.stamp))
    }
}

impl PartialOrd for RankedPair {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for RankedPair {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for RankedPair {}

/// Lifecycle of a pair inside a [`StreamingSchedule`].
#[derive(Debug, Clone, Copy)]
enum PairState {
    /// Waiting in the heap; only the entry carrying this stamp is current.
    Queued(u64),
    /// Already handed to the matcher; never re-issued.
    Emitted,
}

/// Progressive re-ranking over a stream of mutations: absorbs every
/// batch's delta pairs (with their classifier probabilities), re-ranks
/// pairs whose score changed, and always emits the highest-probability pair
/// not yet handed to the matcher.
///
/// * **Re-ranking** — absorbing a pair that is already queued replaces its
///   priority (the old heap entry goes stale and is skipped on emission);
///   this is how re-scored survivors of an update move through the queue.
/// * **Retraction** — a retracted pair still in the queue is dropped; a
///   pair already emitted cannot be recalled — the consumer simply compared
///   one pair that the final corpus would not have scheduled.
/// * **At-most-once emission** — a pair that was emitted is never queued
///   again, even if a later mutation revives or re-scores it.
#[derive(Debug, Clone, Default)]
pub struct StreamingSchedule {
    heap: BinaryHeap<RankedPair>,
    states: FxHashMap<(EntityId, EntityId), PairState>,
    next_stamp: u64,
    queued: usize,
    emitted: usize,
}

impl StreamingSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        StreamingSchedule::default()
    }

    /// Absorbs one batch of scored pairs (the `pairs`/`probabilities`
    /// columns of an `er_stream::DeltaBatch`): new pairs are queued,
    /// already-queued pairs are re-ranked to the new probability, and
    /// already-emitted pairs are ignored.
    ///
    /// # Panics
    /// Panics if the two slices differ in length — streaming emission
    /// always scores every pair it reports.
    pub fn absorb(&mut self, pairs: &[(EntityId, EntityId)], probabilities: &[f64]) {
        assert_eq!(
            pairs.len(),
            probabilities.len(),
            "every absorbed pair needs a probability"
        );
        for (&pair, &probability) in pairs.iter().zip(probabilities) {
            match self.states.get(&pair) {
                Some(PairState::Emitted) => continue,
                Some(PairState::Queued(_)) => {}
                None => self.queued += 1,
            }
            self.next_stamp += 1;
            let stamp = self.next_stamp;
            self.states.insert(pair, PairState::Queued(stamp));
            self.heap.push(RankedPair {
                probability,
                pair,
                stamp,
            });
        }
    }

    /// Drops retracted pairs from the queue; they will not be emitted
    /// (pairs already drained are unaffected and stay ineligible for
    /// re-queueing).
    pub fn retract(&mut self, pairs: &[(EntityId, EntityId)]) {
        for pair in pairs {
            if let Some(PairState::Queued(_)) = self.states.get(pair) {
                self.states.remove(pair);
                self.queued -= 1;
            }
        }
    }

    /// Emits the next pair in decreasing probability order, skipping
    /// retracted pairs and stale (re-ranked) heap entries.
    pub fn pop(&mut self) -> Option<((EntityId, EntityId), f64)> {
        while let Some(ranked) = self.heap.pop() {
            match self.states.get(&ranked.pair) {
                Some(&PairState::Queued(stamp)) if stamp == ranked.stamp => {
                    self.states.insert(ranked.pair, PairState::Emitted);
                    self.queued -= 1;
                    self.emitted += 1;
                    return Some((ranked.pair, ranked.probability));
                }
                _ => continue,
            }
        }
        None
    }

    /// Emits the next batch of up to `budget` pairs.
    pub fn next_batch(&mut self, budget: usize) -> Vec<((EntityId, EntityId), f64)> {
        let mut out = Vec::with_capacity(budget.min(self.queued));
        while out.len() < budget {
            let Some(item) = self.pop() else { break };
            out.push(item);
        }
        out
    }

    /// Exact number of pairs still queued (retracted and re-ranked entries
    /// excluded).
    pub fn pending(&self) -> usize {
        self.queued
    }

    /// Number of pairs emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// The queued pairs with their current probabilities (stale re-ranked
    /// heap entries excluded), sorted by pair — the snapshot half of a
    /// schedule's persistent state.
    pub fn queued_entries(&self) -> Vec<((EntityId, EntityId), f64)> {
        let mut entries: Vec<((EntityId, EntityId), f64)> = self
            .heap
            .iter()
            .filter(|ranked| {
                matches!(
                    self.states.get(&ranked.pair),
                    Some(&PairState::Queued(stamp)) if stamp == ranked.stamp
                )
            })
            .map(|ranked| (ranked.pair, ranked.probability))
            .collect();
        entries.sort_unstable_by_key(|entry| entry.0);
        entries
    }

    /// The pairs already handed to the matcher, sorted — the other half of
    /// the persistent state ([`StreamingSchedule::restore`] keeps them
    /// ineligible for re-emission).
    pub fn emitted_pairs(&self) -> Vec<(EntityId, EntityId)> {
        let mut pairs: Vec<(EntityId, EntityId)> = self
            .states
            .iter()
            .filter(|(_, state)| matches!(state, PairState::Emitted))
            .map(|(&pair, _)| pair)
            .collect();
        pairs.sort_unstable();
        pairs
    }

    /// Rebuilds a schedule from [`StreamingSchedule::queued_entries`] and
    /// [`StreamingSchedule::emitted_pairs`].  Stamps are renumbered, but
    /// emission order is unaffected: only one heap entry per pair is
    /// current, so draining is governed by `(probability, pair)` exactly as
    /// before.
    pub fn restore(
        queued: &[((EntityId, EntityId), f64)],
        emitted: &[(EntityId, EntityId)],
    ) -> Self {
        let mut schedule = StreamingSchedule::new();
        for &(pair, probability) in queued {
            schedule.absorb(&[pair], &[probability]);
        }
        for &pair in emitted {
            if schedule.states.insert(pair, PairState::Emitted).is_none() {
                schedule.emitted += 1;
            } else {
                // A pair both queued and emitted in the same snapshot would
                // be a writer bug; the emitted state wins and the stale
                // queue entry is skipped on pop.
                schedule.queued -= 1;
                schedule.emitted += 1;
            }
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pruning::test_support::scored_pairs;
    use er_core::GroundTruth;

    #[test]
    fn pairs_are_emitted_in_decreasing_probability() {
        let (candidates, scores) =
            scored_pairs(8, &[(0, 4, 0.3), (1, 5, 0.9), (2, 6, 0.7), (3, 7, 0.5)]);
        let schedule = ProgressiveSchedule::new(&candidates, &scores);
        let probabilities: Vec<f64> = schedule.clone().map(|(_, p)| p).collect();
        assert_eq!(probabilities, vec![0.9, 0.7, 0.5, 0.3]);
    }

    #[test]
    fn valid_only_drops_low_probability_pairs() {
        let (candidates, scores) = scored_pairs(6, &[(0, 3, 0.2), (1, 4, 0.8), (2, 5, 0.45)]);
        let schedule = ProgressiveSchedule::valid_only(&candidates, &scores);
        assert_eq!(schedule.remaining(), 1);
        assert_eq!(schedule.ranked()[0].1, 0.8);
    }

    #[test]
    fn batches_respect_the_budget() {
        let triples: Vec<(u32, u32, f64)> = (0..10u32)
            .map(|i| (i, i + 10, 0.5 + f64::from(i) * 0.03))
            .collect();
        let (candidates, scores) = scored_pairs(20, &triples);
        let mut schedule = ProgressiveSchedule::new(&candidates, &scores);
        assert_eq!(schedule.next_batch(4).len(), 4);
        assert_eq!(schedule.remaining(), 6);
        assert_eq!(schedule.next_batch(100).len(), 6);
        assert_eq!(schedule.remaining(), 0);
        assert!(schedule.next_batch(5).is_empty());
    }

    #[test]
    fn streaming_schedule_interleaves_batches_by_probability() {
        use er_core::EntityId;
        let mut schedule = StreamingSchedule::new();
        let pair = |a: u32, b: u32| (EntityId(a), EntityId(b));
        schedule.absorb(&[pair(0, 1), pair(0, 2)], &[0.4, 0.9]);
        schedule.absorb(&[pair(1, 3), pair(2, 3)], &[0.7, 0.1]);
        assert_eq!(schedule.pending(), 4);
        let drained = schedule.next_batch(10);
        let probabilities: Vec<f64> = drained.iter().map(|&(_, p)| p).collect();
        assert_eq!(probabilities, vec![0.9, 0.7, 0.4, 0.1]);
        assert_eq!(drained[0].0, pair(0, 2));
        assert_eq!(schedule.emitted(), 4);
        assert!(schedule.pop().is_none());
    }

    #[test]
    fn streaming_schedule_ties_break_by_ascending_pair() {
        use er_core::EntityId;
        let mut schedule = StreamingSchedule::new();
        let pair = |a: u32, b: u32| (EntityId(a), EntityId(b));
        schedule.absorb(&[pair(5, 7), pair(1, 9), pair(1, 4)], &[0.5, 0.5, 0.5]);
        let order: Vec<_> = schedule.next_batch(3).into_iter().map(|(p, _)| p).collect();
        assert_eq!(order, vec![pair(1, 4), pair(1, 9), pair(5, 7)]);
    }

    #[test]
    fn streaming_schedule_skips_retracted_pairs() {
        use er_core::EntityId;
        let mut schedule = StreamingSchedule::new();
        let pair = |a: u32, b: u32| (EntityId(a), EntityId(b));
        schedule.absorb(&[pair(0, 1), pair(0, 2), pair(1, 2)], &[0.8, 0.6, 0.4]);
        schedule.retract(&[pair(0, 2)]);
        assert_eq!(schedule.pending(), 2);
        let drained: Vec<_> = schedule
            .next_batch(10)
            .into_iter()
            .map(|(p, _)| p)
            .collect();
        assert_eq!(drained, vec![pair(0, 1), pair(1, 2)]);
        assert_eq!(schedule.emitted(), 2);
        assert_eq!(schedule.pending(), 0);
    }

    #[test]
    fn streaming_schedule_reranks_absorbed_pairs() {
        use er_core::EntityId;
        let mut schedule = StreamingSchedule::new();
        let pair = |a: u32, b: u32| (EntityId(a), EntityId(b));
        schedule.absorb(&[pair(0, 1), pair(0, 2)], &[0.9, 0.5]);
        // Re-scoring flips the order; the stale 0.9 entry must be skipped.
        schedule.absorb(&[pair(0, 1)], &[0.1]);
        assert_eq!(schedule.pending(), 2);
        let drained = schedule.next_batch(10);
        assert_eq!(drained[0], (pair(0, 2), 0.5));
        assert_eq!(drained[1], (pair(0, 1), 0.1));
        assert_eq!(schedule.emitted(), 2);
    }

    #[test]
    fn streaming_schedule_never_reissues_an_emitted_pair() {
        use er_core::EntityId;
        let mut schedule = StreamingSchedule::new();
        let pair = |a: u32, b: u32| (EntityId(a), EntityId(b));
        schedule.absorb(&[pair(0, 1)], &[0.8]);
        assert_eq!(schedule.pop().unwrap().0, pair(0, 1));
        // Re-absorbing (a revival or re-score) after emission is a no-op.
        schedule.absorb(&[pair(0, 1)], &[0.9]);
        assert_eq!(schedule.pending(), 0);
        assert!(schedule.pop().is_none());
        // Retraction after emission is also a no-op; a fresh pair still
        // flows normally.
        schedule.retract(&[pair(0, 1)]);
        schedule.absorb(&[pair(2, 3)], &[0.4]);
        assert_eq!(schedule.pop().unwrap().0, pair(2, 3));
        assert_eq!(schedule.emitted(), 2);
    }

    #[test]
    fn early_batches_find_duplicates_first_when_scores_are_informative() {
        // Matches get high probabilities, non-matches low ones: the first
        // half of the schedule must contain every match.
        let triples = [
            (0u32, 5u32, 0.95f64),
            (1, 6, 0.9),
            (2, 7, 0.2),
            (3, 8, 0.3),
            (4, 9, 0.1),
        ];
        let (candidates, scores) = scored_pairs(10, &triples);
        let truth = GroundTruth::from_pairs(vec![
            (er_core::EntityId(0), er_core::EntityId(5)),
            (er_core::EntityId(1), er_core::EntityId(6)),
        ]);
        let mut schedule = ProgressiveSchedule::new(&candidates, &scores);
        let first = schedule.next_batch(2).to_vec();
        assert!(first.iter().all(|&(id, _)| {
            let (a, b) = candidates.pair(id);
            truth.is_match(a, b)
        }));
    }
}
