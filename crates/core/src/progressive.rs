//! Progressive emission of candidate pairs.
//!
//! The paper's future-work section plans to use Generalized Supervised
//! Meta-blocking for *Progressive Entity Resolution*: instead of handing the
//! matcher one static block collection, candidate pairs are emitted in
//! decreasing order of matching likelihood so that, under a limited
//! comparison budget, as many duplicates as possible are found early.  The
//! probabilistic weights produced by the trained classifier are exactly the
//! ranking signal this needs.

use er_blocking::CandidatePairs;
use er_core::PairId;

use crate::scoring::ProbabilitySource;

/// An iterator over candidate pairs in decreasing probability order.
#[derive(Debug, Clone)]
pub struct ProgressiveSchedule {
    ordered: Vec<(PairId, f64)>,
    next: usize,
}

impl ProgressiveSchedule {
    /// Ranks every candidate pair by its probability (descending).  Ties are
    /// broken by pair id so the schedule is deterministic.
    pub fn new(candidates: &CandidatePairs, scores: &dyn ProbabilitySource) -> Self {
        let mut ordered: Vec<(PairId, f64)> = candidates
            .iter()
            .map(|(id, _, _)| (id, scores.probability(id)))
            .collect();
        ordered.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        ProgressiveSchedule { ordered, next: 0 }
    }

    /// Ranks only the *valid* pairs (probability ≥ 0.5), matching the
    /// generalized task definition.
    pub fn valid_only(candidates: &CandidatePairs, scores: &dyn ProbabilitySource) -> Self {
        let mut schedule = Self::new(candidates, scores);
        schedule.ordered.retain(|&(id, _)| scores.is_valid(id));
        schedule
    }

    /// Number of pairs remaining in the schedule.
    pub fn remaining(&self) -> usize {
        self.ordered.len() - self.next
    }

    /// Emits the next batch of up to `budget` pairs.
    pub fn next_batch(&mut self, budget: usize) -> &[(PairId, f64)] {
        let start = self.next;
        let end = (start + budget).min(self.ordered.len());
        self.next = end;
        &self.ordered[start..end]
    }

    /// The full ranked list (without consuming the schedule).
    pub fn ranked(&self) -> &[(PairId, f64)] {
        &self.ordered
    }
}

impl Iterator for ProgressiveSchedule {
    type Item = (PairId, f64);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.ordered.get(self.next).copied();
        if item.is_some() {
            self.next += 1;
        }
        item
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pruning::test_support::scored_pairs;
    use er_core::GroundTruth;

    #[test]
    fn pairs_are_emitted_in_decreasing_probability() {
        let (candidates, scores) =
            scored_pairs(8, &[(0, 4, 0.3), (1, 5, 0.9), (2, 6, 0.7), (3, 7, 0.5)]);
        let schedule = ProgressiveSchedule::new(&candidates, &scores);
        let probabilities: Vec<f64> = schedule.clone().map(|(_, p)| p).collect();
        assert_eq!(probabilities, vec![0.9, 0.7, 0.5, 0.3]);
    }

    #[test]
    fn valid_only_drops_low_probability_pairs() {
        let (candidates, scores) = scored_pairs(6, &[(0, 3, 0.2), (1, 4, 0.8), (2, 5, 0.45)]);
        let schedule = ProgressiveSchedule::valid_only(&candidates, &scores);
        assert_eq!(schedule.remaining(), 1);
        assert_eq!(schedule.ranked()[0].1, 0.8);
    }

    #[test]
    fn batches_respect_the_budget() {
        let triples: Vec<(u32, u32, f64)> = (0..10u32)
            .map(|i| (i, i + 10, 0.5 + f64::from(i) * 0.03))
            .collect();
        let (candidates, scores) = scored_pairs(20, &triples);
        let mut schedule = ProgressiveSchedule::new(&candidates, &scores);
        assert_eq!(schedule.next_batch(4).len(), 4);
        assert_eq!(schedule.remaining(), 6);
        assert_eq!(schedule.next_batch(100).len(), 6);
        assert_eq!(schedule.remaining(), 0);
        assert!(schedule.next_batch(5).is_empty());
    }

    #[test]
    fn early_batches_find_duplicates_first_when_scores_are_informative() {
        // Matches get high probabilities, non-matches low ones: the first
        // half of the schedule must contain every match.
        let triples = [
            (0u32, 5u32, 0.95f64),
            (1, 6, 0.9),
            (2, 7, 0.2),
            (3, 8, 0.3),
            (4, 9, 0.1),
        ];
        let (candidates, scores) = scored_pairs(10, &triples);
        let truth = GroundTruth::from_pairs(vec![
            (er_core::EntityId(0), er_core::EntityId(5)),
            (er_core::EntityId(1), er_core::EntityId(6)),
        ]);
        let mut schedule = ProgressiveSchedule::new(&candidates, &scores);
        let first = schedule.next_batch(2).to_vec();
        assert!(first.iter().all(|&(id, _)| {
            let (a, b) = candidates.pair(id);
            truth.is_match(a, b)
        }));
    }
}
