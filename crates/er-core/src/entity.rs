//! Entity profiles: schema-agnostic sets of name/value pairs.

use serde::{Deserialize, Serialize};

use crate::tokenize::tokenize_into;

/// A single attribute of an entity profile.
///
/// Both the attribute name and its value are free text; this accommodates
/// relational records, RDF descriptions and semi-structured data alike.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name (may be empty for schema-less values).
    pub name: String,
    /// Attribute value.
    pub value: String,
}

impl Attribute {
    /// Creates an attribute from a name and value.
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            value: value.into(),
        }
    }
}

/// An entity profile: an external identifier plus a set of attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntityProfile {
    /// External (source) identifier, e.g. the record key in the origin dataset.
    pub external_id: String,
    /// Attribute name/value pairs.
    pub attributes: Vec<Attribute>,
}

impl EntityProfile {
    /// Creates an empty profile with the given external identifier.
    pub fn new(external_id: impl Into<String>) -> Self {
        EntityProfile {
            external_id: external_id.into(),
            attributes: Vec::new(),
        }
    }

    /// Adds an attribute and returns `self` for builder-style construction.
    pub fn with_attribute(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push(Attribute::new(name, value));
        self
    }

    /// Adds an attribute in place.
    pub fn push_attribute(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.attributes.push(Attribute::new(name, value));
    }

    /// Returns the value of the first attribute with the given name, if any.
    pub fn value_of(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    }

    /// Returns every distinct schema-agnostic token appearing in any attribute
    /// value of this profile (the Token Blocking signature set).
    ///
    /// Tokens are deduplicated but the first-seen order is preserved, so the
    /// result is deterministic.
    pub fn value_tokens(&self) -> Vec<String> {
        let mut tokens = Vec::new();
        for attr in &self.attributes {
            tokenize_into(&attr.value, &mut tokens);
        }
        let mut seen = crate::fxhash::FxHashSet::default();
        tokens.retain(|t| seen.insert(t.clone()));
        tokens
    }

    /// Returns true if the profile has no attributes or only empty values.
    pub fn is_effectively_empty(&self) -> bool {
        self.attributes.iter().all(|a| a.value.trim().is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EntityProfile {
        EntityProfile::new("e1")
            .with_attribute("model", "Apple iPhone X")
            .with_attribute("category", "Smartphone")
    }

    #[test]
    fn builder_accumulates_attributes() {
        let p = sample();
        assert_eq!(p.attributes.len(), 2);
        assert_eq!(p.value_of("model"), Some("Apple iPhone X"));
        assert_eq!(p.value_of("missing"), None);
    }

    #[test]
    fn value_tokens_dedup_and_lowercase() {
        let p = EntityProfile::new("e")
            .with_attribute("a", "Samsung S20")
            .with_attribute("b", "samsung smartphone");
        assert_eq!(p.value_tokens(), vec!["samsung", "s20", "smartphone"]);
    }

    #[test]
    fn empty_profile_detection() {
        let mut p = EntityProfile::new("x");
        assert!(p.is_effectively_empty());
        p.push_attribute("note", "   ");
        assert!(p.is_effectively_empty());
        p.push_attribute("note", "phone");
        assert!(!p.is_effectively_empty());
    }

    #[test]
    fn tokens_of_example_profiles_match_figure_1() {
        // Entity e1 in Figure 1 produces blocks apple, iphone, x, smartphone.
        let e1 = EntityProfile::new("e1")
            .with_attribute("Model", "Apple iPhone X")
            .with_attribute("Category", "Smartphone");
        let tokens = e1.value_tokens();
        for expected in ["apple", "iphone", "x", "smartphone"] {
            assert!(tokens.contains(&expected.to_string()), "missing {expected}");
        }
    }
}
