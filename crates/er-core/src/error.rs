//! Error type shared across the workspace.

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Convenience result alias for the persistence paths.
pub type PersistResult<T> = std::result::Result<T, PersistError>;

/// Structured errors of the durability layer (snapshots and write-ahead
/// logs).  Every failure mode a corrupt, truncated or mismatched file can
/// produce is a typed variant — the persistence paths never panic on bad
/// bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// An underlying I/O operation failed.
    Io {
        /// What the persistence layer was doing (e.g. "append wal record").
        context: String,
        /// The OS error kind.
        kind: std::io::ErrorKind,
        /// The OS error message.
        message: String,
    },
    /// The file does not start with the expected magic bytes — it is not a
    /// file of the expected family at all.
    BadMagic {
        /// Which file was inspected.
        context: String,
    },
    /// The file was written by an incompatible format version.
    VersionMismatch {
        /// The version recorded in the file.
        found: u32,
        /// The version this build reads and writes.
        supported: u32,
    },
    /// A checksummed section does not match its recorded digest — the bytes
    /// were corrupted after they were written.
    ChecksumMismatch {
        /// Which section failed (e.g. "snapshot payload", "wal record").
        context: String,
        /// The digest recorded in the file.
        expected: u64,
        /// The digest of the bytes actually present.
        found: u64,
    },
    /// A record or section ends before its declared length — the file was
    /// truncated mid-write.
    Truncated {
        /// Which section was cut short.
        context: String,
    },
    /// The file belongs to a different corpus/stream than the one being
    /// recovered (snapshot and WAL fingerprints must agree).
    FingerprintMismatch {
        /// The fingerprint the caller expected.
        expected: u64,
        /// The fingerprint recorded in the file.
        found: u64,
    },
    /// The bytes passed their checksum but decode to an inconsistent value
    /// (internal invariant violations, unknown enum tags, bad UTF-8).
    Corrupt(String),
    /// Another checkpointer holds the store's exclusive lock file — two
    /// writers raced for the same directory.  The losing caller must not
    /// touch the directory; the winner's commit/retention is in flight.
    Locked {
        /// Which store/operation hit the held lock.
        context: String,
    },
}

/// Whether a failed persistence operation is worth retrying.
///
/// The classification is deliberately conservative (the fsyncgate lesson:
/// after a failed fsync the page cache may have *dropped* the dirty pages,
/// so blindly re-syncing can silently lose data).  Only failures that are
/// transient by their OS contract — the call never took effect — are
/// retryable; everything else (full disks, failed syncs, corrupt bytes)
/// must surface to the caller, who re-issues the *whole* operation from
/// in-memory state if at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistErrorClass {
    /// Transient: the operation did not take effect and may succeed if
    /// re-issued (e.g. `EINTR`).  The write paths retry these with bounded
    /// backoff.
    Retryable,
    /// Permanent for this attempt: retrying the same call cannot help
    /// (out of space, failed fsync, corrupt or mismatched bytes).
    Fatal,
}

impl PersistError {
    /// Wraps an I/O error with the operation that produced it.
    pub fn io(context: impl Into<String>, err: &std::io::Error) -> Self {
        PersistError::Io {
            context: context.into(),
            kind: err.kind(),
            message: err.to_string(),
        }
    }

    /// Classifies the failure as [`PersistErrorClass::Retryable`] or
    /// [`PersistErrorClass::Fatal`].
    pub fn class(&self) -> PersistErrorClass {
        match self {
            PersistError::Io {
                kind:
                    std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::WouldBlock
                    | std::io::ErrorKind::TimedOut,
                ..
            } => PersistErrorClass::Retryable,
            // Bad bytes never get better by re-reading them.
            _ => PersistErrorClass::Fatal,
        }
    }

    /// True if [`PersistError::class`] is [`PersistErrorClass::Retryable`].
    pub fn is_retryable(&self) -> bool {
        self.class() == PersistErrorClass::Retryable
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io {
                context,
                kind: _,
                message,
            } => {
                write!(f, "i/o failure while trying to {context}: {message}")
            }
            PersistError::BadMagic { context } => {
                write!(
                    f,
                    "{context}: bad magic bytes (not a GSMB persistence file)"
                )
            }
            PersistError::VersionMismatch { found, supported } => write!(
                f,
                "format version mismatch: file is v{found}, this build supports v{supported}"
            ),
            PersistError::ChecksumMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "checksum mismatch in {context}: recorded {expected:#018x}, computed {found:#018x}"
            ),
            PersistError::Truncated { context } => {
                write!(f, "truncated {context}: the file ends mid-record")
            }
            PersistError::FingerprintMismatch { expected, found } => write!(
                f,
                "corpus fingerprint mismatch: expected {expected:#018x}, file carries {found:#018x}"
            ),
            PersistError::Corrupt(msg) => write!(f, "corrupt persistence data: {msg}"),
            PersistError::Locked { context } => write!(
                f,
                "{context}: another checkpointer holds the store's exclusive lock"
            ),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<PersistError> for Error {
    fn from(err: PersistError) -> Self {
        Error::Persist(err)
    }
}

/// Errors produced by the meta-blocking pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A dataset was constructed with inconsistent parameters
    /// (e.g. more duplicates than entities).
    InvalidDataset(String),
    /// A block collection or candidate set is empty where a non-empty one is
    /// required.
    EmptyInput(String),
    /// The training set could not be assembled (e.g. not enough positive
    /// labelled pairs exist).
    InsufficientTrainingData {
        /// How many instances were requested (per class).
        requested: usize,
        /// How many were available.
        available: usize,
    },
    /// A classifier was asked to predict before being trained, or training
    /// diverged.
    Model(String),
    /// A configuration value is outside its valid range.
    InvalidParameter(String),
    /// A data structure would exceed a hard representational limit (e.g. a
    /// materialised candidate index needs more pairs than its `u32` offsets
    /// can address).  The streamed paths count in `u64` and never hit this;
    /// only collectors that materialise the full structure do.
    CapacityExceeded {
        /// What was being materialised (e.g. "candidate pair index").
        what: String,
        /// How many elements the input produces.
        requested: u64,
        /// The largest count the structure can represent.
        limit: u64,
    },
    /// A snapshot or write-ahead-log operation failed (see [`PersistError`]).
    Persist(PersistError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::InvalidDataset(msg) => write!(f, "invalid dataset: {msg}"),
            Error::EmptyInput(msg) => write!(f, "empty input: {msg}"),
            Error::InsufficientTrainingData {
                requested,
                available,
            } => write!(
                f,
                "insufficient training data: requested {requested} per class, only {available} available"
            ),
            Error::Model(msg) => write!(f, "model error: {msg}"),
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Error::CapacityExceeded {
                what,
                requested,
                limit,
            } => write!(
                f,
                "capacity exceeded: {what} needs {requested} elements, limit is {limit}"
            ),
            Error::Persist(err) => write!(f, "persistence error: {err}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            Error::InvalidDataset("x".into()).to_string(),
            "invalid dataset: x"
        );
        assert_eq!(Error::EmptyInput("y".into()).to_string(), "empty input: y");
        assert!(Error::InsufficientTrainingData {
            requested: 25,
            available: 3
        }
        .to_string()
        .contains("requested 25"));
        assert_eq!(
            Error::Model("diverged".into()).to_string(),
            "model error: diverged"
        );
        assert!(Error::InvalidParameter("r".into())
            .to_string()
            .contains("invalid parameter"));
        let capacity = Error::CapacityExceeded {
            what: "candidate pair index".into(),
            requested: u64::from(u32::MAX) + 1,
            limit: u64::from(u32::MAX),
        };
        assert!(capacity.to_string().contains("capacity exceeded"));
        assert!(capacity.to_string().contains("candidate pair index"));
        assert!(capacity.to_string().contains("4294967296"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&Error::Model("m".into()));
        assert_err(&PersistError::BadMagic {
            context: "x".into(),
        });
    }

    #[test]
    fn persist_error_display_messages() {
        let io = PersistError::io(
            "write snapshot",
            &std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied"),
        );
        assert!(io.to_string().contains("write snapshot"));
        assert!(PersistError::BadMagic {
            context: "snapshot header".into()
        }
        .to_string()
        .contains("bad magic"));
        assert!(PersistError::VersionMismatch {
            found: 9,
            supported: 1
        }
        .to_string()
        .contains("v9"));
        assert!(PersistError::ChecksumMismatch {
            context: "wal record".into(),
            expected: 1,
            found: 2
        }
        .to_string()
        .contains("wal record"));
        assert!(PersistError::Truncated {
            context: "wal record".into()
        }
        .to_string()
        .contains("truncated"));
        assert!(PersistError::FingerprintMismatch {
            expected: 3,
            found: 4
        }
        .to_string()
        .contains("fingerprint"));
        assert!(PersistError::Corrupt("bad tag".into())
            .to_string()
            .contains("bad tag"));
        assert!(PersistError::Locked {
            context: "commit generation 3".into()
        }
        .to_string()
        .contains("exclusive lock"));
    }

    #[test]
    fn retryable_classification_is_conservative() {
        let transient = PersistError::io(
            "append wal record",
            &std::io::Error::new(std::io::ErrorKind::Interrupted, "interrupted"),
        );
        assert!(transient.is_retryable());
        assert_eq!(transient.class(), PersistErrorClass::Retryable);

        // ENOSPC, failed fsyncs and permission problems are fatal: the
        // caller must re-issue the whole operation, not the same syscall.
        let enospc = PersistError::io(
            "append wal record",
            &std::io::Error::from_raw_os_error(28), // ENOSPC
        );
        assert!(!enospc.is_retryable());
        let denied = PersistError::io(
            "sync wal record",
            &std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied"),
        );
        assert!(!denied.is_retryable());

        // Corruption is never retryable, and neither is a held lock (the
        // loser must back off, not spin on the winner's commit).
        assert!(!PersistError::Corrupt("bad".into()).is_retryable());
        assert!(!PersistError::Locked {
            context: "commit".into()
        }
        .is_retryable());
        assert!(!PersistError::Truncated {
            context: "wal".into()
        }
        .is_retryable());
    }

    #[test]
    fn persist_error_converts_into_the_workspace_error() {
        let err: Error = PersistError::Truncated {
            context: "snapshot".into(),
        }
        .into();
        assert!(matches!(err, Error::Persist(_)));
        assert!(err.to_string().contains("persistence error"));
    }
}
