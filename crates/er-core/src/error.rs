//! Error type shared across the workspace.

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the meta-blocking pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A dataset was constructed with inconsistent parameters
    /// (e.g. more duplicates than entities).
    InvalidDataset(String),
    /// A block collection or candidate set is empty where a non-empty one is
    /// required.
    EmptyInput(String),
    /// The training set could not be assembled (e.g. not enough positive
    /// labelled pairs exist).
    InsufficientTrainingData {
        /// How many instances were requested (per class).
        requested: usize,
        /// How many were available.
        available: usize,
    },
    /// A classifier was asked to predict before being trained, or training
    /// diverged.
    Model(String),
    /// A configuration value is outside its valid range.
    InvalidParameter(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::InvalidDataset(msg) => write!(f, "invalid dataset: {msg}"),
            Error::EmptyInput(msg) => write!(f, "empty input: {msg}"),
            Error::InsufficientTrainingData {
                requested,
                available,
            } => write!(
                f,
                "insufficient training data: requested {requested} per class, only {available} available"
            ),
            Error::Model(msg) => write!(f, "model error: {msg}"),
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            Error::InvalidDataset("x".into()).to_string(),
            "invalid dataset: x"
        );
        assert_eq!(Error::EmptyInput("y".into()).to_string(), "empty input: y");
        assert!(Error::InsufficientTrainingData {
            requested: 25,
            available: 3
        }
        .to_string()
        .contains("requested 25"));
        assert_eq!(
            Error::Model("diverged".into()).to_string(),
            "model error: diverged"
        );
        assert!(Error::InvalidParameter("r".into())
            .to_string()
            .contains("invalid parameter"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&Error::Model("m".into()));
    }
}
