//! A fast streaming checksum for on-disk integrity (CRC-64/XZ).
//!
//! The persistence layer frames every snapshot payload and write-ahead-log
//! record with a checksum so that torn writes and bit rot surface as typed
//! errors instead of silently corrupt state.  In the spirit of the
//! [`crate::fxhash`] module we implement the algorithm here rather than pull
//! in a crate: CRC-64/XZ (the reflected ECMA-182 polynomial used by `xz`)
//! is table-driven, processes a byte per step, and — unlike the Fx hash —
//! detects *every* single-bit flip and every burst error up to 64 bits,
//! which is exactly the guarantee a storage checksum needs.
//!
//! The implementation is streaming: feed bytes in any chunking via
//! [`Crc64::update`] and the digest is identical to a one-shot
//! [`crc64`] over the concatenation.

/// The reflected CRC-64/XZ (ECMA-182) polynomial.
const POLY: u64 = 0xC96C_5795_D787_0F42;

const fn build_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u64; 256] = build_table();

/// Streaming CRC-64/XZ state.
#[derive(Debug, Clone, Copy)]
pub struct Crc64 {
    state: u64,
}

impl Crc64 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc64 { state: u64::MAX }
    }

    /// Feeds a chunk of bytes; chunking never changes the digest.
    #[inline]
    pub fn update(&mut self, bytes: &[u8]) {
        let mut state = self.state;
        for &b in bytes {
            state = TABLE[((state ^ u64::from(b)) & 0xFF) as usize] ^ (state >> 8);
        }
        self.state = state;
    }

    /// The digest over everything fed so far (the state is not consumed;
    /// further updates continue the stream).
    pub fn finish(&self) -> u64 {
        !self.state
    }
}

impl Default for Crc64 {
    fn default() -> Self {
        Crc64::new()
    }
}

/// One-shot CRC-64/XZ of a byte slice.
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = Crc64::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_crc64_xz_check_vector() {
        // The standard check value for CRC-64/XZ.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn empty_input_digest() {
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn streaming_equals_one_shot_for_any_chunking() {
        let data: Vec<u8> = (0u16..1024).map(|i| (i * 37 % 251) as u8).collect();
        let expected = crc64(&data);
        for chunk in [1usize, 3, 7, 64, 1000] {
            let mut crc = Crc64::new();
            for piece in data.chunks(chunk) {
                crc.update(piece);
            }
            assert_eq!(crc.finish(), expected, "chunk size {chunk}");
        }
    }

    #[test]
    fn single_bit_flips_change_the_digest() {
        let data = b"generalized supervised meta-blocking".to_vec();
        let clean = crc64(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc64(&flipped), clean, "flip at byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn finish_does_not_consume_the_stream() {
        let mut crc = Crc64::new();
        crc.update(b"abc");
        let first = crc.finish();
        assert_eq!(first, crc64(b"abc"));
        crc.update(b"def");
        assert_eq!(crc.finish(), crc64(b"abcdef"));
    }
}
