//! The workspace's shared data-parallel driver.
//!
//! Every parallel hot path — candidate enumeration, feature-matrix
//! construction, fused probability scoring — uses the same two primitives
//! built on `std::thread::scope`:
//!
//! * [`fill_rows_parallel`]: workers pull row-aligned chunks of one output
//!   slice from a shared queue and fill them in place (work stealing, so a
//!   skewed chunk cannot serialise the whole pass the way fixed per-thread
//!   partitions can);
//! * [`map_ranges_parallel`]: workers pull contiguous index ranges from an
//!   atomic cursor and return one value per range, re-assembled in range
//!   order so results are deterministic regardless of scheduling.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default worker-thread count: the available parallelism, capped at 8 (the
/// feature engine saturates memory bandwidth well before high core counts).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Fills `out` — a row-major buffer of `row_width`-wide rows — by handing
/// row-aligned chunks of about `chunk_rows` rows to `threads` workers.
///
/// `fill` receives `(first_row_index, chunk)` and must write every element of
/// `chunk`.  Chunks are pulled from a shared queue, so fast workers steal the
/// remaining work from slow ones.  With `threads <= 1` the whole buffer is
/// filled on the calling thread.
pub fn fill_rows_parallel<F>(
    out: &mut [f64],
    row_width: usize,
    threads: usize,
    chunk_rows: usize,
    fill: F,
) where
    F: Fn(usize, &mut [f64]) + Sync,
{
    if row_width == 0 || out.is_empty() {
        return;
    }
    debug_assert_eq!(out.len() % row_width, 0);
    if threads <= 1 {
        fill(0, out);
        return;
    }
    let chunk_rows = chunk_rows.max(1);
    let queue = Mutex::new(out.chunks_mut(chunk_rows * row_width).enumerate());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let next = queue.lock().expect("chunk queue poisoned").next();
                let Some((index, chunk)) = next else { break };
                fill(index * chunk_rows, chunk);
            });
        }
    });
}

/// Runs `num_tasks` tasks on up to `threads` workers, each worker carrying
/// its own scratch state (built once per worker by `init`).
///
/// Tasks are pulled from an atomic cursor, so fast workers steal remaining
/// work; `run` receives `(task_index, &mut state)`.  With `threads <= 1`
/// everything runs on the calling thread with a single state.
pub fn for_each_task_with_state<S, I, F>(num_tasks: usize, threads: usize, init: I, run: F)
where
    I: Fn() -> S + Sync,
    F: Fn(usize, &mut S) + Sync,
{
    if num_tasks == 0 {
        return;
    }
    if threads <= 1 || num_tasks == 1 {
        let mut state = init();
        for task in 0..num_tasks {
            run(task, &mut state);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(num_tasks) {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let task = cursor.fetch_add(1, Ordering::Relaxed);
                    if task >= num_tasks {
                        break;
                    }
                    run(task, &mut state);
                }
            });
        }
    });
}

/// Splits `0..num_items` into `num_tasks` contiguous ranges, maps each range
/// with `f` on one of `threads` workers, and returns the results in range
/// order (deterministic regardless of which worker ran which range).
pub fn map_ranges_parallel<T, F>(num_items: usize, threads: usize, num_tasks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    if num_items == 0 {
        return Vec::new();
    }
    let num_tasks = num_tasks.clamp(1, num_items);
    let task_size = num_items.div_ceil(num_tasks);
    let range_of = |task: usize| task * task_size..((task + 1) * task_size).min(num_items);

    if threads <= 1 || num_tasks == 1 {
        return (0..num_tasks).map(|t| f(range_of(t))).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut buckets: Vec<Option<T>> = Vec::new();
    buckets.resize_with(num_tasks, || None);
    let slots = Mutex::new(&mut buckets);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let task = cursor.fetch_add(1, Ordering::Relaxed);
                if task >= num_tasks {
                    break;
                }
                let value = f(range_of(task));
                slots.lock().expect("result slots poisoned")[task] = Some(value);
            });
        }
    });
    buckets
        .into_iter()
        .map(|slot| slot.expect("worker skipped a task"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_rows_covers_every_row() {
        let mut out = vec![0.0f64; 5 * 997];
        fill_rows_parallel(&mut out, 5, 4, 16, |first_row, chunk| {
            for (offset, row) in chunk.chunks_mut(5).enumerate() {
                row.fill((first_row + offset) as f64);
            }
        });
        for (i, row) in out.chunks(5).enumerate() {
            assert!(row.iter().all(|&v| v == i as f64), "row {i}");
        }
    }

    #[test]
    fn fill_rows_sequential_matches_parallel() {
        let fill = |first_row: usize, chunk: &mut [f64]| {
            for (offset, slot) in chunk.iter_mut().enumerate() {
                *slot = (first_row * 3 + offset) as f64 * 0.5;
            }
        };
        let mut sequential = vec![0.0; 3 * 100];
        fill_rows_parallel(&mut sequential, 3, 1, 7, fill);
        let mut parallel = vec![0.0; 3 * 100];
        fill_rows_parallel(&mut parallel, 3, 4, 7, fill);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn fill_rows_handles_empty_and_zero_width() {
        let mut empty: Vec<f64> = Vec::new();
        fill_rows_parallel(&mut empty, 0, 4, 8, |_, _| panic!("no work expected"));
        fill_rows_parallel(&mut empty, 3, 4, 8, |_, _| panic!("no work expected"));
    }

    #[test]
    fn map_ranges_preserves_order() {
        let ranges = map_ranges_parallel(103, 4, 10, |range| range.clone());
        assert_eq!(ranges.len(), 10);
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, 103);
        for window in ranges.windows(2) {
            assert_eq!(window[0].end, window[1].start);
        }
    }

    #[test]
    fn map_ranges_matches_sequential() {
        let f = |range: Range<usize>| range.map(|i| i * i).sum::<usize>();
        let sequential = map_ranges_parallel(1000, 1, 16, f);
        let parallel = map_ranges_parallel(1000, 8, 16, f);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn map_ranges_empty_input() {
        let out: Vec<usize> = map_ranges_parallel(0, 4, 8, |r| r.len());
        assert!(out.is_empty());
    }

    #[test]
    fn stateful_tasks_cover_every_task_once() {
        use std::sync::atomic::AtomicU32;
        let hits: Vec<AtomicU32> = (0..53).map(|_| AtomicU32::new(0)).collect();
        for threads in [1, 4] {
            hits.iter().for_each(|h| h.store(0, Ordering::Relaxed));
            for_each_task_with_state(
                hits.len(),
                threads,
                || 0u64,
                |task, state| {
                    *state += 1;
                    hits[task].fetch_add(1, Ordering::Relaxed);
                },
            );
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }
}
