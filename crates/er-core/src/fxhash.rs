//! A small, fast, deterministic hasher for integer-heavy keys.
//!
//! The blocking substrate hashes millions of token strings and entity ids.
//! The default SipHash is robust against HashDoS but slow for this workload;
//! the performance guide recommends an Fx-style multiply hash.  To stay within
//! the allowed dependency set we implement the same algorithm used by
//! `rustc-hash` here instead of pulling the crate in.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// Fx hasher state: a single 64-bit accumulator combined with
/// multiply-and-rotate per written word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_one<T: Hash>(value: &T) -> u64 {
        let mut hasher = FxHasher::default();
        value.hash(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(hash_one(&"token blocking"), hash_one(&"token blocking"));
        assert_eq!(hash_one(&42u64), hash_one(&42u64));
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(hash_one(&"apple"), hash_one(&"samsung"));
        assert_ne!(hash_one(&1u64), hash_one(&2u64));
        assert_ne!(hash_one(&""), hash_one(&"a"));
    }

    #[test]
    fn map_and_set_work() {
        let mut map: FxHashMap<String, u32> = FxHashMap::default();
        map.insert("iphone".to_string(), 1);
        map.insert("smartphone".to_string(), 2);
        assert_eq!(map.get("iphone"), Some(&1));

        let mut set: FxHashSet<u32> = FxHashSet::default();
        for i in 0..1000 {
            set.insert(i);
        }
        assert_eq!(set.len(), 1000);
        assert!(set.contains(&999));
    }

    #[test]
    fn partial_chunks_are_distinguished() {
        // Strings whose 8-byte prefixes collide must still hash differently.
        assert_ne!(hash_one(&"abcdefgh1"), hash_one(&"abcdefgh2"));
        assert_ne!(hash_one(&"abcdefgh"), hash_one(&"abcdefgh\0"));
    }
}
