//! Entity collections, datasets and ground truth.

use serde::{Deserialize, Serialize};

use crate::entity::EntityProfile;
use crate::error::{Error, Result};
use crate::fxhash::FxHashSet;
use crate::ids::EntityId;

/// A named set of entity profiles.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EntityCollection {
    /// Human-readable collection name (e.g. "abt", "buy").
    pub name: String,
    /// The profiles in this collection.
    pub profiles: Vec<EntityProfile>,
}

impl EntityCollection {
    /// Creates a collection from a name and a list of profiles.
    pub fn new(name: impl Into<String>, profiles: Vec<EntityProfile>) -> Self {
        EntityCollection {
            name: name.into(),
            profiles,
        }
    }

    /// Number of profiles.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True if the collection holds no profiles.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }
}

/// Whether a dataset describes Clean-Clean ER (record linkage between two
/// duplicate-free sources) or Dirty ER (deduplication inside one source).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Two clean collections; only cross-source pairs can match.
    CleanClean,
    /// A single dirty collection; any pair may match.
    Dirty,
}

impl DatasetKind {
    /// True if two entities may be compared at all under this ER kind:
    /// cross-source for Clean-Clean (`split` is the E1/E2 boundary in the
    /// flattened id space), merely distinct for Dirty.
    ///
    /// The single home of the comparability rule — datasets, block
    /// collections (nested and CSR) and the streaming index all delegate
    /// here, so the batch and streaming engines can never disagree on it.
    #[inline]
    pub fn comparable(self, split: usize, a: EntityId, b: EntityId) -> bool {
        a != b
            && match self {
                DatasetKind::CleanClean => (a.index() < split) != (b.index() < split),
                DatasetKind::Dirty => true,
            }
    }
}

/// The set of true duplicate pairs.
///
/// Pairs are stored with the smaller [`EntityId`] first so lookups are
/// order-insensitive.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    pairs: Vec<(EntityId, EntityId)>,
    #[serde(skip)]
    index: FxHashSet<(EntityId, EntityId)>,
}

impl GroundTruth {
    /// Builds a ground truth from an iterator of duplicate pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (EntityId, EntityId)>) -> Self {
        let mut normalized: Vec<(EntityId, EntityId)> = pairs
            .into_iter()
            .map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
            .collect();
        normalized.sort_unstable();
        normalized.dedup();
        let index = normalized.iter().copied().collect();
        GroundTruth {
            pairs: normalized,
            index,
        }
    }

    /// Number of duplicate pairs, |D|.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if there are no duplicates.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Returns true if `(a, b)` (in either order) is a duplicate pair.
    pub fn is_match(&self, a: EntityId, b: EntityId) -> bool {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.index.contains(&key)
    }

    /// Iterates over the normalized duplicate pairs.
    pub fn pairs(&self) -> &[(EntityId, EntityId)] {
        &self.pairs
    }

    /// Rebuilds the lookup index; required after deserialisation because the
    /// index is not serialised.
    pub fn rebuild_index(&mut self) {
        self.index = self.pairs.iter().copied().collect();
    }
}

/// A complete ER dataset: all entity profiles (flattened into one id space),
/// the Clean-Clean split point if any, and the ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Dataset name (e.g. "AbtBuy", "D10K").
    pub name: String,
    /// Clean-Clean or Dirty ER.
    pub kind: DatasetKind,
    /// All profiles.  For Clean-Clean ER the first `split` profiles belong to
    /// collection E1 and the rest to E2.
    pub profiles: Vec<EntityProfile>,
    /// Boundary between E1 and E2 for Clean-Clean datasets; equals
    /// `profiles.len()` for Dirty datasets.
    pub split: usize,
    /// The true duplicate pairs.
    pub ground_truth: GroundTruth,
}

impl Dataset {
    /// Builds a Clean-Clean dataset from two collections and their ground
    /// truth expressed over the flattened id space.
    pub fn clean_clean(
        name: impl Into<String>,
        e1: EntityCollection,
        e2: EntityCollection,
        ground_truth: GroundTruth,
    ) -> Result<Self> {
        let split = e1.len();
        let mut profiles = e1.profiles;
        profiles.extend(e2.profiles);
        let dataset = Dataset {
            name: name.into(),
            kind: DatasetKind::CleanClean,
            profiles,
            split,
            ground_truth,
        };
        dataset.validate()?;
        Ok(dataset)
    }

    /// Builds a Dirty dataset from a single collection.
    pub fn dirty(
        name: impl Into<String>,
        entities: EntityCollection,
        ground_truth: GroundTruth,
    ) -> Result<Self> {
        let split = entities.len();
        let dataset = Dataset {
            name: name.into(),
            kind: DatasetKind::Dirty,
            profiles: entities.profiles,
            split,
            ground_truth,
        };
        dataset.validate()?;
        Ok(dataset)
    }

    fn validate(&self) -> Result<()> {
        if self.profiles.is_empty() {
            return Err(Error::InvalidDataset("dataset has no profiles".into()));
        }
        if self.split > self.profiles.len() {
            return Err(Error::InvalidDataset(format!(
                "split {} exceeds profile count {}",
                self.split,
                self.profiles.len()
            )));
        }
        let n = self.profiles.len() as u32;
        for &(a, b) in self.ground_truth.pairs() {
            if a.0 >= n || b.0 >= n {
                return Err(Error::InvalidDataset(format!(
                    "ground-truth pair ({a}, {b}) references a missing profile"
                )));
            }
            if a == b {
                return Err(Error::InvalidDataset(format!(
                    "ground-truth pair ({a}, {b}) is a self pair"
                )));
            }
            if self.kind == DatasetKind::CleanClean && !self.is_cross_source(a, b) {
                return Err(Error::InvalidDataset(format!(
                    "Clean-Clean ground-truth pair ({a}, {b}) is not cross-source"
                )));
            }
        }
        Ok(())
    }

    /// Total number of profiles across all sources.
    pub fn num_entities(&self) -> usize {
        self.profiles.len()
    }

    /// Number of profiles in E1 (Clean-Clean) or in the single collection.
    pub fn len_e1(&self) -> usize {
        self.split
    }

    /// Number of profiles in E2 (0 for Dirty datasets).
    pub fn len_e2(&self) -> usize {
        self.profiles.len() - self.split
    }

    /// Number of true duplicate pairs, |D|.
    pub fn num_duplicates(&self) -> usize {
        self.ground_truth.len()
    }

    /// Returns the profile for an entity id.
    pub fn profile(&self, id: EntityId) -> &EntityProfile {
        &self.profiles[id.index()]
    }

    /// True if `id` belongs to the first (E1) collection.
    pub fn in_first_source(&self, id: EntityId) -> bool {
        id.index() < self.split
    }

    /// True if `a` and `b` come from different sources (always true for Dirty
    /// datasets as long as the ids differ).
    pub fn is_cross_source(&self, a: EntityId, b: EntityId) -> bool {
        match self.kind {
            DatasetKind::CleanClean => self.in_first_source(a) != self.in_first_source(b),
            DatasetKind::Dirty => a != b,
        }
    }

    /// True if a pair of entities is allowed to be compared at all
    /// (cross-source for Clean-Clean, distinct for Dirty).
    pub fn is_comparable(&self, a: EntityId, b: EntityId) -> bool {
        self.kind.comparable(self.split, a, b)
    }

    /// Iterates over all entity ids.
    pub fn entity_ids(&self) -> impl Iterator<Item = EntityId> + '_ {
        (0..self.profiles.len() as u32).map(EntityId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(id: &str, value: &str) -> EntityProfile {
        EntityProfile::new(id).with_attribute("name", value)
    }

    fn small_clean_clean() -> Dataset {
        let e1 = EntityCollection::new(
            "a",
            vec![profile("a0", "apple iphone"), profile("a1", "samsung s20")],
        );
        let e2 = EntityCollection::new(
            "b",
            vec![
                profile("b0", "iphone 10 apple"),
                profile("b1", "samsung 20"),
            ],
        );
        let gt =
            GroundTruth::from_pairs(vec![(EntityId(0), EntityId(2)), (EntityId(1), EntityId(3))]);
        Dataset::clean_clean("toy", e1, e2, gt).unwrap()
    }

    #[test]
    fn clean_clean_construction() {
        let ds = small_clean_clean();
        assert_eq!(ds.len_e1(), 2);
        assert_eq!(ds.len_e2(), 2);
        assert_eq!(ds.num_entities(), 4);
        assert_eq!(ds.num_duplicates(), 2);
        assert!(ds.in_first_source(EntityId(1)));
        assert!(!ds.in_first_source(EntityId(2)));
    }

    #[test]
    fn ground_truth_is_order_insensitive() {
        let gt =
            GroundTruth::from_pairs(vec![(EntityId(5), EntityId(2)), (EntityId(2), EntityId(5))]);
        assert_eq!(gt.len(), 1);
        assert!(gt.is_match(EntityId(2), EntityId(5)));
        assert!(gt.is_match(EntityId(5), EntityId(2)));
        assert!(!gt.is_match(EntityId(1), EntityId(2)));
    }

    #[test]
    fn cross_source_checks() {
        let ds = small_clean_clean();
        assert!(ds.is_comparable(EntityId(0), EntityId(3)));
        assert!(!ds.is_comparable(EntityId(0), EntityId(1)));
        assert!(!ds.is_comparable(EntityId(2), EntityId(2)));
    }

    #[test]
    fn dirty_dataset_allows_any_distinct_pair() {
        let coll = EntityCollection::new(
            "d",
            vec![profile("0", "x"), profile("1", "x"), profile("2", "y")],
        );
        let gt = GroundTruth::from_pairs(vec![(EntityId(0), EntityId(1))]);
        let ds = Dataset::dirty("dirty", coll, gt).unwrap();
        assert_eq!(ds.kind, DatasetKind::Dirty);
        assert!(ds.is_comparable(EntityId(0), EntityId(2)));
        assert!(!ds.is_comparable(EntityId(1), EntityId(1)));
    }

    #[test]
    fn invalid_ground_truth_rejected() {
        let e1 = EntityCollection::new("a", vec![profile("a0", "x")]);
        let e2 = EntityCollection::new("b", vec![profile("b0", "x")]);
        // References entity 5, which does not exist.
        let gt = GroundTruth::from_pairs(vec![(EntityId(0), EntityId(5))]);
        assert!(Dataset::clean_clean("bad", e1, e2, gt).is_err());
    }

    #[test]
    fn same_source_ground_truth_rejected_for_clean_clean() {
        let e1 = EntityCollection::new("a", vec![profile("a0", "x"), profile("a1", "x")]);
        let e2 = EntityCollection::new("b", vec![profile("b0", "x")]);
        let gt = GroundTruth::from_pairs(vec![(EntityId(0), EntityId(1))]);
        assert!(Dataset::clean_clean("bad", e1, e2, gt).is_err());
    }

    #[test]
    fn empty_dataset_rejected() {
        let gt = GroundTruth::default();
        let empty = EntityCollection::default();
        assert!(Dataset::dirty("empty", empty, gt).is_err());
    }

    #[test]
    fn ground_truth_dedups() {
        let gt = GroundTruth::from_pairs(vec![
            (EntityId(0), EntityId(2)),
            (EntityId(2), EntityId(0)),
            (EntityId(0), EntityId(2)),
        ]);
        assert_eq!(gt.len(), 1);
    }
}
