//! Core entity model and shared primitives for the Generalized Supervised
//! Meta-blocking reproduction.
//!
//! The paper models an *entity profile* as a set of textual name/value pairs;
//! profiles are grouped into *entity collections* and Entity Resolution is
//! either Clean-Clean (two duplicate-free collections, find cross matches) or
//! Dirty (one collection, find internal matches).  This crate provides those
//! types plus the small utilities shared by every other crate: deterministic
//! hashing, tokenisation, seeded randomness and a common error type.

pub mod checksum;
pub mod collection;
pub mod entity;
pub mod error;
pub mod fxhash;
pub mod ids;
pub mod parallel;
pub mod rng;
pub mod tokenize;

pub use checksum::{crc64, Crc64};
pub use collection::{Dataset, DatasetKind, EntityCollection, GroundTruth};
pub use entity::{Attribute, EntityProfile};
pub use error::{Error, PersistError, PersistErrorClass, PersistResult, Result};
pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use ids::{BlockId, EntityId, PairId};
pub use parallel::{
    available_threads, fill_rows_parallel, for_each_task_with_state, map_ranges_parallel,
};
pub use rng::{derive_seed, seeded_rng};
pub use tokenize::{tokenize, tokenize_into};
