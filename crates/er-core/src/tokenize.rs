//! Schema-agnostic tokenisation.
//!
//! Token Blocking creates one block per distinct attribute-value token, so the
//! tokenizer defines the blocking keys.  Following the paper (and SparkER),
//! values are lower-cased and split on any non-alphanumeric character; empty
//! tokens are dropped.

/// Splits an attribute value into lowercase alphanumeric tokens.
pub fn tokenize(value: &str) -> Vec<String> {
    value
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

/// Tokenizes a value and appends the tokens into `out` without allocating a
/// fresh vector; used on the hot blocking path.
pub fn tokenize_into(value: &str, out: &mut Vec<String>) {
    for t in value.split(|c: char| !c.is_alphanumeric()) {
        if !t.is_empty() {
            out.push(t.to_lowercase());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_non_alphanumeric() {
        assert_eq!(
            tokenize("Apple iPhone-X (2018)"),
            vec!["apple", "iphone", "x", "2018"]
        );
    }

    #[test]
    fn lowercases() {
        assert_eq!(tokenize("Samsung S20"), vec!["samsung", "s20"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("--- ,,, !!!").is_empty());
    }

    #[test]
    fn tokenize_into_appends() {
        let mut out = vec!["seed".to_string()];
        tokenize_into("Huawei Mate 20", &mut out);
        assert_eq!(out, vec!["seed", "huawei", "mate", "20"]);
    }

    #[test]
    fn unicode_alphanumerics_are_kept() {
        assert_eq!(tokenize("café 42"), vec!["café", "42"]);
    }
}
