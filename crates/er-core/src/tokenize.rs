//! Schema-agnostic tokenisation.
//!
//! Token Blocking creates one block per distinct attribute-value token, so the
//! tokenizer defines the blocking keys.  Following the paper (and SparkER),
//! values are lower-cased and split on any non-alphanumeric character; empty
//! tokens are dropped.

/// Splits an attribute value into lowercase alphanumeric tokens.
pub fn tokenize(value: &str) -> Vec<String> {
    value
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

/// Tokenizes a value and appends the tokens into `out` without allocating a
/// fresh vector; used on the hot blocking path.
pub fn tokenize_into(value: &str, out: &mut Vec<String>) {
    for t in value.split(|c: char| !c.is_alphanumeric()) {
        if !t.is_empty() {
            out.push(t.to_lowercase());
        }
    }
}

/// Calls `f` with every lowercase token of `value`, in order, without
/// allocating per token: tokens that are already lowercase are passed as
/// borrowed slices of `value`, and tokens needing case folding are folded
/// into the reused `scratch` buffer (ASCII folding is done in place; only
/// non-ASCII tokens fall back to an allocating `str::to_lowercase`, whose
/// Unicode special cases — e.g. final sigma — must match [`tokenize`]
/// exactly).
///
/// Emits exactly the tokens of [`tokenize`], so the two drivers are
/// interchangeable; this one backs the parallel blocking engine.
pub fn for_each_token(value: &str, scratch: &mut String, mut f: impl FnMut(&str)) {
    for raw in value.split(|c: char| !c.is_alphanumeric()) {
        if raw.is_empty() {
            continue;
        }
        if raw.is_ascii() {
            if raw.bytes().any(|b| b.is_ascii_uppercase()) {
                scratch.clear();
                scratch.push_str(raw);
                scratch.make_ascii_lowercase();
                f(scratch);
            } else {
                f(raw);
            }
        } else {
            // `str::to_lowercase` (not per-char folding) so Unicode special
            // cases like final sigma match `tokenize` exactly; the one
            // allocation it makes is passed through without a scratch copy.
            f(&raw.to_lowercase());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_non_alphanumeric() {
        assert_eq!(
            tokenize("Apple iPhone-X (2018)"),
            vec!["apple", "iphone", "x", "2018"]
        );
    }

    #[test]
    fn lowercases() {
        assert_eq!(tokenize("Samsung S20"), vec!["samsung", "s20"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("--- ,,, !!!").is_empty());
    }

    #[test]
    fn tokenize_into_appends() {
        let mut out = vec!["seed".to_string()];
        tokenize_into("Huawei Mate 20", &mut out);
        assert_eq!(out, vec!["seed", "huawei", "mate", "20"]);
    }

    #[test]
    fn unicode_alphanumerics_are_kept() {
        assert_eq!(tokenize("café 42"), vec!["café", "42"]);
    }

    #[test]
    fn for_each_token_matches_tokenize() {
        for value in [
            "Apple iPhone-X (2018)",
            "Samsung S20",
            "",
            "--- ,,, !!!",
            "café 42 CAFÉ Straße ΣΟΦΟΣ",
            "already lowercase tokens",
        ] {
            let mut scratch = String::new();
            let mut streamed = Vec::new();
            for_each_token(value, &mut scratch, |t| streamed.push(t.to_string()));
            assert_eq!(streamed, tokenize(value), "value {value:?}");
        }
    }
}
