//! Deterministic random number generation.
//!
//! Every experiment in the paper averages over multiple runs with different
//! seeds for the training-pair sampling.  All randomness in this workspace is
//! funnelled through explicitly seeded generators so that tables and figures
//! are reproducible bit-for-bit.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a deterministic RNG from a 64-bit seed.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a base seed and a stream index.
///
/// Used when one experiment needs several independent deterministic streams
/// (e.g. one per repetition) without the streams overlapping.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    // SplitMix64 step: a well-mixed, cheap seed derivation.
    let mut z = base.wrapping_add(0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = seeded_rng(7);
        let mut b = seeded_rng(7);
        let va: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derive_seed_streams_are_distinct() {
        let s: Vec<u64> = (0..100).map(|i| derive_seed(42, i)).collect();
        let unique: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(unique.len(), 100);
    }

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(5, 3), derive_seed(5, 3));
        assert_ne!(derive_seed(5, 3), derive_seed(6, 3));
    }
}
