//! Strongly typed identifiers.
//!
//! Identifiers are plain `u32` indices into the owning container.  Using
//! newtypes keeps entity ids, block ids and pair ids from being mixed up while
//! staying `Copy` and cheap to hash (see the performance notes on smaller
//! integer types).

use serde::{Deserialize, Serialize};

/// Index of an entity profile inside a [`crate::Dataset`].
///
/// For Clean-Clean ER the two source collections share one id space: ids
/// `0..|E1|` belong to the first collection and `|E1|..|E1|+|E2|` to the
/// second.  This mirrors how meta-blocking implementations flatten the input
/// and lets blocks hold a single homogeneous entity list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EntityId(pub u32);

impl EntityId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for EntityId {
    #[inline]
    fn from(v: u32) -> Self {
        EntityId(v)
    }
}

impl From<usize> for EntityId {
    #[inline]
    fn from(v: usize) -> Self {
        EntityId(v as u32)
    }
}

impl std::fmt::Display for EntityId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Index of a block inside a block collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for BlockId {
    #[inline]
    fn from(v: usize) -> Self {
        BlockId(v as u32)
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Index of a candidate pair inside a candidate-pair set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PairId(pub u32);

impl PairId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for PairId {
    #[inline]
    fn from(v: usize) -> Self {
        PairId(v as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_id_roundtrip() {
        let id = EntityId::from(42usize);
        assert_eq!(id.index(), 42);
        assert_eq!(EntityId(42), id);
        assert_eq!(id.to_string(), "e42");
    }

    #[test]
    fn block_id_roundtrip() {
        let id = BlockId::from(7usize);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "b7");
    }

    #[test]
    fn pair_id_ordering() {
        assert!(PairId(1) < PairId(2));
        assert_eq!(PairId::from(3usize).index(), 3);
    }

    #[test]
    fn entity_id_from_u32() {
        assert_eq!(EntityId::from(9u32), EntityId(9));
    }
}
