//! Corruption coverage for arena-encoded block snapshots: every flipped or
//! truncated region of a [`CsrBlockCollection`]/[`BlockStats`] arena frame
//! must surface as a clean typed error, and a corrupted generation inside an
//! [`er_persist::GenerationStore`] must fall back to the previous generation
//! and recover a **bit-identical** collection.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use er_blocking::{Block, BlockCollection, BlockStats, CsrBlockCollection};
use er_core::{DatasetKind, EntityId, PersistError};
use er_persist::{
    decode_from_slice, decode_snapshot_payload, encode_to_vec, read_snapshot, snapshot_path,
    write_snapshot, GenerationStore, RetryPolicy, StdVfs,
};

const TAG: u32 = 0x4152_4e41; // "ARNA"
const FINGERPRINT: u64 = 0xb10c_a4e4_a000_0001;

fn scratch(test: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("arena-{test}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn ids(v: &[u32]) -> Vec<EntityId> {
    v.iter().copied().map(EntityId).collect()
}

fn sample(name: &str) -> CsrBlockCollection {
    CsrBlockCollection::from_block_collection(&BlockCollection {
        dataset_name: name.into(),
        kind: DatasetKind::CleanClean,
        split: 3,
        num_entities: 7,
        blocks: vec![
            Block::new("alpha", ids(&[0, 3, 4])),
            Block::new("beta", ids(&[0, 1, 3, 5])),
            Block::new("gamma", ids(&[1, 2, 4, 5, 6])),
            Block::new("delta", ids(&[2, 6])),
        ],
    })
}

fn assert_bit_identical(a: &CsrBlockCollection, b: &CsrBlockCollection) {
    assert_eq!(a.dataset_name, b.dataset_name);
    assert_eq!(a.kind, b.kind);
    assert_eq!(a.split, b.split);
    assert_eq!(a.num_entities, b.num_entities);
    assert_eq!(a.num_blocks(), b.num_blocks());
    for blk in 0..a.num_blocks() {
        assert_eq!(a.key(blk), b.key(blk));
        assert_eq!(a.entities(blk), b.entities(blk));
        assert_eq!(a.first_source_count(blk), b.first_source_count(blk));
    }
    // The ultimate arbiter: identical re-encoded bytes.
    assert_eq!(encode_to_vec(a), encode_to_vec(b));
}

/// Every single-byte flip anywhere in a snapshotted arena file is a typed
/// error — either the outer snapshot checksum, the arena's own trailer, or
/// the invariant sweep, but never a panic or a silently different value.
#[test]
fn every_flipped_byte_of_an_arena_snapshot_is_typed() {
    let dir = scratch("flip");
    let path = dir.join("blocks.gsmb");
    let csr = sample("flip");
    write_snapshot(&path, TAG, FINGERPRINT, &csr).unwrap();
    let clean = fs::read(&path).unwrap();

    let baseline: (CsrBlockCollection, u64) = read_snapshot(&path, TAG, Some(FINGERPRINT)).unwrap();
    assert_bit_identical(&baseline.0, &csr);

    for at in 0..clean.len() {
        let mut bad = clean.clone();
        bad[at] ^= 0x20;
        fs::write(&path, &bad).unwrap();
        let err = match read_snapshot::<CsrBlockCollection>(&path, TAG, Some(FINGERPRINT)) {
            Err(err) => err,
            Ok(_) => panic!("flip at {at} decoded successfully"),
        };
        assert!(
            matches!(
                err,
                PersistError::ChecksumMismatch { .. }
                    | PersistError::Truncated { .. }
                    | PersistError::BadMagic { .. }
                    | PersistError::Corrupt(_)
                    | PersistError::VersionMismatch { .. }
                    | PersistError::FingerprintMismatch { .. }
            ),
            "flip at {at}: {err:?}"
        );
    }
}

/// Every truncation point of a bare arena frame (no outer snapshot framing)
/// exercises the arena's own length and checksum checks.
#[test]
fn every_truncation_of_a_bare_arena_frame_is_typed() {
    let csr = sample("truncate");
    let stats = BlockStats::from_csr(&csr);
    for clean in [encode_to_vec(&csr), encode_to_vec(&stats)] {
        for cut in 0..clean.len() {
            let err = match decode_from_slice::<CsrBlockCollection>(&clean[..cut]) {
                Err(err) => err,
                Ok(_) => panic!("cut at {cut} decoded successfully"),
            };
            assert!(
                matches!(
                    err,
                    PersistError::Truncated { .. }
                        | PersistError::ChecksumMismatch { .. }
                        | PersistError::BadMagic { .. }
                        | PersistError::Corrupt(_)
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }
}

/// A corrupted committed generation falls back to the previous one: the
/// recovered collection is bit-identical to what that generation held, and
/// the recovery is flagged degraded with the bad file quarantined.
#[test]
fn generation_fallback_recovers_the_previous_arena_bit_identically() {
    let dir = scratch("fallback");
    let vfs = Arc::new(StdVfs);
    let gen0 = sample("generation-zero");

    let (mut store, _wal) = GenerationStore::create(
        vfs.clone(),
        RetryPolicy::default(),
        &dir,
        TAG,
        FINGERPRINT,
        &gen0,
    )
    .unwrap();

    // Commit generation 1 with a different collection (a filtered subset).
    let gen1 = gen0.retain(|b| b != 2);
    let _wal = store.commit(TAG, &gen1).unwrap();
    drop(store);

    // Clean recovery sees generation 1.
    let (_store, recovered) = GenerationStore::recover(
        vfs.clone(),
        RetryPolicy::default(),
        &dir,
        TAG,
        Some(FINGERPRINT),
    )
    .unwrap();
    assert_eq!(recovered.generation, 1);
    assert!(!recovered.degraded);
    let back: CsrBlockCollection = decode_snapshot_payload(&recovered.payload).unwrap();
    assert_bit_identical(&back, &gen1);

    // Corrupt generation 1's snapshot payload on disk.
    let path = snapshot_path(&dir, 1);
    let mut bytes = fs::read(&path).unwrap();
    let at = bytes.len() - 9; // inside the arena body
    bytes[at] ^= 0x80;
    fs::write(&path, &bytes).unwrap();

    // Recovery falls back to generation 0 and adopts it bit-identically.
    let (_store, recovered) =
        GenerationStore::recover(vfs, RetryPolicy::default(), &dir, TAG, Some(FINGERPRINT))
            .unwrap();
    assert_eq!(recovered.generation, 0);
    assert!(recovered.degraded);
    assert_eq!(recovered.report.generations_tried, 2);
    assert!(
        !recovered.report.quarantined.is_empty(),
        "the corrupt snapshot must be quarantined"
    );
    let back: CsrBlockCollection = decode_snapshot_payload(&recovered.payload).unwrap();
    assert_bit_identical(&back, &gen0);
}

/// Stats snapshots ride the same generational machinery: a recovered
/// `BlockStats` arena drives candidate generation identically.
#[test]
fn recovered_stats_arena_is_operationally_identical() {
    let dir = scratch("stats");
    let vfs = Arc::new(StdVfs);
    let csr = sample("stats");
    let stats = BlockStats::from_csr(&csr);

    let (_store, _wal) = GenerationStore::create(
        vfs.clone(),
        RetryPolicy::default(),
        &dir,
        TAG,
        FINGERPRINT,
        &stats,
    )
    .unwrap();
    let (_store, recovered) =
        GenerationStore::recover(vfs, RetryPolicy::default(), &dir, TAG, Some(FINGERPRINT))
            .unwrap();
    let back: BlockStats = decode_snapshot_payload(&recovered.payload).unwrap();
    assert_eq!(encode_to_vec(&back), encode_to_vec(&stats));

    let a = er_blocking::CandidatePairs::from_stats(&stats, 2);
    let b = er_blocking::CandidatePairs::from_stats(&back, 2);
    assert_eq!(a.pairs(), b.pairs());
    assert_eq!(a.entity_candidate_counts(), b.entity_candidate_counts());
}
