//! A block collection: the ordered set of blocks produced for a dataset.

use er_core::{BlockId, DatasetKind, EntityId};
use serde::{Deserialize, Serialize};

use crate::block::Block;

/// The block collection `B` together with the dataset-level context needed to
/// interpret it (Clean-Clean split and entity count).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockCollection {
    /// Name of the dataset the blocks were extracted from.
    pub dataset_name: String,
    /// Clean-Clean or Dirty ER.
    pub kind: DatasetKind,
    /// E1/E2 boundary in the flattened entity id space.
    pub split: usize,
    /// Total number of entity profiles in the dataset.
    pub num_entities: usize,
    /// The blocks, in deterministic (key-sorted) order.
    pub blocks: Vec<Block>,
}

impl BlockCollection {
    /// Number of blocks, |B|.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// True if there are no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Returns a block by id.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Number of comparisons in one block, ||b||.
    pub fn block_comparisons(&self, id: BlockId) -> u64 {
        self.blocks[id.index()].num_comparisons(self.kind, self.split)
    }

    /// Aggregate comparison cardinality ||B|| = Σ_b ||b|| (redundant pairs
    /// counted once per block).
    pub fn total_comparisons(&self) -> u64 {
        self.blocks
            .iter()
            .map(|b| b.num_comparisons(self.kind, self.split))
            .sum()
    }

    /// Σ_b |b|: the sum of block sizes.  Used by the cardinality-based pruning
    /// algorithms to derive their thresholds (`K = Σ|b|/2` for CEP and
    /// `k = max(1, Σ|b| / (|E1|+|E2|))` for CNP).
    pub fn sum_block_sizes(&self) -> u64 {
        self.blocks.iter().map(|b| b.size() as u64).sum()
    }

    /// Average number of block assignments per entity — the redundancy level
    /// of the collection.
    pub fn avg_blocks_per_entity(&self) -> f64 {
        if self.num_entities == 0 {
            return 0.0;
        }
        self.sum_block_sizes() as f64 / self.num_entities as f64
    }

    /// Iterates blocks with their ids.
    pub fn iter_with_ids(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::from(i), b))
    }

    /// Returns a copy of the collection containing only blocks satisfying
    /// `keep`, preserving order.
    ///
    /// This clones every surviving block (key `String` included); when the
    /// collection is owned, prefer [`BlockCollection::retain_blocks_in_place`],
    /// and on the hot path use the arena-backed
    /// [`crate::CsrBlockCollection::retain`], which never clones a key.
    pub fn retain_blocks(&self, mut keep: impl FnMut(&Block) -> bool) -> BlockCollection {
        BlockCollection {
            dataset_name: self.dataset_name.clone(),
            kind: self.kind,
            split: self.split,
            num_entities: self.num_entities,
            blocks: self.blocks.iter().filter(|b| keep(b)).cloned().collect(),
        }
    }

    /// Drops every block not satisfying `keep`, preserving order, without
    /// cloning any surviving block or its key.
    pub fn retain_blocks_in_place(&mut self, mut keep: impl FnMut(&Block) -> bool) {
        self.blocks.retain(|b| keep(b));
    }

    /// Lifts the collection into the flat CSR representation (see
    /// [`crate::CsrBlockCollection`]).
    pub fn to_csr(&self) -> crate::CsrBlockCollection {
        crate::CsrBlockCollection::from_block_collection(self)
    }

    /// True if the pair of entities can be compared under this collection's ER
    /// kind (cross-source for Clean-Clean, distinct for Dirty).
    pub fn is_comparable(&self, a: EntityId, b: EntityId) -> bool {
        self.kind.comparable(self.split, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    fn sample() -> BlockCollection {
        BlockCollection {
            dataset_name: "toy".into(),
            kind: DatasetKind::CleanClean,
            split: 2,
            num_entities: 5,
            blocks: vec![
                Block::new("apple", ids(&[0, 2])),
                Block::new("samsung", ids(&[1, 3, 4])),
                Block::new("phone", ids(&[0, 1, 2, 3])),
            ],
        }
    }

    #[test]
    fn aggregate_cardinalities() {
        let bc = sample();
        assert_eq!(bc.num_blocks(), 3);
        // apple: 1*1, samsung: 1*2, phone: 2*2
        assert_eq!(bc.total_comparisons(), 1 + 2 + 4);
        assert_eq!(bc.sum_block_sizes(), 2 + 3 + 4);
        assert!((bc.avg_blocks_per_entity() - 9.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn block_lookup_by_id() {
        let bc = sample();
        assert_eq!(bc.block(BlockId(1)).key, "samsung");
        assert_eq!(bc.block_comparisons(BlockId(2)), 4);
    }

    #[test]
    fn retain_blocks_filters() {
        let bc = sample();
        let small = bc.retain_blocks(|b| b.size() < 4);
        assert_eq!(small.num_blocks(), 2);
        assert_eq!(small.blocks[0].key, "apple");
    }

    #[test]
    fn retain_blocks_in_place_matches_cloning_retain() {
        let bc = sample();
        let cloned = bc.retain_blocks(|b| b.size() < 4);
        let mut in_place = sample();
        in_place.retain_blocks_in_place(|b| b.size() < 4);
        assert_eq!(in_place.blocks, cloned.blocks);
    }

    #[test]
    fn csr_round_trip_via_collection() {
        let bc = sample();
        let back = bc.to_csr().to_block_collection();
        assert_eq!(back.blocks, bc.blocks);
    }

    #[test]
    fn comparability_follows_kind() {
        let bc = sample();
        assert!(bc.is_comparable(EntityId(0), EntityId(3)));
        assert!(!bc.is_comparable(EntityId(0), EntityId(1)));
        let mut dirty = sample();
        dirty.kind = DatasetKind::Dirty;
        assert!(dirty.is_comparable(EntityId(0), EntityId(1)));
        assert!(!dirty.is_comparable(EntityId(1), EntityId(1)));
    }
}
