//! Suffix Arrays Blocking.
//!
//! Each token contributes every suffix of length at least `min_length`; a
//! block is created per suffix shared by at least two entities.  Suffix-based
//! signatures tolerate prefix noise (e.g. truncated product codes) and are the
//! third standard redundancy-positive blocking method the paper cites.  The
//! classic formulation also discards suffixes that occur in more than
//! `max_block_size` entities, which this implementation supports directly.

use er_core::Dataset;

use crate::builder::{build_blocks, SuffixKeys};
use crate::collection::BlockCollection;
use crate::csr::CsrBlockCollection;

/// Configuration of Suffix Arrays Blocking.
#[derive(Debug, Clone, Copy)]
pub struct SuffixArrayConfig {
    /// Minimum suffix length considered a signature.
    pub min_length: usize,
    /// Suffixes occurring in more than this many entities are discarded
    /// (frequent suffixes carry no distinguishing information).
    pub max_block_size: usize,
}

impl Default for SuffixArrayConfig {
    fn default() -> Self {
        SuffixArrayConfig {
            min_length: 4,
            max_block_size: 50,
        }
    }
}

/// Emits the suffixes of a token that are at least `min_length` characters
/// long (the whole token included).
pub fn suffixes(token: &str, min_length: usize) -> Vec<String> {
    let chars: Vec<char> = token.chars().collect();
    if chars.len() < min_length {
        return Vec::new();
    }
    (0..=chars.len() - min_length)
        .map(|start| chars[start..].iter().collect())
        .collect()
}

/// Builds a Suffix Arrays block collection for a dataset through the parallel
/// [`crate::builder`] engine, returning the nested compatibility view
/// (bit-identical to the sequential
/// [`crate::reference::suffix_array_blocking`] builder).
///
/// # Panics
/// Panics if `config.min_length < 2` or `config.max_block_size < 2`.
pub fn suffix_array_blocking(dataset: &Dataset, config: SuffixArrayConfig) -> BlockCollection {
    suffix_array_blocking_csr(dataset, config, er_core::available_threads()).to_block_collection()
}

/// Builds a Suffix Arrays block collection as a CSR collection with up to
/// `threads` workers.
///
/// # Panics
/// Panics if `config.min_length < 2` or `config.max_block_size < 2`.
pub fn suffix_array_blocking_csr(
    dataset: &Dataset,
    config: SuffixArrayConfig,
    threads: usize,
) -> CsrBlockCollection {
    build_blocks(
        dataset,
        &SuffixKeys::new(config.min_length, config.max_block_size),
        threads,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::{EntityCollection, EntityId, EntityProfile, GroundTruth};

    fn dataset() -> Dataset {
        let e1 = EntityCollection::new(
            "a",
            vec![
                EntityProfile::new("a0").with_attribute("code", "xk472901"),
                EntityProfile::new("a1").with_attribute("code", "zz999111"),
            ],
        );
        let e2 = EntityCollection::new(
            "b",
            vec![
                // Same product code with a truncated prefix.
                EntityProfile::new("b0").with_attribute("code", "472901"),
                EntityProfile::new("b1").with_attribute("code", "zz999111"),
            ],
        );
        let gt =
            GroundTruth::from_pairs(vec![(EntityId(0), EntityId(2)), (EntityId(1), EntityId(3))]);
        Dataset::clean_clean("suffixes", e1, e2, gt).unwrap()
    }

    #[test]
    fn suffixes_respect_minimum_length() {
        assert_eq!(suffixes("abcde", 3), vec!["abcde", "bcde", "cde"]);
        assert_eq!(suffixes("ab", 3), Vec::<String>::new());
        assert_eq!(suffixes("abc", 3), vec!["abc"]);
    }

    #[test]
    fn prefix_truncation_is_tolerated() {
        let ds = dataset();
        let blocks = suffix_array_blocking(&ds, SuffixArrayConfig::default());
        let shares = blocks
            .blocks
            .iter()
            .any(|b| b.contains(EntityId(0)) && b.contains(EntityId(2)));
        assert!(shares, "truncated code should share a suffix block");
    }

    #[test]
    fn oversized_suffix_blocks_are_discarded() {
        // Give every entity the same long token so its suffixes appear in all
        // four profiles; with max_block_size = 3 those blocks must vanish.
        let make = |name: &str| EntityProfile::new(name).with_attribute("t", "commonsuffix");
        let e1 = EntityCollection::new("a", vec![make("a0"), make("a1")]);
        let e2 = EntityCollection::new("b", vec![make("b0"), make("b1")]);
        let ds = Dataset::clean_clean("cap", e1, e2, GroundTruth::default()).unwrap();
        let config = SuffixArrayConfig {
            min_length: 4,
            max_block_size: 3,
        };
        let blocks = suffix_array_blocking(&ds, config);
        assert!(blocks.is_empty());
    }

    #[test]
    fn deterministic_output() {
        let ds = dataset();
        let a = suffix_array_blocking(&ds, SuffixArrayConfig::default());
        let b = suffix_array_blocking(&ds, SuffixArrayConfig::default());
        assert_eq!(a.blocks, b.blocks);
    }

    #[test]
    #[should_panic(expected = "min_length")]
    fn invalid_config_panics() {
        let ds = dataset();
        let _ = suffix_array_blocking(
            &ds,
            SuffixArrayConfig {
                min_length: 1,
                max_block_size: 10,
            },
        );
    }
}
