//! Arena snapshot layout for the CSR block structures.
//!
//! The classic codec in [`crate::persist`] walked a [`CsrBlockCollection`]
//! block by block, emitting one length-prefixed entity list per block and
//! re-assembling the CSR arrays one element at a time on recovery.  This
//! module replaces that with a **contiguous arena** layout: the snapshot
//! bytes of each flat array are exactly its little-endian in-memory bytes,
//! laid out back to back with 8-byte alignment, so recovery is *validate +
//! adopt* — one CRC-64 pass over the frame, one bulk conversion per section,
//! one invariant sweep — instead of a per-element decode loop.
//!
//! # Frame layout
//!
//! ```text
//! ┌─────────────┬──────────┬───────────────────────────────┬──────────┐
//! │ magic (8 B) │ body len │ body (8-byte-aligned sections)│ CRC-64   │
//! │ "GSMBCSRA"/ │ u64      │ version, scalars, sections    │ u64 over │
//! │ "GSMBSTAA"  │          │                               │ the body │
//! └─────────────┴──────────┴───────────────────────────────┴──────────┘
//! ```
//!
//! Every section starts with a `u64` element count and is zero-padded to the
//! next 8-byte boundary **relative to the body start**.  The body itself
//! begins 16 bytes into the frame, so in a standalone arena file every
//! section sits 8-byte aligned in the file — the layout is mmap-ready: a
//! reader that maps the file can point `&[u32]`/`&[u64]` views at the
//! section bytes directly after checking the trailer.  (The in-tree decoder
//! stays safe Rust and copies each section with one bulk `chunks_exact`
//! conversion; adopting the mapping in place is a format property, not a
//! code dependency.)
//!
//! # Validation
//!
//! The CRC-64 trailer catches random corruption before any field is looked
//! at ([`PersistError::ChecksumMismatch`]).  Bytes that pass the checksum
//! but encode an impossible structure — non-monotone offsets, out-of-range
//! ids, unsorted entity lists — are rejected with
//! [`PersistError::Corrupt`]; a snapshot never becomes observable state
//! unless every CSR invariant holds.

use std::sync::Arc;

use er_core::{crc64, BlockId, DatasetKind, EntityId, PersistError, PersistResult};
use er_persist::{Reader, Writer};

use crate::csr::{CsrBlockCollection, KeyStore};
use crate::stats::BlockStats;

/// Magic bytes of a [`CsrBlockCollection`] arena frame.
pub const CSR_ARENA_MAGIC: [u8; 8] = *b"GSMBCSRA";

/// Magic bytes of a [`BlockStats`] arena frame.
pub const STATS_ARENA_MAGIC: [u8; 8] = *b"GSMBSTAA";

/// Arena layout version written and accepted by this build.
pub const ARENA_VERSION: u32 = 1;

/// Pads the body writer with zeros to the next 8-byte boundary relative to
/// the body start.
fn pad8(body: &mut Writer) {
    while !body.len().is_multiple_of(8) {
        body.write_u8(0);
    }
}

/// Writes a length-prefixed byte section, zero-padded to 8 bytes.
fn write_byte_section(body: &mut Writer, bytes: &[u8]) {
    body.write_u64(bytes.len() as u64);
    body.write_raw(bytes);
    pad8(body);
}

/// Writes a `u32` section: element count, raw little-endian elements, pad.
fn write_u32_section(body: &mut Writer, data: &[u32]) {
    body.write_u64(data.len() as u64);
    for &v in data {
        body.write_u32(v);
    }
    pad8(body);
}

/// Writes a `u64` section: element count, raw little-endian elements.
/// (Already 8-aligned; no pad needed.)
fn write_u64_section(body: &mut Writer, data: &[u64]) {
    body.write_u64(data.len() as u64);
    for &v in data {
        body.write_u64(v);
    }
}

/// A bounds-checked cursor over one arena body that knows its absolute
/// position, so padding can be skipped without guessing.
struct BodyReader<'a> {
    r: Reader<'a>,
    total: usize,
}

impl<'a> BodyReader<'a> {
    fn new(body: &'a [u8]) -> Self {
        BodyReader {
            r: Reader::new(body),
            total: body.len(),
        }
    }

    fn pos(&self) -> usize {
        self.total - self.r.remaining()
    }

    /// Skips zero padding to the next 8-byte boundary, rejecting non-zero
    /// filler (a flipped pad byte is corruption like any other).
    fn skip_pad(&mut self) -> PersistResult<()> {
        let pad = (8 - self.pos() % 8) % 8;
        if pad > 0 {
            let bytes = self.r.read_raw(pad)?;
            if bytes.iter().any(|&b| b != 0) {
                return Err(PersistError::Corrupt(
                    "arena section padding is not zero".into(),
                ));
            }
        }
        Ok(())
    }

    fn read_section_len(&mut self, what: &str) -> PersistResult<usize> {
        let len = self.r.read_u64()?;
        usize::try_from(len).map_err(|_| {
            PersistError::Corrupt(format!("arena section {what} length exceeds usize"))
        })
    }

    /// Reads a byte section (length prefix + raw bytes + pad).
    fn read_byte_section(&mut self, what: &str) -> PersistResult<&'a [u8]> {
        let len = self.read_section_len(what)?;
        let bytes = self.r.read_raw(len)?;
        self.skip_pad()?;
        Ok(bytes)
    }

    /// Reads a `u32` section with one bulk conversion.
    fn read_u32_section(&mut self, what: &str) -> PersistResult<Vec<u32>> {
        let len = self.read_section_len(what)?;
        let Some(byte_len) = len.checked_mul(4) else {
            return Err(PersistError::Corrupt(format!(
                "arena section {what} length overflows"
            )));
        };
        let bytes = self.r.read_raw(byte_len)?;
        let out = bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        self.skip_pad()?;
        Ok(out)
    }

    /// Reads a `u64` section with one bulk conversion.
    fn read_u64_section(&mut self, what: &str) -> PersistResult<Vec<u64>> {
        let len = self.read_section_len(what)?;
        let Some(byte_len) = len.checked_mul(8) else {
            return Err(PersistError::Corrupt(format!(
                "arena section {what} length overflows"
            )));
        };
        let bytes = self.r.read_raw(byte_len)?;
        let out = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        self.skip_pad()?;
        Ok(out)
    }

    fn expect_end(&self) -> PersistResult<()> {
        self.r.expect_end()
    }
}

/// Frames a finished body: magic, body length, body bytes, CRC-64 trailer.
fn write_frame(w: &mut Writer, magic: &[u8; 8], body: Writer) {
    let body = body.into_bytes();
    w.write_raw(magic);
    w.write_u64(body.len() as u64);
    let digest = crc64(&body);
    w.write_raw(&body);
    w.write_u64(digest);
}

/// Reads and checksums one frame, returning the verified body slice.
fn read_frame<'a>(r: &mut Reader<'a>, magic: &[u8; 8], what: &str) -> PersistResult<&'a [u8]> {
    let found = r.read_raw(8)?;
    if found != magic {
        return Err(PersistError::BadMagic {
            context: format!("{what} arena frame"),
        });
    }
    let len = usize::try_from(r.read_u64()?)
        .map_err(|_| PersistError::Corrupt(format!("{what} arena length exceeds usize")))?;
    let body = r.read_raw(len)?;
    let expected = r.read_u64()?;
    let found = crc64(body);
    if found != expected {
        return Err(PersistError::ChecksumMismatch {
            context: format!("{what} arena body"),
            expected,
            found,
        });
    }
    Ok(body)
}

fn check_version(body: &mut BodyReader<'_>) -> PersistResult<()> {
    let version = body.r.read_u32()?;
    if version != ARENA_VERSION {
        return Err(PersistError::VersionMismatch {
            found: version,
            supported: ARENA_VERSION,
        });
    }
    let reserved = body.r.read_u32()?;
    if reserved != 0 {
        return Err(PersistError::Corrupt(format!(
            "arena reserved header word must be zero, found {reserved}"
        )));
    }
    Ok(())
}

fn kind_to_u64(kind: DatasetKind) -> u64 {
    match kind {
        DatasetKind::CleanClean => 0,
        DatasetKind::Dirty => 1,
    }
}

fn kind_from_u64(tag: u64) -> PersistResult<DatasetKind> {
    match tag {
        0 => Ok(DatasetKind::CleanClean),
        1 => Ok(DatasetKind::Dirty),
        other => Err(PersistError::Corrupt(format!(
            "unknown dataset-kind tag {other} in arena header"
        ))),
    }
}

/// `offsets` must be a non-empty, monotone CSR offset array starting at 0
/// and ending exactly at `arena_len`.
fn check_offsets(offsets: &[u32], arena_len: usize, what: &str) -> PersistResult<()> {
    if offsets.first() != Some(&0) {
        return Err(PersistError::Corrupt(format!(
            "{what} offsets must start at zero"
        )));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(PersistError::Corrupt(format!(
            "{what} offsets are not monotone"
        )));
    }
    if offsets.last().copied().unwrap_or(0) as usize != arena_len {
        return Err(PersistError::Corrupt(format!(
            "{what} offsets end at {} but the arena holds {arena_len} elements",
            offsets.last().copied().unwrap_or(0)
        )));
    }
    Ok(())
}

/// Encodes a [`CsrBlockCollection`] as one arena frame.
pub(crate) fn encode_csr(csr: &CsrBlockCollection, w: &mut Writer) {
    let mut body = Writer::with_capacity(
        64 + csr.dataset_name.len()
            + csr.keys.text.len()
            + 4 * (csr.keys.offsets.len()
                + csr.key_ids.len() * 2
                + csr.entity_offsets.len()
                + csr.entities.len()),
    );
    body.write_u32(ARENA_VERSION);
    body.write_u32(0);
    body.write_u64(kind_to_u64(csr.kind));
    body.write_u64(csr.split as u64);
    body.write_u64(csr.num_entities as u64);
    write_byte_section(&mut body, csr.dataset_name.as_bytes());
    write_byte_section(&mut body, csr.keys.text.as_bytes());
    write_u32_section(&mut body, &csr.keys.offsets);
    write_u32_section(&mut body, &csr.key_ids);
    write_u32_section(&mut body, &csr.entity_offsets);
    body.write_u64(csr.entities.len() as u64);
    for &e in &csr.entities {
        body.write_u32(e.0);
    }
    pad8(&mut body);
    write_u32_section(&mut body, &csr.first_counts);
    write_frame(w, &CSR_ARENA_MAGIC, body);
}

/// Decodes, validates and adopts a [`CsrBlockCollection`] arena frame.
pub(crate) fn decode_csr(r: &mut Reader<'_>) -> PersistResult<CsrBlockCollection> {
    let body = read_frame(r, &CSR_ARENA_MAGIC, "block collection")?;
    let mut body = BodyReader::new(body);
    check_version(&mut body)?;
    let kind = kind_from_u64(body.r.read_u64()?)?;
    let split = usize::try_from(body.r.read_u64()?)
        .map_err(|_| PersistError::Corrupt("arena split exceeds usize".into()))?;
    let num_entities = usize::try_from(body.r.read_u64()?)
        .map_err(|_| PersistError::Corrupt("arena entity count exceeds usize".into()))?;
    let dataset_name = String::from_utf8(body.read_byte_section("dataset name")?.to_vec())
        .map_err(|_| PersistError::Corrupt("dataset name is not valid UTF-8".into()))?;
    let key_text = String::from_utf8(body.read_byte_section("key text")?.to_vec())
        .map_err(|_| PersistError::Corrupt("key arena is not valid UTF-8".into()))?;
    let key_offsets = body.read_u32_section("key offsets")?;
    let key_ids = body.read_u32_section("key ids")?;
    let entity_offsets = body.read_u32_section("entity offsets")?;
    let entities: Vec<EntityId> = body
        .read_u32_section("entities")?
        .into_iter()
        .map(EntityId)
        .collect();
    let first_counts = body.read_u32_section("first-source counts")?;
    body.expect_end()?;

    // Key arena invariants: monotone offsets covering the text exactly, each
    // cut on a character boundary.
    if key_offsets.is_empty() {
        return Err(PersistError::Corrupt("key offsets section is empty".into()));
    }
    check_offsets(&key_offsets, key_text.len(), "key store")?;
    if key_offsets
        .iter()
        .any(|&o| !key_text.is_char_boundary(o as usize))
    {
        return Err(PersistError::Corrupt(
            "key offset cuts a UTF-8 character".into(),
        ));
    }
    let num_keys = key_offsets.len() - 1;

    // Block invariants: matching per-block array lengths, in-range key ids,
    // sorted in-range entity lists, sane first-source counts.
    if entity_offsets.is_empty() {
        return Err(PersistError::Corrupt(
            "entity offsets section is empty".into(),
        ));
    }
    let num_blocks = entity_offsets.len() - 1;
    if key_ids.len() != num_blocks || first_counts.len() != num_blocks {
        return Err(PersistError::Corrupt(format!(
            "arena claims {num_blocks} blocks but carries {} key ids and {} first counts",
            key_ids.len(),
            first_counts.len()
        )));
    }
    check_offsets(&entity_offsets, entities.len(), "entity CSR")?;
    for b in 0..num_blocks {
        if key_ids[b] as usize >= num_keys {
            return Err(PersistError::Corrupt(format!(
                "block {b} references key id {} beyond the {num_keys} stored keys",
                key_ids[b]
            )));
        }
        let members = &entities[entity_offsets[b] as usize..entity_offsets[b + 1] as usize];
        if first_counts[b] as usize > members.len() {
            return Err(PersistError::Corrupt(format!(
                "block {b} claims {} first-source members out of {}",
                first_counts[b],
                members.len()
            )));
        }
        if members.windows(2).any(|pair| pair[0] >= pair[1]) {
            return Err(PersistError::Corrupt(format!(
                "block {b} entity list is not strictly sorted"
            )));
        }
        if members.last().is_some_and(|e| e.index() >= num_entities) {
            return Err(PersistError::Corrupt(format!(
                "block {b} references an entity beyond the corpus of {num_entities}"
            )));
        }
    }

    Ok(CsrBlockCollection::from_raw(
        dataset_name,
        kind,
        split,
        num_entities,
        Arc::new(KeyStore {
            text: key_text,
            offsets: key_offsets,
        }),
        key_ids,
        entity_offsets,
        entities,
        first_counts,
    ))
}

/// Encodes a [`BlockStats`] as one arena frame.  The reciprocal tables
/// (`1/||b||`, `1/|b|`) are derived state and are recomputed on adoption —
/// the same deterministic expression produces bit-identical values.
pub(crate) fn encode_stats(stats: &BlockStats, w: &mut Writer) {
    let mut body = Writer::with_capacity(
        64 + 4 * (stats.offsets.len() + stats.block_ids.len() + stats.block_entities.len())
            + 8 * (stats.block_comparisons.len() + stats.entity_comparisons.len()),
    );
    body.write_u32(ARENA_VERSION);
    body.write_u32(0);
    body.write_u64(kind_to_u64(stats.kind));
    body.write_u64(stats.split as u64);
    body.write_u64(stats.num_blocks as u64);
    body.write_u64(stats.total_comparisons);
    write_u32_section(&mut body, &stats.offsets);
    body.write_u64(stats.block_ids.len() as u64);
    for &b in &stats.block_ids {
        body.write_u32(b.0);
    }
    pad8(&mut body);
    write_u32_section(&mut body, &stats.block_offsets);
    body.write_u64(stats.block_entities.len() as u64);
    for &e in &stats.block_entities {
        body.write_u32(e.0);
    }
    pad8(&mut body);
    write_u32_section(&mut body, &stats.first_source_counts);
    write_u32_section(&mut body, &stats.block_sizes);
    write_u64_section(&mut body, &stats.block_comparisons);
    write_u64_section(&mut body, &stats.entity_comparisons);
    write_frame(w, &STATS_ARENA_MAGIC, body);
}

/// Decodes, validates and adopts a [`BlockStats`] arena frame.
pub(crate) fn decode_stats(r: &mut Reader<'_>) -> PersistResult<BlockStats> {
    let body = read_frame(r, &STATS_ARENA_MAGIC, "block statistics")?;
    let mut body = BodyReader::new(body);
    check_version(&mut body)?;
    let kind = kind_from_u64(body.r.read_u64()?)?;
    let split = usize::try_from(body.r.read_u64()?)
        .map_err(|_| PersistError::Corrupt("arena split exceeds usize".into()))?;
    let num_blocks = usize::try_from(body.r.read_u64()?)
        .map_err(|_| PersistError::Corrupt("arena block count exceeds usize".into()))?;
    let total_comparisons = body.r.read_u64()?;
    let offsets = body.read_u32_section("entity-block offsets")?;
    let block_ids: Vec<BlockId> = body
        .read_u32_section("block ids")?
        .into_iter()
        .map(BlockId)
        .collect();
    let block_offsets = body.read_u32_section("block-entity offsets")?;
    let block_entities: Vec<EntityId> = body
        .read_u32_section("block entities")?
        .into_iter()
        .map(EntityId)
        .collect();
    let first_source_counts = body.read_u32_section("first-source counts")?;
    let block_sizes = body.read_u32_section("block sizes")?;
    let block_comparisons = body.read_u64_section("block comparisons")?;
    let entity_comparisons = body.read_u64_section("entity comparisons")?;
    body.expect_end()?;

    if offsets.is_empty() {
        return Err(PersistError::Corrupt(
            "entity-block offsets section is empty".into(),
        ));
    }
    let num_entities = offsets.len() - 1;
    check_offsets(&offsets, block_ids.len(), "entity-block CSR")?;
    if block_ids.iter().any(|b| b.index() >= num_blocks) {
        return Err(PersistError::Corrupt(format!(
            "entity adjacency references a block beyond the {num_blocks} stored blocks"
        )));
    }
    if block_offsets.len() != num_blocks + 1 {
        return Err(PersistError::Corrupt(format!(
            "block-entity offsets carry {} entries for {num_blocks} blocks",
            block_offsets.len()
        )));
    }
    check_offsets(&block_offsets, block_entities.len(), "block-entity CSR")?;
    if block_entities.iter().any(|e| e.index() >= num_entities) {
        return Err(PersistError::Corrupt(format!(
            "block membership references an entity beyond the corpus of {num_entities}"
        )));
    }
    if first_source_counts.len() != num_blocks
        || block_sizes.len() != num_blocks
        || block_comparisons.len() != num_blocks
    {
        return Err(PersistError::Corrupt(format!(
            "per-block sections disagree on the block count: {} / {} / {} vs {num_blocks}",
            first_source_counts.len(),
            block_sizes.len(),
            block_comparisons.len()
        )));
    }
    if entity_comparisons.len() != num_entities {
        return Err(PersistError::Corrupt(format!(
            "entity comparison section carries {} entries for {num_entities} entities",
            entity_comparisons.len()
        )));
    }
    for b in 0..num_blocks {
        let size = block_offsets[b + 1] - block_offsets[b];
        if block_sizes[b] != size {
            return Err(PersistError::Corrupt(format!(
                "block {b} claims size {} but holds {size} entities",
                block_sizes[b]
            )));
        }
        if first_source_counts[b] > size {
            return Err(PersistError::Corrupt(format!(
                "block {b} claims {} first-source members out of {size}",
                first_source_counts[b]
            )));
        }
    }
    if block_comparisons.iter().sum::<u64>() != total_comparisons {
        return Err(PersistError::Corrupt(
            "block comparison counts do not sum to the recorded total".into(),
        ));
    }

    // Derived reciprocal tables: the exact expression of `BlockStats::new`,
    // so the adopted value is bit-identical to the snapshotted one.
    let inv_comparisons = block_comparisons
        .iter()
        .map(|&c| if c > 0 { 1.0 / c as f64 } else { 0.0 })
        .collect();
    let inv_sizes = block_sizes
        .iter()
        .map(|&s| if s > 0 { 1.0 / f64::from(s) } else { 0.0 })
        .collect();

    Ok(BlockStats {
        offsets,
        block_ids,
        block_offsets,
        block_entities,
        first_source_counts,
        block_sizes,
        block_comparisons,
        inv_comparisons,
        inv_sizes,
        total_comparisons,
        entity_comparisons,
        num_blocks,
        kind,
        split,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::collection::BlockCollection;
    use er_persist::{decode_from_slice, encode_to_vec};

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    fn sample() -> CsrBlockCollection {
        CsrBlockCollection::from_block_collection(&BlockCollection {
            dataset_name: "toy".into(),
            kind: DatasetKind::CleanClean,
            split: 2,
            num_entities: 5,
            blocks: vec![
                Block::new("apple", ids(&[0, 2])),
                Block::new("phone", ids(&[0, 1, 2, 3])),
                Block::new("samsung", ids(&[1, 3, 4])),
            ],
        })
    }

    #[test]
    fn csr_arena_round_trips_bit_identically() {
        let csr = sample();
        let bytes = encode_to_vec(&csr);
        let back: CsrBlockCollection = decode_from_slice(&bytes).unwrap();
        assert_eq!(back.dataset_name, csr.dataset_name);
        assert_eq!(back.kind, csr.kind);
        assert_eq!(back.split, csr.split);
        assert_eq!(back.num_entities, csr.num_entities);
        assert_eq!(back.keys.text, csr.keys.text);
        assert_eq!(back.keys.offsets, csr.keys.offsets);
        assert_eq!(back.key_ids, csr.key_ids);
        assert_eq!(back.entity_offsets, csr.entity_offsets);
        assert_eq!(back.entities, csr.entities);
        assert_eq!(back.first_counts, csr.first_counts);
    }

    #[test]
    fn stats_arena_round_trips_bit_identically() {
        let stats = BlockStats::from_csr(&sample());
        let bytes = encode_to_vec(&stats);
        let back: BlockStats = decode_from_slice(&bytes).unwrap();
        assert_eq!(back.offsets, stats.offsets);
        assert_eq!(back.block_ids, stats.block_ids);
        assert_eq!(back.block_offsets, stats.block_offsets);
        assert_eq!(back.block_entities, stats.block_entities);
        assert_eq!(back.first_source_counts, stats.first_source_counts);
        assert_eq!(back.block_sizes, stats.block_sizes);
        assert_eq!(back.block_comparisons, stats.block_comparisons);
        assert_eq!(back.total_comparisons, stats.total_comparisons);
        assert_eq!(back.entity_comparisons, stats.entity_comparisons);
        assert_eq!(back.num_blocks, stats.num_blocks);
        assert_eq!(back.kind, stats.kind);
        assert_eq!(back.split, stats.split);
        // The derived reciprocal tables adopt bit-identically.
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back.inv_comparisons), bits(&stats.inv_comparisons));
        assert_eq!(bits(&back.inv_sizes), bits(&stats.inv_sizes));
    }

    #[test]
    fn every_section_starts_eight_byte_aligned() {
        // The padding discipline is what makes the format mmap-ready: walk
        // the encoded body and check each section's data begins at an
        // 8-aligned body offset.
        let csr = sample();
        let bytes = encode_to_vec(&csr);
        let body_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        assert_eq!(body_len % 8, 0, "body must end 8-aligned");
        assert_eq!(bytes.len(), 16 + body_len + 8);
        let stats = BlockStats::from_csr(&csr);
        let bytes = encode_to_vec(&stats);
        let body_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        assert_eq!(body_len % 8, 0);
        assert_eq!(bytes.len(), 16 + body_len + 8);
    }

    #[test]
    fn any_flipped_body_byte_fails_the_checksum() {
        let csr = sample();
        let clean = encode_to_vec(&csr);
        for at in 16..clean.len() - 8 {
            let mut bytes = clean.clone();
            bytes[at] ^= 0x40;
            let err = decode_from_slice::<CsrBlockCollection>(&bytes).unwrap_err();
            assert!(
                matches!(err, PersistError::ChecksumMismatch { .. }),
                "flip at {at}: {err:?}"
            );
        }
    }

    #[test]
    fn truncation_of_every_length_is_a_typed_error() {
        let stats = BlockStats::from_csr(&sample());
        let clean = encode_to_vec(&stats);
        for cut in 0..clean.len() {
            let err = decode_from_slice::<BlockStats>(&clean[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    PersistError::Truncated { .. }
                        | PersistError::ChecksumMismatch { .. }
                        | PersistError::BadMagic { .. }
                        | PersistError::Corrupt(_)
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn wrong_magic_is_rejected_before_anything_else() {
        let csr = sample();
        let mut bytes = encode_to_vec(&csr);
        bytes[0..8].copy_from_slice(b"GSMBSTAA");
        let err = decode_from_slice::<CsrBlockCollection>(&bytes).unwrap_err();
        assert!(matches!(err, PersistError::BadMagic { .. }), "{err:?}");
    }

    #[test]
    fn checksummed_but_invalid_structures_are_corrupt_errors() {
        // Build collections that violate CSR invariants (from_raw only
        // debug-asserts), encode them — the frame checksums fine — and
        // require the invariant sweep to reject them.
        let base = sample();

        // Key id beyond the arena.
        let mut bad = base.clone();
        bad.key_ids[1] = 99;
        let err = decode_from_slice::<CsrBlockCollection>(&encode_to_vec(&bad)).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)), "{err:?}");

        // Unsorted entity list.
        let mut bad = base.clone();
        bad.entities.swap(2, 3);
        let err = decode_from_slice::<CsrBlockCollection>(&encode_to_vec(&bad)).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)), "{err:?}");

        // Entity beyond the corpus.
        let mut bad = base.clone();
        bad.num_entities = 2;
        let err = decode_from_slice::<CsrBlockCollection>(&encode_to_vec(&bad)).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)), "{err:?}");

        // First-source count larger than the block.
        let mut bad = base.clone();
        bad.first_counts[0] = 10;
        let err = decode_from_slice::<CsrBlockCollection>(&encode_to_vec(&bad)).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)), "{err:?}");

        // Stats whose comparison counts stop summing to the total.
        let mut bad = BlockStats::from_csr(&base);
        bad.total_comparisons += 1;
        let err = decode_from_slice::<BlockStats>(&encode_to_vec(&bad)).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)), "{err:?}");

        // Stats with a block size that disagrees with its entity slice.
        let mut bad = BlockStats::from_csr(&base);
        bad.block_sizes[0] += 1;
        let err = decode_from_slice::<BlockStats>(&encode_to_vec(&bad)).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn version_mismatch_is_typed() {
        let csr = sample();
        let mut bytes = encode_to_vec(&csr);
        // Patch the version word (first body word) and re-seal the checksum.
        bytes[16] = 9;
        let body_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        let digest = crc64(&bytes[16..16 + body_len]);
        let at = 16 + body_len;
        bytes[at..at + 8].copy_from_slice(&digest.to_le_bytes());
        let err = decode_from_slice::<CsrBlockCollection>(&bytes).unwrap_err();
        assert!(
            matches!(err, PersistError::VersionMismatch { .. }),
            "{err:?}"
        );
    }

    /// The arena decoder and the fused workflows agree: a recovered
    /// collection drives candidate generation identically to the original.
    #[test]
    fn recovered_collection_is_operationally_identical() {
        let csr = sample();
        let back: CsrBlockCollection = decode_from_slice(&encode_to_vec(&csr)).unwrap();
        let stats = BlockStats::from_csr(&csr);
        let recovered_stats: BlockStats =
            decode_from_slice(&encode_to_vec(&BlockStats::from_csr(&back))).unwrap();
        let a = crate::CandidatePairs::from_stats(&stats, 2);
        let b = crate::CandidatePairs::from_stats(&recovered_stats, 2);
        assert_eq!(a.pairs(), b.pairs());
    }
}
