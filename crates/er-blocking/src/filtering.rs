//! Block Filtering: remove every entity from the largest blocks it appears in.
//!
//! Block Filtering keeps each entity only in its `ratio` (by default 80%)
//! smallest blocks, measured by block size.  The largest blocks contribute
//! most of the superfluous comparisons while the smallest blocks carry the
//! most distinctive co-occurrence evidence, so trimming the top 20% per entity
//! removes a large share of the candidate pairs at a negligible recall cost.

use er_core::{EntityId, FxHashSet};

use crate::block::Block;
use crate::collection::BlockCollection;

/// The ratio of blocks retained per entity in the paper's setup (each entity
/// is removed from the largest 20% of its blocks).
pub const DEFAULT_FILTERING_RATIO: f64 = 0.8;

/// Applies Block Filtering with the given retention ratio in `(0, 1]`.
///
/// For each entity, its blocks are ranked by increasing size and the entity
/// is kept only in the first `ceil(ratio · |B_i|)` of them.  Blocks that stop
/// producing comparisons afterwards are dropped.
///
/// # Panics
/// Panics if `ratio` is not within `(0, 1]`.
pub fn block_filtering(blocks: &BlockCollection, ratio: f64) -> BlockCollection {
    assert!(
        ratio > 0.0 && ratio <= 1.0,
        "filtering ratio must be in (0, 1], got {ratio}"
    );

    // Collect, per entity, the list of (block size, block index) it belongs to.
    let mut entity_blocks: Vec<Vec<(u32, u32)>> = vec![Vec::new(); blocks.num_entities];
    for (idx, block) in blocks.blocks.iter().enumerate() {
        for entity in &block.entities {
            entity_blocks[entity.index()].push((block.size() as u32, idx as u32));
        }
    }

    // Decide, per entity, which blocks it stays in.
    let mut retained: Vec<FxHashSet<u32>> = vec![FxHashSet::default(); blocks.num_entities];
    for (entity, assignments) in entity_blocks.iter_mut().enumerate() {
        if assignments.is_empty() {
            continue;
        }
        // Sort by block size ascending, breaking ties by block index so the
        // outcome does not depend on iteration order.
        assignments.sort_unstable();
        let keep = ((ratio * assignments.len() as f64).ceil() as usize).max(1);
        for &(_, block_idx) in assignments.iter().take(keep) {
            retained[entity].insert(block_idx);
        }
    }

    // Rebuild blocks with only the retained assignments.
    let mut new_blocks = Vec::with_capacity(blocks.num_blocks());
    for (idx, block) in blocks.blocks.iter().enumerate() {
        let entities: Vec<EntityId> = block
            .entities
            .iter()
            .copied()
            .filter(|e| retained[e.index()].contains(&(idx as u32)))
            .collect();
        let rebuilt = Block::new(block.key.clone(), entities);
        if rebuilt.is_useful(blocks.kind, blocks.split) {
            new_blocks.push(rebuilt);
        }
    }

    BlockCollection {
        dataset_name: blocks.dataset_name.clone(),
        kind: blocks.kind,
        split: blocks.split,
        num_entities: blocks.num_entities,
        blocks: new_blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::DatasetKind;

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    fn collection(blocks: Vec<Block>) -> BlockCollection {
        BlockCollection {
            dataset_name: "t".into(),
            kind: DatasetKind::Dirty,
            split: 10,
            num_entities: 10,
            blocks,
        }
    }

    #[test]
    fn ratio_one_keeps_all_assignments() {
        let bc = collection(vec![
            Block::new("a", ids(&[0, 1, 2])),
            Block::new("b", ids(&[0, 1])),
        ]);
        let filtered = block_filtering(&bc, 1.0);
        assert_eq!(filtered.num_blocks(), 2);
        assert_eq!(filtered.sum_block_sizes(), bc.sum_block_sizes());
    }

    #[test]
    fn removes_entities_from_their_largest_blocks() {
        // Entity 0 appears in three blocks of sizes 2, 3, 5.  With ratio 0.5,
        // ceil(0.5*3)=2 blocks are kept: the two smallest.
        let bc = collection(vec![
            Block::new("large", ids(&[0, 1, 2, 3, 4])),
            Block::new("medium", ids(&[0, 1, 2])),
            Block::new("small", ids(&[0, 1])),
        ]);
        let filtered = block_filtering(&bc, 0.5);
        let large = filtered.blocks.iter().find(|b| b.key == "large");
        // Entities 0 and 1 are removed from "large"; entities 2,3,4 have it as
        // one of their smallest blocks so some remain.
        if let Some(large) = large {
            assert!(!large.contains(EntityId(0)));
            assert!(!large.contains(EntityId(1)));
        }
        let small = filtered.blocks.iter().find(|b| b.key == "small").unwrap();
        assert!(small.contains(EntityId(0)) && small.contains(EntityId(1)));
    }

    #[test]
    fn each_entity_keeps_at_least_one_block() {
        let bc = collection(vec![Block::new("only", ids(&[0, 1]))]);
        let filtered = block_filtering(&bc, 0.01);
        assert_eq!(filtered.num_blocks(), 1);
        assert_eq!(filtered.blocks[0].size(), 2);
    }

    #[test]
    fn useless_blocks_are_dropped_after_filtering() {
        // After filtering, "large" may retain fewer than 2 entities and must
        // then be dropped entirely.
        let bc = collection(vec![
            Block::new("large", ids(&[0, 1, 2, 3, 4, 5])),
            Block::new("s0", ids(&[0, 6])),
            Block::new("s1", ids(&[1, 6])),
            Block::new("s2", ids(&[2, 6])),
            Block::new("s3", ids(&[3, 6])),
            Block::new("s4", ids(&[4, 6])),
            Block::new("s5", ids(&[5, 6])),
        ]);
        let filtered = block_filtering(&bc, 0.5);
        for block in &filtered.blocks {
            assert!(
                block.is_useful(bc.kind, bc.split),
                "useless block {} kept",
                block.key
            );
        }
    }

    #[test]
    #[should_panic(expected = "filtering ratio")]
    fn invalid_ratio_panics() {
        let bc = collection(vec![]);
        let _ = block_filtering(&bc, 0.0);
    }
}
