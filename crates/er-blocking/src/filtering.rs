//! Block Filtering: remove every entity from the largest blocks it appears in.
//!
//! Block Filtering keeps each entity only in its `ratio` (by default 80%)
//! smallest blocks, measured by block size.  The largest blocks contribute
//! most of the superfluous comparisons while the smallest blocks carry the
//! most distinctive co-occurrence evidence, so trimming the top 20% per entity
//! removes a large share of the candidate pairs at a negligible recall cost.

use er_core::{EntityId, FxHashSet};

use crate::block::Block;
use crate::collection::BlockCollection;
use crate::csr::CsrBlockCollection;

/// The ratio of blocks retained per entity in the paper's setup (each entity
/// is removed from the largest 20% of its blocks).
pub const DEFAULT_FILTERING_RATIO: f64 = 0.8;

/// How many of an entity's `degree` blocks Block Filtering keeps (the
/// `ceil(ratio · |B_i|)` rule, never dropping below one block).
///
/// This is the single home of the filtering quota arithmetic — both batch
/// implementations and incremental consumers (the filtering-aware streaming
/// live view) must agree bit-for-bit on how many blocks each entity retains.
#[inline]
pub fn filtering_keep_count(degree: usize, ratio: f64) -> usize {
    if degree == 0 {
        0
    } else {
        ((ratio * degree as f64).ceil() as usize).max(1)
    }
}

/// Applies Block Filtering with the given retention ratio in `(0, 1]`.
///
/// For each entity, its blocks are ranked by increasing size and the entity
/// is kept only in the first `ceil(ratio · |B_i|)` of them.  Blocks that stop
/// producing comparisons afterwards are dropped.
///
/// # Panics
/// Panics if `ratio` is not within `(0, 1]`.
pub fn block_filtering(blocks: &BlockCollection, ratio: f64) -> BlockCollection {
    assert!(
        ratio > 0.0 && ratio <= 1.0,
        "filtering ratio must be in (0, 1], got {ratio}"
    );

    // Collect, per entity, the list of (block size, block index) it belongs to.
    let mut entity_blocks: Vec<Vec<(u32, u32)>> = vec![Vec::new(); blocks.num_entities];
    for (idx, block) in blocks.blocks.iter().enumerate() {
        for entity in &block.entities {
            entity_blocks[entity.index()].push((block.size() as u32, idx as u32));
        }
    }

    // Decide, per entity, which blocks it stays in.
    let mut retained: Vec<FxHashSet<u32>> = vec![FxHashSet::default(); blocks.num_entities];
    for (entity, assignments) in entity_blocks.iter_mut().enumerate() {
        if assignments.is_empty() {
            continue;
        }
        // Sort by block size ascending, breaking ties by block index so the
        // outcome does not depend on iteration order.
        assignments.sort_unstable();
        let keep = filtering_keep_count(assignments.len(), ratio);
        for &(_, block_idx) in assignments.iter().take(keep) {
            retained[entity].insert(block_idx);
        }
    }

    // Rebuild blocks with only the retained assignments.
    let mut new_blocks = Vec::with_capacity(blocks.num_blocks());
    for (idx, block) in blocks.blocks.iter().enumerate() {
        let entities: Vec<EntityId> = block
            .entities
            .iter()
            .copied()
            .filter(|e| retained[e.index()].contains(&(idx as u32)))
            .collect();
        let rebuilt = Block::new(block.key.clone(), entities);
        if rebuilt.is_useful(blocks.kind, blocks.split) {
            new_blocks.push(rebuilt);
        }
    }

    BlockCollection {
        dataset_name: blocks.dataset_name.clone(),
        kind: blocks.kind,
        split: blocks.split,
        num_entities: blocks.num_entities,
        blocks: new_blocks,
    }
}

/// CSR-native Block Filtering: the same per-entity rule as
/// [`block_filtering`], but operating on the flat CSR representation and
/// sharing the input's key arena — no key string is cloned and no per-entity
/// hash set is allocated.
///
/// Produces exactly the blocks of the nested implementation (asserted by the
/// workspace property tests).
///
/// # Panics
/// Panics if `ratio` is not within `(0, 1]`.
pub fn block_filtering_csr(blocks: &CsrBlockCollection, ratio: f64) -> CsrBlockCollection {
    assert!(
        ratio > 0.0 && ratio <= 1.0,
        "filtering ratio must be in (0, 1], got {ratio}"
    );

    // Per entity, the (block size, block index) assignments, laid out as one
    // flat CSR scratch (no per-entity Vec or hash set allocations).
    let num_entities = blocks.num_entities;
    let mut degree = vec![0u32; num_entities];
    for b in 0..blocks.num_blocks() {
        for entity in blocks.entities(b) {
            degree[entity.index()] += 1;
        }
    }
    let mut offsets = vec![0u32; num_entities + 1];
    for i in 0..num_entities {
        offsets[i + 1] = offsets[i] + degree[i];
    }
    let mut assignments = vec![(0u32, 0u32); offsets[num_entities] as usize];
    let mut cursors = offsets[..num_entities].to_vec();
    for b in 0..blocks.num_blocks() {
        let size = blocks.block_size(b) as u32;
        for entity in blocks.entities(b) {
            let cursor = &mut cursors[entity.index()];
            assignments[*cursor as usize] = (size, b as u32);
            *cursor += 1;
        }
    }

    // Keep each entity only in its `ceil(ratio · |B_i|)` smallest blocks
    // (size ties broken by block index, exactly like the nested path); the
    // kept block indices are re-sorted so membership is a binary search.
    let mut kept_offsets = vec![0u32; num_entities + 1];
    for i in 0..num_entities {
        let keep = filtering_keep_count(degree[i] as usize, ratio) as u32;
        kept_offsets[i + 1] = kept_offsets[i] + keep;
    }
    let mut kept = vec![0u32; kept_offsets[num_entities] as usize];
    for i in 0..num_entities {
        let slice = &mut assignments[offsets[i] as usize..offsets[i + 1] as usize];
        if slice.is_empty() {
            continue;
        }
        slice.sort_unstable();
        let out = &mut kept[kept_offsets[i] as usize..kept_offsets[i + 1] as usize];
        for (slot, &(_, idx)) in slice[..out.len()].iter().enumerate() {
            out[slot] = idx;
        }
        out.sort_unstable();
    }

    blocks.retain_assignments(|entity, b| {
        let e = entity.index();
        kept[kept_offsets[e] as usize..kept_offsets[e + 1] as usize]
            .binary_search(&(b as u32))
            .is_ok()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::DatasetKind;

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    fn collection(blocks: Vec<Block>) -> BlockCollection {
        BlockCollection {
            dataset_name: "t".into(),
            kind: DatasetKind::Dirty,
            split: 10,
            num_entities: 10,
            blocks,
        }
    }

    #[test]
    fn ratio_one_keeps_all_assignments() {
        let bc = collection(vec![
            Block::new("a", ids(&[0, 1, 2])),
            Block::new("b", ids(&[0, 1])),
        ]);
        let filtered = block_filtering(&bc, 1.0);
        assert_eq!(filtered.num_blocks(), 2);
        assert_eq!(filtered.sum_block_sizes(), bc.sum_block_sizes());
    }

    #[test]
    fn removes_entities_from_their_largest_blocks() {
        // Entity 0 appears in three blocks of sizes 2, 3, 5.  With ratio 0.5,
        // ceil(0.5*3)=2 blocks are kept: the two smallest.
        let bc = collection(vec![
            Block::new("large", ids(&[0, 1, 2, 3, 4])),
            Block::new("medium", ids(&[0, 1, 2])),
            Block::new("small", ids(&[0, 1])),
        ]);
        let filtered = block_filtering(&bc, 0.5);
        let large = filtered.blocks.iter().find(|b| b.key == "large");
        // Entities 0 and 1 are removed from "large"; entities 2,3,4 have it as
        // one of their smallest blocks so some remain.
        if let Some(large) = large {
            assert!(!large.contains(EntityId(0)));
            assert!(!large.contains(EntityId(1)));
        }
        let small = filtered.blocks.iter().find(|b| b.key == "small").unwrap();
        assert!(small.contains(EntityId(0)) && small.contains(EntityId(1)));
    }

    #[test]
    fn each_entity_keeps_at_least_one_block() {
        let bc = collection(vec![Block::new("only", ids(&[0, 1]))]);
        let filtered = block_filtering(&bc, 0.01);
        assert_eq!(filtered.num_blocks(), 1);
        assert_eq!(filtered.blocks[0].size(), 2);
    }

    #[test]
    fn useless_blocks_are_dropped_after_filtering() {
        // After filtering, "large" may retain fewer than 2 entities and must
        // then be dropped entirely.
        let bc = collection(vec![
            Block::new("large", ids(&[0, 1, 2, 3, 4, 5])),
            Block::new("s0", ids(&[0, 6])),
            Block::new("s1", ids(&[1, 6])),
            Block::new("s2", ids(&[2, 6])),
            Block::new("s3", ids(&[3, 6])),
            Block::new("s4", ids(&[4, 6])),
            Block::new("s5", ids(&[5, 6])),
        ]);
        let filtered = block_filtering(&bc, 0.5);
        for block in &filtered.blocks {
            assert!(
                block.is_useful(bc.kind, bc.split),
                "useless block {} kept",
                block.key
            );
        }
    }

    #[test]
    #[should_panic(expected = "filtering ratio")]
    fn invalid_ratio_panics() {
        let bc = collection(vec![]);
        let _ = block_filtering(&bc, 0.0);
    }
}
