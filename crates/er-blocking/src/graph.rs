//! Blocking-graph adjacency: per-entity neighbour lists over the candidate
//! pairs.
//!
//! The blocking graph has one node per entity and one edge per distinct
//! candidate pair.  Node-centric pruning algorithms and the unsupervised
//! baselines need to iterate the edges incident to each node; this index makes
//! that an `O(degree)` slice walk.

use er_core::{EntityId, PairId};
use serde::{Deserialize, Serialize};

use crate::candidates::CandidatePairs;

/// Compressed adjacency lists of the blocking graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NeighborIndex {
    /// Concatenated (neighbour, pair id) entries.
    entries: Vec<(EntityId, PairId)>,
    /// Offsets into `entries`, one slot per entity plus a sentinel.
    offsets: Vec<u32>,
}

impl NeighborIndex {
    /// Builds the adjacency index from the candidate pairs.
    pub fn new(num_entities: usize, pairs: &CandidatePairs) -> Self {
        let mut degrees = vec![0u32; num_entities];
        for &(a, b) in pairs.pairs() {
            degrees[a.index()] += 1;
            degrees[b.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(num_entities + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursors: Vec<u32> = offsets[..num_entities].to_vec();
        let mut entries = vec![(EntityId(0), PairId(0)); acc as usize];
        for (id, a, b) in pairs.iter() {
            entries[cursors[a.index()] as usize] = (b, id);
            cursors[a.index()] += 1;
            entries[cursors[b.index()] as usize] = (a, id);
            cursors[b.index()] += 1;
        }
        NeighborIndex { entries, offsets }
    }

    /// Number of entities the index covers.
    pub fn num_entities(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The neighbours of one entity, with the pair id of each incident edge.
    pub fn neighbors(&self, entity: EntityId) -> &[(EntityId, PairId)] {
        let start = self.offsets[entity.index()] as usize;
        let end = self.offsets[entity.index() + 1] as usize;
        &self.entries[start..end]
    }

    /// Degree of one entity (number of distinct candidates).
    pub fn degree(&self, entity: EntityId) -> usize {
        self.neighbors(entity).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacency_matches_pairs() {
        let cands = CandidatePairs::from_pairs(
            4,
            vec![
                (EntityId(0), EntityId(2)),
                (EntityId(0), EntityId(3)),
                (EntityId(1), EntityId(3)),
            ],
        );
        let idx = NeighborIndex::new(4, &cands);
        assert_eq!(idx.num_entities(), 4);
        assert_eq!(idx.degree(EntityId(0)), 2);
        assert_eq!(idx.degree(EntityId(1)), 1);
        assert_eq!(idx.degree(EntityId(2)), 1);
        let neighbors_of_3: Vec<EntityId> =
            idx.neighbors(EntityId(3)).iter().map(|&(n, _)| n).collect();
        assert_eq!(neighbors_of_3.len(), 2);
        assert!(neighbors_of_3.contains(&EntityId(0)));
        assert!(neighbors_of_3.contains(&EntityId(1)));
    }

    #[test]
    fn pair_ids_are_consistent_from_both_endpoints() {
        let cands = CandidatePairs::from_pairs(3, vec![(EntityId(0), EntityId(2))]);
        let idx = NeighborIndex::new(3, &cands);
        let (n0, p0) = idx.neighbors(EntityId(0))[0];
        let (n2, p2) = idx.neighbors(EntityId(2))[0];
        assert_eq!(n0, EntityId(2));
        assert_eq!(n2, EntityId(0));
        assert_eq!(p0, p2);
        assert_eq!(cands.pair(p0), (EntityId(0), EntityId(2)));
    }

    #[test]
    fn isolated_entities_have_empty_neighborhoods() {
        let cands = CandidatePairs::from_pairs(5, vec![(EntityId(0), EntityId(1))]);
        let idx = NeighborIndex::new(5, &cands);
        assert_eq!(idx.degree(EntityId(4)), 0);
        assert!(idx.neighbors(EntityId(3)).is_empty());
    }

    #[test]
    fn total_degree_is_twice_pair_count() {
        let cands = CandidatePairs::from_pairs(
            6,
            (0..5u32)
                .map(|i| (EntityId(i), EntityId(i + 1)))
                .collect::<Vec<_>>(),
        );
        let idx = NeighborIndex::new(6, &cands);
        let total: usize = (0..6u32).map(|i| idx.degree(EntityId(i))).sum();
        assert_eq!(total, 2 * cands.len());
    }
}
