//! Blocking substrate: Token Blocking, Block Purging, Block Filtering,
//! candidate-pair extraction and block statistics.
//!
//! Meta-blocking operates on a *redundancy-positive* block collection: every
//! entity appears in several blocks and the more blocks two entities share the
//! more likely they are to match.  This crate produces exactly the input the
//! paper assumes:
//!
//! 1. [`token_blocking`] builds one block per attribute-value token
//!    (parameter-free, schema-agnostic);
//! 2. [`block_purging`] drops blocks containing more than half of all entity
//!    profiles (stop-word-like signatures);
//! 3. [`block_filtering`] removes every entity from the largest 20% of the
//!    blocks it appears in;
//! 4. [`CandidatePairs`] extracts the distinct set of comparisons `C` and the
//!    per-entity candidate counts used by the LCP feature;
//! 5. [`BlockStats`] exposes the per-entity block lists and block cardinalities
//!    that all weighting schemes are computed from.

pub mod block;
pub mod candidates;
pub mod collection;
pub mod filtering;
pub mod graph;
pub mod purging;
pub mod qgrams;
pub mod reference;
pub mod stats;
pub mod suffix_arrays;
pub mod token_blocking;

pub use block::Block;
pub use candidates::CandidatePairs;
pub use collection::BlockCollection;
pub use filtering::{block_filtering, DEFAULT_FILTERING_RATIO};
pub use graph::NeighborIndex;
pub use purging::block_purging;
pub use qgrams::qgrams_blocking;
pub use stats::BlockStats;
pub use suffix_arrays::{suffix_array_blocking, SuffixArrayConfig};
pub use token_blocking::token_blocking;

use er_core::Dataset;

/// Runs the full blocking workflow used throughout the paper's evaluation:
/// Token Blocking, then Block Purging, then Block Filtering with the default
/// ratio of 0.8 (i.e. each entity is removed from its largest 20% of blocks).
pub fn standard_blocking_workflow(dataset: &Dataset) -> BlockCollection {
    let blocks = token_blocking(dataset);
    let purged = block_purging(&blocks);
    block_filtering(&purged, DEFAULT_FILTERING_RATIO)
}
