//! Blocking substrate: Token Blocking, Block Purging, Block Filtering,
//! candidate-pair extraction and block statistics.
//!
//! Meta-blocking operates on a *redundancy-positive* block collection: every
//! entity appears in several blocks and the more blocks two entities share the
//! more likely they are to match.  This crate produces exactly the input the
//! paper assumes:
//!
//! 1. [`token_blocking`] builds one block per attribute-value token
//!    (parameter-free, schema-agnostic);
//! 2. [`block_purging`] drops blocks containing more than half of all entity
//!    profiles (stop-word-like signatures);
//! 3. [`block_filtering`] removes every entity from the largest 20% of the
//!    blocks it appears in;
//! 4. [`CandidatePairs`] extracts the distinct set of comparisons `C` and the
//!    per-entity candidate counts used by the LCP feature;
//! 5. [`BlockStats`] exposes the per-entity block lists and block cardinalities
//!    that all weighting schemes are computed from.

pub mod arena;
pub mod block;
pub mod builder;
pub mod candidates;
pub mod collection;
pub mod csr;
pub mod filtering;
pub mod graph;
mod obs;
pub mod persist;
pub mod purging;
pub mod qgrams;
pub mod reference;
pub mod stats;
pub mod stream;
pub mod suffix_arrays;
pub mod token_blocking;

pub use arena::{ARENA_VERSION, CSR_ARENA_MAGIC, STATS_ARENA_MAGIC};
pub use block::Block;
pub use builder::{
    build_blocks, sorted_key_order, KeyGenerator, KeyScratch, QGramKeys, SuffixKeys, TokenKeys,
};
pub use candidates::CandidatePairs;
pub use collection::BlockCollection;
pub use csr::{comparisons_from_first, slice_cardinalities, CsrBlockCollection, KeyStore};
pub use filtering::{
    block_filtering, block_filtering_csr, filtering_keep_count, DEFAULT_FILTERING_RATIO,
};
pub use graph::NeighborIndex;
pub use purging::{block_purging, block_purging_csr, purging_limit};
pub use qgrams::{qgrams_blocking, qgrams_blocking_csr};
pub use stats::BlockStats;
pub use stream::{CandidateStream, ChunkArena, ChunkSpec, DEFAULT_CHUNK_PAIRS};
pub use suffix_arrays::{suffix_array_blocking, suffix_array_blocking_csr, SuffixArrayConfig};
pub use token_blocking::{token_blocking, token_blocking_csr};

use er_core::Dataset;

/// Runs the full blocking workflow used throughout the paper's evaluation:
/// Token Blocking, then Block Purging, then Block Filtering with the default
/// ratio of 0.8 (i.e. each entity is removed from its largest 20% of blocks).
///
/// Internally this is the CSR workflow below plus one conversion to the
/// nested compatibility view; callers that can consume
/// [`CsrBlockCollection`] directly should prefer
/// [`standard_blocking_workflow_csr`], which never clones a key string.
pub fn standard_blocking_workflow(dataset: &Dataset) -> BlockCollection {
    standard_blocking_workflow_csr(dataset, er_core::available_threads()).to_block_collection()
}

/// The allocation-lean standard workflow: parallel Token Blocking through the
/// [`builder`] engine, then CSR-native Block Purging and Block Filtering
/// (pure index operations sharing one key arena).
pub fn standard_blocking_workflow_csr(dataset: &Dataset, threads: usize) -> CsrBlockCollection {
    let blocks = token_blocking_csr(dataset, threads);
    let purged = block_purging_csr(&blocks);
    block_filtering_csr(&purged, DEFAULT_FILTERING_RATIO)
}
