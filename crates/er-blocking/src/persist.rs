//! Binary codecs ([`er_persist::Encode`]/[`er_persist::Decode`]) for the
//! CSR block representation, so prepared datasets and recovered streaming
//! state can carry their block collections through snapshots.
//!
//! Both [`CsrBlockCollection`] and [`BlockStats`] encode through the arena
//! layout in [`crate::arena`]: the snapshot bytes of every flat array are
//! its little-endian in-memory bytes, 8-byte aligned, behind one CRC-64
//! trailer — recovery validates the frame and *adopts* the arrays with one
//! bulk conversion each instead of a per-element decode loop.  Decoding
//! still validates every CSR invariant (monotone offsets, matching array
//! lengths, in-range ids) and reports violations as
//! [`er_core::PersistError::Corrupt`] — a snapshot that passed its checksum
//! but encodes an impossible collection never becomes observable state.

use er_core::PersistResult;
use er_persist::{Decode, Encode, Reader, Writer};

use crate::arena;
use crate::csr::{CsrBlockCollection, KeyStore};
use crate::stats::BlockStats;

impl Encode for KeyStore {
    fn encode(&self, w: &mut Writer) {
        w.write_usize(self.len());
        for id in 0..self.len() as u32 {
            w.write_str(self.get(id));
        }
    }
}

impl Decode for KeyStore {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        let len = r.read_usize()?;
        let mut store = KeyStore::with_capacity(len.min(r.remaining()), 0);
        for _ in 0..len {
            let key = r.read_str()?;
            store.push(&key);
        }
        Ok(store)
    }
}

impl Encode for CsrBlockCollection {
    fn encode(&self, w: &mut Writer) {
        arena::encode_csr(self, w);
    }
}

impl Decode for CsrBlockCollection {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        arena::decode_csr(r)
    }
}

impl Encode for BlockStats {
    fn encode(&self, w: &mut Writer) {
        arena::encode_stats(self, w);
    }
}

impl Decode for BlockStats {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        arena::decode_stats(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::collection::BlockCollection;
    use er_core::{DatasetKind, EntityId, PersistError};
    use er_persist::{decode_from_slice, encode_to_vec};

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    fn sample() -> CsrBlockCollection {
        CsrBlockCollection::from_block_collection(&BlockCollection {
            dataset_name: "toy".into(),
            kind: DatasetKind::CleanClean,
            split: 2,
            num_entities: 5,
            blocks: vec![
                Block::new("apple", ids(&[0, 2])),
                Block::new("phone", ids(&[0, 1, 2, 3])),
                Block::new("samsung", ids(&[1, 3, 4])),
            ],
        })
    }

    #[test]
    fn csr_collection_round_trips_exactly() {
        let csr = sample();
        let bytes = encode_to_vec(&csr);
        let back: CsrBlockCollection = decode_from_slice(&bytes).unwrap();
        assert_eq!(back.dataset_name, csr.dataset_name);
        assert_eq!(back.kind, csr.kind);
        assert_eq!(back.split, csr.split);
        assert_eq!(back.num_entities, csr.num_entities);
        assert_eq!(back.num_blocks(), csr.num_blocks());
        for b in 0..csr.num_blocks() {
            assert_eq!(back.key(b), csr.key(b));
            assert_eq!(back.entities(b), csr.entities(b));
            assert_eq!(back.first_source_count(b), csr.first_source_count(b));
        }
        assert_eq!(
            back.to_block_collection().blocks,
            csr.to_block_collection().blocks
        );
    }

    #[test]
    fn block_stats_round_trip_exactly() {
        let stats = BlockStats::from_csr(&sample());
        let bytes = encode_to_vec(&stats);
        let back: BlockStats = decode_from_slice(&bytes).unwrap();
        assert_eq!(back.num_blocks(), stats.num_blocks());
        assert_eq!(back.num_entities(), stats.num_entities());
        assert_eq!(back.total_comparisons(), stats.total_comparisons());
        for e in 0..stats.num_entities() {
            let entity = EntityId(e as u32);
            assert_eq!(back.blocks_of(entity), stats.blocks_of(entity));
            assert_eq!(
                back.entity_comparisons(entity),
                stats.entity_comparisons(entity)
            );
        }
    }

    #[test]
    fn key_store_round_trips() {
        let mut store = KeyStore::default();
        store.push("alpha");
        store.push("β");
        store.push("");
        let bytes = encode_to_vec(&store);
        let back: KeyStore = decode_from_slice(&bytes).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.get(0), "alpha");
        assert_eq!(back.get(1), "β");
        assert_eq!(back.get(2), "");
    }

    #[test]
    fn invalid_csr_invariants_are_corrupt_errors() {
        let csr = sample();
        let clean = encode_to_vec(&csr);

        // A structurally invalid collection (out-of-range key id) checksums
        // fine but must fail the invariant sweep on decode.
        let mut bad = csr.clone();
        bad.key_ids[0] = 7;
        let err = decode_from_slice::<CsrBlockCollection>(&encode_to_vec(&bad)).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)), "{err:?}");

        // Sanity: the clean bytes still decode.
        assert!(decode_from_slice::<CsrBlockCollection>(&clean).is_ok());
    }
}
