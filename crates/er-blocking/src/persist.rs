//! Binary codecs ([`er_persist::Encode`]/[`er_persist::Decode`]) for the
//! CSR block representation, so prepared datasets and recovered streaming
//! state can carry their block collections through snapshots.
//!
//! Decoding validates the CSR invariants (monotone offsets, matching array
//! lengths, in-range key ids) and reports violations as
//! [`er_core::PersistError::Corrupt`] — a snapshot that passed its checksum
//! but encodes an impossible collection never becomes observable state.

use std::sync::Arc;

use er_core::{DatasetKind, EntityId, PersistError, PersistResult};
use er_persist::{Decode, Encode, Reader, Writer};

use crate::csr::{CsrBlockCollection, KeyStore};

impl Encode for KeyStore {
    fn encode(&self, w: &mut Writer) {
        w.write_usize(self.len());
        for id in 0..self.len() as u32 {
            w.write_str(self.get(id));
        }
    }
}

impl Decode for KeyStore {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        let len = r.read_usize()?;
        let mut store = KeyStore::with_capacity(len.min(r.remaining()), 0);
        for _ in 0..len {
            let key = r.read_str()?;
            store.push(&key);
        }
        Ok(store)
    }
}

impl Encode for CsrBlockCollection {
    fn encode(&self, w: &mut Writer) {
        w.write_str(&self.dataset_name);
        self.kind.encode(w);
        w.write_usize(self.split);
        w.write_usize(self.num_entities);
        self.key_store().as_ref().encode(w);
        let blocks = self.num_blocks();
        w.write_usize(blocks);
        for b in 0..blocks {
            w.write_u32(self.key_id(b));
            w.write_u32(self.first_source_count(b) as u32);
            self.entities(b).encode(w);
        }
    }
}

impl Decode for CsrBlockCollection {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        let dataset_name = r.read_str()?;
        let kind = DatasetKind::decode(r)?;
        let split = r.read_usize()?;
        let num_entities = r.read_usize()?;
        let store = KeyStore::decode(r)?;
        let blocks = r.read_usize()?;
        let mut key_ids = Vec::with_capacity(blocks.min(r.remaining()));
        let mut first_counts = Vec::with_capacity(blocks.min(r.remaining()));
        let mut entity_offsets = vec![0u32];
        let mut entities: Vec<EntityId> = Vec::new();
        for b in 0..blocks {
            let key_id = r.read_u32()?;
            if key_id as usize >= store.len() {
                return Err(PersistError::Corrupt(format!(
                    "block {b} references key id {key_id} beyond the {} stored keys",
                    store.len()
                )));
            }
            let first = r.read_u32()?;
            let members = Vec::<EntityId>::decode(r)?;
            if first as usize > members.len() {
                return Err(PersistError::Corrupt(format!(
                    "block {b} claims {first} first-source members out of {}",
                    members.len()
                )));
            }
            if members.windows(2).any(|pair| pair[0] >= pair[1]) {
                return Err(PersistError::Corrupt(format!(
                    "block {b} entity list is not strictly sorted"
                )));
            }
            if members.last().is_some_and(|e| e.index() >= num_entities) {
                return Err(PersistError::Corrupt(format!(
                    "block {b} references an entity beyond the corpus of {num_entities}"
                )));
            }
            key_ids.push(key_id);
            first_counts.push(first);
            entities.extend_from_slice(&members);
            entity_offsets.push(entities.len() as u32);
        }
        Ok(CsrBlockCollection::from_raw(
            dataset_name,
            kind,
            split,
            num_entities,
            Arc::new(store),
            key_ids,
            entity_offsets,
            entities,
            first_counts,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::collection::BlockCollection;
    use er_persist::{decode_from_slice, encode_to_vec};

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    fn sample() -> CsrBlockCollection {
        CsrBlockCollection::from_block_collection(&BlockCollection {
            dataset_name: "toy".into(),
            kind: DatasetKind::CleanClean,
            split: 2,
            num_entities: 5,
            blocks: vec![
                Block::new("apple", ids(&[0, 2])),
                Block::new("phone", ids(&[0, 1, 2, 3])),
                Block::new("samsung", ids(&[1, 3, 4])),
            ],
        })
    }

    #[test]
    fn csr_collection_round_trips_exactly() {
        let csr = sample();
        let bytes = encode_to_vec(&csr);
        let back: CsrBlockCollection = decode_from_slice(&bytes).unwrap();
        assert_eq!(back.dataset_name, csr.dataset_name);
        assert_eq!(back.kind, csr.kind);
        assert_eq!(back.split, csr.split);
        assert_eq!(back.num_entities, csr.num_entities);
        assert_eq!(back.num_blocks(), csr.num_blocks());
        for b in 0..csr.num_blocks() {
            assert_eq!(back.key(b), csr.key(b));
            assert_eq!(back.entities(b), csr.entities(b));
            assert_eq!(back.first_source_count(b), csr.first_source_count(b));
        }
        assert_eq!(
            back.to_block_collection().blocks,
            csr.to_block_collection().blocks
        );
    }

    #[test]
    fn key_store_round_trips() {
        let mut store = KeyStore::default();
        store.push("alpha");
        store.push("β");
        store.push("");
        let bytes = encode_to_vec(&store);
        let back: KeyStore = decode_from_slice(&bytes).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.get(0), "alpha");
        assert_eq!(back.get(1), "β");
        assert_eq!(back.get(2), "");
    }

    #[test]
    fn invalid_csr_invariants_are_corrupt_errors() {
        let csr = sample();
        let mut w = Writer::new();
        csr.encode(&mut w);
        let clean = w.into_bytes();

        // Re-encode with an out-of-range key id by patching the stream: the
        // easiest reliable probe is decoding a hand-built bad frame.
        let mut w = Writer::new();
        w.write_str("bad");
        DatasetKind::Dirty.encode(&mut w);
        w.write_usize(0);
        w.write_usize(3);
        KeyStore::default().encode(&mut w);
        w.write_usize(1); // one block ...
        w.write_u32(0); // ... whose key id 0 does not exist
        w.write_u32(0);
        ids(&[0, 1]).encode(&mut w);
        let err = decode_from_slice::<CsrBlockCollection>(w.as_bytes()).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)), "{err:?}");

        // Sanity: the clean bytes still decode.
        assert!(decode_from_slice::<CsrBlockCollection>(&clean).is_ok());
    }
}
