//! Block Purging: remove blocks whose signature is too frequent to carry any
//! distinguishing information.
//!
//! Following the paper, a block is purged when it contains more than half of
//! all entity profiles in the dataset — such blocks correspond to stop-word
//! tokens.  The procedure is parameter-free.

use crate::collection::BlockCollection;
use crate::csr::CsrBlockCollection;

/// The largest block size that survives Block Purging for a corpus of
/// `num_entities` profiles: blocks with more entities than this are dropped.
///
/// This is the single home of the purging threshold arithmetic — the batch
/// implementations below and incremental consumers (the purging-aware
/// streaming live view) must agree bit-for-bit on which blocks survive.
#[inline]
pub fn purging_limit(num_entities: usize) -> usize {
    num_entities / 2
}

/// Discards every block containing more than half of the entity profiles.
pub fn block_purging(blocks: &BlockCollection) -> BlockCollection {
    let limit = purging_limit(blocks.num_entities);
    blocks.retain_blocks(|b| b.size() <= limit)
}

/// CSR-native Block Purging: the same rule as [`block_purging`], but as a
/// pure index operation — the surviving blocks share the input's key arena,
/// so no key string is cloned.
pub fn block_purging_csr(blocks: &CsrBlockCollection) -> CsrBlockCollection {
    let limit = purging_limit(blocks.num_entities);
    blocks.retain(|b| blocks.block_size(b) <= limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use er_core::{DatasetKind, EntityId};

    fn ids(n: u32) -> Vec<EntityId> {
        (0..n).map(EntityId).collect()
    }

    fn collection(num_entities: usize, blocks: Vec<Block>) -> BlockCollection {
        BlockCollection {
            dataset_name: "t".into(),
            kind: DatasetKind::Dirty,
            split: num_entities,
            num_entities,
            blocks,
        }
    }

    #[test]
    fn purges_oversized_blocks() {
        let bc = collection(
            10,
            vec![
                Block::new("stopword", ids(8)),
                Block::new("rare", ids(3)),
                Block::new("half", ids(5)),
            ],
        );
        let purged = block_purging(&bc);
        let keys: Vec<_> = purged.blocks.iter().map(|b| b.key.as_str()).collect();
        assert_eq!(keys, vec!["rare", "half"]);
    }

    #[test]
    fn keeps_everything_when_no_block_is_too_large() {
        let bc = collection(100, vec![Block::new("a", ids(10)), Block::new("b", ids(2))]);
        assert_eq!(block_purging(&bc).num_blocks(), 2);
    }

    #[test]
    fn empty_collection_stays_empty() {
        let bc = collection(10, vec![]);
        assert!(block_purging(&bc).is_empty());
    }
}
