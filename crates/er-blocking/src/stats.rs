//! Block statistics: the per-entity and per-block quantities every weighting
//! scheme is computed from.
//!
//! Weighting schemes only ever look at the co-occurrence structure of the
//! block collection — never at the raw attribute values — so this struct
//! pre-computes:
//!
//! * `B_i`: the sorted list of blocks containing each entity,
//! * `|b|`: the entity count of each block,
//! * `||b||`: the comparison count of each block (including redundant pairs),
//! * `||B||`: the total comparison count, and
//! * `||e_i||`: the per-entity aggregate comparison count (Σ ||b|| over `B_i`).
//!
//! # Layout
//!
//! The entity → block adjacency is stored as a flat CSR (compressed sparse
//! row) index: one `offsets` array with `num_entities + 1` slots and one
//! contiguous `block_ids` arena.  Entity `i`'s sorted block list is the slice
//! `block_ids[offsets[i]..offsets[i + 1]]`.  Compared to the previous
//! `Vec<Vec<BlockId>>` layout this removes one pointer indirection per entity
//! and keeps consecutive entities' lists adjacent in memory, which matters
//! because the common-block merge loop under every weighting scheme streams
//! through these lists for millions of candidate pairs.
//!
//! The per-block reciprocals `1/||b||` and `1/|b|` are precomputed once so the
//! hot merge loop performs zero divisions.

use er_core::{BlockId, DatasetKind, EntityId};
use serde::{Deserialize, Serialize};

use crate::collection::BlockCollection;
use crate::csr::CsrBlockCollection;

/// Pre-computed co-occurrence statistics of a block collection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockStats {
    /// CSR offsets into `block_ids`; `num_entities + 1` entries.
    pub(crate) offsets: Vec<u32>,
    /// CSR arena: concatenated sorted block lists of all entities.
    pub(crate) block_ids: Vec<BlockId>,
    /// Reverse CSR offsets into `block_entities`; `num_blocks + 1` entries.
    pub(crate) block_offsets: Vec<u32>,
    /// Reverse CSR arena: concatenated sorted entity lists of all blocks.
    pub(crate) block_entities: Vec<EntityId>,
    /// Per block, how many of its entities belong to the first source
    /// (everything for Dirty ER).
    pub(crate) first_source_counts: Vec<u32>,
    /// `|b|` per block: number of entities.
    pub(crate) block_sizes: Vec<u32>,
    /// `||b||` per block: number of comparisons including redundant ones.
    pub(crate) block_comparisons: Vec<u64>,
    /// `1 / ||b||` per block (0 when the block has no comparisons).
    pub(crate) inv_comparisons: Vec<f64>,
    /// `1 / |b|` per block (0 when the block is empty).
    pub(crate) inv_sizes: Vec<f64>,
    /// `||B||`: total number of comparisons across all blocks.
    pub(crate) total_comparisons: u64,
    /// `||e_i||` per entity: Σ_{b ∈ B_i} ||b||.
    pub(crate) entity_comparisons: Vec<u64>,
    /// Number of blocks, |B|.
    pub(crate) num_blocks: usize,
    /// The ER kind of the underlying collection.
    pub(crate) kind: DatasetKind,
    /// E1/E2 boundary in the flattened entity id space.
    pub(crate) split: usize,
}

impl BlockStats {
    /// Computes the statistics of a block collection.
    pub fn new(blocks: &BlockCollection) -> Self {
        let num_blocks = blocks.num_blocks();
        let num_entities = blocks.num_entities;

        let mut block_sizes = Vec::with_capacity(num_blocks);
        let mut block_comparisons = Vec::with_capacity(num_blocks);
        let mut inv_comparisons = Vec::with_capacity(num_blocks);
        let mut inv_sizes = Vec::with_capacity(num_blocks);
        let mut block_offsets = Vec::with_capacity(num_blocks + 1);
        let mut first_source_counts = Vec::with_capacity(num_blocks);
        let mut block_entities = Vec::new();

        block_offsets.push(0u32);
        for block in &blocks.blocks {
            let size = block.size() as u32;
            let comparisons = block.num_comparisons(blocks.kind, blocks.split);
            block_sizes.push(size);
            block_comparisons.push(comparisons);
            inv_comparisons.push(if comparisons > 0 {
                1.0 / comparisons as f64
            } else {
                0.0
            });
            inv_sizes.push(if size > 0 { 1.0 / f64::from(size) } else { 0.0 });
            first_source_counts.push(block.first_source_count(blocks.split) as u32);
            block_entities.extend_from_slice(&block.entities);
            block_offsets.push(block_entities.len() as u32);
        }

        let (offsets, block_ids) = build_entity_block_adjacency(blocks);

        let total_comparisons = block_comparisons.iter().sum();
        let entity_comparisons = (0..num_entities)
            .map(|e| {
                block_ids[offsets[e] as usize..offsets[e + 1] as usize]
                    .iter()
                    .map(|b| block_comparisons[b.index()])
                    .sum()
            })
            .collect();

        BlockStats {
            offsets,
            block_ids,
            block_offsets,
            block_entities,
            first_source_counts,
            block_sizes,
            block_comparisons,
            inv_comparisons,
            inv_sizes,
            total_comparisons,
            entity_comparisons,
            num_blocks,
            kind: blocks.kind,
            split: blocks.split,
        }
    }

    /// Computes the statistics straight from a CSR collection — the same
    /// quantities as [`BlockStats::new`] on the nested view (blocks keep
    /// their ids), but without materialising `Vec<Block>` or touching any
    /// key string.
    pub fn from_csr(blocks: &CsrBlockCollection) -> Self {
        let num_blocks = blocks.num_blocks();
        let num_entities = blocks.num_entities;

        let mut block_sizes = Vec::with_capacity(num_blocks);
        let mut block_comparisons = Vec::with_capacity(num_blocks);
        let mut inv_comparisons = Vec::with_capacity(num_blocks);
        let mut inv_sizes = Vec::with_capacity(num_blocks);
        let mut block_offsets = Vec::with_capacity(num_blocks + 1);
        let mut first_source_counts = Vec::with_capacity(num_blocks);
        let mut block_entities = Vec::new();

        block_offsets.push(0u32);
        for b in 0..num_blocks {
            let size = blocks.block_size(b) as u32;
            let comparisons = blocks.block_comparisons(b);
            block_sizes.push(size);
            block_comparisons.push(comparisons);
            inv_comparisons.push(if comparisons > 0 {
                1.0 / comparisons as f64
            } else {
                0.0
            });
            inv_sizes.push(if size > 0 { 1.0 / f64::from(size) } else { 0.0 });
            first_source_counts.push(blocks.first_source_count(b) as u32);
            block_entities.extend_from_slice(blocks.entities(b));
            block_offsets.push(block_entities.len() as u32);
        }

        // Entity → block adjacency: identical layout to the nested path
        // (blocks visited in id order, so every entity's slice is sorted).
        let mut degrees = vec![0u32; num_entities];
        for &entity in &block_entities {
            degrees[entity.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(num_entities + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursors: Vec<u32> = offsets[..num_entities].to_vec();
        let mut block_ids = vec![BlockId(0); acc as usize];
        for b in 0..num_blocks {
            let id = BlockId::from(b);
            for entity in blocks.entities(b) {
                let cursor = &mut cursors[entity.index()];
                block_ids[*cursor as usize] = id;
                *cursor += 1;
            }
        }

        let total_comparisons = block_comparisons.iter().sum();
        let entity_comparisons = (0..num_entities)
            .map(|e| {
                block_ids[offsets[e] as usize..offsets[e + 1] as usize]
                    .iter()
                    .map(|b| block_comparisons[b.index()])
                    .sum()
            })
            .collect();

        BlockStats {
            offsets,
            block_ids,
            block_offsets,
            block_entities,
            first_source_counts,
            block_sizes,
            block_comparisons,
            inv_comparisons,
            inv_sizes,
            total_comparisons,
            entity_comparisons,
            num_blocks,
            kind: blocks.kind,
            split: blocks.split,
        }
    }

    /// Number of blocks, |B|.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Number of entities covered.
    pub fn num_entities(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The blocks containing an entity, `B_i`, sorted by block id.
    #[inline]
    pub fn blocks_of(&self, entity: EntityId) -> &[BlockId] {
        let start = self.offsets[entity.index()] as usize;
        let end = self.offsets[entity.index() + 1] as usize;
        &self.block_ids[start..end]
    }

    /// `|B_i|`: how many blocks contain the entity.
    #[inline]
    pub fn num_blocks_of(&self, entity: EntityId) -> usize {
        (self.offsets[entity.index() + 1] - self.offsets[entity.index()]) as usize
    }

    /// The raw CSR index: `(offsets, block_ids)` with entity `i`'s block list
    /// at `block_ids[offsets[i]..offsets[i + 1]]`.
    pub fn entity_block_csr(&self) -> (&[u32], &[BlockId]) {
        (&self.offsets, &self.block_ids)
    }

    /// The ER kind of the underlying collection.
    pub fn kind(&self) -> DatasetKind {
        self.kind
    }

    /// The E1/E2 boundary of the flattened entity id space.
    pub fn split(&self) -> usize {
        self.split
    }

    /// The sorted entities of a block (flat reverse-CSR slice).
    #[inline]
    pub fn entities_of(&self, block: BlockId) -> &[EntityId] {
        let start = self.block_offsets[block.index()] as usize;
        let end = self.block_offsets[block.index() + 1] as usize;
        &self.block_entities[start..end]
    }

    /// How many of the block's entities belong to the first source.  The
    /// slice `entities_of(b)[first_source_count(b)..]` is the block's E2 side
    /// (empty split for Dirty ER, where every entity is "first source").
    #[inline]
    pub fn first_source_count(&self, block: BlockId) -> u32 {
        self.first_source_counts[block.index()]
    }

    /// `|b|`: number of entities in a block.
    #[inline]
    pub fn block_size(&self, block: BlockId) -> u32 {
        self.block_sizes[block.index()]
    }

    /// `||b||`: number of comparisons in a block, including redundant ones.
    #[inline]
    pub fn block_comparisons(&self, block: BlockId) -> u64 {
        self.block_comparisons[block.index()]
    }

    /// The precomputed `1/||b||` table, indexed by block id (0 for blocks
    /// without comparisons).
    #[inline]
    pub fn inv_comparisons_table(&self) -> &[f64] {
        &self.inv_comparisons
    }

    /// The precomputed `1/|b|` table, indexed by block id (0 for empty
    /// blocks).
    #[inline]
    pub fn inv_sizes_table(&self) -> &[f64] {
        &self.inv_sizes
    }

    /// `||B||`: total comparisons across all blocks.
    pub fn total_comparisons(&self) -> u64 {
        self.total_comparisons
    }

    /// `||e_i||`: aggregate comparisons of the blocks containing the entity.
    #[inline]
    pub fn entity_comparisons(&self, entity: EntityId) -> u64 {
        self.entity_comparisons[entity.index()]
    }

    /// Number of blocks shared by two entities, `|B_i ∩ B_j|`.
    pub fn common_blocks(&self, a: EntityId, b: EntityId) -> usize {
        let mut count = 0;
        self.for_each_common_block(a, b, |_| count += 1);
        count
    }

    /// Calls `f` for every block shared by the two entities, in block-id order.
    ///
    /// Implemented as a merge of the two sorted block lists, so the cost is
    /// `O(|B_i| + |B_j|)` with no allocation — this sits on the hot path of
    /// every weighting scheme.
    #[inline]
    pub fn for_each_common_block(&self, a: EntityId, b: EntityId, mut f: impl FnMut(BlockId)) {
        let la = self.blocks_of(a);
        let lb = self.blocks_of(b);
        let (mut i, mut j) = (0, 0);
        while i < la.len() && j < lb.len() {
            let (x, y) = (la[i], lb[j]);
            if x < y {
                i += 1;
            } else if y < x {
                j += 1;
            } else {
                f(x);
                i += 1;
                j += 1;
            }
        }
    }

    /// Returns the shared blocks of two entities as a vector.
    pub fn common_block_ids(&self, a: EntityId, b: EntityId) -> Vec<BlockId> {
        let mut out = Vec::new();
        self.for_each_common_block(a, b, |id| out.push(id));
        out
    }
}

/// Builds the entity → block CSR adjacency of a collection: `(offsets,
/// block_ids)` with entity `i`'s sorted block list at
/// `block_ids[offsets[i]..offsets[i + 1]]`.
///
/// Shared by [`BlockStats::new`] and the standalone candidate extraction in
/// [`crate::candidates`] so the adjacency layout is defined exactly once.
pub(crate) fn build_entity_block_adjacency(blocks: &BlockCollection) -> (Vec<u32>, Vec<BlockId>) {
    let num_entities = blocks.num_entities;
    let mut degrees = vec![0u32; num_entities];
    for block in &blocks.blocks {
        for entity in &block.entities {
            degrees[entity.index()] += 1;
        }
    }
    let mut offsets = Vec::with_capacity(num_entities + 1);
    let mut acc = 0u32;
    offsets.push(0);
    for &d in &degrees {
        acc += d;
        offsets.push(acc);
    }
    // Fill the arena; blocks are visited in id order, so each entity's slice
    // comes out sorted.
    let mut cursors: Vec<u32> = offsets[..num_entities].to_vec();
    let mut block_ids = vec![BlockId(0); acc as usize];
    for (id, block) in blocks.iter_with_ids() {
        for entity in &block.entities {
            let cursor = &mut cursors[entity.index()];
            block_ids[*cursor as usize] = id;
            *cursor += 1;
        }
    }
    debug_assert!((0..num_entities).all(|e| {
        let list = &block_ids[offsets[e] as usize..offsets[e + 1] as usize];
        list.windows(2).all(|w| w[0] < w[1])
    }));
    (offsets, block_ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::reference::NaiveBlockStats;
    use er_core::DatasetKind;

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    fn sample() -> BlockCollection {
        BlockCollection {
            dataset_name: "t".into(),
            kind: DatasetKind::CleanClean,
            split: 2,
            num_entities: 4,
            blocks: vec![
                Block::new("a", ids(&[0, 2])),
                Block::new("b", ids(&[0, 1, 2, 3])),
                Block::new("c", ids(&[1, 3])),
            ],
        }
    }

    #[test]
    fn per_block_quantities() {
        let stats = BlockStats::new(&sample());
        assert_eq!(stats.num_blocks(), 3);
        assert_eq!(stats.block_size(BlockId(1)), 4);
        assert_eq!(stats.block_comparisons(BlockId(0)), 1);
        assert_eq!(stats.total_comparisons(), 1 + 4 + 1);
    }

    #[test]
    fn per_entity_quantities() {
        let stats = BlockStats::new(&sample());
        assert_eq!(stats.blocks_of(EntityId(0)), &[BlockId(0), BlockId(1)]);
        assert_eq!(stats.num_blocks_of(EntityId(3)), 2);
        assert_eq!(stats.entity_comparisons(EntityId(0)), 1 + 4);
        assert_eq!(stats.entity_comparisons(EntityId(1)), 4 + 1);
    }

    #[test]
    fn common_blocks_by_merge() {
        let stats = BlockStats::new(&sample());
        assert_eq!(stats.common_blocks(EntityId(0), EntityId(2)), 2);
        assert_eq!(stats.common_blocks(EntityId(0), EntityId(3)), 1);
        assert_eq!(
            stats.common_block_ids(EntityId(0), EntityId(2)),
            vec![BlockId(0), BlockId(1)]
        );
        assert_eq!(stats.common_blocks(EntityId(0), EntityId(0)), 2);
    }

    #[test]
    fn entity_with_no_blocks() {
        let mut bc = sample();
        bc.num_entities = 5;
        let stats = BlockStats::new(&bc);
        assert_eq!(stats.num_blocks_of(EntityId(4)), 0);
        assert_eq!(stats.entity_comparisons(EntityId(4)), 0);
        assert_eq!(stats.common_blocks(EntityId(4), EntityId(0)), 0);
    }

    #[test]
    fn reverse_csr_exposes_block_membership() {
        let bc = sample();
        let stats = BlockStats::new(&bc);
        assert_eq!(stats.kind(), DatasetKind::CleanClean);
        assert_eq!(stats.split(), 2);
        assert_eq!(stats.entities_of(BlockId(0)), &[EntityId(0), EntityId(2)]);
        assert_eq!(
            stats.entities_of(BlockId(1)),
            &[EntityId(0), EntityId(1), EntityId(2), EntityId(3)]
        );
        assert_eq!(stats.first_source_count(BlockId(1)), 2);
        // The E2 side of block b.
        let fsc = stats.first_source_count(BlockId(1)) as usize;
        assert_eq!(
            &stats.entities_of(BlockId(1))[fsc..],
            &[EntityId(2), EntityId(3)]
        );
    }

    #[test]
    fn reciprocal_tables_match_cardinalities() {
        let stats = BlockStats::new(&sample());
        for b in 0..stats.num_blocks() {
            let id = BlockId(b as u32);
            let comparisons = stats.block_comparisons(id);
            let expected = if comparisons > 0 {
                1.0 / comparisons as f64
            } else {
                0.0
            };
            assert_eq!(stats.inv_comparisons_table()[b], expected);
            assert_eq!(
                stats.inv_sizes_table()[b],
                1.0 / f64::from(stats.block_size(id))
            );
        }
    }

    #[test]
    fn from_csr_matches_nested_constructor() {
        let bc = sample();
        let from_nested = BlockStats::new(&bc);
        let from_csr = BlockStats::from_csr(&bc.to_csr());
        assert_eq!(from_csr.num_blocks(), from_nested.num_blocks());
        assert_eq!(from_csr.kind(), from_nested.kind());
        assert_eq!(from_csr.split(), from_nested.split());
        assert_eq!(
            from_csr.total_comparisons(),
            from_nested.total_comparisons()
        );
        for e in 0..bc.num_entities {
            let entity = EntityId(e as u32);
            assert_eq!(from_csr.blocks_of(entity), from_nested.blocks_of(entity));
            assert_eq!(
                from_csr.entity_comparisons(entity),
                from_nested.entity_comparisons(entity)
            );
        }
        for b in 0..bc.num_blocks() {
            let id = BlockId(b as u32);
            assert_eq!(from_csr.entities_of(id), from_nested.entities_of(id));
            assert_eq!(from_csr.block_size(id), from_nested.block_size(id));
            assert_eq!(
                from_csr.first_source_count(id),
                from_nested.first_source_count(id)
            );
            assert_eq!(
                from_csr.inv_comparisons_table()[b],
                from_nested.inv_comparisons_table()[b]
            );
        }
    }

    #[test]
    fn csr_matches_naive_adjacency() {
        let bc = sample();
        let stats = BlockStats::new(&bc);
        let naive = NaiveBlockStats::new(&bc);
        for e in 0..bc.num_entities {
            let entity = EntityId(e as u32);
            assert_eq!(stats.blocks_of(entity), naive.blocks_of(entity));
            assert_eq!(
                stats.entity_comparisons(entity),
                naive.entity_comparisons(entity)
            );
        }
        let (offsets, arena) = stats.entity_block_csr();
        assert_eq!(offsets.len(), bc.num_entities + 1);
        assert_eq!(arena.len(), *offsets.last().unwrap() as usize);
    }
}
