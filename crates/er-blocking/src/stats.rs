//! Block statistics: the per-entity and per-block quantities every weighting
//! scheme is computed from.
//!
//! Weighting schemes only ever look at the co-occurrence structure of the
//! block collection — never at the raw attribute values — so this struct
//! pre-computes:
//!
//! * `B_i`: the sorted list of blocks containing each entity,
//! * `|b|`: the entity count of each block,
//! * `||b||`: the comparison count of each block (including redundant pairs),
//! * `||B||`: the total comparison count, and
//! * `||e_i||`: the per-entity aggregate comparison count (Σ ||b|| over `B_i`).

use er_core::{BlockId, EntityId};
use serde::{Deserialize, Serialize};

use crate::collection::BlockCollection;

/// Pre-computed co-occurrence statistics of a block collection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockStats {
    /// For every entity, the sorted list of blocks containing it (`B_i`).
    entity_blocks: Vec<Vec<BlockId>>,
    /// `|b|` per block: number of entities.
    block_sizes: Vec<u32>,
    /// `||b||` per block: number of comparisons including redundant ones.
    block_comparisons: Vec<u64>,
    /// `||B||`: total number of comparisons across all blocks.
    total_comparisons: u64,
    /// `||e_i||` per entity: Σ_{b ∈ B_i} ||b||.
    entity_comparisons: Vec<u64>,
    /// Number of blocks, |B|.
    num_blocks: usize,
}

impl BlockStats {
    /// Computes the statistics of a block collection.
    pub fn new(blocks: &BlockCollection) -> Self {
        let num_blocks = blocks.num_blocks();
        let mut entity_blocks: Vec<Vec<BlockId>> = vec![Vec::new(); blocks.num_entities];
        let mut block_sizes = Vec::with_capacity(num_blocks);
        let mut block_comparisons = Vec::with_capacity(num_blocks);

        for (id, block) in blocks.iter_with_ids() {
            block_sizes.push(block.size() as u32);
            block_comparisons.push(block.num_comparisons(blocks.kind, blocks.split));
            for entity in &block.entities {
                entity_blocks[entity.index()].push(id);
            }
        }
        // Blocks are visited in id order, so each entity's list is already
        // sorted; assert in debug builds.
        debug_assert!(entity_blocks
            .iter()
            .all(|list| list.windows(2).all(|w| w[0] < w[1])));

        let total_comparisons = block_comparisons.iter().sum();
        let entity_comparisons = entity_blocks
            .iter()
            .map(|list| list.iter().map(|b| block_comparisons[b.index()]).sum())
            .collect();

        BlockStats {
            entity_blocks,
            block_sizes,
            block_comparisons,
            total_comparisons,
            entity_comparisons,
            num_blocks,
        }
    }

    /// Number of blocks, |B|.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Number of entities covered.
    pub fn num_entities(&self) -> usize {
        self.entity_blocks.len()
    }

    /// The blocks containing an entity, `B_i`, sorted by block id.
    pub fn blocks_of(&self, entity: EntityId) -> &[BlockId] {
        &self.entity_blocks[entity.index()]
    }

    /// `|B_i|`: how many blocks contain the entity.
    pub fn num_blocks_of(&self, entity: EntityId) -> usize {
        self.entity_blocks[entity.index()].len()
    }

    /// `|b|`: number of entities in a block.
    pub fn block_size(&self, block: BlockId) -> u32 {
        self.block_sizes[block.index()]
    }

    /// `||b||`: number of comparisons in a block, including redundant ones.
    pub fn block_comparisons(&self, block: BlockId) -> u64 {
        self.block_comparisons[block.index()]
    }

    /// `||B||`: total comparisons across all blocks.
    pub fn total_comparisons(&self) -> u64 {
        self.total_comparisons
    }

    /// `||e_i||`: aggregate comparisons of the blocks containing the entity.
    pub fn entity_comparisons(&self, entity: EntityId) -> u64 {
        self.entity_comparisons[entity.index()]
    }

    /// Number of blocks shared by two entities, `|B_i ∩ B_j|`.
    pub fn common_blocks(&self, a: EntityId, b: EntityId) -> usize {
        let mut count = 0;
        self.for_each_common_block(a, b, |_| count += 1);
        count
    }

    /// Calls `f` for every block shared by the two entities, in block-id order.
    ///
    /// Implemented as a merge of the two sorted block lists, so the cost is
    /// `O(|B_i| + |B_j|)` with no allocation — this sits on the hot path of
    /// every weighting scheme.
    #[inline]
    pub fn for_each_common_block(&self, a: EntityId, b: EntityId, mut f: impl FnMut(BlockId)) {
        let la = &self.entity_blocks[a.index()];
        let lb = &self.entity_blocks[b.index()];
        let (mut i, mut j) = (0, 0);
        while i < la.len() && j < lb.len() {
            match la[i].cmp(&lb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    f(la[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }

    /// Returns the shared blocks of two entities as a vector.
    pub fn common_block_ids(&self, a: EntityId, b: EntityId) -> Vec<BlockId> {
        let mut out = Vec::new();
        self.for_each_common_block(a, b, |id| out.push(id));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use er_core::DatasetKind;

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    fn sample() -> BlockCollection {
        BlockCollection {
            dataset_name: "t".into(),
            kind: DatasetKind::CleanClean,
            split: 2,
            num_entities: 4,
            blocks: vec![
                Block::new("a", ids(&[0, 2])),
                Block::new("b", ids(&[0, 1, 2, 3])),
                Block::new("c", ids(&[1, 3])),
            ],
        }
    }

    #[test]
    fn per_block_quantities() {
        let stats = BlockStats::new(&sample());
        assert_eq!(stats.num_blocks(), 3);
        assert_eq!(stats.block_size(BlockId(1)), 4);
        assert_eq!(stats.block_comparisons(BlockId(0)), 1);
        assert_eq!(stats.block_comparisons(BlockId(1)), 4);
        assert_eq!(stats.total_comparisons(), 1 + 4 + 1);
    }

    #[test]
    fn per_entity_quantities() {
        let stats = BlockStats::new(&sample());
        assert_eq!(stats.blocks_of(EntityId(0)), &[BlockId(0), BlockId(1)]);
        assert_eq!(stats.num_blocks_of(EntityId(3)), 2);
        assert_eq!(stats.entity_comparisons(EntityId(0)), 1 + 4);
        assert_eq!(stats.entity_comparisons(EntityId(1)), 4 + 1);
    }

    #[test]
    fn common_blocks_by_merge() {
        let stats = BlockStats::new(&sample());
        assert_eq!(stats.common_blocks(EntityId(0), EntityId(2)), 2);
        assert_eq!(stats.common_blocks(EntityId(0), EntityId(3)), 1);
        assert_eq!(
            stats.common_block_ids(EntityId(0), EntityId(2)),
            vec![BlockId(0), BlockId(1)]
        );
        assert_eq!(stats.common_blocks(EntityId(0), EntityId(0)), 2);
    }

    #[test]
    fn entity_with_no_blocks() {
        let mut bc = sample();
        bc.num_entities = 5;
        let stats = BlockStats::new(&bc);
        assert_eq!(stats.num_blocks_of(EntityId(4)), 0);
        assert_eq!(stats.entity_comparisons(EntityId(4)), 0);
        assert_eq!(stats.common_blocks(EntityId(4), EntityId(0)), 0);
    }
}
