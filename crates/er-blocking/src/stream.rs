//! Memory-bounded candidate streaming: chunked pair generation.
//!
//! [`crate::CandidatePairs`] materialises the full pair index (`pairs` +
//! `offsets` + `entity_candidates`) before a single pair is consumed — at
//! 10^7 entities that CSR is the dominant per-corpus allocation (~100M
//! pairs).  Nothing in the meta-blocking algorithm requires it: every pair
//! is scored independently given per-entity aggregates, so pair generation
//! can be interleaved with consumption.
//!
//! [`CandidateStream`] is that engine.  It runs in two passes over the
//! entity → block CSR:
//!
//! 1. **Counting pass** (construction): every emitting entity's sorted,
//!    deduplicated partner run is computed once to count it — producing the
//!    exact `u64` pair total, the per-entity run offsets (`u64`, so the
//!    stream has no 2^32 ceiling) and the per-entity distinct-candidate
//!    counts (the LCP feature table, accumulated with relaxed atomic adds —
//!    integer addition commutes, so the counts are exact and deterministic
//!    at any thread count).  The runs themselves are *discarded*; only the
//!    `O(num_entities)` aggregate tables are kept.
//! 2. **Chunked emission** ([`CandidateStream::chunks`] +
//!    [`CandidateStream::extract_chunk`]): the global pair-id space is cut
//!    into fixed-size chunks and each chunk's pairs are re-extracted on
//!    demand into a reusable [`ChunkArena`].  A chunk is addressed purely by
//!    its pair-id range, so boundaries may fall *inside* one entity's
//!    partner run — the run is re-derived in scratch and only the in-range
//!    slice is emitted.  Concatenating the chunks in order reproduces the
//!    materialised pair list bit-for-bit (same per-entity sort + dedup, same
//!    entity-ascending partner-sorted order), and chunks are independent, so
//!    they are the parallel work units of every streamed consumer.
//!
//! Peak memory of a streamed consumer is `O(chunk_pairs × workers +
//! aggregates)` instead of `O(total_pairs)`.  The materialised path is kept
//! as *the collector of the stream*
//! ([`CandidatePairs::try_from_stream`](crate::CandidatePairs::try_from_stream)),
//! so there is exactly one extraction engine in the crate.

use std::sync::atomic::{AtomicU32, Ordering};

use er_core::EntityId;

use crate::collection::BlockCollection;
use crate::stats::BlockStats;

/// Default pairs per chunk: large enough that per-chunk overheads (board
/// setup, task dispatch) vanish, small enough that a worker's arena stays a
/// ~1 MiB cache-friendly scratch.
pub const DEFAULT_CHUNK_PAIRS: usize = 1 << 16;

/// Borrowed entity → block CSR adjacency used during extraction.
#[derive(Clone, Copy)]
pub(crate) struct AdjView<'a> {
    pub(crate) offsets: &'a [u32],
    pub(crate) block_ids: &'a [er_core::BlockId],
}

impl<'a> AdjView<'a> {
    #[inline]
    pub(crate) fn blocks_of(self, entity: usize) -> &'a [er_core::BlockId] {
        &self.block_ids[self.offsets[entity] as usize..self.offsets[entity + 1] as usize]
    }
}

/// Borrowed per-block entity storage: either the nested `Vec<Block>` view or
/// the flat reverse CSR inside [`BlockStats`].
#[derive(Clone, Copy)]
pub(crate) enum BlockSource<'a> {
    Nested(&'a BlockCollection),
    Stats(&'a BlockStats),
}

impl<'a> BlockSource<'a> {
    #[inline]
    pub(crate) fn entities_of(self, block: er_core::BlockId) -> &'a [EntityId] {
        match self {
            BlockSource::Nested(blocks) => &blocks.blocks[block.index()].entities,
            BlockSource::Stats(stats) => stats.entities_of(block),
        }
    }

    #[inline]
    pub(crate) fn first_source_count(self, block: er_core::BlockId, split: usize) -> usize {
        match self {
            BlockSource::Nested(blocks) => blocks.blocks[block.index()].first_source_count(split),
            BlockSource::Stats(stats) => stats.first_source_count(block) as usize,
        }
    }
}

/// Collects into `scratch` the sorted, deduplicated comparable partners of
/// entity `a` with a larger id than `a` — the one extraction primitive both
/// the stream and the materialised collector run on.
#[inline]
pub(crate) fn neighbors_above(
    kind: er_core::DatasetKind,
    split: usize,
    source: BlockSource<'_>,
    adjacency: AdjView<'_>,
    a: usize,
    scratch: &mut Vec<u32>,
) {
    scratch.clear();
    match kind {
        er_core::DatasetKind::CleanClean => {
            debug_assert!(a < split);
            for &bid in adjacency.blocks_of(a) {
                let entities = source.entities_of(bid);
                let split_point = source.first_source_count(bid, split);
                // E2 ids all exceed every E1 id, so the whole outer slice
                // qualifies as "larger comparable partner".
                scratch.extend(entities[split_point..].iter().map(|e| e.0));
            }
        }
        er_core::DatasetKind::Dirty => {
            for &bid in adjacency.blocks_of(a) {
                let entities = source.entities_of(bid);
                let start = entities.partition_point(|e| e.index() <= a);
                scratch.extend(entities[start..].iter().map(|e| e.0));
            }
        }
    }
    scratch.sort_unstable();
    scratch.dedup();
}

/// The entity → block adjacency a stream walks: borrowed from a
/// [`BlockStats`], or owned when built directly from a [`BlockCollection`].
enum Adjacency<'a> {
    Borrowed {
        offsets: &'a [u32],
        block_ids: &'a [er_core::BlockId],
    },
    Owned {
        offsets: Vec<u32>,
        block_ids: Vec<er_core::BlockId>,
    },
}

impl Adjacency<'_> {
    #[inline]
    fn view(&self) -> AdjView<'_> {
        match self {
            Adjacency::Borrowed { offsets, block_ids } => AdjView { offsets, block_ids },
            Adjacency::Owned { offsets, block_ids } => AdjView { offsets, block_ids },
        }
    }
}

/// One chunk of the global pair-id space: pairs `pair_lo..pair_hi` in
/// emission order, overlapping the emitting entities
/// `entity_lo..entity_hi`.  Boundaries may split one entity's partner run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSpec {
    /// First global pair id of the chunk.
    pub pair_lo: u64,
    /// One past the last global pair id of the chunk.
    pub pair_hi: u64,
    /// First emitting entity whose run intersects the chunk.
    entity_lo: u32,
    /// One past the last emitting entity whose run intersects the chunk.
    entity_hi: u32,
}

impl ChunkSpec {
    /// Number of pairs in the chunk.
    pub fn len(&self) -> usize {
        (self.pair_hi - self.pair_lo) as usize
    }

    /// True if the chunk holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.pair_hi == self.pair_lo
    }
}

/// One entity's emitted segment inside a [`ChunkArena`].
#[derive(Debug, Clone, Copy)]
struct ChunkRun {
    entity: u32,
    start: u32,
    end: u32,
}

/// Reusable per-worker scratch a chunk is extracted into: the chunk's pairs
/// in global emission order, the per-entity segment boundaries, and the
/// partner-run scratch buffer.  Capacity is retained across chunks, so a
/// long streamed pass performs no steady-state allocation.
#[derive(Debug, Default)]
pub struct ChunkArena {
    pairs: Vec<(EntityId, EntityId)>,
    runs: Vec<ChunkRun>,
    scratch: Vec<u32>,
}

impl ChunkArena {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        ChunkArena::default()
    }

    /// The extracted chunk's pairs in global emission order.
    pub fn pairs(&self) -> &[(EntityId, EntityId)] {
        &self.pairs
    }

    /// Iterates the chunk's per-entity segments: `(entity, pairs_of_entity)`
    /// where the slice is the (possibly partial) partner run emitted for
    /// that entity, sorted by partner.
    pub fn runs(&self) -> impl Iterator<Item = (EntityId, &[(EntityId, EntityId)])> {
        self.runs.iter().map(|run| {
            (
                EntityId(run.entity),
                &self.pairs[run.start as usize..run.end as usize],
            )
        })
    }

    /// The arena's retained capacity in bytes (the streamed-mode analogue of
    /// the materialised index's allocation, tracked by the scalability
    /// bench).
    pub fn capacity_bytes(&self) -> usize {
        use std::mem::size_of;
        self.pairs.capacity() * size_of::<(EntityId, EntityId)>()
            + self.runs.capacity() * size_of::<ChunkRun>()
            + self.scratch.capacity() * size_of::<u32>()
    }
}

/// The streamed candidate engine: counts pairs exactly (in `u64`), then
/// re-extracts any chunk of the pair-id space on demand.  See the module
/// docs for the two-pass design.
pub struct CandidateStream<'a> {
    kind: er_core::DatasetKind,
    split: usize,
    num_entities: usize,
    source: BlockSource<'a>,
    adjacency: Adjacency<'a>,
    /// Global pair offsets per emitting entity (`emitting + 1` entries,
    /// `u64` — the stream has no 2^32 pair ceiling).
    offsets: Vec<u64>,
    /// Per-entity distinct-candidate counts — the LCP feature table.
    lcp: Vec<u32>,
}

impl<'a> CandidateStream<'a> {
    /// Builds the stream over a block collection on the calling thread.
    pub fn from_blocks(blocks: &'a BlockCollection) -> Self {
        let (offsets, block_ids) = crate::stats::build_entity_block_adjacency(blocks);
        Self::build(
            blocks.kind,
            blocks.split,
            blocks.num_entities,
            BlockSource::Nested(blocks),
            Adjacency::Owned { offsets, block_ids },
            1,
        )
    }

    /// Builds the stream over a block collection, reusing an
    /// already-computed [`BlockStats`] CSR adjacency, with up to `threads`
    /// counting workers.
    pub fn from_blocks_with_stats(
        blocks: &'a BlockCollection,
        stats: &'a BlockStats,
        threads: usize,
    ) -> Self {
        let (offsets, block_ids) = stats.entity_block_csr();
        Self::build(
            blocks.kind,
            blocks.split,
            blocks.num_entities,
            BlockSource::Nested(blocks),
            Adjacency::Borrowed { offsets, block_ids },
            threads.max(1),
        )
    }

    /// Builds the stream from the block statistics alone (the CSR-native
    /// entry point) with up to `threads` counting workers.
    pub fn from_stats(stats: &'a BlockStats, threads: usize) -> Self {
        let (offsets, block_ids) = stats.entity_block_csr();
        Self::build(
            stats.kind(),
            stats.split(),
            stats.num_entities(),
            BlockSource::Stats(stats),
            Adjacency::Borrowed { offsets, block_ids },
            threads.max(1),
        )
    }

    /// The counting pass: derives every emitting entity's run length and the
    /// per-entity LCP table, keeping only `O(num_entities)` aggregates.
    fn build(
        kind: er_core::DatasetKind,
        split: usize,
        num_entities: usize,
        source: BlockSource<'a>,
        adjacency: Adjacency<'a>,
        threads: usize,
    ) -> Self {
        // For Clean-Clean ER the smaller endpoint of every comparable pair
        // is an E1 entity, so entities >= split produce no runs of their own.
        let emitting = match kind {
            er_core::DatasetKind::CleanClean => split.min(num_entities),
            er_core::DatasetKind::Dirty => num_entities,
        };

        // Partner-side candidate counts are scattered with relaxed atomic
        // adds: u32 addition is commutative and associative, so the final
        // table is exact and identical at any thread count.
        let partner_counts: Vec<AtomicU32> = (0..num_entities).map(|_| AtomicU32::new(0)).collect();
        let view = adjacency.view();
        let num_tasks = if threads <= 1 { 1 } else { threads * 8 };
        let runs = er_core::map_ranges_parallel(emitting, threads, num_tasks, |range| {
            let mut counts: Vec<u32> = Vec::with_capacity(range.len());
            let mut scratch: Vec<u32> = Vec::new();
            for a in range {
                neighbors_above(kind, split, source, view, a, &mut scratch);
                counts.push(scratch.len() as u32);
                for &p in &scratch {
                    partner_counts[p as usize].fetch_add(1, Ordering::Relaxed);
                }
            }
            counts
        });

        let mut offsets: Vec<u64> = Vec::with_capacity(emitting + 1);
        offsets.push(0);
        for counts in runs {
            for count in counts {
                offsets.push(offsets.last().unwrap() + u64::from(count));
            }
        }
        let mut lcp: Vec<u32> = partner_counts
            .into_iter()
            .map(AtomicU32::into_inner)
            .collect();
        for (a, window) in offsets.windows(2).enumerate() {
            lcp[a] += (window[1] - window[0]) as u32;
        }

        CandidateStream {
            kind,
            split,
            num_entities,
            source,
            adjacency,
            offsets,
            lcp,
        }
    }

    /// Exact number of candidate pairs the stream emits, counted in `u64` —
    /// valid even past the materialised index's 2^32 ceiling.
    pub fn total_pairs(&self) -> u64 {
        *self.offsets.last().unwrap_or(&0)
    }

    /// Number of entities of the corpus (the flattened id space).
    pub fn num_entities(&self) -> usize {
        self.num_entities
    }

    /// Number of entities that emit runs of their own (the E1 side for
    /// Clean-Clean ER, every entity for Dirty ER).
    pub fn emitting_entities(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The per-entity distinct-candidate counts — the LCP feature table,
    /// identical to
    /// [`CandidatePairs::entity_candidate_counts`](crate::CandidatePairs::entity_candidate_counts).
    pub fn lcp_table(&self) -> &[u32] {
        &self.lcp
    }

    /// One entity's distinct-candidate count (the LCP feature).
    pub fn lcp(&self, entity: EntityId) -> u32 {
        self.lcp[entity.index()]
    }

    /// The global pair-id offsets per emitting entity (`emitting + 1`
    /// entries): entity `a`'s run occupies pair ids
    /// `offsets[a]..offsets[a + 1]`.
    pub fn entity_offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Bytes held by the stream's aggregate tables (pair offsets + LCP
    /// counts) — everything a streamed consumer keeps resident besides its
    /// per-worker [`ChunkArena`] scratch.  The streamed-mode analogue of
    /// [`CandidatePairs::index_bytes`](crate::CandidatePairs::index_bytes).
    pub fn aggregate_bytes(&self) -> usize {
        use std::mem::size_of;
        self.offsets.capacity() * size_of::<u64>() + self.lcp.capacity() * size_of::<u32>()
    }

    /// Cuts the pair-id space into chunks of at most `chunk_pairs` pairs
    /// each.  Every chunk except possibly the last is exactly `chunk_pairs`
    /// long; boundaries may fall inside one entity's partner run.
    pub fn chunks(&self, chunk_pairs: usize) -> Vec<ChunkSpec> {
        let chunk = chunk_pairs.max(1) as u64;
        let total = self.total_pairs();
        let mut out = Vec::with_capacity(total.div_ceil(chunk) as usize);
        let mut lo = 0u64;
        while lo < total {
            let hi = (lo + chunk).min(total);
            // First entity whose run contains pair `lo`, and one past the
            // entity containing pair `hi - 1` (empty runs on the boundary
            // are excluded on both sides).
            let entity_lo = self.offsets.partition_point(|&o| o <= lo) - 1;
            let entity_hi = self.offsets.partition_point(|&o| o < hi);
            out.push(ChunkSpec {
                pair_lo: lo,
                pair_hi: hi,
                entity_lo: entity_lo as u32,
                entity_hi: entity_hi as u32,
            });
            lo = hi;
        }
        out
    }

    /// Walks one chunk's per-entity segments: for every entity whose run
    /// intersects the chunk, re-derives the full sorted partner run in
    /// `scratch` and hands `f` the in-chunk slice of it.
    fn for_each_chunk_run(
        &self,
        chunk: ChunkSpec,
        scratch: &mut Vec<u32>,
        mut f: impl FnMut(EntityId, &[u32]),
    ) {
        let view = self.adjacency.view();
        for e in chunk.entity_lo as usize..chunk.entity_hi as usize {
            let run_lo = self.offsets[e];
            let run_hi = self.offsets[e + 1];
            if run_lo >= chunk.pair_hi || run_hi <= chunk.pair_lo {
                continue;
            }
            neighbors_above(self.kind, self.split, self.source, view, e, scratch);
            debug_assert_eq!(scratch.len() as u64, run_hi - run_lo);
            let local_lo = (chunk.pair_lo.max(run_lo) - run_lo) as usize;
            let local_hi = (chunk.pair_hi.min(run_hi) - run_lo) as usize;
            f(EntityId(e as u32), &scratch[local_lo..local_hi]);
        }
    }

    /// Extracts one chunk into a reusable arena: the chunk's pairs in global
    /// emission order plus the per-entity segment boundaries.
    pub fn extract_chunk(&self, chunk: ChunkSpec, arena: &mut ChunkArena) {
        let capacity_before = arena.capacity_bytes();
        let ChunkArena {
            pairs,
            runs,
            scratch,
        } = arena;
        pairs.clear();
        runs.clear();
        self.for_each_chunk_run(chunk, scratch, |a, partners| {
            let start = pairs.len() as u32;
            pairs.extend(partners.iter().map(|&p| (a, EntityId(p))));
            runs.push(ChunkRun {
                entity: a.0,
                start,
                end: pairs.len() as u32,
            });
        });
        debug_assert_eq!(pairs.len(), chunk.len());
        // One batched registry update per chunk (thousands of pairs), never
        // per pair.
        let o = crate::obs::obs();
        o.stream_chunks.inc();
        o.stream_pairs.add(arena.pairs.len() as u64);
        if arena.capacity_bytes() > capacity_before {
            o.arena_grows.inc();
        } else {
            o.arena_reuses.inc();
        }
    }

    /// Extracts one chunk straight into a caller-provided slice of exactly
    /// [`ChunkSpec::len`] pairs (the zero-copy path of the materialised
    /// collector).
    pub fn extract_chunk_into(
        &self,
        chunk: ChunkSpec,
        scratch: &mut Vec<u32>,
        out: &mut [(EntityId, EntityId)],
    ) {
        debug_assert_eq!(out.len(), chunk.len());
        let mut cursor = 0usize;
        self.for_each_chunk_run(chunk, scratch, |a, partners| {
            for (slot, &p) in out[cursor..cursor + partners.len()]
                .iter_mut()
                .zip(partners)
            {
                *slot = (a, EntityId(p));
            }
            cursor += partners.len();
        });
        debug_assert_eq!(cursor, out.len());
    }

    /// Collects the stream into a materialised [`crate::CandidatePairs`] —
    /// the single extraction engine's batch collector.  Fails with
    /// [`er_core::Error::CapacityExceeded`] when the pair total exceeds the
    /// materialised index's `u32` ceiling.
    pub fn collect(&self, threads: usize) -> er_core::Result<crate::CandidatePairs> {
        crate::CandidatePairs::try_from_stream(self, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::CandidatePairs;
    use er_core::DatasetKind;

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    fn fixtures() -> Vec<BlockCollection> {
        vec![
            BlockCollection {
                dataset_name: "cc".into(),
                kind: DatasetKind::CleanClean,
                split: 3,
                num_entities: 6,
                blocks: vec![
                    Block::new("a", ids(&[0, 3])),
                    Block::new("b", ids(&[0, 1, 3, 4])),
                    Block::new("c", ids(&[1, 4])),
                    Block::new("d", ids(&[0, 1, 2, 3, 4, 5])),
                ],
            },
            BlockCollection {
                dataset_name: "dirty".into(),
                kind: DatasetKind::Dirty,
                split: 6,
                num_entities: 6,
                blocks: vec![
                    Block::new("a", ids(&[0, 1, 2, 5])),
                    Block::new("b", ids(&[1, 2, 3])),
                    Block::new("c", ids(&[0, 4, 5])),
                ],
            },
        ]
    }

    #[test]
    fn counting_pass_matches_materialised_totals() {
        for bc in fixtures() {
            let reference = CandidatePairs::from_blocks(&bc);
            for threads in [1, 2, 4] {
                let stats = crate::BlockStats::new(&bc);
                let stream = CandidateStream::from_stats(&stats, threads);
                assert_eq!(stream.total_pairs(), reference.len() as u64);
                assert_eq!(stream.lcp_table(), reference.entity_candidate_counts());
                for e in 0..bc.num_entities {
                    let entity = EntityId(e as u32);
                    if e < stream.emitting_entities() {
                        let range = stream.entity_offsets()[e]..stream.entity_offsets()[e + 1];
                        assert_eq!(
                            (range.end - range.start) as usize,
                            reference.pairs_of(entity).len(),
                            "{} entity {e}",
                            bc.dataset_name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn chunk_concatenation_reproduces_the_pair_list_at_any_chunk_size() {
        for bc in fixtures() {
            let reference = CandidatePairs::from_blocks(&bc);
            let stats = crate::BlockStats::new(&bc);
            let stream = CandidateStream::from_stats(&stats, 2);
            for chunk_pairs in [1usize, 2, 3, 5, 64, usize::MAX / 2] {
                let chunks = stream.chunks(chunk_pairs);
                let total: usize = chunks.iter().map(ChunkSpec::len).sum();
                assert_eq!(total as u64, stream.total_pairs());
                let mut arena = ChunkArena::new();
                let mut collected = Vec::new();
                for chunk in chunks {
                    stream.extract_chunk(chunk, &mut arena);
                    assert_eq!(arena.pairs().len(), chunk.len());
                    collected.extend_from_slice(arena.pairs());
                }
                assert_eq!(
                    collected.as_slice(),
                    reference.pairs(),
                    "{} chunk_pairs={chunk_pairs}",
                    bc.dataset_name
                );
            }
        }
    }

    #[test]
    fn chunk_runs_expose_per_entity_segments() {
        let bc = &fixtures()[1];
        let stats = crate::BlockStats::new(bc);
        let stream = CandidateStream::from_stats(&stats, 1);
        let mut arena = ChunkArena::new();
        // A chunk size of 2 forces boundaries inside entity runs.
        for chunk in stream.chunks(2) {
            stream.extract_chunk(chunk, &mut arena);
            let mut walked = Vec::new();
            for (a, pairs) in arena.runs() {
                for &(pa, pb) in pairs {
                    assert_eq!(pa, a);
                    assert!(pb > pa);
                    walked.push((pa, pb));
                }
            }
            assert_eq!(walked.as_slice(), arena.pairs());
        }
    }

    #[test]
    fn extract_chunk_into_matches_arena_extraction() {
        let bc = &fixtures()[0];
        let stats = crate::BlockStats::new(bc);
        let stream = CandidateStream::from_stats(&stats, 1);
        let mut arena = ChunkArena::new();
        let mut scratch = Vec::new();
        for chunk in stream.chunks(3) {
            stream.extract_chunk(chunk, &mut arena);
            let mut direct = vec![(EntityId(0), EntityId(0)); chunk.len()];
            stream.extract_chunk_into(chunk, &mut scratch, &mut direct);
            assert_eq!(direct.as_slice(), arena.pairs());
        }
    }

    #[test]
    fn arena_capacity_is_retained_and_reported() {
        let bc = &fixtures()[0];
        let stats = crate::BlockStats::new(bc);
        let stream = CandidateStream::from_stats(&stats, 1);
        let mut arena = ChunkArena::new();
        assert_eq!(arena.capacity_bytes(), 0);
        for chunk in stream.chunks(4) {
            stream.extract_chunk(chunk, &mut arena);
        }
        assert!(arena.capacity_bytes() > 0);
    }
}
