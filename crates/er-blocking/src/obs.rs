//! er-obs metric handles for the blocking build and the streamed
//! candidate engine, resolved once per process.
//!
//! Updates are batched: the parallel builder records once per build
//! (counts plus one scatter-phase timer), the candidate stream once per
//! extracted chunk — never per posting or per pair — so the hot loops
//! stay inside the bench overhead gate.

use std::sync::OnceLock;

use er_obs::{Counter, Histogram};

pub(crate) struct BlockingObs {
    /// Whole-collection builds completed.
    pub(crate) builds: &'static Counter,
    /// Distinct blocking keys interned across builds.
    pub(crate) keys_interned: &'static Counter,
    /// Blocks that survived filtering and were emitted.
    pub(crate) blocks_emitted: &'static Counter,
    /// Postings scattered into block entity lists.
    pub(crate) postings_scattered: &'static Counter,
    /// Counting-sort scatter phase duration (ns).
    pub(crate) scatter_ns: &'static Histogram,
    /// Chunks extracted from candidate streams.
    pub(crate) stream_chunks: &'static Counter,
    /// Candidate pairs emitted through stream chunks.
    pub(crate) stream_pairs: &'static Counter,
    /// Chunk extractions served from existing arena capacity.
    pub(crate) arena_reuses: &'static Counter,
    /// Chunk extractions that grew the arena.
    pub(crate) arena_grows: &'static Counter,
}

pub(crate) fn obs() -> &'static BlockingObs {
    static OBS: OnceLock<BlockingObs> = OnceLock::new();
    OBS.get_or_init(|| BlockingObs {
        builds: er_obs::counter(
            "blocking_builds_total",
            "Block-collection builds completed by the parallel builder",
        ),
        keys_interned: er_obs::counter(
            "blocking_keys_interned_total",
            "Distinct blocking keys interned across builds",
        ),
        blocks_emitted: er_obs::counter(
            "blocking_blocks_emitted_total",
            "Blocks that survived size/comparison filtering and were emitted",
        ),
        postings_scattered: er_obs::counter(
            "blocking_postings_scattered_total",
            "(key, entity) postings scattered into block entity lists",
        ),
        scatter_ns: er_obs::histogram(
            "blocking_scatter_ns",
            "Counting-sort scatter phase duration per build, nanoseconds",
        ),
        stream_chunks: er_obs::counter(
            "blocking_stream_chunks_total",
            "Chunks extracted from candidate streams",
        ),
        stream_pairs: er_obs::counter(
            "blocking_stream_pairs_total",
            "Candidate pairs emitted through stream chunk extraction",
        ),
        arena_reuses: er_obs::counter(
            "blocking_arena_reuse_total",
            "Chunk extractions served entirely from retained arena capacity",
        ),
        arena_grows: er_obs::counter(
            "blocking_arena_grow_total",
            "Chunk extractions that had to grow the arena",
        ),
    })
}
