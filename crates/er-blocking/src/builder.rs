//! The unified parallel block-building engine.
//!
//! All three redundancy-positive blocking schemes (Token Blocking, Q-Grams,
//! Suffix Arrays) are the same computation with a different per-token key
//! expansion: tokenize every profile, derive blocking keys from the tokens,
//! group entities by key, drop useless blocks, sort by key.  This module
//! factors that computation into one engine driven by a [`KeyGenerator`]:
//!
//! 1. **Parallel key emission.** Entities are split into contiguous ranges
//!    pulled by workers through the shared work-stealing driver
//!    (`er_core::map_ranges_parallel`).  Each worker streams its profiles'
//!    tokens through `er_core::tokenize::for_each_token` — no per-profile
//!    `Vec<String>`, no per-token `String`: already-lowercase tokens are
//!    borrowed slices, case folding reuses one scratch buffer — and expands
//!    tokens into keys.  Keys are emitted as `&str` slices — sub-token keys
//!    (q-grams, suffixes) are byte-range views into the token, so expansion
//!    allocates nothing.
//! 2. **Sharded interning.** Every key is interned into a `u32` slot of one
//!    of 128 hash-sharded maps (shard chosen by key hash, one mutex per
//!    shard, no global lock).  A key string is allocated exactly once
//!    globally, on first sight; per-entity deduplication happens on the
//!    interned ids, not on strings.
//! 3. **CSR materialisation.** Postings `(key, entity)` are buffered
//!    per-worker and scattered into one flat entity arena via a counting
//!    sort.  Because ranges are concatenated in ascending entity order, each
//!    block's entity list comes out sorted without a per-block sort.
//!
//! # Determinism
//!
//! Worker scheduling only affects *provisional* key ids; final block ids are
//! assigned by sorting the interned keys lexicographically, and entity lists
//! are ordered by construction.  The output is therefore bit-identical to the
//! sequential reference builders in [`crate::reference`] for any thread
//! count — a property the workspace property tests assert for all three
//! schemes.

use std::sync::{Arc, Mutex};

use er_core::{Dataset, EntityId, FxHashMap, FxHasher};

use crate::csr::{CsrBlockCollection, KeyStore};

/// Number of interner shards.  A power of two well above the worker cap (8)
/// keeps the probability of two workers contending on one shard low.
const SHARD_COUNT: usize = 128;
/// Shards are selected by the top bits of the key hash (the best-mixed bits
/// of the Fx multiply hash).
const SHARD_SHIFT: u32 = 64 - SHARD_COUNT.trailing_zeros();

/// Reusable per-worker scratch handed to [`KeyGenerator::for_each_key`]:
/// the char-boundary table of the current token.
#[derive(Debug, Default)]
pub struct KeyScratch {
    positions: Vec<u32>,
}

impl KeyScratch {
    /// Fills `positions` with the byte offset of every char boundary of
    /// `token`, including the trailing `token.len()` sentinel, and returns
    /// the slice.  The char at index `i` spans bytes
    /// `positions[i]..positions[i + 1]`.
    pub fn char_boundaries(&mut self, token: &str) -> &[u32] {
        self.positions.clear();
        for (offset, _) in token.char_indices() {
            self.positions.push(offset as u32);
        }
        self.positions.push(token.len() as u32);
        &self.positions
    }
}

/// A blocking scheme, expressed as its per-token key expansion.
///
/// The engine lowercases the profile's tokens before calling `for_each_key`
/// and deduplicates the emitted keys per entity afterwards (on interned ids),
/// so implementations only describe the token → keys mapping.
pub trait KeyGenerator: Sync {
    /// Emits every blocking key derived from one token.  Keys may borrow from
    /// `token` (the engine interns them immediately).
    fn for_each_key(&self, token: &str, scratch: &mut KeyScratch, emit: &mut dyn FnMut(&str));

    /// Blocks with more entities than this are discarded after construction
    /// (the Suffix Arrays frequency cap).  `None` keeps every block.
    fn max_block_size(&self) -> Option<usize> {
        None
    }
}

/// Token Blocking: every token is its own key.
#[derive(Debug, Clone, Copy, Default)]
pub struct TokenKeys;

impl KeyGenerator for TokenKeys {
    #[inline]
    fn for_each_key(&self, token: &str, _scratch: &mut KeyScratch, emit: &mut dyn FnMut(&str)) {
        emit(token);
    }
}

/// Q-Grams Blocking: every character q-gram of the token is a key; tokens of
/// at most `q` characters are emitted whole.
#[derive(Debug, Clone, Copy)]
pub struct QGramKeys {
    q: usize,
}

impl QGramKeys {
    /// Creates the generator.
    ///
    /// # Panics
    /// Panics if `q < 2`.
    pub fn new(q: usize) -> Self {
        assert!(q >= 2, "q must be at least 2");
        QGramKeys { q }
    }
}

impl KeyGenerator for QGramKeys {
    #[inline]
    fn for_each_key(&self, token: &str, scratch: &mut KeyScratch, emit: &mut dyn FnMut(&str)) {
        let bounds = scratch.char_boundaries(token);
        let chars = bounds.len() - 1;
        if chars <= self.q {
            emit(token);
            return;
        }
        for start in 0..=chars - self.q {
            emit(&token[bounds[start] as usize..bounds[start + self.q] as usize]);
        }
    }
}

/// Suffix Arrays Blocking: every suffix of at least `min_length` characters
/// is a key, and blocks larger than `max_block_size` are discarded.
#[derive(Debug, Clone, Copy)]
pub struct SuffixKeys {
    min_length: usize,
    max_block_size: usize,
}

impl SuffixKeys {
    /// Creates the generator.
    ///
    /// # Panics
    /// Panics if `min_length < 2` or `max_block_size < 2`.
    pub fn new(min_length: usize, max_block_size: usize) -> Self {
        assert!(min_length >= 2, "min_length must be at least 2");
        assert!(max_block_size >= 2, "max_block_size must allow a pair");
        SuffixKeys {
            min_length,
            max_block_size,
        }
    }
}

impl KeyGenerator for SuffixKeys {
    #[inline]
    fn for_each_key(&self, token: &str, scratch: &mut KeyScratch, emit: &mut dyn FnMut(&str)) {
        let bounds = scratch.char_boundaries(token);
        let chars = bounds.len() - 1;
        if chars < self.min_length {
            return;
        }
        for start in 0..=chars - self.min_length {
            emit(&token[bounds[start] as usize..]);
        }
    }

    fn max_block_size(&self) -> Option<usize> {
        Some(self.max_block_size)
    }
}

/// Hashes a key with the workspace Fx hasher (used only for shard selection,
/// so it just has to be deterministic and well-mixed).
#[inline]
fn hash_key(key: &str) -> u64 {
    use std::hash::Hasher;
    let mut hasher = FxHasher::default();
    hasher.write(key.as_bytes());
    hasher.finish()
}

/// The sharded key interner: `SHARD_COUNT` independent `key → slot` maps,
/// each behind its own mutex.  Workers lock only the shard their key hashes
/// to, so concurrent interning of different keys almost never contends.
struct ShardedInterner {
    shards: Vec<Mutex<FxHashMap<Box<str>, u32>>>,
}

impl ShardedInterner {
    fn new() -> Self {
        ShardedInterner {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
        }
    }

    /// Interns a key, returning a provisional id packing `(shard, slot)`.
    /// Provisional ids are *not* stable across runs (slot order depends on
    /// scheduling); they are remapped to deterministic key-sorted ids during
    /// materialisation.
    #[inline]
    fn intern(&self, key: &str) -> u64 {
        let shard = (hash_key(key) >> SHARD_SHIFT) as usize;
        let mut map = self.shards[shard].lock().expect("interner shard poisoned");
        let slot = match map.get(key) {
            Some(&slot) => slot,
            None => {
                let slot = map.len() as u32;
                map.insert(key.into(), slot);
                slot
            }
        };
        ((shard as u64) << 32) | u64::from(slot)
    }

    /// Consumes the interner, returning every key in provisional-id order
    /// (`dense id = base[shard] + slot`) plus the per-shard bases.
    fn into_key_table(self) -> (Vec<Box<str>>, Vec<u32>) {
        let maps: Vec<FxHashMap<Box<str>, u32>> = self
            .shards
            .into_iter()
            .map(|m| m.into_inner().expect("interner shard poisoned"))
            .collect();
        let mut bases = Vec::with_capacity(SHARD_COUNT);
        let mut total = 0u32;
        for map in &maps {
            bases.push(total);
            total += map.len() as u32;
        }
        let mut keys: Vec<Option<Box<str>>> = vec![None; total as usize];
        for (shard, map) in maps.into_iter().enumerate() {
            let base = bases[shard] as usize;
            for (key, slot) in map {
                keys[base + slot as usize] = Some(key);
            }
        }
        let keys = keys
            .into_iter()
            .map(|k| k.expect("interner slot unfilled"))
            .collect();
        (keys, bases)
    }
}

/// Returns the indices of `keys` in ascending lexicographic order — the
/// deterministic block-id assignment shared by the batch builder (phase 2
/// below) and the `er-stream` per-epoch compaction.
///
/// With more than one worker the index range is split into contiguous
/// chunks, each chunk is sorted on its own worker, and the sorted runs are
/// folded by a k-way merge on the calling thread.  Interned keys are
/// distinct, so comparisons never tie and the resulting order — hence every
/// block id downstream — is identical for any thread count.
pub fn sorted_key_order<K: AsRef<str> + Sync>(keys: &[K], threads: usize) -> Vec<u32> {
    let n = keys.len();
    let key = |i: u32| keys[i as usize].as_ref();
    // Below ~64k keys the chunk sorts finish faster than the threads spawn.
    if threads <= 1 || n < 65_536 {
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by(|&a, &b| key(a).cmp(key(b)));
        return order;
    }
    let runs: Vec<Vec<u32>> = er_core::map_ranges_parallel(n, threads, threads, |range| {
        let mut run: Vec<u32> = (range.start as u32..range.end as u32).collect();
        run.sort_unstable_by(|&a, &b| key(a).cmp(key(b)));
        run
    });
    // K-way merge of the sorted runs; k is the worker count (≤ 8), so a
    // linear scan over the run heads beats a heap.
    let mut cursors = vec![0usize; runs.len()];
    let mut order = Vec::with_capacity(n);
    loop {
        let mut best: Option<(usize, &str)> = None;
        for (r, run) in runs.iter().enumerate() {
            if let Some(&head) = run.get(cursors[r]) {
                let head_key = key(head);
                if best.is_none_or(|(_, k)| head_key < k) {
                    best = Some((r, head_key));
                }
            }
        }
        let Some((r, _)) = best else { break };
        order.push(runs[r][cursors[r]]);
        cursors[r] += 1;
    }
    order
}

/// Builds the block collection of `dataset` under the scheme described by
/// `generator`, using up to `threads` workers.
///
/// The output is deterministic and bit-identical to the sequential reference
/// builders for any thread count: blocks are ordered lexicographically by
/// key, entity lists are sorted ascending, and blocks that cannot produce a
/// comparison (or exceed the generator's size cap) are dropped.
pub fn build_blocks<G: KeyGenerator + ?Sized>(
    dataset: &Dataset,
    generator: &G,
    threads: usize,
) -> CsrBlockCollection {
    let num_entities = dataset.num_entities();
    let threads = threads.max(1);
    let interner = ShardedInterner::new();
    let profiles = &dataset.profiles;

    // Phase 1: parallel key emission + interning.  One posting buffer per
    // contiguous entity range; ~8 ranges per worker keep the queue balanced
    // when profile sizes are skewed.
    let num_tasks = if threads <= 1 { 1 } else { threads * 8 };
    let runs: Vec<Vec<(u64, u32)>> =
        er_core::map_ranges_parallel(num_entities, threads, num_tasks, |range| {
            let mut case_scratch = String::new();
            let mut key_ids: Vec<u64> = Vec::new();
            let mut scratch = KeyScratch::default();
            let mut postings: Vec<(u64, u32)> = Vec::new();
            for e in range {
                key_ids.clear();
                for attribute in &profiles[e].attributes {
                    // Zero-alloc scratch tokenisation: no fresh `Vec<String>`
                    // per profile, no fresh `String` per token — lowercase
                    // tokens are borrowed slices, case folding reuses one
                    // buffer.
                    er_core::tokenize::for_each_token(
                        &attribute.value,
                        &mut case_scratch,
                        |token| {
                            generator.for_each_key(token, &mut scratch, &mut |key| {
                                key_ids.push(interner.intern(key));
                            });
                        },
                    );
                }
                // Per-entity key dedup on interned ids — an entity joins each
                // block at most once, so block entity lists never need dedup.
                key_ids.sort_unstable();
                key_ids.dedup();
                let entity = e as u32;
                postings.extend(key_ids.iter().map(|&key| (key, entity)));
            }
            postings
        });

    // Phase 2: deterministic id assignment.  Sort the interned keys
    // lexicographically (parallel chunk sort + k-way merge); `rank` maps
    // dense provisional ids to final ids.
    let (all_keys, bases) = interner.into_key_table();
    let key_count = all_keys.len();
    let order = sorted_key_order(&all_keys, threads);
    let mut rank = vec![0u32; key_count];
    for (final_id, &dense) in order.iter().enumerate() {
        rank[dense as usize] = final_id as u32;
    }
    let dense_of = |packed: u64| -> usize {
        (bases[(packed >> 32) as usize] + (packed & 0xffff_ffff) as u32) as usize
    };

    let scatter_timer = crate::obs::obs().scatter_ns.start_timer();
    // Phase 3: counting-sort scatter into the entity arena.  Iterating runs
    // in range order emits entities in ascending order per key, so every
    // block's slice is sorted by construction.  The scatter itself stays
    // sequential by design: it is a pure memory-bandwidth pass (two
    // streaming reads and one random write per posting, no comparisons),
    // and the obvious parallelisation — partitioning by key range — has to
    // re-read every posting run once per partition, multiplying the read
    // traffic by the worker count.  Revisit only if multi-core profiles of
    // `micro_blocking` show this pass dominating after the parallel sort.
    let mut offsets = vec![0u32; key_count + 1];
    for run in &runs {
        for &(packed, _) in run {
            offsets[rank[dense_of(packed)] as usize + 1] += 1;
        }
    }
    for i in 0..key_count {
        offsets[i + 1] += offsets[i];
    }
    let mut cursors: Vec<u32> = offsets[..key_count].to_vec();
    let mut arena = vec![EntityId(0); offsets[key_count] as usize];
    for run in &runs {
        for &(packed, entity) in run {
            let block = rank[dense_of(packed)] as usize;
            arena[cursors[block] as usize] = EntityId(entity);
            cursors[block] += 1;
        }
    }
    scatter_timer.observe();

    // Phase 4: filter + compact.  Keep only blocks that fit the generator's
    // size cap and produce at least one comparison; surviving keys move into
    // the arena-backed store in final (lexicographic) order.
    let split = dataset.split;
    let kind = dataset.kind;
    let cap = generator.max_block_size().unwrap_or(usize::MAX);
    let mut keys = KeyStore::with_capacity(key_count / 2, 0);
    let mut key_ids = Vec::new();
    let mut entity_offsets = vec![0u32];
    let mut entities = Vec::with_capacity(arena.len());
    let mut first_counts = Vec::new();
    for j in 0..key_count {
        let slice = &arena[offsets[j] as usize..offsets[j + 1] as usize];
        debug_assert!(slice.windows(2).all(|w| w[0] < w[1]));
        if slice.len() > cap {
            continue;
        }
        let (first, comparisons) = crate::csr::slice_cardinalities(slice, kind, split);
        if comparisons == 0 {
            continue;
        }
        key_ids.push(keys.push(&all_keys[order[j] as usize]));
        entities.extend_from_slice(slice);
        entity_offsets.push(entities.len() as u32);
        first_counts.push(first);
    }

    // Once-per-build accounting (the per-posting loops above never touch
    // the registry).
    let o = crate::obs::obs();
    o.builds.inc();
    o.keys_interned.add(key_count as u64);
    o.blocks_emitted.add(key_ids.len() as u64);
    o.postings_scattered.add(arena.len() as u64);

    CsrBlockCollection::from_raw(
        dataset.name.clone(),
        kind,
        split,
        num_entities,
        Arc::new(keys),
        key_ids,
        entity_offsets,
        entities,
        first_counts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::{EntityCollection, EntityProfile, GroundTruth};

    fn dataset() -> Dataset {
        let e1 = EntityCollection::new(
            "a",
            vec![
                EntityProfile::new("a0")
                    .with_attribute("name", "Apple iPhone X")
                    .with_attribute("type", "smartphone"),
                EntityProfile::new("a1").with_attribute("name", "Samsung Galaxy S20"),
            ],
        );
        let e2 = EntityCollection::new(
            "b",
            vec![
                EntityProfile::new("b0").with_attribute("title", "iphone 10 apple smartphone"),
                EntityProfile::new("b1").with_attribute("title", "galaxy s20 by samsung"),
            ],
        );
        let gt =
            GroundTruth::from_pairs(vec![(EntityId(0), EntityId(2)), (EntityId(1), EntityId(3))]);
        Dataset::clean_clean("builder", e1, e2, gt).unwrap()
    }

    #[test]
    fn engine_matches_sequential_reference_for_every_scheme() {
        let ds = dataset();
        for threads in [1, 2, 4] {
            let token = build_blocks(&ds, &TokenKeys, threads).to_block_collection();
            assert_eq!(token.blocks, crate::reference::token_blocking(&ds).blocks);

            let grams = build_blocks(&ds, &QGramKeys::new(3), threads).to_block_collection();
            assert_eq!(
                grams.blocks,
                crate::reference::qgrams_blocking(&ds, 3).blocks
            );

            let config = crate::SuffixArrayConfig::default();
            let suffix = build_blocks(
                &ds,
                &SuffixKeys::new(config.min_length, config.max_block_size),
                threads,
            )
            .to_block_collection();
            assert_eq!(
                suffix.blocks,
                crate::reference::suffix_array_blocking(&ds, config).blocks
            );
        }
    }

    #[test]
    fn qgram_generator_mirrors_qgrams_function() {
        let gen = QGramKeys::new(3);
        let mut scratch = KeyScratch::default();
        for token in ["ab", "abc", "abcd", "caféteria"] {
            let mut emitted = Vec::new();
            gen.for_each_key(token, &mut scratch, &mut |k| emitted.push(k.to_string()));
            assert_eq!(emitted, crate::qgrams::qgrams(token, 3), "token {token}");
        }
    }

    #[test]
    fn suffix_generator_mirrors_suffixes_function() {
        let gen = SuffixKeys::new(3, 50);
        let mut scratch = KeyScratch::default();
        for token in ["ab", "abc", "abcdef", "naïveté"] {
            let mut emitted = Vec::new();
            gen.for_each_key(token, &mut scratch, &mut |k| emitted.push(k.to_string()));
            assert_eq!(
                emitted,
                crate::suffix_arrays::suffixes(token, 3),
                "token {token}"
            );
        }
    }

    #[test]
    fn interner_assigns_one_slot_per_distinct_key() {
        let interner = ShardedInterner::new();
        let a = interner.intern("apple");
        let b = interner.intern("samsung");
        assert_eq!(a, interner.intern("apple"));
        assert_ne!(a, b);
        let (keys, bases) = interner.into_key_table();
        assert_eq!(keys.len(), 2);
        assert_eq!(bases.len(), SHARD_COUNT);
        assert!(keys.iter().any(|k| &**k == "apple"));
    }

    #[test]
    fn sorted_key_order_matches_sequential_sort_for_any_thread_count() {
        // Enough keys to cross the parallel threshold, with a shuffled,
        // collision-ish distribution (shared prefixes, varied lengths).
        let keys: Vec<String> = (0..70_000u32)
            .map(|i| format!("k{:x}-{}", i.wrapping_mul(2654435761) % 4096, i))
            .collect();
        let expected = {
            let mut order: Vec<u32> = (0..keys.len() as u32).collect();
            order.sort_unstable_by(|&a, &b| keys[a as usize].cmp(&keys[b as usize]));
            order
        };
        for threads in [1, 2, 4, 8] {
            assert_eq!(sorted_key_order(&keys, threads), expected, "{threads}");
        }
        let empty: Vec<String> = Vec::new();
        assert!(sorted_key_order(&empty, 4).is_empty());
    }

    #[test]
    fn empty_dataset_produces_empty_collection() {
        let e1 = EntityCollection::new("a", vec![EntityProfile::new("a0")]);
        let e2 = EntityCollection::new("b", vec![EntityProfile::new("b0")]);
        let ds = Dataset::clean_clean("empty", e1, e2, GroundTruth::default()).unwrap();
        let csr = build_blocks(&ds, &TokenKeys, 4);
        assert!(csr.is_empty());
        assert_eq!(csr.num_entities, 2);
    }

    #[test]
    #[should_panic(expected = "q must be at least 2")]
    fn qgram_generator_rejects_q_one() {
        let _ = QGramKeys::new(1);
    }

    #[test]
    #[should_panic(expected = "min_length must be at least 2")]
    fn suffix_generator_rejects_short_min_length() {
        let _ = SuffixKeys::new(1, 10);
    }
}
