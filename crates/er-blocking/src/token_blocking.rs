//! Token Blocking: one block per distinct attribute-value token.
//!
//! Token Blocking is the only parameter-free redundancy-positive blocking
//! method and is the one used for every experiment in the paper.  A block is
//! kept only if it yields at least one comparison (i.e. it has entities from
//! both sources for Clean-Clean ER, or at least two entities for Dirty ER).

use er_core::Dataset;

use crate::builder::{build_blocks, TokenKeys};
use crate::collection::BlockCollection;
use crate::csr::CsrBlockCollection;

/// Builds the Token Blocking collection for a dataset through the parallel
/// [`crate::builder`] engine, returning the nested compatibility view.
///
/// Blocks are emitted in lexicographic key order so the result is fully
/// deterministic (and bit-identical to the sequential
/// [`crate::reference::token_blocking`] builder, regardless of thread count).
pub fn token_blocking(dataset: &Dataset) -> BlockCollection {
    token_blocking_csr(dataset, er_core::available_threads()).to_block_collection()
}

/// Builds the Token Blocking collection as a CSR collection with up to
/// `threads` workers — the allocation-lean entry point used by the standard
/// workflow.
pub fn token_blocking_csr(dataset: &Dataset, threads: usize) -> CsrBlockCollection {
    build_blocks(dataset, &TokenKeys, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use er_core::{EntityCollection, EntityId, EntityProfile, GroundTruth};

    /// Builds the running example of Figure 1 in the paper: seven smartphone
    /// profiles split over two sources.
    pub(crate) fn figure1_dataset() -> Dataset {
        let e1 = EntityCollection::new(
            "source-a",
            vec![
                EntityProfile::new("e1")
                    .with_attribute("Model", "Apple iPhone X")
                    .with_attribute("Category", "Smartphone"),
                EntityProfile::new("e2")
                    .with_attribute("model", "Samsung S20")
                    .with_attribute("group", "smartphone"),
                EntityProfile::new("e5").with_attribute("descr", "smartphone"),
                EntityProfile::new("e6")
                    .with_attribute("name", "Huawei Mate 20")
                    .with_attribute("type", "smartphone"),
            ],
        );
        let e2 = EntityCollection::new(
            "source-b",
            vec![
                EntityProfile::new("e3")
                    .with_attribute("name", "iPhone 10")
                    .with_attribute("type", "smartphone")
                    .with_attribute("producer", "Apple"),
                EntityProfile::new("e4")
                    .with_attribute("type", "Samsung 20")
                    .with_attribute("descr", "smartphone"),
                EntityProfile::new("e7").with_attribute(
                    "offer",
                    "Samsung foldable your perfect mate phone today 20 discount",
                ),
            ],
        );
        // Flattened ids: e1=0, e2=1, e5=2, e6=3, e3=4, e4=5, e7=6.
        let gt = GroundTruth::from_pairs(vec![
            (EntityId(0), EntityId(4)), // e1 = e3
            (EntityId(1), EntityId(5)), // e2 = e4
            (EntityId(3), EntityId(6)), // e6 = e7
        ]);
        Dataset::clean_clean("figure1", e1, e2, gt).unwrap()
    }

    fn block_keyed<'a>(bc: &'a BlockCollection, key: &str) -> Option<&'a Block> {
        bc.blocks.iter().find(|b| b.key == key)
    }

    #[test]
    fn figure1_blocks_contain_expected_keys() {
        let ds = figure1_dataset();
        let bc = token_blocking(&ds);
        for key in ["apple", "iphone", "samsung", "20", "smartphone", "mate"] {
            assert!(block_keyed(&bc, key).is_some(), "missing block {key}");
        }
        // "huawei" only appears in one source, so no useful block exists.
        assert!(block_keyed(&bc, "huawei").is_none());
    }

    #[test]
    fn figure1_apple_block_holds_the_duplicate_pair() {
        let ds = figure1_dataset();
        let bc = token_blocking(&ds);
        let apple = block_keyed(&bc, "apple").unwrap();
        assert_eq!(apple.entities, vec![EntityId(0), EntityId(4)]);
        assert_eq!(apple.num_comparisons(ds.kind, ds.split), 1);
    }

    #[test]
    fn all_duplicates_share_at_least_one_block() {
        let ds = figure1_dataset();
        let bc = token_blocking(&ds);
        for &(a, b) in ds.ground_truth.pairs() {
            let shared = bc
                .blocks
                .iter()
                .any(|blk| blk.contains(a) && blk.contains(b));
            assert!(shared, "duplicate pair ({a}, {b}) shares no block");
        }
    }

    #[test]
    fn deterministic_block_order() {
        let ds = figure1_dataset();
        let a = token_blocking(&ds);
        let b = token_blocking(&ds);
        assert_eq!(a.blocks, b.blocks);
        let mut keys: Vec<_> = a.blocks.iter().map(|b| b.key.clone()).collect();
        let sorted = {
            let mut s = keys.clone();
            s.sort();
            s
        };
        keys.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn dirty_dataset_blocks_need_two_entities() {
        let coll = EntityCollection::new(
            "d",
            vec![
                EntityProfile::new("0").with_attribute("t", "alpha beta"),
                EntityProfile::new("1").with_attribute("t", "beta gamma"),
                EntityProfile::new("2").with_attribute("t", "delta"),
            ],
        );
        let ds = Dataset::dirty("dirty", coll, GroundTruth::default()).unwrap();
        let bc = token_blocking(&ds);
        let keys: Vec<_> = bc.blocks.iter().map(|b| b.key.as_str()).collect();
        assert_eq!(keys, vec!["beta"]);
    }
}
