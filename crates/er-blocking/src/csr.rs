//! CSR-backed block collections: the allocation-lean representation produced
//! by the parallel [`crate::builder`] engine.
//!
//! A [`CsrBlockCollection`] stores the whole collection in four flat arrays:
//! one shared key arena (all block keys concatenated, behind an `Arc` so
//! derived collections never re-clone strings), one `key_ids` array mapping
//! each block to its key, and an entity CSR (`entity_offsets` + `entities`
//! arena) holding each block's sorted entity list.  Compared with
//! `Vec<Block>` — one heap `String` plus one heap `Vec<EntityId>` per block —
//! this removes two allocations and one pointer indirection per block, keeps
//! consecutive blocks adjacent in memory, and makes Block Purging and Block
//! Filtering pure index operations.
//!
//! [`BlockCollection`] remains the compatibility view: `to_block_collection`
//! materialises the nested representation for APIs that still consume it, and
//! `from_block_collection` lifts legacy collections into the CSR world.  Both
//! directions preserve block order, so `BlockId`s mean the same thing in
//! either representation.

use std::sync::Arc;

use er_core::{DatasetKind, EntityId};

use crate::block::Block;
use crate::collection::BlockCollection;

/// `||b||` from a block's first-source count and size — the single home of
/// the CleanClean/Dirty comparison formula.  Public so that incremental
/// consumers (the `er-stream` index) update block cardinalities with exactly
/// the batch engine's arithmetic.
#[inline]
pub fn comparisons_from_first(kind: DatasetKind, first: u32, size: usize) -> u64 {
    match kind {
        DatasetKind::CleanClean => u64::from(first) * (size as u64 - u64::from(first)),
        DatasetKind::Dirty => {
            let n = size as u64;
            n * n.saturating_sub(1) / 2
        }
    }
}

/// First-source count and `||b||` of one sorted entity slice.
#[inline]
pub fn slice_cardinalities(slice: &[EntityId], kind: DatasetKind, split: usize) -> (u32, u64) {
    let first = slice.partition_point(|e| e.index() < split) as u32;
    (first, comparisons_from_first(kind, first, slice.len()))
}

/// An append-only arena of interned block keys: all key bytes concatenated in
/// one `String` plus an offset table.
#[derive(Debug, Clone, Default)]
pub struct KeyStore {
    pub(crate) text: String,
    pub(crate) offsets: Vec<u32>,
}

impl KeyStore {
    /// Creates an empty store with capacity hints.
    pub fn with_capacity(keys: usize, bytes: usize) -> Self {
        let mut offsets = Vec::with_capacity(keys + 1);
        offsets.push(0);
        KeyStore {
            text: String::with_capacity(bytes),
            offsets,
        }
    }

    /// Appends a key and returns its id.
    pub fn push(&mut self, key: &str) -> u32 {
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        self.text.push_str(key);
        self.offsets.push(self.text.len() as u32);
        (self.offsets.len() - 2) as u32
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// True if no key has been stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The key with the given id.
    #[inline]
    pub fn get(&self, id: u32) -> &str {
        let start = self.offsets[id as usize] as usize;
        let end = self.offsets[id as usize + 1] as usize;
        &self.text[start..end]
    }
}

/// A block collection laid out as flat CSR arrays with arena-backed keys.
///
/// Blocks are kept in deterministic (key-sorted) order exactly like
/// [`BlockCollection`]; derived collections (after purging/filtering) keep the
/// relative order of the surviving blocks.
#[derive(Debug, Clone)]
pub struct CsrBlockCollection {
    /// Name of the dataset the blocks were extracted from.
    pub dataset_name: String,
    /// Clean-Clean or Dirty ER.
    pub kind: DatasetKind,
    /// E1/E2 boundary in the flattened entity id space.
    pub split: usize,
    /// Total number of entity profiles in the dataset.
    pub num_entities: usize,
    /// Shared key arena; derived collections reference the same storage.
    pub(crate) keys: Arc<KeyStore>,
    /// Per block, the id of its key in `keys`.
    pub(crate) key_ids: Vec<u32>,
    /// CSR offsets into `entities`; `num_blocks + 1` entries.
    pub(crate) entity_offsets: Vec<u32>,
    /// Concatenated sorted entity lists of all blocks.
    pub(crate) entities: Vec<EntityId>,
    /// Per block, how many of its entities belong to the first source.
    pub(crate) first_counts: Vec<u32>,
}

impl CsrBlockCollection {
    /// Assembles a collection whose first-source counts were already computed
    /// by the caller (the parallel builder and the `er-stream` compaction).
    /// `entity_offsets` must have one more entry than `key_ids`, every
    /// block's entity slice must be sorted and duplicate-free, and
    /// `first_counts[b]` must equal the number of entities of block `b` with
    /// an index below `split` — callers that cannot guarantee this should go
    /// through [`CsrBlockCollection::from_block_collection`] instead.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw(
        dataset_name: String,
        kind: DatasetKind,
        split: usize,
        num_entities: usize,
        keys: Arc<KeyStore>,
        key_ids: Vec<u32>,
        entity_offsets: Vec<u32>,
        entities: Vec<EntityId>,
        first_counts: Vec<u32>,
    ) -> Self {
        debug_assert_eq!(entity_offsets.len(), key_ids.len() + 1);
        debug_assert_eq!(first_counts.len(), key_ids.len());
        CsrBlockCollection {
            dataset_name,
            kind,
            split,
            num_entities,
            keys,
            key_ids,
            entity_offsets,
            entities,
            first_counts,
        }
    }

    /// Number of blocks, |B|.
    pub fn num_blocks(&self) -> usize {
        self.key_ids.len()
    }

    /// True if there are no blocks.
    pub fn is_empty(&self) -> bool {
        self.key_ids.is_empty()
    }

    /// The shared key arena.
    pub fn key_store(&self) -> &Arc<KeyStore> {
        &self.keys
    }

    /// The blocking key of block `b` (no allocation — a slice into the arena).
    #[inline]
    pub fn key(&self, b: usize) -> &str {
        self.keys.get(self.key_ids[b])
    }

    /// The arena id of block `b`'s key (an index into [`Self::key_store`]).
    #[inline]
    pub fn key_id(&self, b: usize) -> u32 {
        self.key_ids[b]
    }

    /// The sorted entity list of block `b`.
    #[inline]
    pub fn entities(&self, b: usize) -> &[EntityId] {
        &self.entities[self.entity_offsets[b] as usize..self.entity_offsets[b + 1] as usize]
    }

    /// `|b|`: number of entities in block `b`.
    #[inline]
    pub fn block_size(&self, b: usize) -> usize {
        (self.entity_offsets[b + 1] - self.entity_offsets[b]) as usize
    }

    /// Number of entities of block `b` that belong to the first source.
    #[inline]
    pub fn first_source_count(&self, b: usize) -> usize {
        self.first_counts[b] as usize
    }

    /// `||b||`: comparisons contained in block `b`, including redundant ones.
    #[inline]
    pub fn block_comparisons(&self, b: usize) -> u64 {
        comparisons_from_first(self.kind, self.first_counts[b], self.block_size(b))
    }

    /// True if block `b` contributes at least one comparison.
    #[inline]
    pub fn is_useful(&self, b: usize) -> bool {
        self.block_comparisons(b) > 0
    }

    /// `||B||`: aggregate comparison cardinality over all blocks.
    pub fn total_comparisons(&self) -> u64 {
        (0..self.num_blocks())
            .map(|b| self.block_comparisons(b))
            .sum()
    }

    /// `Σ_b |b|`: the sum of block sizes.
    pub fn sum_block_sizes(&self) -> u64 {
        self.entities.len() as u64
    }

    /// True if two entities may be compared at all: cross-source for
    /// Clean-Clean ER, merely distinct for Dirty ER.
    #[inline]
    pub fn is_comparable(&self, a: EntityId, b: EntityId) -> bool {
        self.kind.comparable(self.split, a, b)
    }

    /// Returns a collection containing only the blocks satisfying `keep`,
    /// preserving order.  The key arena is shared, so no key string is cloned
    /// no matter how many blocks survive.
    pub fn retain(&self, mut keep: impl FnMut(usize) -> bool) -> CsrBlockCollection {
        let mut key_ids = Vec::new();
        let mut entity_offsets = vec![0u32];
        let mut entities = Vec::new();
        let mut first_counts = Vec::new();
        for b in 0..self.num_blocks() {
            if keep(b) {
                key_ids.push(self.key_ids[b]);
                entities.extend_from_slice(self.entities(b));
                entity_offsets.push(entities.len() as u32);
                first_counts.push(self.first_counts[b]);
            }
        }
        CsrBlockCollection {
            dataset_name: self.dataset_name.clone(),
            kind: self.kind,
            split: self.split,
            num_entities: self.num_entities,
            keys: Arc::clone(&self.keys),
            key_ids,
            entity_offsets,
            entities,
            first_counts,
        }
    }

    /// Rebuilds the collection keeping, per block, only the entities
    /// satisfying `keep_assignment(entity, block)`; blocks that stop producing
    /// comparisons are dropped.  Shares the key arena (no string clones).
    pub fn retain_assignments(
        &self,
        mut keep_assignment: impl FnMut(EntityId, usize) -> bool,
    ) -> CsrBlockCollection {
        let mut key_ids = Vec::new();
        let mut entity_offsets = vec![0u32];
        let mut entities: Vec<EntityId> = Vec::new();
        let mut first_counts = Vec::new();
        for b in 0..self.num_blocks() {
            let start = entities.len();
            entities.extend(
                self.entities(b)
                    .iter()
                    .copied()
                    .filter(|&e| keep_assignment(e, b)),
            );
            let (first, comparisons) =
                slice_cardinalities(&entities[start..], self.kind, self.split);
            if comparisons > 0 {
                key_ids.push(self.key_ids[b]);
                entity_offsets.push(entities.len() as u32);
                first_counts.push(first);
            } else {
                entities.truncate(start);
            }
        }
        CsrBlockCollection {
            dataset_name: self.dataset_name.clone(),
            kind: self.kind,
            split: self.split,
            num_entities: self.num_entities,
            keys: Arc::clone(&self.keys),
            key_ids,
            entity_offsets,
            entities,
            first_counts,
        }
    }

    /// Materialises the nested `Vec<Block>` compatibility view (clones each
    /// key once; use the CSR consumers to avoid that).
    pub fn to_block_collection(&self) -> BlockCollection {
        let blocks = (0..self.num_blocks())
            .map(|b| Block {
                key: self.key(b).to_string(),
                entities: self.entities(b).to_vec(),
            })
            .collect();
        BlockCollection {
            dataset_name: self.dataset_name.clone(),
            kind: self.kind,
            split: self.split,
            num_entities: self.num_entities,
            blocks,
        }
    }

    /// Lifts a legacy nested collection into the CSR representation.
    pub fn from_block_collection(blocks: &BlockCollection) -> Self {
        let total_bytes = blocks.blocks.iter().map(|b| b.key.len()).sum();
        let mut keys = KeyStore::with_capacity(blocks.num_blocks(), total_bytes);
        let mut key_ids = Vec::with_capacity(blocks.num_blocks());
        let mut entity_offsets = Vec::with_capacity(blocks.num_blocks() + 1);
        entity_offsets.push(0u32);
        let mut entities = Vec::new();
        let mut first_counts = Vec::with_capacity(blocks.num_blocks());
        for block in &blocks.blocks {
            key_ids.push(keys.push(&block.key));
            entities.extend_from_slice(&block.entities);
            entity_offsets.push(entities.len() as u32);
            first_counts.push(block.first_source_count(blocks.split) as u32);
        }
        CsrBlockCollection::from_raw(
            blocks.dataset_name.clone(),
            blocks.kind,
            blocks.split,
            blocks.num_entities,
            Arc::new(keys),
            key_ids,
            entity_offsets,
            entities,
            first_counts,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    fn sample() -> BlockCollection {
        BlockCollection {
            dataset_name: "toy".into(),
            kind: DatasetKind::CleanClean,
            split: 2,
            num_entities: 5,
            blocks: vec![
                Block::new("apple", ids(&[0, 2])),
                Block::new("phone", ids(&[0, 1, 2, 3])),
                Block::new("samsung", ids(&[1, 3, 4])),
            ],
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let bc = sample();
        let csr = CsrBlockCollection::from_block_collection(&bc);
        assert_eq!(csr.num_blocks(), 3);
        assert_eq!(csr.key(0), "apple");
        assert_eq!(csr.entities(1), ids(&[0, 1, 2, 3]).as_slice());
        assert_eq!(csr.block_size(2), 3);
        assert_eq!(csr.total_comparisons(), bc.total_comparisons());
        assert_eq!(csr.sum_block_sizes(), bc.sum_block_sizes());
        let back = csr.to_block_collection();
        assert_eq!(back.blocks, bc.blocks);
        assert_eq!(back.split, bc.split);
        assert_eq!(back.num_entities, bc.num_entities);
    }

    #[test]
    fn first_source_counts_and_comparisons() {
        let csr = CsrBlockCollection::from_block_collection(&sample());
        // "phone": entities 0,1 from E1; 2,3 from E2.
        assert_eq!(csr.first_source_count(1), 2);
        assert_eq!(csr.block_comparisons(1), 4);
        // "samsung": entities 1 | 3,4.
        assert_eq!(csr.block_comparisons(2), 2);
        assert!(csr.is_useful(0));
    }

    #[test]
    fn retain_shares_the_key_arena() {
        let csr = CsrBlockCollection::from_block_collection(&sample());
        let kept = csr.retain(|b| csr.block_size(b) < 4);
        assert_eq!(kept.num_blocks(), 2);
        assert_eq!(kept.key(0), "apple");
        assert_eq!(kept.key(1), "samsung");
        assert!(Arc::ptr_eq(csr.key_store(), kept.key_store()));
    }

    #[test]
    fn retain_assignments_drops_useless_blocks() {
        let csr = CsrBlockCollection::from_block_collection(&sample());
        // Remove every E2 entity from "phone": it stops producing comparisons.
        let rebuilt = csr.retain_assignments(|e, b| !(b == 1 && e.index() >= 2));
        let keys: Vec<&str> = (0..rebuilt.num_blocks()).map(|b| rebuilt.key(b)).collect();
        assert_eq!(keys, vec!["apple", "samsung"]);
        assert!(Arc::ptr_eq(csr.key_store(), rebuilt.key_store()));
    }

    #[test]
    fn key_store_push_and_get() {
        let mut store = KeyStore::default();
        let a = store.push("alpha");
        let b = store.push("β");
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(a), "alpha");
        assert_eq!(store.get(b), "β");
    }

    #[test]
    fn dirty_comparisons_are_triangular() {
        let bc = BlockCollection {
            dataset_name: "d".into(),
            kind: DatasetKind::Dirty,
            split: 4,
            num_entities: 4,
            blocks: vec![Block::new("k", ids(&[0, 1, 2, 3]))],
        };
        let csr = CsrBlockCollection::from_block_collection(&bc);
        assert_eq!(csr.block_comparisons(0), 6);
    }
}
