//! Q-Grams Blocking: a redundancy-positive alternative to Token Blocking.
//!
//! Every token of every attribute value is decomposed into its character
//! q-grams and a block is created per distinct q-gram.  Compared with Token
//! Blocking this is more robust to typos (a misspelled token still shares most
//! of its q-grams with the correct spelling) at the cost of larger, less
//! distinctive blocks.  The paper lists it, together with Token Blocking and
//! Suffix Arrays, as one of the standard generators of redundancy-positive
//! block collections that meta-blocking can refine.

use er_core::Dataset;

use crate::builder::{build_blocks, QGramKeys};
use crate::collection::BlockCollection;
use crate::csr::CsrBlockCollection;

/// Decomposes a token into its padded character q-grams.
///
/// Tokens shorter than `q` are emitted whole, so no signature is lost.
pub fn qgrams(token: &str, q: usize) -> Vec<String> {
    assert!(q >= 2, "q must be at least 2");
    let chars: Vec<char> = token.chars().collect();
    if chars.len() <= q {
        return vec![token.to_string()];
    }
    chars.windows(q).map(|w| w.iter().collect()).collect()
}

/// Builds a Q-Grams Blocking collection for a dataset through the parallel
/// [`crate::builder`] engine, returning the nested compatibility view.
///
/// Like Token Blocking, blocks that cannot produce a comparison are dropped
/// and the result is ordered by key for determinism (bit-identical to the
/// sequential [`crate::reference::qgrams_blocking`] builder).
///
/// # Panics
/// Panics if `q < 2` (as [`qgrams`] always has).
pub fn qgrams_blocking(dataset: &Dataset, q: usize) -> BlockCollection {
    qgrams_blocking_csr(dataset, q, er_core::available_threads()).to_block_collection()
}

/// Builds a Q-Grams Blocking collection as a CSR collection with up to
/// `threads` workers.
///
/// # Panics
/// Panics if `q < 2`.
pub fn qgrams_blocking_csr(dataset: &Dataset, q: usize, threads: usize) -> CsrBlockCollection {
    build_blocks(dataset, &QGramKeys::new(q), threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::{EntityCollection, EntityId, EntityProfile, GroundTruth};

    fn dataset() -> Dataset {
        let e1 = EntityCollection::new(
            "a",
            vec![
                EntityProfile::new("a0").with_attribute("name", "iphone"),
                EntityProfile::new("a1").with_attribute("name", "galaxy"),
            ],
        );
        let e2 = EntityCollection::new(
            "b",
            vec![
                // Typo: "iphnoe" shares most trigrams' characters with "iphone".
                EntityProfile::new("b0").with_attribute("name", "iphnoe"),
                EntityProfile::new("b1").with_attribute("name", "galaxy"),
            ],
        );
        let gt =
            GroundTruth::from_pairs(vec![(EntityId(0), EntityId(2)), (EntityId(1), EntityId(3))]);
        Dataset::clean_clean("qgrams", e1, e2, gt).unwrap()
    }

    #[test]
    fn qgrams_of_short_and_long_tokens() {
        assert_eq!(qgrams("ab", 3), vec!["ab"]);
        assert_eq!(qgrams("abc", 3), vec!["abc"]);
        assert_eq!(qgrams("abcd", 3), vec!["abc", "bcd"]);
        assert_eq!(qgrams("abcde", 2), vec!["ab", "bc", "cd", "de"]);
    }

    #[test]
    #[should_panic(expected = "q must be at least 2")]
    fn q_of_one_is_rejected() {
        let _ = qgrams("abc", 1);
    }

    #[test]
    fn typo_tolerant_co_occurrence() {
        let ds = dataset();
        let token_blocks = crate::token_blocking(&ds);
        let qgram_blocks = qgrams_blocking(&ds, 3);
        // Token Blocking cannot match "iphone" with "iphnoe"…
        let token_shares = token_blocks
            .blocks
            .iter()
            .any(|b| b.contains(EntityId(0)) && b.contains(EntityId(2)));
        assert!(!token_shares);
        // …but Q-Grams Blocking puts them in at least one common block ("iph").
        let qgram_shares = qgram_blocks
            .blocks
            .iter()
            .any(|b| b.contains(EntityId(0)) && b.contains(EntityId(2)));
        assert!(qgram_shares);
    }

    #[test]
    fn blocks_are_deterministic_and_useful() {
        let ds = dataset();
        let a = qgrams_blocking(&ds, 3);
        let b = qgrams_blocking(&ds, 3);
        assert_eq!(a.blocks, b.blocks);
        assert!(a.blocks.iter().all(|blk| blk.is_useful(ds.kind, ds.split)));
    }

    #[test]
    fn qgram_collections_are_more_redundant_than_token_blocking() {
        let ds = dataset();
        let token_blocks = crate::token_blocking(&ds);
        let qgram_blocks = qgrams_blocking(&ds, 3);
        assert!(qgram_blocks.sum_block_sizes() >= token_blocks.sum_block_sizes());
    }
}
