//! Candidate pairs: the distinct set of comparisons contained in a block
//! collection.
//!
//! Redundancy-positive blocks repeat the same pair across many blocks; the
//! candidate-pair set `C` contains each comparable pair exactly once.  This is
//! the unit every weighting scheme, classifier and pruning algorithm operates
//! on.
//!
//! # Extraction
//!
//! Extraction is hash-free: instead of pushing every block comparison through
//! a global hash set, each entity gathers the partners from its own blocks
//! into a scratch buffer, sorts and deduplicates it, and appends the run to a
//! CSR pair index (`offsets[a]..offsets[a + 1]` addresses the pairs whose
//! smaller endpoint is `a`).  Entities are independent, so the pass is
//! embarrassingly parallel, and emitting entities in ascending order makes the
//! pair list bit-identical to the lexicographically sorted order the previous
//! hash-based implementation produced.  See [`crate::reference`] for that
//! retained implementation.

use er_core::{EntityId, GroundTruth, PairId};
use serde::{Deserialize, Serialize};

use crate::collection::BlockCollection;
use crate::stats::BlockStats;

/// The distinct comparisons of a block collection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CandidatePairs {
    /// Distinct pairs, each stored with the smaller entity id first and the
    /// list sorted, so pair ids are deterministic.
    pairs: Vec<(EntityId, EntityId)>,
    /// CSR offsets: the pairs whose smaller endpoint is entity `a` occupy
    /// `pairs[offsets[a]..offsets[a + 1]]`.  `num_entities + 1` entries.
    offsets: Vec<u32>,
    /// Number of distinct candidates per entity (the LCP feature values).
    entity_candidates: Vec<u32>,
}

/// Borrowed entity → block CSR adjacency used during extraction.
#[derive(Clone, Copy)]
struct AdjView<'a> {
    offsets: &'a [u32],
    block_ids: &'a [er_core::BlockId],
}

impl<'a> AdjView<'a> {
    #[inline]
    fn blocks_of(self, entity: usize) -> &'a [er_core::BlockId] {
        &self.block_ids[self.offsets[entity] as usize..self.offsets[entity + 1] as usize]
    }
}

/// Borrowed per-block entity storage: either the nested `Vec<Block>` view or
/// the flat reverse CSR inside [`BlockStats`].
#[derive(Clone, Copy)]
enum BlockSource<'a> {
    Nested(&'a BlockCollection),
    Stats(&'a BlockStats),
}

impl<'a> BlockSource<'a> {
    #[inline]
    fn entities_of(self, block: er_core::BlockId) -> &'a [EntityId] {
        match self {
            BlockSource::Nested(blocks) => &blocks.blocks[block.index()].entities,
            BlockSource::Stats(stats) => stats.entities_of(block),
        }
    }

    #[inline]
    fn first_source_count(self, block: er_core::BlockId, split: usize) -> usize {
        match self {
            BlockSource::Nested(blocks) => blocks.blocks[block.index()].first_source_count(split),
            BlockSource::Stats(stats) => stats.first_source_count(block) as usize,
        }
    }
}

impl CandidatePairs {
    /// Extracts the distinct candidate pairs from a block collection on the
    /// calling thread.
    pub fn from_blocks(blocks: &BlockCollection) -> Self {
        let (offsets, block_ids) = crate::stats::build_entity_block_adjacency(blocks);
        Self::extract(
            blocks.kind,
            blocks.split,
            blocks.num_entities,
            BlockSource::Nested(blocks),
            AdjView {
                offsets: &offsets,
                block_ids: &block_ids,
            },
            1,
        )
    }

    /// Extracts the candidate pairs reusing an already-computed
    /// [`BlockStats`] CSR adjacency, with up to `threads` workers.
    ///
    /// Produces exactly the same pairs, order and counts as
    /// [`CandidatePairs::from_blocks`] for any thread count.
    pub fn from_blocks_with_stats(
        blocks: &BlockCollection,
        stats: &BlockStats,
        threads: usize,
    ) -> Self {
        let (offsets, block_ids) = stats.entity_block_csr();
        Self::extract(
            blocks.kind,
            blocks.split,
            blocks.num_entities,
            BlockSource::Nested(blocks),
            AdjView { offsets, block_ids },
            threads.max(1),
        )
    }

    /// Extracts the candidate pairs from the block statistics alone, with up
    /// to `threads` workers.  [`BlockStats`] carries both CSR directions plus
    /// the per-block first-source counts, so no [`BlockCollection`] (and no
    /// key string) is ever touched — this is the entry point of the
    /// CSR-native pipeline.
    pub fn from_stats(stats: &BlockStats, threads: usize) -> Self {
        let (offsets, block_ids) = stats.entity_block_csr();
        Self::extract(
            stats.kind(),
            stats.split(),
            stats.num_entities(),
            BlockSource::Stats(stats),
            AdjView { offsets, block_ids },
            threads.max(1),
        )
    }

    /// The hash-free per-entity extraction shared by all constructors.
    fn extract(
        kind: er_core::DatasetKind,
        split: usize,
        num_entities: usize,
        source: BlockSource<'_>,
        adjacency: AdjView<'_>,
        threads: usize,
    ) -> Self {
        // For Clean-Clean ER the smaller endpoint of every comparable pair is
        // an E1 entity, so entities >= split produce no runs of their own.
        let emitting = match kind {
            er_core::DatasetKind::CleanClean => split.min(num_entities),
            er_core::DatasetKind::Dirty => num_entities,
        };

        // One task per contiguous entity range; ~8 tasks per worker keep the
        // queue balanced when candidate counts are skewed across entities.
        let num_tasks = if threads <= 1 { 1 } else { threads * 8 };
        let runs = er_core::map_ranges_parallel(emitting, threads, num_tasks, |range| {
            let mut run_pairs: Vec<(EntityId, EntityId)> = Vec::new();
            let mut run_counts: Vec<u32> = Vec::with_capacity(range.len());
            let mut scratch: Vec<u32> = Vec::new();
            for a in range {
                neighbors_above(kind, split, source, adjacency, a, &mut scratch);
                run_counts.push(scratch.len() as u32);
                let a_id = EntityId(a as u32);
                run_pairs.extend(scratch.iter().map(|&p| (a_id, EntityId(p))));
            }
            (run_pairs, run_counts)
        });

        let total: usize = runs.iter().map(|(p, _)| p.len()).sum();
        // The CSR offsets (and `PairId`) are u32; wrapping past 2^32 pairs
        // would silently corrupt the index, so refuse loudly instead.
        assert!(
            u32::try_from(total).is_ok(),
            "candidate set has {total} pairs, above the u32 pair-index limit; \
             block cleaning must prune harder before extraction at this scale"
        );
        let mut pairs = Vec::with_capacity(total);
        let mut entity_candidates = vec![0u32; num_entities];
        let mut offsets = Vec::with_capacity(num_entities + 1);
        offsets.push(0u32);
        for (run_pairs, run_counts) in runs {
            for count in run_counts {
                offsets.push(offsets.last().unwrap() + count);
            }
            pairs.extend_from_slice(&run_pairs);
        }
        offsets.resize(num_entities + 1, *offsets.last().unwrap());
        for (a, window) in offsets.windows(2).enumerate() {
            entity_candidates[a] += window[1] - window[0];
        }
        for &(_, b) in &pairs {
            entity_candidates[b.index()] += 1;
        }

        CandidatePairs {
            pairs,
            offsets,
            entity_candidates,
        }
    }

    /// Builds a candidate set directly from a list of pairs (used in tests and
    /// when re-materialising a pruned collection).  Hash-free: normalises,
    /// sorts and deduplicates the list.
    pub fn from_pairs(
        num_entities: usize,
        pairs: impl IntoIterator<Item = (EntityId, EntityId)>,
    ) -> Self {
        let mut list: Vec<(EntityId, EntityId)> = pairs
            .into_iter()
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
            .collect();
        list.sort_unstable();
        list.dedup();

        let mut entity_candidates = vec![0u32; num_entities];
        let mut offsets = vec![0u32; num_entities + 1];
        for &(a, b) in &list {
            offsets[a.index() + 1] += 1;
            entity_candidates[a.index()] += 1;
            entity_candidates[b.index()] += 1;
        }
        for i in 0..num_entities {
            offsets[i + 1] += offsets[i];
        }
        CandidatePairs {
            pairs: list,
            offsets,
            entity_candidates,
        }
    }

    /// Number of distinct candidate pairs, |C|.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if no candidate pairs exist.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Returns the pair with the given id.
    pub fn pair(&self, id: PairId) -> (EntityId, EntityId) {
        self.pairs[id.index()]
    }

    /// Iterates over all pairs together with their pair ids.
    pub fn iter(&self) -> impl Iterator<Item = (PairId, EntityId, EntityId)> + '_ {
        self.pairs
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| (PairId::from(i), a, b))
    }

    /// Slice of all pairs.
    pub fn pairs(&self) -> &[(EntityId, EntityId)] {
        &self.pairs
    }

    /// The pair-id range whose pairs have `entity` as their smaller endpoint
    /// (a CSR row of the pair index).
    pub fn pair_range(&self, entity: EntityId) -> std::ops::Range<usize> {
        self.offsets[entity.index()] as usize..self.offsets[entity.index() + 1] as usize
    }

    /// The pairs whose smaller endpoint is `entity`, sorted by the larger
    /// endpoint.
    pub fn pairs_of(&self, entity: EntityId) -> &[(EntityId, EntityId)] {
        &self.pairs[self.pair_range(entity)]
    }

    /// Number of entities the candidate set was built over (the size of the
    /// flattened id space, not only the entities that appear in some pair).
    pub fn num_entities(&self) -> usize {
        self.entity_candidates.len()
    }

    /// Number of distinct candidates of one entity — the paper's LCP feature.
    pub fn candidates_of(&self, entity: EntityId) -> u32 {
        self.entity_candidates[entity.index()]
    }

    /// The per-entity candidate counts.
    pub fn entity_candidate_counts(&self) -> &[u32] {
        &self.entity_candidates
    }

    /// Number of candidate pairs that are true duplicates (positive pairs).
    pub fn count_positives(&self, truth: &GroundTruth) -> usize {
        self.pairs
            .iter()
            .filter(|&&(a, b)| truth.is_match(a, b))
            .count()
    }
}

/// Collects into `scratch` the sorted, deduplicated comparable partners of
/// entity `a` with a larger id than `a`.
#[inline]
fn neighbors_above(
    kind: er_core::DatasetKind,
    split: usize,
    source: BlockSource<'_>,
    adjacency: AdjView<'_>,
    a: usize,
    scratch: &mut Vec<u32>,
) {
    scratch.clear();
    match kind {
        er_core::DatasetKind::CleanClean => {
            debug_assert!(a < split);
            for &bid in adjacency.blocks_of(a) {
                let entities = source.entities_of(bid);
                let split_point = source.first_source_count(bid, split);
                // E2 ids all exceed every E1 id, so the whole outer slice
                // qualifies as "larger comparable partner".
                scratch.extend(entities[split_point..].iter().map(|e| e.0));
            }
        }
        er_core::DatasetKind::Dirty => {
            for &bid in adjacency.blocks_of(a) {
                let entities = source.entities_of(bid);
                let start = entities.partition_point(|e| e.index() <= a);
                scratch.extend(entities[start..].iter().map(|e| e.0));
            }
        }
    }
    scratch.sort_unstable();
    scratch.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::reference::naive_candidate_pairs;
    use er_core::DatasetKind;

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    fn clean_clean_collection() -> BlockCollection {
        // split = 2: entities 0,1 from E1; 2,3 from E2.
        BlockCollection {
            dataset_name: "t".into(),
            kind: DatasetKind::CleanClean,
            split: 2,
            num_entities: 4,
            blocks: vec![
                Block::new("a", ids(&[0, 2])),
                Block::new("b", ids(&[0, 1, 2, 3])),
                Block::new("c", ids(&[1, 3])),
            ],
        }
    }

    #[test]
    fn distinct_pairs_deduplicate_across_blocks() {
        let bc = clean_clean_collection();
        let cands = CandidatePairs::from_blocks(&bc);
        // Block b yields 0-2, 0-3, 1-2, 1-3; blocks a and c repeat 0-2 and 1-3.
        assert_eq!(cands.len(), 4);
        assert!(cands.pairs().contains(&(EntityId(0), EntityId(3))));
    }

    #[test]
    fn clean_clean_never_pairs_same_source() {
        let bc = clean_clean_collection();
        let cands = CandidatePairs::from_blocks(&bc);
        for &(a, b) in cands.pairs() {
            assert!(bc.is_comparable(a, b), "pair ({a}, {b}) is same-source");
        }
    }

    #[test]
    fn entity_candidate_counts_match_adjacency() {
        let bc = clean_clean_collection();
        let cands = CandidatePairs::from_blocks(&bc);
        // Every E1 entity is a candidate of both E2 entities and vice versa.
        for e in 0..4u32 {
            assert_eq!(cands.candidates_of(EntityId(e)), 2, "entity {e}");
        }
    }

    #[test]
    fn dirty_pairs_are_triangular() {
        let bc = BlockCollection {
            dataset_name: "t".into(),
            kind: DatasetKind::Dirty,
            split: 3,
            num_entities: 3,
            blocks: vec![Block::new("a", ids(&[0, 1, 2]))],
        };
        let cands = CandidatePairs::from_blocks(&bc);
        assert_eq!(cands.len(), 3);
    }

    #[test]
    fn count_positives_uses_ground_truth() {
        let bc = clean_clean_collection();
        let cands = CandidatePairs::from_blocks(&bc);
        let gt =
            GroundTruth::from_pairs(vec![(EntityId(0), EntityId(2)), (EntityId(1), EntityId(3))]);
        assert_eq!(cands.count_positives(&gt), 2);
    }

    #[test]
    fn from_pairs_normalizes_and_dedups() {
        let cands = CandidatePairs::from_pairs(
            5,
            vec![
                (EntityId(3), EntityId(1)),
                (EntityId(1), EntityId(3)),
                (EntityId(2), EntityId(2)),
                (EntityId(0), EntityId(4)),
            ],
        );
        assert_eq!(cands.len(), 2);
        assert_eq!(cands.candidates_of(EntityId(1)), 1);
        assert_eq!(cands.candidates_of(EntityId(2)), 0);
        assert_eq!(cands.pairs_of(EntityId(1)), &[(EntityId(1), EntityId(3))]);
        assert_eq!(cands.pair_range(EntityId(0)), 0..1);
    }

    #[test]
    fn pair_ids_are_stable_and_sorted() {
        let bc = clean_clean_collection();
        let a = CandidatePairs::from_blocks(&bc);
        let b = CandidatePairs::from_blocks(&bc);
        assert_eq!(a.pairs(), b.pairs());
        let mut sorted = a.pairs().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, a.pairs());
        assert_eq!(a.pair(PairId(0)), a.pairs()[0]);
    }

    #[test]
    fn matches_naive_reference_bit_for_bit() {
        for bc in [
            clean_clean_collection(),
            BlockCollection {
                dataset_name: "d".into(),
                kind: DatasetKind::Dirty,
                split: 6,
                num_entities: 6,
                blocks: vec![
                    Block::new("a", ids(&[0, 1, 2, 5])),
                    Block::new("b", ids(&[1, 2, 3])),
                    Block::new("c", ids(&[0, 4, 5])),
                ],
            },
        ] {
            let (naive_pairs, naive_counts) = naive_candidate_pairs(&bc);
            let cands = CandidatePairs::from_blocks(&bc);
            assert_eq!(cands.pairs(), naive_pairs.as_slice());
            assert_eq!(cands.entity_candidate_counts(), naive_counts.as_slice());
        }
    }

    #[test]
    fn parallel_extraction_is_deterministic() {
        let bc = clean_clean_collection();
        let stats = BlockStats::new(&bc);
        let sequential = CandidatePairs::from_blocks(&bc);
        for threads in [1, 2, 4, 7] {
            let parallel = CandidatePairs::from_blocks_with_stats(&bc, &stats, threads);
            assert_eq!(parallel.pairs(), sequential.pairs(), "{threads} threads");
            assert_eq!(
                parallel.entity_candidate_counts(),
                sequential.entity_candidate_counts()
            );
        }
    }

    #[test]
    fn stats_only_extraction_matches_block_backed_extraction() {
        for bc in [
            clean_clean_collection(),
            BlockCollection {
                dataset_name: "d".into(),
                kind: DatasetKind::Dirty,
                split: 5,
                num_entities: 5,
                blocks: vec![
                    Block::new("a", ids(&[0, 1, 4])),
                    Block::new("b", ids(&[1, 2, 3])),
                ],
            },
        ] {
            let stats = BlockStats::new(&bc);
            let from_blocks = CandidatePairs::from_blocks(&bc);
            for threads in [1, 3] {
                let from_stats = CandidatePairs::from_stats(&stats, threads);
                assert_eq!(from_stats.pairs(), from_blocks.pairs());
                assert_eq!(
                    from_stats.entity_candidate_counts(),
                    from_blocks.entity_candidate_counts()
                );
            }
        }
    }

    #[test]
    fn csr_offsets_partition_the_pair_list() {
        let bc = clean_clean_collection();
        let cands = CandidatePairs::from_blocks(&bc);
        let mut walked = Vec::new();
        for e in 0..bc.num_entities {
            for &(a, b) in cands.pairs_of(EntityId(e as u32)) {
                assert_eq!(a, EntityId(e as u32));
                walked.push((a, b));
            }
        }
        assert_eq!(walked.as_slice(), cands.pairs());
    }
}
