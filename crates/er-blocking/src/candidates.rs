//! Candidate pairs: the distinct set of comparisons contained in a block
//! collection.
//!
//! Redundancy-positive blocks repeat the same pair across many blocks; the
//! candidate-pair set `C` contains each comparable pair exactly once.  This is
//! the unit every weighting scheme, classifier and pruning algorithm operates
//! on.

use er_core::{EntityId, FxHashSet, GroundTruth, PairId};
use serde::{Deserialize, Serialize};

use crate::collection::BlockCollection;

/// The distinct comparisons of a block collection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CandidatePairs {
    /// Distinct pairs, each stored with the smaller entity id first and the
    /// list sorted, so pair ids are deterministic.
    pairs: Vec<(EntityId, EntityId)>,
    /// Number of distinct candidates per entity (the LCP feature values).
    entity_candidates: Vec<u32>,
}

impl CandidatePairs {
    /// Extracts the distinct candidate pairs from a block collection.
    pub fn from_blocks(blocks: &BlockCollection) -> Self {
        let mut seen: FxHashSet<(EntityId, EntityId)> = FxHashSet::default();
        let mut entity_candidates = vec![0u32; blocks.num_entities];

        for block in &blocks.blocks {
            let entities = &block.entities;
            let split_point = block.first_source_count(blocks.split);
            match blocks.kind {
                er_core::DatasetKind::CleanClean => {
                    let (inner, outer) = entities.split_at(split_point);
                    for &a in inner {
                        for &b in outer {
                            Self::record(a, b, &mut seen, &mut entity_candidates);
                        }
                    }
                }
                er_core::DatasetKind::Dirty => {
                    for (i, &a) in entities.iter().enumerate() {
                        for &b in &entities[i + 1..] {
                            Self::record(a, b, &mut seen, &mut entity_candidates);
                        }
                    }
                }
            }
        }

        let mut pairs: Vec<(EntityId, EntityId)> = seen.into_iter().collect();
        pairs.sort_unstable();
        CandidatePairs {
            pairs,
            entity_candidates,
        }
    }

    #[inline]
    fn record(
        a: EntityId,
        b: EntityId,
        seen: &mut FxHashSet<(EntityId, EntityId)>,
        entity_candidates: &mut [u32],
    ) {
        let key = if a <= b { (a, b) } else { (b, a) };
        if seen.insert(key) {
            entity_candidates[key.0.index()] += 1;
            entity_candidates[key.1.index()] += 1;
        }
    }

    /// Builds a candidate set directly from a list of pairs (used in tests and
    /// when re-materialising a pruned collection).
    pub fn from_pairs(num_entities: usize, pairs: impl IntoIterator<Item = (EntityId, EntityId)>) -> Self {
        let mut seen: FxHashSet<(EntityId, EntityId)> = FxHashSet::default();
        let mut entity_candidates = vec![0u32; num_entities];
        for (a, b) in pairs {
            if a == b {
                continue;
            }
            Self::record(a, b, &mut seen, &mut entity_candidates);
        }
        let mut pairs: Vec<(EntityId, EntityId)> = seen.into_iter().collect();
        pairs.sort_unstable();
        CandidatePairs {
            pairs,
            entity_candidates,
        }
    }

    /// Number of distinct candidate pairs, |C|.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if no candidate pairs exist.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Returns the pair with the given id.
    pub fn pair(&self, id: PairId) -> (EntityId, EntityId) {
        self.pairs[id.index()]
    }

    /// Iterates over all pairs together with their pair ids.
    pub fn iter(&self) -> impl Iterator<Item = (PairId, EntityId, EntityId)> + '_ {
        self.pairs
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| (PairId::from(i), a, b))
    }

    /// Slice of all pairs.
    pub fn pairs(&self) -> &[(EntityId, EntityId)] {
        &self.pairs
    }

    /// Number of entities the candidate set was built over (the size of the
    /// flattened id space, not only the entities that appear in some pair).
    pub fn num_entities(&self) -> usize {
        self.entity_candidates.len()
    }

    /// Number of distinct candidates of one entity — the paper's LCP feature.
    pub fn candidates_of(&self, entity: EntityId) -> u32 {
        self.entity_candidates[entity.index()]
    }

    /// The per-entity candidate counts.
    pub fn entity_candidate_counts(&self) -> &[u32] {
        &self.entity_candidates
    }

    /// Number of candidate pairs that are true duplicates (positive pairs).
    pub fn count_positives(&self, truth: &GroundTruth) -> usize {
        self.pairs
            .iter()
            .filter(|&&(a, b)| truth.is_match(a, b))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use er_core::DatasetKind;

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    fn clean_clean_collection() -> BlockCollection {
        // split = 2: entities 0,1 from E1; 2,3 from E2.
        BlockCollection {
            dataset_name: "t".into(),
            kind: DatasetKind::CleanClean,
            split: 2,
            num_entities: 4,
            blocks: vec![
                Block::new("a", ids(&[0, 2])),
                Block::new("b", ids(&[0, 1, 2, 3])),
                Block::new("c", ids(&[1, 3])),
            ],
        }
    }

    #[test]
    fn distinct_pairs_deduplicate_across_blocks() {
        let bc = clean_clean_collection();
        let cands = CandidatePairs::from_blocks(&bc);
        // Block b yields 0-2, 0-3, 1-2, 1-3; blocks a and c repeat 0-2 and 1-3.
        assert_eq!(cands.len(), 4);
        assert!(cands.pairs().contains(&(EntityId(0), EntityId(3))));
    }

    #[test]
    fn clean_clean_never_pairs_same_source() {
        let bc = clean_clean_collection();
        let cands = CandidatePairs::from_blocks(&bc);
        for &(a, b) in cands.pairs() {
            assert!(bc.is_comparable(a, b), "pair ({a}, {b}) is same-source");
        }
    }

    #[test]
    fn entity_candidate_counts_match_adjacency() {
        let bc = clean_clean_collection();
        let cands = CandidatePairs::from_blocks(&bc);
        // Every E1 entity is a candidate of both E2 entities and vice versa.
        for e in 0..4u32 {
            assert_eq!(cands.candidates_of(EntityId(e)), 2, "entity {e}");
        }
    }

    #[test]
    fn dirty_pairs_are_triangular() {
        let bc = BlockCollection {
            dataset_name: "t".into(),
            kind: DatasetKind::Dirty,
            split: 3,
            num_entities: 3,
            blocks: vec![Block::new("a", ids(&[0, 1, 2]))],
        };
        let cands = CandidatePairs::from_blocks(&bc);
        assert_eq!(cands.len(), 3);
    }

    #[test]
    fn count_positives_uses_ground_truth() {
        let bc = clean_clean_collection();
        let cands = CandidatePairs::from_blocks(&bc);
        let gt = GroundTruth::from_pairs(vec![(EntityId(0), EntityId(2)), (EntityId(1), EntityId(3))]);
        assert_eq!(cands.count_positives(&gt), 2);
    }

    #[test]
    fn from_pairs_normalizes_and_dedups() {
        let cands = CandidatePairs::from_pairs(
            5,
            vec![
                (EntityId(3), EntityId(1)),
                (EntityId(1), EntityId(3)),
                (EntityId(2), EntityId(2)),
                (EntityId(0), EntityId(4)),
            ],
        );
        assert_eq!(cands.len(), 2);
        assert_eq!(cands.candidates_of(EntityId(1)), 1);
        assert_eq!(cands.candidates_of(EntityId(2)), 0);
    }

    #[test]
    fn pair_ids_are_stable_and_sorted() {
        let bc = clean_clean_collection();
        let a = CandidatePairs::from_blocks(&bc);
        let b = CandidatePairs::from_blocks(&bc);
        assert_eq!(a.pairs(), b.pairs());
        let mut sorted = a.pairs().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, a.pairs());
        assert_eq!(a.pair(PairId(0)), a.pairs()[0]);
    }
}
