//! Candidate pairs: the distinct set of comparisons contained in a block
//! collection.
//!
//! Redundancy-positive blocks repeat the same pair across many blocks; the
//! candidate-pair set `C` contains each comparable pair exactly once.  This is
//! the unit every weighting scheme, classifier and pruning algorithm operates
//! on.
//!
//! # Extraction
//!
//! Extraction is hash-free: instead of pushing every block comparison through
//! a global hash set, each entity gathers the partners from its own blocks
//! into a scratch buffer, sorts and deduplicates it, and appends the run to a
//! CSR pair index (`offsets[a]..offsets[a + 1]` addresses the pairs whose
//! smaller endpoint is `a`).  Entities are independent, so the pass is
//! embarrassingly parallel, and emitting entities in ascending order makes the
//! pair list bit-identical to the lexicographically sorted order the previous
//! hash-based implementation produced.  See [`crate::reference`] for that
//! retained implementation.
//!
//! Since the streamed engine landed, every constructor here is a *collector*
//! of [`CandidateStream`](crate::CandidateStream): the stream counts and
//! re-extracts the pairs, this type materialises them.  There is exactly one
//! extraction engine in the crate.

use er_core::{EntityId, GroundTruth, PairId};
use serde::{Deserialize, Serialize};

use crate::collection::BlockCollection;
use crate::stats::BlockStats;
use crate::stream::CandidateStream;

/// The distinct comparisons of a block collection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CandidatePairs {
    /// Distinct pairs, each stored with the smaller entity id first and the
    /// list sorted, so pair ids are deterministic.
    pairs: Vec<(EntityId, EntityId)>,
    /// CSR offsets: the pairs whose smaller endpoint is entity `a` occupy
    /// `pairs[offsets[a]..offsets[a + 1]]`.  `num_entities + 1` entries.
    offsets: Vec<u32>,
    /// Number of distinct candidates per entity (the LCP feature values).
    entity_candidates: Vec<u32>,
}

/// Checks that a `u64` pair total fits the materialised index's `u32`
/// offsets.  The streamed engine counts in `u64` and has no such ceiling;
/// only materialising collectors call this.
fn ensure_materialisable(total: u64) -> er_core::Result<()> {
    let limit = u64::from(u32::MAX);
    if total > limit {
        return Err(er_core::Error::CapacityExceeded {
            what: "materialised candidate pair index".into(),
            requested: total,
            limit,
        });
    }
    Ok(())
}

impl CandidatePairs {
    /// Extracts the distinct candidate pairs from a block collection on the
    /// calling thread.
    ///
    /// # Panics
    ///
    /// If the collection produces more than `u32::MAX` pairs — use the
    /// streamed engine ([`CandidateStream`]) at that scale.
    pub fn from_blocks(blocks: &BlockCollection) -> Self {
        let stream = CandidateStream::from_blocks(blocks);
        Self::try_from_stream(&stream, 1).expect("candidate set above the u32 pair-index limit")
    }

    /// Extracts the candidate pairs reusing an already-computed
    /// [`BlockStats`] CSR adjacency, with up to `threads` workers.
    ///
    /// Produces exactly the same pairs, order and counts as
    /// [`CandidatePairs::from_blocks`] for any thread count.
    ///
    /// # Panics
    ///
    /// If the collection produces more than `u32::MAX` pairs.
    pub fn from_blocks_with_stats(
        blocks: &BlockCollection,
        stats: &BlockStats,
        threads: usize,
    ) -> Self {
        let stream = CandidateStream::from_blocks_with_stats(blocks, stats, threads);
        Self::try_from_stream(&stream, threads)
            .expect("candidate set above the u32 pair-index limit")
    }

    /// Extracts the candidate pairs from the block statistics alone, with up
    /// to `threads` workers.  [`BlockStats`] carries both CSR directions plus
    /// the per-block first-source counts, so no [`BlockCollection`] (and no
    /// key string) is ever touched — this is the entry point of the
    /// CSR-native pipeline.
    ///
    /// # Panics
    ///
    /// If the statistics produce more than `u32::MAX` pairs — production
    /// callers should prefer [`CandidatePairs::try_from_stats`].
    pub fn from_stats(stats: &BlockStats, threads: usize) -> Self {
        Self::try_from_stats(stats, threads).expect("candidate set above the u32 pair-index limit")
    }

    /// Fallible variant of [`CandidatePairs::from_stats`]: returns
    /// [`er_core::Error::CapacityExceeded`] instead of panicking when the
    /// pair total exceeds the materialised index's `u32` ceiling.
    pub fn try_from_stats(stats: &BlockStats, threads: usize) -> er_core::Result<Self> {
        let stream = CandidateStream::from_stats(stats, threads);
        Self::try_from_stream(&stream, threads)
    }

    /// Materialises a [`CandidateStream`]: the stream's exact `u64` pair
    /// count sizes the index up front, then every chunk is re-extracted
    /// straight into its pre-split slice of the pair list (no intermediate
    /// per-worker buffers).  The per-entity offsets and LCP counts are the
    /// stream's counting-pass aggregates, so the result is bit-identical to
    /// concatenating the stream's chunks at any thread count.
    pub fn try_from_stream(stream: &CandidateStream<'_>, threads: usize) -> er_core::Result<Self> {
        ensure_materialisable(stream.total_pairs())?;
        let total = stream.total_pairs() as usize;
        let num_entities = stream.num_entities();
        let threads = threads.max(1);

        let mut offsets: Vec<u32> = Vec::with_capacity(num_entities + 1);
        offsets.extend(stream.entity_offsets().iter().map(|&o| o as u32));
        offsets.resize(num_entities + 1, *offsets.last().unwrap_or(&0));
        let entity_candidates = stream.lcp_table().to_vec();

        let mut pairs = vec![(EntityId(0), EntityId(0)); total];
        // One chunk per task; ~8 tasks per worker keep the queue balanced
        // when candidate counts are skewed across entities.  Chunk boundaries
        // may split an entity's run — emission order is positional, so the
        // result is identical for any chunking.
        let num_tasks = if threads <= 1 { 1 } else { threads * 8 };
        let chunks = stream.chunks(total.div_ceil(num_tasks).max(1));
        {
            let mut slices: Vec<Option<&mut [(EntityId, EntityId)]>> =
                Vec::with_capacity(chunks.len());
            let mut rest: &mut [(EntityId, EntityId)] = &mut pairs;
            for chunk in &chunks {
                let (head, tail) = rest.split_at_mut(chunk.len());
                slices.push(Some(head));
                rest = tail;
            }
            let slots = std::sync::Mutex::new(slices);
            er_core::for_each_task_with_state(
                chunks.len(),
                threads,
                Vec::<u32>::new,
                |task, scratch| {
                    let slice = slots.lock().unwrap()[task].take().unwrap();
                    stream.extract_chunk_into(chunks[task], scratch, slice);
                },
            );
        }

        Ok(CandidatePairs {
            pairs,
            offsets,
            entity_candidates,
        })
    }

    /// Builds a candidate set directly from a list of pairs (used in tests and
    /// when re-materialising a pruned collection).  Hash-free: normalises,
    /// sorts and deduplicates the list.
    pub fn from_pairs(
        num_entities: usize,
        pairs: impl IntoIterator<Item = (EntityId, EntityId)>,
    ) -> Self {
        let mut list: Vec<(EntityId, EntityId)> = pairs
            .into_iter()
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
            .collect();
        list.sort_unstable();
        list.dedup();

        let mut entity_candidates = vec![0u32; num_entities];
        let mut offsets = vec![0u32; num_entities + 1];
        for &(a, b) in &list {
            offsets[a.index() + 1] += 1;
            entity_candidates[a.index()] += 1;
            entity_candidates[b.index()] += 1;
        }
        for i in 0..num_entities {
            offsets[i + 1] += offsets[i];
        }
        CandidatePairs {
            pairs: list,
            offsets,
            entity_candidates,
        }
    }

    /// Number of distinct candidate pairs, |C|.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if no candidate pairs exist.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Returns the pair with the given id.
    pub fn pair(&self, id: PairId) -> (EntityId, EntityId) {
        self.pairs[id.index()]
    }

    /// Iterates over all pairs together with their pair ids.
    pub fn iter(&self) -> impl Iterator<Item = (PairId, EntityId, EntityId)> + '_ {
        self.pairs
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| (PairId::from(i), a, b))
    }

    /// Slice of all pairs.
    pub fn pairs(&self) -> &[(EntityId, EntityId)] {
        &self.pairs
    }

    /// The pair-id range whose pairs have `entity` as their smaller endpoint
    /// (a CSR row of the pair index).
    pub fn pair_range(&self, entity: EntityId) -> std::ops::Range<usize> {
        self.offsets[entity.index()] as usize..self.offsets[entity.index() + 1] as usize
    }

    /// The pairs whose smaller endpoint is `entity`, sorted by the larger
    /// endpoint.
    pub fn pairs_of(&self, entity: EntityId) -> &[(EntityId, EntityId)] {
        &self.pairs[self.pair_range(entity)]
    }

    /// Number of entities the candidate set was built over (the size of the
    /// flattened id space, not only the entities that appear in some pair).
    pub fn num_entities(&self) -> usize {
        self.entity_candidates.len()
    }

    /// Number of distinct candidates of one entity — the paper's LCP feature.
    pub fn candidates_of(&self, entity: EntityId) -> u32 {
        self.entity_candidates[entity.index()]
    }

    /// The per-entity candidate counts.
    pub fn entity_candidate_counts(&self) -> &[u32] {
        &self.entity_candidates
    }

    /// Bytes held by the materialised pair index (pair list + CSR offsets +
    /// per-entity counts) — the allocation the streamed path avoids,
    /// tracked per size by the scalability bench.
    pub fn index_bytes(&self) -> usize {
        use std::mem::size_of;
        self.pairs.capacity() * size_of::<(EntityId, EntityId)>()
            + self.offsets.capacity() * size_of::<u32>()
            + self.entity_candidates.capacity() * size_of::<u32>()
    }

    /// Number of candidate pairs that are true duplicates (positive pairs).
    pub fn count_positives(&self, truth: &GroundTruth) -> usize {
        self.pairs
            .iter()
            .filter(|&&(a, b)| truth.is_match(a, b))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::reference::naive_candidate_pairs;
    use er_core::DatasetKind;

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    fn clean_clean_collection() -> BlockCollection {
        // split = 2: entities 0,1 from E1; 2,3 from E2.
        BlockCollection {
            dataset_name: "t".into(),
            kind: DatasetKind::CleanClean,
            split: 2,
            num_entities: 4,
            blocks: vec![
                Block::new("a", ids(&[0, 2])),
                Block::new("b", ids(&[0, 1, 2, 3])),
                Block::new("c", ids(&[1, 3])),
            ],
        }
    }

    #[test]
    fn distinct_pairs_deduplicate_across_blocks() {
        let bc = clean_clean_collection();
        let cands = CandidatePairs::from_blocks(&bc);
        // Block b yields 0-2, 0-3, 1-2, 1-3; blocks a and c repeat 0-2 and 1-3.
        assert_eq!(cands.len(), 4);
        assert!(cands.pairs().contains(&(EntityId(0), EntityId(3))));
    }

    #[test]
    fn clean_clean_never_pairs_same_source() {
        let bc = clean_clean_collection();
        let cands = CandidatePairs::from_blocks(&bc);
        for &(a, b) in cands.pairs() {
            assert!(bc.is_comparable(a, b), "pair ({a}, {b}) is same-source");
        }
    }

    #[test]
    fn entity_candidate_counts_match_adjacency() {
        let bc = clean_clean_collection();
        let cands = CandidatePairs::from_blocks(&bc);
        // Every E1 entity is a candidate of both E2 entities and vice versa.
        for e in 0..4u32 {
            assert_eq!(cands.candidates_of(EntityId(e)), 2, "entity {e}");
        }
    }

    #[test]
    fn dirty_pairs_are_triangular() {
        let bc = BlockCollection {
            dataset_name: "t".into(),
            kind: DatasetKind::Dirty,
            split: 3,
            num_entities: 3,
            blocks: vec![Block::new("a", ids(&[0, 1, 2]))],
        };
        let cands = CandidatePairs::from_blocks(&bc);
        assert_eq!(cands.len(), 3);
    }

    #[test]
    fn count_positives_uses_ground_truth() {
        let bc = clean_clean_collection();
        let cands = CandidatePairs::from_blocks(&bc);
        let gt =
            GroundTruth::from_pairs(vec![(EntityId(0), EntityId(2)), (EntityId(1), EntityId(3))]);
        assert_eq!(cands.count_positives(&gt), 2);
    }

    #[test]
    fn from_pairs_normalizes_and_dedups() {
        let cands = CandidatePairs::from_pairs(
            5,
            vec![
                (EntityId(3), EntityId(1)),
                (EntityId(1), EntityId(3)),
                (EntityId(2), EntityId(2)),
                (EntityId(0), EntityId(4)),
            ],
        );
        assert_eq!(cands.len(), 2);
        assert_eq!(cands.candidates_of(EntityId(1)), 1);
        assert_eq!(cands.candidates_of(EntityId(2)), 0);
        assert_eq!(cands.pairs_of(EntityId(1)), &[(EntityId(1), EntityId(3))]);
        assert_eq!(cands.pair_range(EntityId(0)), 0..1);
    }

    #[test]
    fn pair_ids_are_stable_and_sorted() {
        let bc = clean_clean_collection();
        let a = CandidatePairs::from_blocks(&bc);
        let b = CandidatePairs::from_blocks(&bc);
        assert_eq!(a.pairs(), b.pairs());
        let mut sorted = a.pairs().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, a.pairs());
        assert_eq!(a.pair(PairId(0)), a.pairs()[0]);
    }

    #[test]
    fn matches_naive_reference_bit_for_bit() {
        for bc in [
            clean_clean_collection(),
            BlockCollection {
                dataset_name: "d".into(),
                kind: DatasetKind::Dirty,
                split: 6,
                num_entities: 6,
                blocks: vec![
                    Block::new("a", ids(&[0, 1, 2, 5])),
                    Block::new("b", ids(&[1, 2, 3])),
                    Block::new("c", ids(&[0, 4, 5])),
                ],
            },
        ] {
            let (naive_pairs, naive_counts) = naive_candidate_pairs(&bc);
            let cands = CandidatePairs::from_blocks(&bc);
            assert_eq!(cands.pairs(), naive_pairs.as_slice());
            assert_eq!(cands.entity_candidate_counts(), naive_counts.as_slice());
        }
    }

    #[test]
    fn parallel_extraction_is_deterministic() {
        let bc = clean_clean_collection();
        let stats = BlockStats::new(&bc);
        let sequential = CandidatePairs::from_blocks(&bc);
        for threads in [1, 2, 4, 7] {
            let parallel = CandidatePairs::from_blocks_with_stats(&bc, &stats, threads);
            assert_eq!(parallel.pairs(), sequential.pairs(), "{threads} threads");
            assert_eq!(
                parallel.entity_candidate_counts(),
                sequential.entity_candidate_counts()
            );
        }
    }

    #[test]
    fn stats_only_extraction_matches_block_backed_extraction() {
        for bc in [
            clean_clean_collection(),
            BlockCollection {
                dataset_name: "d".into(),
                kind: DatasetKind::Dirty,
                split: 5,
                num_entities: 5,
                blocks: vec![
                    Block::new("a", ids(&[0, 1, 4])),
                    Block::new("b", ids(&[1, 2, 3])),
                ],
            },
        ] {
            let stats = BlockStats::new(&bc);
            let from_blocks = CandidatePairs::from_blocks(&bc);
            for threads in [1, 3] {
                let from_stats = CandidatePairs::from_stats(&stats, threads);
                assert_eq!(from_stats.pairs(), from_blocks.pairs());
                assert_eq!(
                    from_stats.entity_candidate_counts(),
                    from_blocks.entity_candidate_counts()
                );
            }
        }
    }

    #[test]
    fn materialisation_capacity_check_rejects_only_past_the_u32_boundary() {
        assert!(ensure_materialisable(0).is_ok());
        assert!(ensure_materialisable(u64::from(u32::MAX)).is_ok());
        let err = ensure_materialisable(u64::from(u32::MAX) + 1).unwrap_err();
        match err {
            er_core::Error::CapacityExceeded {
                requested, limit, ..
            } => {
                assert_eq!(requested, u64::from(u32::MAX) + 1);
                assert_eq!(limit, u64::from(u32::MAX));
            }
            other => panic!("expected CapacityExceeded, got {other:?}"),
        }
    }

    #[test]
    fn try_from_stats_collects_the_stream() {
        let bc = clean_clean_collection();
        let stats = BlockStats::new(&bc);
        let direct = CandidatePairs::from_blocks(&bc);
        let collected = CandidatePairs::try_from_stats(&stats, 2).unwrap();
        assert_eq!(collected.pairs(), direct.pairs());
        assert_eq!(
            collected.entity_candidate_counts(),
            direct.entity_candidate_counts()
        );
        assert_eq!(
            collected.pair_range(EntityId(0)),
            direct.pair_range(EntityId(0))
        );
    }

    #[test]
    fn csr_offsets_partition_the_pair_list() {
        let bc = clean_clean_collection();
        let cands = CandidatePairs::from_blocks(&bc);
        let mut walked = Vec::new();
        for e in 0..bc.num_entities {
            for &(a, b) in cands.pairs_of(EntityId(e as u32)) {
                assert_eq!(a, EntityId(e as u32));
                walked.push((a, b));
            }
        }
        assert_eq!(walked.as_slice(), cands.pairs());
    }
}
