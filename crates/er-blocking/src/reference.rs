//! Naive reference implementations retained for equivalence testing and
//! benchmarking.
//!
//! The production [`crate::BlockStats`] and [`crate::CandidatePairs`] use a
//! flat CSR layout and hash-free per-entity enumeration, and the blocking
//! schemes run through the parallel [`crate::builder`] engine.  This module
//! keeps faithful copies of the pre-refactor implementations — sequential
//! single-hash-map block builders, nested `Vec<Vec<_>>` adjacency and a
//! global `FxHashSet` pair deduplicator — so property tests can assert the
//! optimised paths produce identical results and benchmarks can quantify the
//! speedup.  Nothing here should be used on a hot path.

use er_core::{BlockId, Dataset, EntityId, FxHashMap, FxHashSet};

use crate::block::Block;
use crate::collection::BlockCollection;
use crate::suffix_arrays::SuffixArrayConfig;

/// The sequential pre-engine Token Blocking builder: one global
/// `FxHashMap<String, Vec<EntityId>>` filled entity by entity, then filtered
/// and sorted.
pub fn token_blocking(dataset: &Dataset) -> BlockCollection {
    let mut index: FxHashMap<String, Vec<EntityId>> = FxHashMap::default();
    for (i, profile) in dataset.profiles.iter().enumerate() {
        let id = EntityId::from(i);
        for token in profile.value_tokens() {
            index.entry(token).or_default().push(id);
        }
    }
    finish_blocks(dataset, index, usize::MAX)
}

/// The sequential pre-engine Q-Grams Blocking builder.
pub fn qgrams_blocking(dataset: &Dataset, q: usize) -> BlockCollection {
    let mut index: FxHashMap<String, Vec<EntityId>> = FxHashMap::default();
    for (i, profile) in dataset.profiles.iter().enumerate() {
        let id = EntityId::from(i);
        let mut signatures: FxHashSet<String> = FxHashSet::default();
        for token in profile.value_tokens() {
            for gram in crate::qgrams::qgrams(&token, q) {
                signatures.insert(gram);
            }
        }
        for gram in signatures {
            index.entry(gram).or_default().push(id);
        }
    }
    finish_blocks(dataset, index, usize::MAX)
}

/// The sequential pre-engine Suffix Arrays builder.
pub fn suffix_array_blocking(dataset: &Dataset, config: SuffixArrayConfig) -> BlockCollection {
    assert!(config.min_length >= 2, "min_length must be at least 2");
    assert!(
        config.max_block_size >= 2,
        "max_block_size must allow a pair"
    );
    let mut index: FxHashMap<String, Vec<EntityId>> = FxHashMap::default();
    for (i, profile) in dataset.profiles.iter().enumerate() {
        let id = EntityId::from(i);
        let mut signatures: FxHashSet<String> = FxHashSet::default();
        for token in profile.value_tokens() {
            for suffix in crate::suffix_arrays::suffixes(&token, config.min_length) {
                signatures.insert(suffix);
            }
        }
        for suffix in signatures {
            index.entry(suffix).or_default().push(id);
        }
    }
    finish_blocks(dataset, index, config.max_block_size)
}

/// The shared tail of the sequential builders: drop oversized and useless
/// blocks, sort by key.
fn finish_blocks(
    dataset: &Dataset,
    index: FxHashMap<String, Vec<EntityId>>,
    max_block_size: usize,
) -> BlockCollection {
    let mut blocks: Vec<Block> = index
        .into_iter()
        .filter(|(_, entities)| entities.len() <= max_block_size)
        .map(|(key, entities)| Block::new(key, entities))
        .filter(|b| b.is_useful(dataset.kind, dataset.split))
        .collect();
    blocks.sort_unstable_by(|a, b| a.key.cmp(&b.key));

    BlockCollection {
        dataset_name: dataset.name.clone(),
        kind: dataset.kind,
        split: dataset.split,
        num_entities: dataset.num_entities(),
        blocks,
    }
}

/// The pre-CSR block statistics: one heap-allocated block list per entity,
/// no precomputed reciprocals.  API mirrors [`crate::BlockStats`].
#[derive(Debug, Clone)]
pub struct NaiveBlockStats {
    entity_blocks: Vec<Vec<BlockId>>,
    block_sizes: Vec<u32>,
    block_comparisons: Vec<u64>,
    total_comparisons: u64,
    entity_comparisons: Vec<u64>,
    num_blocks: usize,
}

impl NaiveBlockStats {
    /// Builds the statistics exactly as the original implementation did.
    pub fn new(blocks: &BlockCollection) -> Self {
        let num_blocks = blocks.num_blocks();
        let mut entity_blocks: Vec<Vec<BlockId>> = vec![Vec::new(); blocks.num_entities];
        let mut block_sizes = Vec::with_capacity(num_blocks);
        let mut block_comparisons = Vec::with_capacity(num_blocks);

        for (id, block) in blocks.iter_with_ids() {
            block_sizes.push(block.size() as u32);
            block_comparisons.push(block.num_comparisons(blocks.kind, blocks.split));
            for entity in &block.entities {
                entity_blocks[entity.index()].push(id);
            }
        }
        let total_comparisons = block_comparisons.iter().sum();
        let entity_comparisons = entity_blocks
            .iter()
            .map(|list| list.iter().map(|b| block_comparisons[b.index()]).sum())
            .collect();

        NaiveBlockStats {
            entity_blocks,
            block_sizes,
            block_comparisons,
            total_comparisons,
            entity_comparisons,
            num_blocks,
        }
    }

    /// Number of blocks, |B|.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Number of entities covered.
    pub fn num_entities(&self) -> usize {
        self.entity_blocks.len()
    }

    /// The sorted block list of one entity.
    pub fn blocks_of(&self, entity: EntityId) -> &[BlockId] {
        &self.entity_blocks[entity.index()]
    }

    /// `|B_i|`: how many blocks contain the entity.
    pub fn num_blocks_of(&self, entity: EntityId) -> usize {
        self.entity_blocks[entity.index()].len()
    }

    /// `|b|`: number of entities in a block.
    pub fn block_size(&self, block: BlockId) -> u32 {
        self.block_sizes[block.index()]
    }

    /// `||b||`: number of comparisons in a block.
    pub fn block_comparisons(&self, block: BlockId) -> u64 {
        self.block_comparisons[block.index()]
    }

    /// `||B||`: total comparisons across all blocks.
    pub fn total_comparisons(&self) -> u64 {
        self.total_comparisons
    }

    /// `||e_i||`: aggregate comparisons of the entity's blocks.
    pub fn entity_comparisons(&self, entity: EntityId) -> u64 {
        self.entity_comparisons[entity.index()]
    }

    /// Calls `f` for every block shared by the two entities, in block-id
    /// order, via the original sorted-merge loop.
    #[inline]
    pub fn for_each_common_block(&self, a: EntityId, b: EntityId, mut f: impl FnMut(BlockId)) {
        let la = &self.entity_blocks[a.index()];
        let lb = &self.entity_blocks[b.index()];
        let (mut i, mut j) = (0, 0);
        while i < la.len() && j < lb.len() {
            match la[i].cmp(&lb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    f(la[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }

    /// Number of blocks shared by two entities.
    pub fn common_blocks(&self, a: EntityId, b: EntityId) -> usize {
        let mut count = 0;
        self.for_each_common_block(a, b, |_| count += 1);
        count
    }
}

/// The original hash-based candidate extraction: every block comparison is
/// normalised and pushed through a global `FxHashSet`.
///
/// Returns the sorted distinct pairs plus the per-entity candidate counts, in
/// exactly the representation [`crate::CandidatePairs`] exposes.
pub fn naive_candidate_pairs(blocks: &BlockCollection) -> (Vec<(EntityId, EntityId)>, Vec<u32>) {
    let mut seen: FxHashSet<(EntityId, EntityId)> = FxHashSet::default();
    let mut entity_candidates = vec![0u32; blocks.num_entities];

    let mut record = |a: EntityId, b: EntityId, counts: &mut [u32]| {
        let key = if a <= b { (a, b) } else { (b, a) };
        if seen.insert(key) {
            counts[key.0.index()] += 1;
            counts[key.1.index()] += 1;
        }
    };

    for block in &blocks.blocks {
        let entities = &block.entities;
        let split_point = block.first_source_count(blocks.split);
        match blocks.kind {
            er_core::DatasetKind::CleanClean => {
                let (inner, outer) = entities.split_at(split_point);
                for &a in inner {
                    for &b in outer {
                        record(a, b, &mut entity_candidates);
                    }
                }
            }
            er_core::DatasetKind::Dirty => {
                for (i, &a) in entities.iter().enumerate() {
                    for &b in &entities[i + 1..] {
                        record(a, b, &mut entity_candidates);
                    }
                }
            }
        }
    }

    let mut pairs: Vec<(EntityId, EntityId)> = seen.into_iter().collect();
    pairs.sort_unstable();
    (pairs, entity_candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use er_core::DatasetKind;

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    fn sample() -> BlockCollection {
        BlockCollection {
            dataset_name: "t".into(),
            kind: DatasetKind::CleanClean,
            split: 2,
            num_entities: 4,
            blocks: vec![
                Block::new("a", ids(&[0, 2])),
                Block::new("b", ids(&[0, 1, 2, 3])),
                Block::new("c", ids(&[1, 3])),
            ],
        }
    }

    #[test]
    fn naive_extraction_dedups_across_blocks() {
        let (pairs, counts) = naive_candidate_pairs(&sample());
        assert_eq!(pairs.len(), 4);
        assert!(pairs.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(counts, vec![2, 2, 2, 2]);
    }

    #[test]
    fn naive_stats_mirror_old_api() {
        let stats = NaiveBlockStats::new(&sample());
        assert_eq!(stats.num_blocks(), 3);
        assert_eq!(stats.num_entities(), 4);
        assert_eq!(stats.blocks_of(EntityId(0)), &[BlockId(0), BlockId(1)]);
        assert_eq!(stats.block_size(BlockId(1)), 4);
        assert_eq!(stats.total_comparisons(), 6);
        assert_eq!(stats.entity_comparisons(EntityId(0)), 5);
        assert_eq!(stats.common_blocks(EntityId(0), EntityId(2)), 2);
    }
}
