//! A single block: the set of entities sharing one blocking key.

use er_core::{DatasetKind, EntityId};
use serde::{Deserialize, Serialize};

/// A block groups all entities whose profiles contain the block's key token.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// The blocking key (an attribute-value token for Token Blocking).
    pub key: String,
    /// Entities in the block, sorted by id.
    pub entities: Vec<EntityId>,
}

impl Block {
    /// Creates a block, sorting and deduplicating the entity list.
    pub fn new(key: impl Into<String>, mut entities: Vec<EntityId>) -> Self {
        entities.sort_unstable();
        entities.dedup();
        Block {
            key: key.into(),
            entities,
        }
    }

    /// Number of entities in the block, |b|.
    pub fn size(&self) -> usize {
        self.entities.len()
    }

    /// Number of entities that belong to the first source (ids `< split`).
    ///
    /// Because `entities` is sorted this is a binary search.
    pub fn first_source_count(&self, split: usize) -> usize {
        self.entities.partition_point(|e| e.index() < split)
    }

    /// Number of comparisons the block contains, ||b||, including redundant
    /// ones: cross-source products for Clean-Clean ER, `n·(n-1)/2` for Dirty.
    pub fn num_comparisons(&self, kind: DatasetKind, split: usize) -> u64 {
        match kind {
            DatasetKind::CleanClean => {
                let inner = self.first_source_count(split) as u64;
                let outer = self.size() as u64 - inner;
                inner * outer
            }
            DatasetKind::Dirty => {
                let n = self.size() as u64;
                n * n.saturating_sub(1) / 2
            }
        }
    }

    /// True if the block contributes at least one comparison.
    pub fn is_useful(&self, kind: DatasetKind, split: usize) -> bool {
        self.num_comparisons(kind, split) > 0
    }

    /// True if the block contains the given entity (binary search).
    pub fn contains(&self, entity: EntityId) -> bool {
        self.entities.binary_search(&entity).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    #[test]
    fn new_sorts_and_dedups() {
        let b = Block::new("apple", ids(&[3, 1, 3, 2]));
        assert_eq!(b.entities, ids(&[1, 2, 3]));
        assert_eq!(b.size(), 3);
    }

    #[test]
    fn clean_clean_comparisons_are_cross_products() {
        // split = 2: entities 0,1 in E1; 2,3,4 in E2.
        let b = Block::new("k", ids(&[0, 1, 2, 3, 4]));
        assert_eq!(b.first_source_count(2), 2);
        assert_eq!(b.num_comparisons(DatasetKind::CleanClean, 2), 2 * 3);
    }

    #[test]
    fn dirty_comparisons_are_triangular() {
        let b = Block::new("k", ids(&[0, 1, 2, 3]));
        assert_eq!(b.num_comparisons(DatasetKind::Dirty, 4), 6);
    }

    #[test]
    fn single_source_block_is_useless_for_clean_clean() {
        let b = Block::new("k", ids(&[0, 1]));
        assert!(!b.is_useful(DatasetKind::CleanClean, 2));
        assert!(b.is_useful(DatasetKind::Dirty, 2));
    }

    #[test]
    fn singleton_block_is_always_useless() {
        let b = Block::new("k", ids(&[5]));
        assert!(!b.is_useful(DatasetKind::CleanClean, 2));
        assert!(!b.is_useful(DatasetKind::Dirty, 10));
    }

    #[test]
    fn contains_uses_sorted_entities() {
        let b = Block::new("k", ids(&[9, 4, 7]));
        assert!(b.contains(EntityId(7)));
        assert!(!b.contains(EntityId(8)));
    }
}
