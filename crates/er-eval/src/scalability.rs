//! Scalability analysis over the synthetic Dirty ER datasets
//! (Figures 17 and 18).

use er_core::Result;
use er_datasets::{dirty_catalog, generate_dirty, CatalogOptions};
use er_features::FeatureSet;
use er_learn::LogisticRegressionConfig;
use meta_blocking::pipeline::ClassifierKind;
use meta_blocking::pruning::AlgorithmKind;
use serde::{Deserialize, Serialize};

use crate::experiment::{run_averaged, PreparedDataset, RunConfig};
use crate::metrics::Effectiveness;

/// One point of the scalability analysis: one algorithm on one Dirty ER
/// dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalabilityPoint {
    /// Dataset name (D10K … D300K).
    pub dataset: String,
    /// Number of entity profiles.
    pub num_entities: usize,
    /// Number of candidate pairs, |C|.
    pub num_candidates: usize,
    /// Algorithm evaluated.
    pub algorithm: AlgorithmKind,
    /// Mean effectiveness.
    pub effectiveness: Effectiveness,
    /// Mean run-time in seconds.
    pub rt_seconds: f64,
}

/// The speedup measure of Figure 18: given the smallest workload
/// `(candidates_small, rt_small)` and a larger one, values close to 1 indicate
/// linear scalability.
pub fn speedup(
    candidates_small: usize,
    rt_small_seconds: f64,
    candidates_large: usize,
    rt_large_seconds: f64,
) -> f64 {
    if candidates_small == 0 || rt_large_seconds <= 0.0 {
        return 0.0;
    }
    (candidates_large as f64 / candidates_small as f64) * (rt_small_seconds / rt_large_seconds)
}

/// The configuration used by the paper's scalability analysis: logistic
/// regression, 25 labelled instances per class, and the optimal feature set of
/// the evaluated algorithm.
pub fn scalability_run_config(algorithm: AlgorithmKind, seed: u64) -> RunConfig {
    let feature_set = match algorithm {
        AlgorithmKind::Rcnp | AlgorithmKind::Cnp => FeatureSet::rcnp_optimal(),
        AlgorithmKind::Bcl | AlgorithmKind::Cep => FeatureSet::original(),
        _ => FeatureSet::blast_optimal(),
    };
    RunConfig {
        feature_set,
        per_class: 25,
        classifier: ClassifierKind::Logistic(LogisticRegressionConfig::default()),
        blast_ratio: meta_blocking::pruning::Blast::DEFAULT_RATIO,
        seed,
    }
}

/// Runs the scalability analysis for a set of algorithms over the Dirty ER
/// catalog, averaging `repetitions` runs per point.
pub fn run_scalability(
    options: &CatalogOptions,
    algorithms: &[AlgorithmKind],
    repetitions: usize,
) -> Result<Vec<ScalabilityPoint>> {
    let mut points = Vec::new();
    for config in dirty_catalog(options) {
        let dataset = generate_dirty(&config)?;
        let num_entities = dataset.num_entities();
        let prepared = PreparedDataset::prepare(dataset)?;
        for &algorithm in algorithms {
            let run_config = scalability_run_config(algorithm, 0xd1_47 + algorithm as u64);
            let result = run_averaged(&prepared, algorithm, &run_config, repetitions)?;
            points.push(ScalabilityPoint {
                dataset: config.name.clone(),
                num_entities,
                num_candidates: prepared.num_candidates(),
                algorithm,
                effectiveness: result.effectiveness,
                rt_seconds: result.mean_rt_seconds,
            });
        }
    }
    Ok(points)
}

/// Computes the speedup series of one algorithm relative to its smallest
/// dataset (the D10K analogue), preserving input order.
pub fn speedup_series(points: &[ScalabilityPoint], algorithm: AlgorithmKind) -> Vec<(String, f64)> {
    let series: Vec<&ScalabilityPoint> =
        points.iter().filter(|p| p.algorithm == algorithm).collect();
    let Some(base) = series.first() else {
        return Vec::new();
    };
    series
        .iter()
        .skip(1)
        .map(|p| {
            (
                p.dataset.clone(),
                speedup(
                    base.num_candidates,
                    base.rt_seconds,
                    p.num_candidates,
                    p.rt_seconds,
                ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_is_one_for_linear_scaling() {
        assert!((speedup(100, 1.0, 1000, 10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_below_one_for_superlinear_runtime() {
        assert!(speedup(100, 1.0, 1000, 20.0) < 1.0);
    }

    #[test]
    fn speedup_handles_degenerate_inputs() {
        assert_eq!(speedup(0, 1.0, 10, 1.0), 0.0);
        assert_eq!(speedup(10, 1.0, 10, 0.0), 0.0);
    }

    #[test]
    fn scalability_config_uses_logistic_regression_and_25_per_class() {
        let config = scalability_run_config(AlgorithmKind::Blast, 1);
        assert_eq!(config.per_class, 25);
        assert_eq!(config.classifier.name(), "LogisticRegression");
        assert_eq!(config.feature_set, FeatureSet::blast_optimal());
        let rcnp = scalability_run_config(AlgorithmKind::Rcnp, 1);
        assert_eq!(rcnp.feature_set, FeatureSet::rcnp_optimal());
    }

    #[test]
    fn tiny_scalability_run_produces_points_for_each_dataset_and_algorithm() {
        let options = CatalogOptions {
            dirty_scale: 0.004,
            ..CatalogOptions::tiny()
        };
        let algorithms = [AlgorithmKind::Blast, AlgorithmKind::Bcl];
        let points = run_scalability(&options, &algorithms, 1).unwrap();
        assert_eq!(points.len(), 5 * algorithms.len());
        for p in &points {
            assert!(p.num_candidates > 0);
            assert!(
                p.effectiveness.recall > 0.0,
                "{}: {}",
                p.dataset,
                p.effectiveness
            );
        }
        let series = speedup_series(&points, AlgorithmKind::Blast);
        assert_eq!(series.len(), 4);
    }

    #[test]
    fn speedup_series_empty_for_missing_algorithm() {
        assert!(speedup_series(&[], AlgorithmKind::Cnp).is_empty());
    }
}
