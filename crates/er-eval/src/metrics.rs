//! Effectiveness measures.
//!
//! Following the paper: recall (a.k.a. pairs completeness) is the portion of
//! true duplicates retained, precision (a.k.a. pairs quality) is the portion
//! of retained pairs that are duplicates, and F1 is their harmonic mean.

use er_core::{EntityId, GroundTruth};
use serde::{Deserialize, Serialize};

/// Recall, precision and F-measure of a set of retained candidate pairs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Effectiveness {
    /// |TP| / |D|.
    pub recall: f64,
    /// |TP| / (|TP| + |FP|).
    pub precision: f64,
    /// Harmonic mean of recall and precision.
    pub f1: f64,
}

impl Effectiveness {
    /// Builds the measures from raw counts.
    pub fn from_counts(true_positives: usize, retained: usize, num_duplicates: usize) -> Self {
        let recall = if num_duplicates > 0 {
            true_positives as f64 / num_duplicates as f64
        } else {
            0.0
        };
        let precision = if retained > 0 {
            true_positives as f64 / retained as f64
        } else {
            0.0
        };
        let f1 = if recall + precision > 0.0 {
            2.0 * recall * precision / (recall + precision)
        } else {
            0.0
        };
        Effectiveness {
            recall,
            precision,
            f1,
        }
    }

    /// Evaluates a list of retained pairs against the ground truth.
    ///
    /// `num_duplicates` is |D|, the number of duplicates in the ground truth
    /// (which may exceed the number of duplicates that survived blocking).
    pub fn evaluate(
        retained: &[(EntityId, EntityId)],
        truth: &GroundTruth,
        num_duplicates: usize,
    ) -> Self {
        let true_positives = retained
            .iter()
            .filter(|&&(a, b)| truth.is_match(a, b))
            .count();
        Effectiveness::from_counts(true_positives, retained.len(), num_duplicates)
    }

    /// Element-wise average of several measurements (used for the 10-run
    /// averages the paper reports).
    pub fn mean(results: &[Effectiveness]) -> Self {
        if results.is_empty() {
            return Effectiveness::default();
        }
        let n = results.len() as f64;
        Effectiveness {
            recall: results.iter().map(|r| r.recall).sum::<f64>() / n,
            precision: results.iter().map(|r| r.precision).sum::<f64>() / n,
            f1: results.iter().map(|r| r.f1).sum::<f64>() / n,
        }
    }
}

impl std::fmt::Display for Effectiveness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Re={:.4} Pr={:.4} F1={:.4}",
            self.recall, self.precision, self.f1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_translate_to_measures() {
        let eff = Effectiveness::from_counts(8, 20, 10);
        assert!((eff.recall - 0.8).abs() < 1e-12);
        assert!((eff.precision - 0.4).abs() < 1e-12);
        let expected_f1 = 2.0 * 0.8 * 0.4 / 1.2;
        assert!((eff.f1 - expected_f1).abs() < 1e-12);
    }

    #[test]
    fn empty_retained_set_gives_zero() {
        let eff = Effectiveness::from_counts(0, 0, 10);
        assert_eq!(eff, Effectiveness::default());
    }

    #[test]
    fn evaluate_counts_true_positives() {
        let truth = GroundTruth::from_pairs(vec![
            (EntityId(0), EntityId(10)),
            (EntityId(1), EntityId(11)),
            (EntityId(2), EntityId(12)),
        ]);
        let retained = vec![
            (EntityId(0), EntityId(10)),
            (EntityId(5), EntityId(11)),
            (EntityId(11), EntityId(1)), // reversed order still counts
        ];
        let eff = Effectiveness::evaluate(&retained, &truth, 3);
        assert!((eff.recall - 2.0 / 3.0).abs() < 1e-12);
        assert!((eff.precision - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_retention() {
        let truth = GroundTruth::from_pairs(vec![(EntityId(0), EntityId(1))]);
        let eff = Effectiveness::evaluate(&[(EntityId(0), EntityId(1))], &truth, 1);
        assert_eq!(eff.recall, 1.0);
        assert_eq!(eff.precision, 1.0);
        assert_eq!(eff.f1, 1.0);
    }

    #[test]
    fn mean_averages_componentwise() {
        let a = Effectiveness {
            recall: 0.8,
            precision: 0.2,
            f1: 0.32,
        };
        let b = Effectiveness {
            recall: 0.6,
            precision: 0.4,
            f1: 0.48,
        };
        let mean = Effectiveness::mean(&[a, b]);
        assert!((mean.recall - 0.7).abs() < 1e-12);
        assert!((mean.precision - 0.3).abs() < 1e-12);
        assert!((mean.f1 - 0.4).abs() < 1e-12);
        assert_eq!(Effectiveness::mean(&[]), Effectiveness::default());
    }

    #[test]
    fn display_is_compact() {
        let eff = Effectiveness::from_counts(1, 2, 4);
        assert_eq!(eff.to_string(), "Re=0.2500 Pr=0.5000 F1=0.3333");
    }
}
