//! Evaluation harness: metrics, experiment runners and the building blocks
//! used to regenerate every table and figure of the paper.
//!
//! * [`metrics`] — recall (pairs completeness), precision (pairs quality), F1;
//! * [`experiment`] — prepared datasets (blocking done once) and averaged
//!   experiment runs with run-time accounting;
//! * [`tables`] — per-dataset result rows and plain-text table rendering;
//! * [`report`] — probability histograms (Figure 12/13) and common-block
//!   distributions (Figures 15/16);
//! * [`scalability`] — the Dirty ER scalability workflow and the speedup
//!   measure of Figure 18.

pub mod experiment;
pub mod metrics;
pub mod report;
pub mod scalability;
pub mod tables;

pub use experiment::{run_streamed, AveragedResult, PreparedDataset, RunConfig, RunResult};
pub use metrics::Effectiveness;
pub use scalability::{speedup, ScalabilityPoint};
pub use tables::TableRow;
