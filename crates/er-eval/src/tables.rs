//! Result rows and plain-text table rendering.
//!
//! The benchmark binaries print their output in the same shape as the paper's
//! tables (one row per dataset with recall, precision, F1 and run-time), so
//! `EXPERIMENTS.md` can be filled by copy-pasting the bench output.

use serde::{Deserialize, Serialize};

use crate::metrics::Effectiveness;

/// One row of a results table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableRow {
    /// Row label (usually a dataset name).
    pub label: String,
    /// Effectiveness measures.
    pub effectiveness: Effectiveness,
    /// Run-time in seconds, if measured.
    pub rt_seconds: Option<f64>,
    /// Extra free-form columns (e.g. |C|, retained pairs).
    pub extras: Vec<(String, String)>,
}

impl TableRow {
    /// Creates a row with no extras.
    pub fn new(label: impl Into<String>, effectiveness: Effectiveness) -> Self {
        TableRow {
            label: label.into(),
            effectiveness,
            rt_seconds: None,
            extras: Vec::new(),
        }
    }

    /// Sets the run-time column.
    pub fn with_rt(mut self, seconds: f64) -> Self {
        self.rt_seconds = Some(seconds);
        self
    }

    /// Adds an extra column.
    pub fn with_extra(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.extras.push((key.into(), value.into()));
        self
    }
}

/// Renders rows as an aligned plain-text table.
pub fn render_table(title: &str, rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');

    let mut extra_keys: Vec<String> = Vec::new();
    for row in rows {
        for (key, _) in &row.extras {
            if !extra_keys.contains(key) {
                extra_keys.push(key.clone());
            }
        }
    }

    let label_width = rows
        .iter()
        .map(|r| r.label.len())
        .chain(std::iter::once("dataset".len()))
        .max()
        .unwrap_or(8);

    let mut header = format!(
        "{:<label_width$}  {:>8}  {:>10}  {:>8}  {:>9}",
        "dataset", "recall", "precision", "F1", "RT(s)"
    );
    for key in &extra_keys {
        header.push_str(&format!("  {key:>12}"));
    }
    out.push_str(&header);
    out.push('\n');
    out.push_str(&"-".repeat(header.len()));
    out.push('\n');

    for row in rows {
        let rt = row
            .rt_seconds
            .map(|s| format!("{s:9.3}"))
            .unwrap_or_else(|| format!("{:>9}", "-"));
        let mut line = format!(
            "{:<label_width$}  {:>8.4}  {:>10.4}  {:>8.4}  {rt}",
            row.label, row.effectiveness.recall, row.effectiveness.precision, row.effectiveness.f1
        );
        for key in &extra_keys {
            let value = row
                .extras
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str())
                .unwrap_or("-");
            line.push_str(&format!("  {value:>12}"));
        }
        out.push_str(&line);
        out.push('\n');
    }

    // Average row, as the paper reports averages across datasets.
    if rows.len() > 1 {
        let mean = Effectiveness::mean(&rows.iter().map(|r| r.effectiveness).collect::<Vec<_>>());
        let mean_rt: Vec<f64> = rows.iter().filter_map(|r| r.rt_seconds).collect();
        let rt = if mean_rt.is_empty() {
            format!("{:>9}", "-")
        } else {
            format!("{:9.3}", mean_rt.iter().sum::<f64>() / mean_rt.len() as f64)
        };
        out.push_str(&format!(
            "{:<label_width$}  {:>8.4}  {:>10.4}  {:>8.4}  {rt}\n",
            "AVERAGE", mean.recall, mean.precision, mean.f1
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eff(recall: f64, precision: f64) -> Effectiveness {
        Effectiveness {
            recall,
            precision,
            f1: if recall + precision > 0.0 {
                2.0 * recall * precision / (recall + precision)
            } else {
                0.0
            },
        }
    }

    #[test]
    fn renders_header_rows_and_average() {
        let rows = vec![
            TableRow::new("AbtBuy", eff(0.9, 0.1)).with_rt(1.5),
            TableRow::new("DblpAcm", eff(0.99, 0.5)).with_rt(2.0),
        ];
        let text = render_table("Table X", &rows);
        assert!(text.contains("Table X"));
        assert!(text.contains("AbtBuy"));
        assert!(text.contains("DblpAcm"));
        assert!(text.contains("AVERAGE"));
        assert!(text.contains("recall"));
    }

    #[test]
    fn extras_render_as_additional_columns() {
        let rows = vec![TableRow::new("Movies", eff(0.8, 0.2)).with_extra("|C|", "12345")];
        let text = render_table("t", &rows);
        assert!(text.contains("|C|"));
        assert!(text.contains("12345"));
    }

    #[test]
    fn missing_rt_renders_dash() {
        let rows = vec![TableRow::new("X", eff(0.5, 0.5))];
        let text = render_table("t", &rows);
        assert!(text.contains('-'));
    }

    #[test]
    fn single_row_has_no_average() {
        let rows = vec![TableRow::new("X", eff(0.5, 0.5))];
        let text = render_table("t", &rows);
        assert!(!text.contains("AVERAGE"));
    }
}
