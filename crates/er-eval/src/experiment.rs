//! Experiment runners.
//!
//! A [`PreparedDataset`] performs the blocking workflow once; every experiment
//! (algorithm comparison, feature selection, training-size sweep, …) then runs
//! on top of it.  [`run_once`] mirrors the paper's run-time definition
//! (features + training + scoring + pruning); [`run_averaged`] repeats the
//! training/scoring/pruning part with different sampling seeds and averages
//! the effectiveness, exactly like the paper's 10-run averages.

use std::time::{Duration, Instant};

use er_blocking::{
    standard_blocking_workflow_csr, BlockStats, CandidatePairs, CandidateStream, CsrBlockCollection,
};
use er_core::{Dataset, PairId, Result};
use er_features::{
    FeatureContext, FeatureMatrix, FeatureSet, ScoreboardConfig, StreamFeatureContext,
};
use er_learn::{balanced_undersample, TrainingSet};
use meta_blocking::pipeline::ClassifierKind;
use meta_blocking::pruning::{AlgorithmKind, Blast};
use meta_blocking::scoring::CachedScores;
use serde::{Deserialize, Serialize};

use crate::metrics::Effectiveness;

/// A dataset together with its (already computed) blocking output.
pub struct PreparedDataset {
    /// The generated dataset.
    pub dataset: Dataset,
    /// The block collection after Token Blocking, Purging and Filtering, in
    /// the CSR representation every experiment consumes directly (use
    /// [`CsrBlockCollection::to_block_collection`] for the nested view).
    pub blocks: CsrBlockCollection,
    /// Pre-computed block statistics.
    pub stats: BlockStats,
    /// The distinct candidate pairs.
    pub candidates: CandidatePairs,
    /// Wall-clock time of the blocking workflow.
    pub blocking_time: Duration,
}

impl PreparedDataset {
    /// Runs the standard blocking workflow on a dataset through the parallel
    /// CSR engine; statistics, candidates and the retained block collection
    /// all stay in the CSR representation — no nested `Vec<Block>` view is
    /// materialised.
    pub fn prepare(dataset: Dataset) -> Result<Self> {
        let threads = er_core::available_threads();
        let start = Instant::now();
        let csr = standard_blocking_workflow_csr(&dataset, threads);
        let blocking_time = start.elapsed();
        if csr.is_empty() {
            return Err(er_core::Error::EmptyInput(format!(
                "dataset {} produced no blocks",
                dataset.name
            )));
        }
        let stats = BlockStats::from_csr(&csr);
        let candidates = CandidatePairs::try_from_stats(&stats, threads)?;
        if candidates.is_empty() {
            return Err(er_core::Error::EmptyInput(format!(
                "dataset {} produced no candidate pairs",
                dataset.name
            )));
        }
        Ok(PreparedDataset {
            dataset,
            blocks: csr,
            stats,
            candidates,
            blocking_time,
        })
    }

    /// Number of candidate pairs, |C|.
    pub fn num_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// The effectiveness of the *input* block collection (Table 2): every
    /// candidate pair is "retained".
    pub fn block_quality(&self) -> Effectiveness {
        let positives = self.candidates.count_positives(&self.dataset.ground_truth);
        Effectiveness::from_counts(
            positives,
            self.candidates.len(),
            self.dataset.num_duplicates(),
        )
    }

    /// Builds the feature context for this dataset.
    pub fn context(&self) -> FeatureContext<'_> {
        FeatureContext::new(&self.stats, &self.candidates)
    }

    /// Builds (and times) the feature matrix for a feature set.
    pub fn build_features(&self, set: FeatureSet) -> (FeatureMatrix, Duration) {
        let start = Instant::now();
        let context = self.context();
        let matrix = FeatureMatrix::build_parallel(&context, set);
        (matrix, start.elapsed())
    }

    /// Snapshot payload tag of prepared-dataset files.
    pub const SNAPSHOT_TAG: u32 = 0x5052_4550; // "PREP"

    /// The corpus fingerprint stamped on a prepared-dataset snapshot.
    fn fingerprint(dataset: &Dataset) -> u64 {
        let mut w = er_persist::Writer::new();
        w.write_str(&dataset.name);
        er_persist::Encode::encode(&dataset.kind, &mut w);
        w.write_usize(dataset.split);
        w.write_usize(dataset.num_entities());
        er_core::crc64(w.as_bytes())
    }

    /// Saves the dataset and its cleaned block collection to one atomic,
    /// checksummed snapshot file ([`er_persist::snapshot`]).  Statistics
    /// and candidate pairs are *derived* state — [`PreparedDataset::load`]
    /// recomputes them deterministically from the stored CSR, so they are
    /// not duplicated on disk.
    pub fn save(&self, path: &std::path::Path) -> er_core::PersistResult<()> {
        struct Payload<'a>(&'a PreparedDataset);
        impl er_persist::Encode for Payload<'_> {
            fn encode(&self, w: &mut er_persist::Writer) {
                self.0.dataset.encode(w);
                self.0.blocks.encode(w);
                self.0.blocking_time.encode(w);
            }
        }
        er_persist::write_snapshot(
            path,
            Self::SNAPSHOT_TAG,
            Self::fingerprint(&self.dataset),
            &Payload(self),
        )
    }

    /// Loads a snapshot written by [`PreparedDataset::save`], recomputing
    /// block statistics and candidate pairs from the stored CSR (both are
    /// deterministic functions of it, so the loaded value is equivalent to
    /// the saved one in every observable way).
    pub fn load(path: &std::path::Path) -> er_core::PersistResult<Self> {
        struct Payload(Dataset, CsrBlockCollection, Duration);
        impl er_persist::Decode for Payload {
            fn decode(r: &mut er_persist::Reader<'_>) -> er_core::PersistResult<Self> {
                Ok(Payload(
                    Dataset::decode(r)?,
                    CsrBlockCollection::decode(r)?,
                    Duration::decode(r)?,
                ))
            }
        }
        let (Payload(dataset, blocks, blocking_time), fingerprint) =
            er_persist::read_snapshot::<Payload>(path, Self::SNAPSHOT_TAG, None)?;
        let expected = Self::fingerprint(&dataset);
        if fingerprint != expected {
            return Err(er_core::PersistError::FingerprintMismatch {
                expected,
                found: fingerprint,
            });
        }
        let threads = er_core::available_threads();
        let stats = BlockStats::from_csr(&blocks);
        let candidates = CandidatePairs::try_from_stats(&stats, threads)
            .map_err(|err| er_core::PersistError::Corrupt(err.to_string()))?;
        Ok(PreparedDataset {
            dataset,
            blocks,
            stats,
            candidates,
            blocking_time,
        })
    }
}

/// Configuration of a single experiment run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunConfig {
    /// The weighting schemes used as features.
    pub feature_set: FeatureSet,
    /// Labelled instances per class.
    pub per_class: usize,
    /// The classifier to train.
    pub classifier: ClassifierKind,
    /// BLAST's pruning ratio.
    pub blast_ratio: f64,
    /// Base seed for training-pair sampling.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            feature_set: FeatureSet::original(),
            per_class: 250,
            classifier: ClassifierKind::default(),
            blast_ratio: Blast::DEFAULT_RATIO,
            seed: 0xe7a1_0001,
        }
    }
}

impl RunConfig {
    /// The paper's final configuration: 50 labelled instances (25 per class).
    pub fn final_configuration(feature_set: FeatureSet) -> Self {
        RunConfig {
            feature_set,
            per_class: 25,
            ..Default::default()
        }
    }
}

/// The result of a single run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Effectiveness of the retained pairs.
    pub effectiveness: Effectiveness,
    /// Number of retained pairs.
    pub retained: usize,
    /// Feature-generation time (zero when a cached matrix was supplied).
    pub feature_time: Duration,
    /// Training time (sampling + fitting).
    pub training_time: Duration,
    /// Scoring time (probability of every candidate pair).
    pub scoring_time: Duration,
    /// Pruning time.
    pub pruning_time: Duration,
}

impl RunResult {
    /// The paper's `RT` for this run.
    pub fn total_rt(&self) -> Duration {
        self.feature_time + self.training_time + self.scoring_time + self.pruning_time
    }
}

/// An averaged experiment result over several sampling seeds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AveragedResult {
    /// The algorithm evaluated.
    pub algorithm: AlgorithmKind,
    /// Dataset name.
    pub dataset: String,
    /// Mean effectiveness across repetitions.
    pub effectiveness: Effectiveness,
    /// Per-repetition effectiveness.
    pub per_run: Vec<Effectiveness>,
    /// Mean `RT` in seconds (features counted once).
    pub mean_rt_seconds: f64,
    /// Mean number of retained pairs.
    pub mean_retained: f64,
}

/// The per-class training-set size actually used for a prepared dataset:
/// the requested size, capped at half the positive (and negative) candidate
/// pairs so that scaled-down dataset analogues never exhaust a class.
pub fn effective_per_class(prepared: &PreparedDataset, requested: usize) -> usize {
    let positives = prepared
        .candidates
        .count_positives(&prepared.dataset.ground_truth);
    let negatives = prepared.candidates.len().saturating_sub(positives);
    requested
        .min((positives / 2).max(1))
        .min((negatives / 2).max(1))
}

/// Scores every candidate pair with a model trained on a balanced sample and
/// returns the cached probabilities plus the training/scoring times.
///
/// The requested `per_class` is capped via [`effective_per_class`] so that
/// experiments keep running on small dataset analogues.
pub fn train_and_score(
    prepared: &PreparedDataset,
    matrix: &FeatureMatrix,
    config: &RunConfig,
    seed: u64,
) -> Result<(CachedScores, Duration, Duration)> {
    let training_start = Instant::now();
    let mut rng = er_core::seeded_rng(seed);
    let sample = balanced_undersample(
        prepared.candidates.pairs(),
        &prepared.dataset.ground_truth,
        effective_per_class(prepared, config.per_class),
        &mut rng,
    )?;
    let mut training = TrainingSet::new();
    for (&pair_index, &label) in sample.pair_indices.iter().zip(&sample.labels) {
        training.push(matrix.row(PairId::from(pair_index)).to_vec(), label);
    }
    let model = config.classifier.fit(&training)?;
    let training_time = training_start.elapsed();

    let scoring_start = Instant::now();
    let probabilities: Vec<f64> = (0..matrix.num_pairs())
        .map(|i| {
            model
                .probability(matrix.row(PairId::from(i)))
                .clamp(0.0, 1.0)
        })
        .collect();
    let scores = CachedScores::new(probabilities);
    let scoring_time = scoring_start.elapsed();
    Ok((scores, training_time, scoring_time))
}

/// Runs one algorithm once on a prepared dataset with a pre-built feature
/// matrix.
pub fn run_with_matrix(
    prepared: &PreparedDataset,
    matrix: &FeatureMatrix,
    feature_time: Duration,
    algorithm: AlgorithmKind,
    config: &RunConfig,
    seed: u64,
) -> Result<RunResult> {
    let (scores, training_time, scoring_time) = train_and_score(prepared, matrix, config, seed)?;

    let pruning_start = Instant::now();
    let pruner = algorithm.build_with_csr(&prepared.blocks, config.blast_ratio);
    let retained = pruner.prune(&prepared.candidates, &scores);
    let pruning_time = pruning_start.elapsed();

    let retained_pairs: Vec<_> = retained
        .iter()
        .map(|&id| prepared.candidates.pair(id))
        .collect();
    let effectiveness = Effectiveness::evaluate(
        &retained_pairs,
        &prepared.dataset.ground_truth,
        prepared.dataset.num_duplicates(),
    );

    Ok(RunResult {
        effectiveness,
        retained: retained.len(),
        feature_time,
        training_time,
        scoring_time,
        pruning_time,
    })
}

/// Runs one algorithm once without ever materialising the feature matrix:
/// the sampled training rows are derived pair-by-pair and every candidate is
/// scored through the chunked [`CandidateStream`] walk, so peak feature state
/// is `O(threads × chunk_pairs)` rows instead of `O(|C|)` rows.
///
/// With the same seed the retained set is identical to
/// [`run_once`]'s — the streamed pass is bit-identical to the batch pass —
/// only the time breakdown differs (`feature_time` is folded into
/// `scoring_time` because features are never stored).
pub fn run_streamed(
    prepared: &PreparedDataset,
    algorithm: AlgorithmKind,
    config: &RunConfig,
    chunk_pairs: usize,
) -> Result<RunResult> {
    let threads = er_core::available_threads();
    let set = config.feature_set;

    let training_start = Instant::now();
    let mut rng = er_core::seeded_rng(config.seed);
    let sample = balanced_undersample(
        prepared.candidates.pairs(),
        &prepared.dataset.ground_truth,
        effective_per_class(prepared, config.per_class),
        &mut rng,
    )?;
    let context = prepared.context();
    let mut training = TrainingSet::new();
    let mut row = vec![0.0f64; set.vector_len()];
    for (&pair_index, &label) in sample.pair_indices.iter().zip(&sample.labels) {
        let (a, b) = prepared.candidates.pair(PairId::from(pair_index));
        context.write_pair_features(a, b, set, &mut row);
        training.push(row.clone(), label);
    }
    let model = config.classifier.fit(&training)?;
    let training_time = training_start.elapsed();

    let scoring_start = Instant::now();
    let stream = CandidateStream::from_stats(&prepared.stats, threads);
    let stream_context = StreamFeatureContext::new(&prepared.stats, stream.lcp_table());
    let probabilities = FeatureMatrix::score_stream_with(
        &stream_context,
        &stream,
        set,
        threads,
        &ScoreboardConfig::default(),
        chunk_pairs.max(1),
        |row| model.probability(row).clamp(0.0, 1.0),
    );
    let scores = CachedScores::new(probabilities);
    let scoring_time = scoring_start.elapsed();

    let pruning_start = Instant::now();
    let pruner = algorithm.build_with_csr(&prepared.blocks, config.blast_ratio);
    let retained = pruner.prune(&prepared.candidates, &scores);
    let pruning_time = pruning_start.elapsed();

    let retained_pairs: Vec<_> = retained
        .iter()
        .map(|&id| prepared.candidates.pair(id))
        .collect();
    let effectiveness = Effectiveness::evaluate(
        &retained_pairs,
        &prepared.dataset.ground_truth,
        prepared.dataset.num_duplicates(),
    );

    Ok(RunResult {
        effectiveness,
        retained: retained.len(),
        feature_time: Duration::ZERO,
        training_time,
        scoring_time,
        pruning_time,
    })
}

/// Runs one algorithm once, building the feature matrix as part of the run
/// (matches the paper's definition of `RT`).
pub fn run_once(
    prepared: &PreparedDataset,
    algorithm: AlgorithmKind,
    config: &RunConfig,
) -> Result<RunResult> {
    let (matrix, feature_time) = prepared.build_features(config.feature_set);
    run_with_matrix(
        prepared,
        &matrix,
        feature_time,
        algorithm,
        config,
        config.seed,
    )
}

/// Runs one algorithm `repetitions` times with different sampling seeds and
/// averages the results.  The feature matrix is built once and its
/// construction time is included in the reported mean `RT`.
pub fn run_averaged(
    prepared: &PreparedDataset,
    algorithm: AlgorithmKind,
    config: &RunConfig,
    repetitions: usize,
) -> Result<AveragedResult> {
    let repetitions = repetitions.max(1);
    let (matrix, feature_time) = prepared.build_features(config.feature_set);
    let mut per_run = Vec::with_capacity(repetitions);
    let mut rt_sum = 0.0f64;
    let mut retained_sum = 0.0f64;
    for rep in 0..repetitions {
        let seed = er_core::rng::derive_seed(config.seed, rep as u64);
        let result = run_with_matrix(prepared, &matrix, feature_time, algorithm, config, seed)?;
        rt_sum += result.total_rt().as_secs_f64();
        retained_sum += result.retained as f64;
        per_run.push(result.effectiveness);
    }
    Ok(AveragedResult {
        algorithm,
        dataset: prepared.dataset.name.clone(),
        effectiveness: Effectiveness::mean(&per_run),
        per_run,
        mean_rt_seconds: rt_sum / repetitions as f64,
        mean_retained: retained_sum / repetitions as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_datasets::{generate_catalog_dataset, CatalogOptions, DatasetName};

    fn prepared() -> PreparedDataset {
        let dataset =
            generate_catalog_dataset(DatasetName::DblpAcm, &CatalogOptions::tiny()).unwrap();
        PreparedDataset::prepare(dataset).unwrap()
    }

    #[test]
    fn prepared_dataset_has_candidates_and_quality() {
        let prepared = prepared();
        assert!(prepared.num_candidates() > 0);
        let quality = prepared.block_quality();
        // The input block collection must be recall-oriented and imprecise.
        assert!(quality.recall > 0.5, "blocking recall too low: {quality}");
        assert!(
            quality.precision < 0.5,
            "blocking precision suspicious: {quality}"
        );
    }

    #[test]
    fn run_once_produces_sane_results() {
        let prepared = prepared();
        let config = RunConfig {
            per_class: 20,
            ..Default::default()
        };
        let result = run_once(&prepared, AlgorithmKind::Blast, &config).unwrap();
        assert!(result.retained > 0);
        assert!(result.effectiveness.recall > 0.0);
        assert!(result.total_rt() > Duration::ZERO);
    }

    #[test]
    fn averaged_runs_are_deterministic_given_seed() {
        let prepared = prepared();
        let config = RunConfig {
            per_class: 15,
            ..Default::default()
        };
        let a = run_averaged(&prepared, AlgorithmKind::Rcnp, &config, 3).unwrap();
        let b = run_averaged(&prepared, AlgorithmKind::Rcnp, &config, 3).unwrap();
        assert_eq!(a.effectiveness, b.effectiveness);
        assert_eq!(a.per_run.len(), 3);
    }

    #[test]
    fn streamed_run_matches_the_materialised_run() {
        let prepared = prepared();
        let config = RunConfig {
            per_class: 20,
            ..Default::default()
        };
        for algorithm in [AlgorithmKind::Blast, AlgorithmKind::Rcnp] {
            let batch = run_once(&prepared, algorithm, &config).unwrap();
            for chunk_pairs in [7usize, er_blocking::DEFAULT_CHUNK_PAIRS] {
                let streamed = run_streamed(&prepared, algorithm, &config, chunk_pairs).unwrap();
                assert_eq!(streamed.retained, batch.retained, "{algorithm}");
                assert_eq!(streamed.effectiveness, batch.effectiveness, "{algorithm}");
            }
        }
    }

    #[test]
    fn pruning_improves_precision_over_input_blocks() {
        let prepared = prepared();
        let config = RunConfig {
            per_class: 20,
            ..Default::default()
        };
        let result = run_once(&prepared, AlgorithmKind::Bcl, &config).unwrap();
        let input_quality = prepared.block_quality();
        assert!(
            result.effectiveness.precision > input_quality.precision,
            "meta-blocking must raise precision: {} vs {}",
            result.effectiveness.precision,
            input_quality.precision
        );
    }

    #[test]
    fn oversized_training_requests_are_capped() {
        let prepared = prepared();
        let positives = prepared
            .candidates
            .count_positives(&prepared.dataset.ground_truth);
        let capped = effective_per_class(&prepared, 1_000_000);
        assert!(capped <= (positives / 2).max(1));
        assert!(capped >= 1);
        // And the capped run actually succeeds.
        let config = RunConfig {
            per_class: 1_000_000,
            ..Default::default()
        };
        let result = run_once(&prepared, AlgorithmKind::Bcl, &config).unwrap();
        assert!(result.retained > 0);
    }

    #[test]
    fn final_configuration_uses_25_per_class() {
        let config = RunConfig::final_configuration(FeatureSet::blast_optimal());
        assert_eq!(config.per_class, 25);
        assert_eq!(config.feature_set, FeatureSet::blast_optimal());
    }

    #[test]
    fn prepared_dataset_saves_and_loads_equivalently() {
        let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp/prepared-save-load");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("prepared.gsmb");

        let original = prepared();
        original.save(&path).unwrap();
        let loaded = PreparedDataset::load(&path).unwrap();

        assert_eq!(loaded.dataset.name, original.dataset.name);
        assert_eq!(loaded.dataset.profiles, original.dataset.profiles);
        assert_eq!(
            loaded.dataset.ground_truth.pairs(),
            original.dataset.ground_truth.pairs()
        );
        assert_eq!(
            loaded.blocks.to_block_collection().blocks,
            original.blocks.to_block_collection().blocks
        );
        // Derived state recomputes identically from the stored CSR.
        assert_eq!(loaded.candidates.pairs(), original.candidates.pairs());
        assert_eq!(loaded.num_candidates(), original.num_candidates());
        assert_eq!(loaded.blocking_time, original.blocking_time);
        // A loaded dataset drives the experiment harness exactly like the
        // freshly prepared one (same seed → same retained set).
        let config = RunConfig::default();
        let a = run_once(&original, AlgorithmKind::Blast, &config).unwrap();
        let b = run_once(&loaded, AlgorithmKind::Blast, &config).unwrap();
        assert_eq!(a.retained, b.retained);
        assert_eq!(a.effectiveness.recall, b.effectiveness.recall);

        // A flipped byte surfaces as a typed error.
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() / 3;
        bytes[at] ^= 0x08;
        std::fs::write(&path, &bytes).unwrap();
        let err = match PreparedDataset::load(&path) {
            Err(err) => err,
            Ok(_) => panic!("corrupt snapshot loaded successfully"),
        };
        assert!(
            matches!(
                err,
                er_core::PersistError::ChecksumMismatch { .. }
                    | er_core::PersistError::Truncated { .. }
            ),
            "{err:?}"
        );
    }
}
