//! Distribution reports: the histograms behind Figures 12, 13, 15 and 16.

use er_core::GroundTruth;
use meta_blocking::scoring::CachedScores;
use serde::{Deserialize, Serialize};

use crate::experiment::PreparedDataset;

/// Histogram of matching probabilities, split by pair class (Figure 12).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProbabilityHistogram {
    /// Number of equal-width bins over [0, 1].
    pub num_bins: usize,
    /// Counts of duplicate (matching) pairs per bin.
    pub matching: Vec<usize>,
    /// Counts of non-matching pairs per bin.
    pub non_matching: Vec<usize>,
}

impl ProbabilityHistogram {
    /// Builds the histogram from the scored candidate pairs of a prepared
    /// dataset.
    pub fn build(
        prepared: &PreparedDataset,
        scores: &CachedScores,
        num_bins: usize,
    ) -> ProbabilityHistogram {
        let num_bins = num_bins.max(1);
        let mut matching = vec![0usize; num_bins];
        let mut non_matching = vec![0usize; num_bins];
        let truth: &GroundTruth = &prepared.dataset.ground_truth;
        for ((id, a, b), &p) in prepared.candidates.iter().zip(scores.as_slice()) {
            let _ = id;
            let bin = ((p * num_bins as f64) as usize).min(num_bins - 1);
            if truth.is_match(a, b) {
                matching[bin] += 1;
            } else {
                non_matching[bin] += 1;
            }
        }
        ProbabilityHistogram {
            num_bins,
            matching,
            non_matching,
        }
    }

    /// The mean probability of one class (`true` = matching pairs), computed
    /// from bin centres.
    pub fn mean_probability(&self, matching: bool) -> f64 {
        let counts = if matching {
            &self.matching
        } else {
            &self.non_matching
        };
        let total: usize = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as f64 + 0.5) / self.num_bins as f64 * c as f64)
            .sum::<f64>()
            / total as f64
    }
}

/// Distribution of the number of blocks shared by each duplicate pair
/// (Figures 15 and 16).  Index 0 counts the duplicates sharing *no* block
/// (missed by blocking); index 1 counts those sharing exactly one block
/// (missed by meta-blocking's co-occurrence evidence); and so on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CommonBlockDistribution {
    /// `counts[k]` = number of duplicate pairs sharing exactly `k` blocks.
    pub counts: Vec<usize>,
    /// Total number of duplicate pairs in the ground truth.
    pub total_duplicates: usize,
}

impl CommonBlockDistribution {
    /// Builds the distribution for a prepared dataset.
    pub fn build(prepared: &PreparedDataset) -> CommonBlockDistribution {
        let mut counts: Vec<usize> = Vec::new();
        let truth = &prepared.dataset.ground_truth;
        for &(a, b) in truth.pairs() {
            let common = prepared.stats.common_blocks(a, b);
            if counts.len() <= common {
                counts.resize(common + 1, 0);
            }
            counts[common] += 1;
        }
        CommonBlockDistribution {
            counts,
            total_duplicates: truth.len(),
        }
    }

    /// The portion (in [0,1]) of duplicates sharing exactly `k` blocks.
    pub fn portion(&self, k: usize) -> f64 {
        if self.total_duplicates == 0 {
            return 0.0;
        }
        self.counts.get(k).copied().unwrap_or(0) as f64 / self.total_duplicates as f64
    }

    /// The portion of duplicates sharing at most one block — the quantity the
    /// paper uses to explain which datasets stay below 0.9 recall.
    pub fn portion_at_most_one(&self) -> f64 {
        self.portion(0) + self.portion(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::train_and_score;
    use crate::experiment::{run_once, RunConfig};
    use er_datasets::{generate_catalog_dataset, CatalogOptions, DatasetName};
    use er_features::FeatureSet;
    use meta_blocking::pruning::AlgorithmKind;

    fn prepared() -> PreparedDataset {
        let dataset =
            generate_catalog_dataset(DatasetName::AbtBuy, &CatalogOptions::tiny()).unwrap();
        PreparedDataset::prepare(dataset).unwrap()
    }

    #[test]
    fn probability_histogram_separates_classes() {
        let prepared = prepared();
        let config = RunConfig {
            per_class: 20,
            feature_set: FeatureSet::blast_optimal(),
            ..Default::default()
        };
        let (matrix, _) = prepared.build_features(config.feature_set);
        let (scores, _, _) = train_and_score(&prepared, &matrix, &config, 7).unwrap();
        let histogram = ProbabilityHistogram::build(&prepared, &scores, 20);
        assert_eq!(histogram.matching.len(), 20);
        let total: usize =
            histogram.matching.iter().sum::<usize>() + histogram.non_matching.iter().sum::<usize>();
        assert_eq!(total, prepared.num_candidates());
        // Matching pairs must receive higher probabilities on average.
        assert!(histogram.mean_probability(true) > histogram.mean_probability(false));
    }

    #[test]
    fn common_block_distribution_sums_to_duplicates() {
        let prepared = prepared();
        let distribution = CommonBlockDistribution::build(&prepared);
        assert_eq!(
            distribution.counts.iter().sum::<usize>(),
            distribution.total_duplicates
        );
        let all_portions: f64 = (0..distribution.counts.len())
            .map(|k| distribution.portion(k))
            .sum();
        assert!((all_portions - 1.0).abs() < 1e-9);
        assert!(distribution.portion_at_most_one() <= 1.0);
    }

    #[test]
    fn run_once_smoke_for_report_module() {
        // Ensures the report module composes with the experiment runner.
        let prepared = prepared();
        let config = RunConfig {
            per_class: 20,
            ..Default::default()
        };
        let result = run_once(&prepared, AlgorithmKind::Wnp, &config).unwrap();
        assert!(result.retained > 0);
    }
}
