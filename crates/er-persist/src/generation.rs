//! Generational snapshot stores: graceful degradation for the durability
//! layer.
//!
//! PR 5's single `snapshot.gsmb` had one failure mode: corrupt the file and
//! the state is gone.  A [`GenerationStore`] instead keeps *generations*:
//!
//! ```text
//! dir/
//!   MANIFEST               magic │ version │ fingerprint │ committed gen │ crc
//!   snapshot.000041.gsmb   the committed snapshot
//!   snapshot.000040.gsmb   the previous generation (retained as fallback)
//!   wal.000040.gsmb        mutations appended after snapshot 40
//!   wal.000041.gsmb        mutations appended after snapshot 41 (active)
//!   quarantine/            corrupt files moved aside by recovery
//! ```
//!
//! Every checkpoint *commits a new generation*: write `snapshot.<g+1>`,
//! create `wal.<g+1>`, then atomically rewrite `MANIFEST` to point at
//! `g+1` — the manifest write is the commit point, so a crash anywhere in
//! the sequence leaves the previous generation committed and the
//! half-built one swept away as uncommitted on the next open.  After the
//! commit, retention keeps the two newest snapshot generations (and every
//! WAL a fallback from them could need) and deletes the rest.
//!
//! Recovery walks a **fallback chain**: start at the committed generation;
//! if its snapshot is corrupt, move the bad file to `quarantine/` and fall
//! back to the previous generation, replaying a *longer* WAL chain
//! (`wal.<g>` then `wal.<g+1>` ... up to the committed one) to reach the
//! same logical state.  What happened is recorded in a [`RecoveryReport`]:
//! generations tried, bytes quarantined, records replayed, whether a torn
//! WAL tail was truncated, how many leaked `*.tmp` files were swept.
//!
//! Two failure classes are deliberately **not** degraded around:
//!
//! * a corrupt record in the *middle* of a needed WAL is a fatal
//!   [`PersistError::ChecksumMismatch`] — those records were acknowledged
//!   as durable, and skipping them would be silent data loss;
//! * when every retained snapshot generation is unreadable, the last
//!   error surfaces instead of an empty store.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use er_core::{crc64, PersistError, PersistResult};

use crate::codec::{Encode, Reader, Writer};
use crate::snapshot::{
    read_snapshot_bytes_with, sweep_tmp_files, write_file_atomic, write_snapshot_with,
    FORMAT_VERSION,
};
use crate::vfs::{RetryPolicy, StdVfs, Vfs};
use crate::wal::{read_wal_with, WalWriter, WAL_HEADER_LEN};

/// Magic bytes opening the manifest file.
pub const MANIFEST_MAGIC: [u8; 8] = *b"GSMBMAN1";

/// The manifest file name.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// The quarantine subdirectory recovery moves corrupt files into.
pub const QUARANTINE_DIR: &str = "quarantine";

/// The exclusive lock file guarding commit + retention.  Two checkpointers
/// racing the same directory would interleave snapshot writes, manifest
/// renames and retention deletes; the loser of the `create_new` race gets a
/// typed [`PersistError::Locked`] instead.  A crash while holding the lock
/// leaves the file behind — recovery sweeps it (the crashed holder is gone,
/// its half-commit is uncommitted debris handled by the usual sweep).
pub const LOCK_NAME: &str = "LOCK";

/// Byte length of the manifest (`magic | version | fingerprint | committed
/// generation | crc64 over everything before it`).
pub const MANIFEST_LEN: usize = 8 + 4 + 8 + 8 + 8;

/// How many snapshot generations a commit retains (the committed one plus
/// its fallback).
pub const RETAINED_GENERATIONS: u64 = 2;

/// The snapshot file of generation `generation` inside `dir`.
pub fn snapshot_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snapshot.{generation:06}.gsmb"))
}

/// The write-ahead log of generation `generation` inside `dir`.
pub fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal.{generation:06}.gsmb"))
}

/// The manifest path inside `dir`.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST_NAME)
}

/// The quarantine directory inside `dir`.
pub fn quarantine_path(dir: &Path) -> PathBuf {
    dir.join(QUARANTINE_DIR)
}

/// The exclusive lock file inside `dir`.
pub fn lock_path(dir: &Path) -> PathBuf {
    dir.join(LOCK_NAME)
}

/// A held store lock: created with an exclusive `create_new` (the atomic
/// test-and-set every filesystem offers), removed on drop — including every
/// early-return error path of the operation it guards.
pub(crate) struct StoreLock {
    vfs: Arc<dyn Vfs>,
    path: PathBuf,
}

impl StoreLock {
    /// Acquires the lock in `dir`, or fails with [`PersistError::Locked`]
    /// if another checkpointer already holds it.  Transient creation
    /// failures retry under `policy`; losing the race is fatal, not
    /// retryable (the loser must back off, not spin on the winner).
    pub(crate) fn acquire(
        vfs: Arc<dyn Vfs>,
        policy: RetryPolicy,
        dir: &Path,
        context: &str,
    ) -> PersistResult<StoreLock> {
        let path = lock_path(dir);
        crate::vfs::retrying(policy, || {
            vfs.create_new(&path, b"").map_err(|e| {
                if e.kind() == std::io::ErrorKind::AlreadyExists {
                    PersistError::Locked {
                        context: context.to_string(),
                    }
                } else {
                    PersistError::io(format!("acquire store lock {path:?}"), &e)
                }
            })
        })?;
        Ok(StoreLock { vfs, path })
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        // Release is best effort, like retention: the guarded operation
        // already succeeded or failed on its own terms, and a failed
        // removal only leaves a stale lock for the next recovery sweep
        // to reclaim.  One immediate retry absorbs EINTR-class blips.
        if self.vfs.remove(&self.path).is_err() {
            let _ = self.vfs.remove(&self.path);
        }
    }
}

/// Which half of a generation a file holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GenFileKind {
    Snapshot,
    Wal,
}

/// Parses `snapshot.NNNNNN.gsmb` / `wal.NNNNNN.gsmb` file names.
fn parse_generation_file(path: &Path) -> Option<(GenFileKind, u64)> {
    let name = path.file_name()?.to_str()?;
    let mut parts = name.split('.');
    let kind = match parts.next()? {
        "snapshot" => GenFileKind::Snapshot,
        "wal" => GenFileKind::Wal,
        _ => return None,
    };
    let generation = parts.next()?.parse::<u64>().ok()?;
    match (parts.next()?, parts.next()) {
        ("gsmb", None) => Some((kind, generation)),
        _ => None,
    }
}

/// What recovery did to bring the store back: which generations it had to
/// try, what it quarantined, how much WAL it replayed.  Returned alongside
/// every successful recovery so callers (and their operators) can tell a
/// clean restart from a degraded one.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// The generation the manifest pointed at.
    pub committed_generation: u64,
    /// The generation whose snapshot was actually loaded (equals
    /// `committed_generation` on a clean recovery).
    pub used_generation: u64,
    /// How many generations were attempted before one loaded (1 = clean).
    pub generations_tried: u64,
    /// Files moved to `quarantine/` with their sizes in bytes.
    pub quarantined: Vec<(PathBuf, u64)>,
    /// WAL records replayed on top of the loaded snapshot (filled in by
    /// the caller that owns record semantics).
    pub records_replayed: usize,
    /// True if a torn final WAL record (crash artefact) was dropped.
    pub torn_tail_truncated: bool,
    /// Leaked `*.tmp` files swept on open.
    pub tmp_files_removed: usize,
    /// Uncommitted generation files (from a crash mid-commit) removed.
    pub stale_generations_removed: usize,
    /// True if a stale lock file (a checkpointer crashed while holding it)
    /// was swept on open.  Does not make the recovery unclean: the lock
    /// protects a commit whose debris is handled by the usual sweeps.
    pub stale_lock_removed: bool,
    /// True if the manifest itself was unreadable and the committed
    /// generation was inferred from the newest snapshot on disk.
    pub manifest_rebuilt: bool,
    /// True if the caller re-checkpointed immediately after a degraded
    /// recovery, restoring full redundancy (set by the caller).
    pub repair_checkpoint: bool,
}

impl RecoveryReport {
    /// True if recovery used the committed generation with no anomalies —
    /// no fallback, nothing quarantined, manifest intact.
    pub fn is_clean(&self) -> bool {
        self.used_generation == self.committed_generation
            && self.quarantined.is_empty()
            && !self.manifest_rebuilt
            && self.generations_tried <= 1
    }

    /// Total bytes of the files recovery moved into `quarantine/`.
    pub fn quarantined_bytes(&self) -> u64 {
        self.quarantined.iter().map(|&(_, bytes)| bytes).sum()
    }

    /// Records the finalized report on the registry (the replayed-record
    /// counter) and emits it as a structured `persist_recovery` event (a
    /// no-op unless an [`er_obs`] sink is installed).  Callers invoke this
    /// once `records_replayed` / `repair_checkpoint` are known — the store
    /// cannot, it never sees the replay.
    pub fn observe(&self) {
        crate::obs::obs()
            .records_replayed
            .add(self.records_replayed as u64);
        er_obs::event::emit("persist_recovery", |e| {
            e.push("clean", self.is_clean());
            e.push("committed_generation", self.committed_generation);
            e.push("used_generation", self.used_generation);
            e.push("generations_tried", self.generations_tried);
            e.push("quarantined_files", self.quarantined.len());
            e.push("quarantined_bytes", self.quarantined_bytes());
            e.push("records_replayed", self.records_replayed);
            e.push("torn_tail_truncated", self.torn_tail_truncated);
            e.push("tmp_files_removed", self.tmp_files_removed);
            e.push("stale_generations_removed", self.stale_generations_removed);
            e.push("stale_lock_removed", self.stale_lock_removed);
            e.push("manifest_rebuilt", self.manifest_rebuilt);
            e.push("repair_checkpoint", self.repair_checkpoint);
        });
    }
}

impl std::fmt::Display for RecoveryReport {
    /// One logfmt-style line, mirroring the `persist_recovery` event.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "recovery clean={} committed_generation={} used_generation={} \
             generations_tried={} quarantined_files={} quarantined_bytes={} \
             records_replayed={} torn_tail_truncated={} tmp_files_removed={} \
             stale_generations_removed={} stale_lock_removed={} \
             manifest_rebuilt={} repair_checkpoint={}",
            self.is_clean(),
            self.committed_generation,
            self.used_generation,
            self.generations_tried,
            self.quarantined.len(),
            self.quarantined_bytes(),
            self.records_replayed,
            self.torn_tail_truncated,
            self.tmp_files_removed,
            self.stale_generations_removed,
            self.stale_lock_removed,
            self.manifest_rebuilt,
            self.repair_checkpoint,
        )
    }
}

/// Everything a fallback-chain recovery produced: the snapshot payload
/// bytes, the WAL records to replay on top, and the report.
#[derive(Debug)]
pub struct RecoveredGeneration {
    /// The generation whose snapshot loaded.
    pub generation: u64,
    /// The validated snapshot payload (decode with
    /// [`decode_snapshot_payload`](crate::snapshot::decode_snapshot_payload)).
    pub payload: Vec<u8>,
    /// The WAL records of the whole chain (`wal.<generation>` through
    /// `wal.<committed>`), in append order.
    pub records: Vec<Vec<u8>>,
    /// Valid length of the *committed* generation's WAL, if it was
    /// readable — the offset to reopen it at for appending.  `None` means
    /// the recovery was degraded and the caller must commit a repair
    /// checkpoint instead of reopening the old WAL.
    pub wal_valid_len: Option<u64>,
    /// The stream fingerprint the store carries.
    pub fingerprint: u64,
    /// True if anything abnormal happened (fallback, rebuild, missing
    /// WAL): the caller should commit a fresh generation immediately after
    /// replay to restore redundancy.
    pub degraded: bool,
    /// The full account of what recovery did.
    pub report: RecoveryReport,
}

/// A directory of generational snapshots + WALs with an atomic manifest
/// commit pointer.  See the module docs for the layout and protocol.
#[derive(Debug)]
pub struct GenerationStore {
    vfs: Arc<dyn Vfs>,
    policy: RetryPolicy,
    dir: PathBuf,
    fingerprint: u64,
    committed: u64,
}

impl GenerationStore {
    /// Initialises a fresh store in `dir` with generation 0: snapshot,
    /// empty WAL, manifest.  Returns the store and the open generation-0
    /// WAL writer.
    pub fn create(
        vfs: Arc<dyn Vfs>,
        policy: RetryPolicy,
        dir: &Path,
        payload_tag: u32,
        fingerprint: u64,
        payload: &impl Encode,
    ) -> PersistResult<(Self, WalWriter)> {
        crate::vfs::retrying(policy, || {
            vfs.create_dir_all(dir)
                .map_err(|e| PersistError::io(format!("create store directory {dir:?}"), &e))
        })?;
        let _lock = StoreLock::acquire(vfs.clone(), policy, dir, "create generation store")?;
        write_snapshot_with(
            vfs.as_ref(),
            policy,
            &snapshot_path(dir, 0),
            payload_tag,
            fingerprint,
            payload,
        )?;
        let wal = WalWriter::create_with(vfs.clone(), policy, &wal_path(dir, 0), fingerprint)?;
        let store = GenerationStore {
            vfs,
            policy,
            dir: dir.to_path_buf(),
            fingerprint,
            committed: 0,
        };
        store.write_manifest(0)?;
        Ok((store, wal))
    }

    /// Recovers a store from `dir`, walking the generation fallback chain.
    ///
    /// On success the caller decodes `recovered.payload`, replays
    /// `recovered.records`, then either reopens the committed WAL at
    /// `recovered.wal_valid_len` (clean case) or commits a repair
    /// checkpoint (`recovered.degraded`).
    pub fn recover(
        vfs: Arc<dyn Vfs>,
        policy: RetryPolicy,
        dir: &Path,
        payload_tag: u32,
        expected_fingerprint: Option<u64>,
    ) -> PersistResult<(Self, RecoveredGeneration)> {
        let obs = crate::obs::obs();
        obs.recoveries.inc();
        let recovery_timer = obs.recovery_ns.start_timer();
        // Satellite: crash mid-write leaks `*.tmp` files — sweep them
        // before anything else looks at the directory.
        let mut report = RecoveryReport {
            tmp_files_removed: sweep_tmp_files(vfs.as_ref(), dir)?,
            ..RecoveryReport::default()
        };

        // A checkpointer that crashed mid-commit leaves its lock behind;
        // the holder is gone, so the lock is stale and recovery reclaims
        // it (its half-commit is removed by the uncommitted-generation
        // sweep below).
        report.stale_lock_removed = match vfs.remove(&lock_path(dir)) {
            Ok(()) => true,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => false,
            Err(err) => {
                return Err(PersistError::io(
                    format!("sweep stale store lock in {dir:?}"),
                    &err,
                ))
            }
        };

        // The manifest is the commit pointer.  If it is unreadable but
        // snapshots exist, infer the newest generation and treat the
        // recovery as degraded (the pointer itself was lost).
        let (fingerprint_hint, committed) = match read_manifest(vfs.as_ref(), dir) {
            Ok((fingerprint, committed)) => (Some(fingerprint), committed),
            Err(manifest_err) => {
                let newest = newest_snapshot_generation(vfs.as_ref(), dir)?;
                match newest {
                    Some(generation) => {
                        report.manifest_rebuilt = true;
                        (None, generation)
                    }
                    // No manifest and no snapshots: nothing to recover.
                    None => return Err(manifest_err),
                }
            }
        };
        if let (Some(expected), Some(found)) = (expected_fingerprint, fingerprint_hint) {
            if expected != found {
                return Err(PersistError::FingerprintMismatch { expected, found });
            }
        }
        report.committed_generation = committed;

        // Files from generations beyond the committed one are the debris
        // of a crash mid-commit: the manifest never pointed at them, so
        // they hold no acknowledged data and are removed.
        report.stale_generations_removed =
            remove_uncommitted_generations(vfs.as_ref(), dir, committed)?;

        // The fallback chain: newest committed generation first, walking
        // backwards past corrupt snapshots (quarantining each) until one
        // loads or the chain is exhausted.  The manifest's fingerprint
        // backstops the caller's expectation: a flipped byte in a
        // snapshot's *fingerprint* header field is outside that file's
        // payload checksum, and only the cross-check against the manifest
        // turns it into a fallback instead of a wrong-stream recovery.
        let expected_fingerprint = expected_fingerprint.or(fingerprint_hint);
        let mut generation = committed;
        let (payload, fingerprint, generation) = loop {
            report.generations_tried += 1;
            let path = snapshot_path(dir, generation);
            match read_snapshot_bytes_with(vfs.as_ref(), &path, payload_tag, expected_fingerprint) {
                Ok((payload, fingerprint)) => break (payload, fingerprint, generation),
                Err(err) => {
                    let missing = matches!(
                        &err,
                        PersistError::Io { kind, .. } if *kind == std::io::ErrorKind::NotFound
                    );
                    if !missing {
                        quarantine(vfs.as_ref(), dir, &path, &mut report)?;
                    }
                    if generation == 0 {
                        return Err(err);
                    }
                    generation -= 1;
                }
            }
        };

        // Replay the WAL chain: the loaded generation's log, then every
        // newer one up to the committed generation.  A torn tail is only
        // legal on the last log that was ever appended to; a *corrupt*
        // record anywhere is fatal (acknowledged data must not be
        // skipped).  A missing log for the loaded generation invalidates
        // it (its mutations are unaccounted for) — but the snapshot
        // itself is complete state up to its applied sequence, so the
        // recovery proceeds degraded rather than failing: the caller's
        // sequence-contiguity check on replay is the safety net against
        // an actual gap.
        let mut records = Vec::new();
        let mut wal_valid_len = None;
        let mut torn = false;
        let mut chain_complete = true;
        for wal_generation in generation..=committed {
            let path = wal_path(dir, wal_generation);
            match read_wal_with(
                vfs.as_ref(),
                &path,
                Some(fingerprint),
                crate::WalReadMode::Recovery,
            ) {
                Ok(contents) => {
                    torn |= contents.torn_tail;
                    records.extend(contents.records);
                    if wal_generation == committed {
                        wal_valid_len = Some(contents.valid_len);
                    }
                }
                Err(PersistError::Io {
                    kind: std::io::ErrorKind::NotFound,
                    ..
                }) => {
                    chain_complete = false;
                }
                Err(err) => return Err(err),
            }
        }
        report.used_generation = generation;
        report.torn_tail_truncated = torn;

        let degraded = generation != committed
            || report.manifest_rebuilt
            || !chain_complete
            || wal_valid_len.is_none()
            || !report.quarantined.is_empty();
        if degraded {
            obs.recoveries_degraded.inc();
        }
        obs.quarantined_bytes.add(report.quarantined_bytes());
        recovery_timer.observe();

        let store = GenerationStore {
            vfs,
            policy,
            dir: dir.to_path_buf(),
            fingerprint,
            committed,
        };
        Ok((
            store,
            RecoveredGeneration {
                generation,
                payload,
                records,
                wal_valid_len: if degraded { None } else { wal_valid_len },
                fingerprint,
                degraded,
                report,
            },
        ))
    }

    /// Commits a new generation: snapshot `committed + 1`, a fresh WAL for
    /// it, then the manifest flip (the commit point).  Returns the new
    /// generation's open WAL writer.  Old generations beyond the retention
    /// window are cleaned up best-effort afterwards.
    pub fn commit(&mut self, payload_tag: u32, payload: &impl Encode) -> PersistResult<WalWriter> {
        let generation = self.committed + 1;
        let _lock = StoreLock::acquire(
            self.vfs.clone(),
            self.policy,
            &self.dir,
            &format!("commit generation {generation}"),
        )?;
        write_snapshot_with(
            self.vfs.as_ref(),
            self.policy,
            &snapshot_path(&self.dir, generation),
            payload_tag,
            self.fingerprint,
            payload,
        )?;
        let wal = WalWriter::create_with(
            self.vfs.clone(),
            self.policy,
            &wal_path(&self.dir, generation),
            self.fingerprint,
        )?;
        self.write_manifest(generation)?;
        self.committed = generation;
        // Retention is advisory: a failure here never loses committed
        // state, it only leaves extra fallback generations behind.
        let _ = self.apply_retention();
        Ok(wal)
    }

    /// Reopens the committed generation's WAL for appending, truncating a
    /// torn tail at `valid_len` first.
    pub fn open_committed_wal(&self, valid_len: u64) -> PersistResult<WalWriter> {
        WalWriter::open_with(
            self.vfs.clone(),
            self.policy,
            &wal_path(&self.dir, self.committed),
            valid_len,
        )
    }

    /// The committed generation number.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The stream fingerprint every file in the store carries.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The VFS the store performs its IO through.
    pub fn vfs(&self) -> Arc<dyn Vfs> {
        self.vfs.clone()
    }

    /// The store's write-path retry policy.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    fn write_manifest(&self, committed: u64) -> PersistResult<()> {
        let mut w = Writer::with_capacity(MANIFEST_LEN);
        w.write_raw(&MANIFEST_MAGIC);
        w.write_u32(FORMAT_VERSION);
        w.write_u64(self.fingerprint);
        w.write_u64(committed);
        let crc = crc64(w.as_bytes());
        w.write_u64(crc);
        write_file_atomic(
            self.vfs.as_ref(),
            self.policy,
            &manifest_path(&self.dir),
            w.as_bytes(),
        )
    }

    /// Deletes snapshots older than the retention window and WALs no
    /// fallback from a retained snapshot could need.
    fn apply_retention(&self) -> PersistResult<()> {
        let oldest_kept = self.committed.saturating_sub(RETAINED_GENERATIONS - 1);
        let entries = self
            .vfs
            .list(&self.dir)
            .map_err(|e| PersistError::io(format!("list store directory {:?}", self.dir), &e))?;
        for path in entries {
            if let Some((_, generation)) = parse_generation_file(&path) {
                if generation < oldest_kept {
                    self.vfs.remove(&path).map_err(|e| {
                        PersistError::io(format!("remove retired generation file {path:?}"), &e)
                    })?;
                }
            }
        }
        Ok(())
    }
}

/// Reads and validates the manifest, returning `(fingerprint, committed)`.
pub fn read_manifest(vfs: &dyn Vfs, dir: &Path) -> PersistResult<(u64, u64)> {
    let path = manifest_path(dir);
    let data = vfs
        .read(&path)
        .map_err(|e| PersistError::io(format!("read manifest {path:?}"), &e))?;
    if data.len() < MANIFEST_LEN {
        return Err(PersistError::BadMagic {
            context: format!("manifest {path:?}"),
        });
    }
    let mut r = Reader::new(&data);
    let magic = r.read_raw(8)?;
    if magic != MANIFEST_MAGIC {
        return Err(PersistError::BadMagic {
            context: format!("manifest {path:?}"),
        });
    }
    let version = r.read_u32()?;
    if version != FORMAT_VERSION {
        return Err(PersistError::VersionMismatch {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let fingerprint = r.read_u64()?;
    let committed = r.read_u64()?;
    let recorded_crc = r.read_u64()?;
    r.expect_end()
        .map_err(|_| PersistError::Corrupt(format!("manifest {path:?} carries trailing bytes")))?;
    let actual_crc = crc64(&data[..MANIFEST_LEN - 8]);
    if actual_crc != recorded_crc {
        return Err(PersistError::ChecksumMismatch {
            context: format!("manifest {path:?}"),
            expected: recorded_crc,
            found: actual_crc,
        });
    }
    Ok((fingerprint, committed))
}

/// The newest snapshot generation present in `dir`, if any.
fn newest_snapshot_generation(vfs: &dyn Vfs, dir: &Path) -> PersistResult<Option<u64>> {
    let entries = match vfs.list(dir) {
        Ok(entries) => entries,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(err) => {
            return Err(PersistError::io(
                format!("list store directory {dir:?}"),
                &err,
            ))
        }
    };
    Ok(entries
        .iter()
        .filter_map(|p| parse_generation_file(p))
        .filter(|(kind, _)| *kind == GenFileKind::Snapshot)
        .map(|(_, generation)| generation)
        .max())
}

/// Removes generation files newer than the committed generation (debris of
/// a crash mid-commit), returning how many files were removed.
fn remove_uncommitted_generations(
    vfs: &dyn Vfs,
    dir: &Path,
    committed: u64,
) -> PersistResult<usize> {
    let entries = vfs
        .list(dir)
        .map_err(|e| PersistError::io(format!("list store directory {dir:?}"), &e))?;
    let mut removed = 0;
    for path in entries {
        if let Some((_, generation)) = parse_generation_file(&path) {
            if generation > committed {
                vfs.remove(&path).map_err(|e| {
                    PersistError::io(format!("remove uncommitted generation file {path:?}"), &e)
                })?;
                removed += 1;
            }
        }
    }
    Ok(removed)
}

/// Moves a corrupt file into `dir/quarantine/`, recording it (and its
/// size) in the report.
pub(crate) fn quarantine(
    vfs: &dyn Vfs,
    dir: &Path,
    path: &Path,
    report: &mut RecoveryReport,
) -> PersistResult<()> {
    let bytes = vfs.read(path).map(|d| d.len() as u64).unwrap_or(0);
    let quarantine_dir = quarantine_path(dir);
    vfs.create_dir_all(&quarantine_dir).map_err(|e| {
        PersistError::io(
            format!("create quarantine directory {quarantine_dir:?}"),
            &e,
        )
    })?;
    let file_name = path.file_name().unwrap_or_default();
    let target = quarantine_dir.join(file_name);
    vfs.rename(path, &target)
        .map_err(|e| PersistError::io(format!("quarantine corrupt file {path:?}"), &e))?;
    report.quarantined.push((target, bytes));
    Ok(())
}

/// Reads the committed generation number of the store in `dir` on the
/// production filesystem — a convenience for tests and benchmarks.
pub fn committed_generation(dir: &Path) -> PersistResult<u64> {
    read_manifest(&StdVfs, dir).map(|(_, committed)| committed)
}

/// An empty WAL is exactly its header.
pub const EMPTY_WAL_LEN: u64 = WAL_HEADER_LEN as u64;
