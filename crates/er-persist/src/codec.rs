//! The hand-rolled little-endian binary codec behind every snapshot and
//! WAL record.
//!
//! There is deliberately no `serde` here: the workspace's serde shims make
//! derive-based serialisation a silent no-op, and a durability format wants
//! explicit, versioned layouts anyway.  Every persisted type implements
//! [`Encode`]/[`Decode`] by hand against a [`Writer`]/[`Reader`] pair:
//!
//! * all integers are little-endian; `usize` travels as `u64`;
//! * floats travel as their IEEE-754 bit patterns ([`f64::to_bits`]), so a
//!   decoded value is **bit-identical** to the encoded one — NaN payloads,
//!   signed zeros and all;
//! * variable-length data (strings, byte slices, sequences) is
//!   length-prefixed with a `u64`.
//!
//! [`Reader`] methods never panic on malformed input: running off the end
//! of the buffer yields [`PersistError::Truncated`] and invalid content
//! (bad UTF-8, unknown enum tags, impossible bools) yields
//! [`PersistError::Corrupt`].  Integrity against *random* corruption is the
//! framing layer's job (checksums in [`crate::snapshot`] and
//! [`crate::wal`]); the reader's checks are the second line of defence.

use std::time::Duration;

use er_core::{
    Attribute, Dataset, DatasetKind, EntityId, EntityProfile, GroundTruth, PersistError,
    PersistResult,
};

/// An append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Creates a writer with a capacity hint.
    pub fn with_capacity(bytes: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(bytes),
        }
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes without a length prefix (fixed-layout sections).
    pub fn write_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a little-endian `u64`.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (bit-exact round trip).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Appends a length-prefixed byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }
}

/// A bounds-checked little-endian byte source.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails with [`PersistError::Corrupt`] if any bytes remain — decoded
    /// values must account for their entire frame.
    pub fn expect_end(&self) -> PersistResult<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(PersistError::Corrupt(format!(
                "{} trailing bytes after the decoded value",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> PersistResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(PersistError::Truncated {
                context: what.to_string(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads raw bytes of a known length (fixed-layout sections).
    pub fn read_raw(&mut self, n: usize) -> PersistResult<&'a [u8]> {
        self.take(n, "raw bytes")
    }

    /// Reads one byte.
    pub fn read_u8(&mut self) -> PersistResult<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self) -> PersistResult<u32> {
        let bytes = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self) -> PersistResult<u64> {
        let bytes = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(bytes.try_into().unwrap()))
    }

    /// Reads a `usize` (persisted as `u64`).
    pub fn read_usize(&mut self) -> PersistResult<usize> {
        usize::try_from(self.read_u64()?)
            .map_err(|_| PersistError::Corrupt("length exceeds the platform usize".into()))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn read_f64(&mut self) -> PersistResult<f64> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Reads a bool (strictly 0 or 1).
    pub fn read_bool(&mut self) -> PersistResult<bool> {
        match self.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(PersistError::Corrupt(format!(
                "bool byte must be 0 or 1, found {other}"
            ))),
        }
    }

    /// Reads a length-prefixed byte slice.
    pub fn read_bytes(&mut self) -> PersistResult<&'a [u8]> {
        let len = self.read_usize()?;
        self.take(len, "length-prefixed bytes")
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn read_str(&mut self) -> PersistResult<String> {
        let bytes = self.read_bytes()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PersistError::Corrupt("string is not valid UTF-8".into()))
    }
}

/// A type with an explicit binary encoding.
pub trait Encode {
    /// Appends the value's encoding to the writer.
    fn encode(&self, w: &mut Writer);
}

/// A type decodable from its [`Encode`] output.
pub trait Decode: Sized {
    /// Reads one value, consuming exactly the bytes [`Encode::encode`]
    /// produced for it.
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self>;
}

/// Encodes a value into a standalone byte buffer.
pub fn encode_to_vec(value: &impl Encode) -> Vec<u8> {
    let mut w = Writer::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// Decodes a value from a byte buffer, requiring full consumption.
pub fn decode_from_slice<T: Decode>(bytes: &[u8]) -> PersistResult<T> {
    let mut r = Reader::new(bytes);
    let value = T::decode(&mut r)?;
    r.expect_end()?;
    Ok(value)
}

impl Encode for u8 {
    fn encode(&self, w: &mut Writer) {
        w.write_u8(*self);
    }
}

impl Decode for u8 {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        r.read_u8()
    }
}

impl Encode for u32 {
    fn encode(&self, w: &mut Writer) {
        w.write_u32(*self);
    }
}

impl Decode for u32 {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        r.read_u32()
    }
}

impl Encode for u64 {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(*self);
    }
}

impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        r.read_u64()
    }
}

impl Encode for usize {
    fn encode(&self, w: &mut Writer) {
        w.write_usize(*self);
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        r.read_usize()
    }
}

impl Encode for f64 {
    fn encode(&self, w: &mut Writer) {
        w.write_f64(*self);
    }
}

impl Decode for f64 {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        r.read_f64()
    }
}

impl Encode for bool {
    fn encode(&self, w: &mut Writer) {
        w.write_bool(*self);
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        r.read_bool()
    }
}

impl Encode for String {
    fn encode(&self, w: &mut Writer) {
        w.write_str(self);
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        r.read_str()
    }
}

impl Encode for Box<str> {
    fn encode(&self, w: &mut Writer) {
        w.write_str(self);
    }
}

impl Decode for Box<str> {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        Ok(r.read_str()?.into_boxed_str())
    }
}

impl<T: Encode> Encode for [T] {
    fn encode(&self, w: &mut Writer) {
        w.write_usize(self.len());
        for item in self {
            item.encode(w);
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        self.as_slice().encode(w);
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        let len = r.read_usize()?;
        // Cap the pre-allocation by the bytes actually present so a corrupt
        // length cannot balloon memory before the bounds checks fire.
        let mut items = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            items.push(T::decode(r)?);
        }
        Ok(items)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.write_u8(0),
            Some(value) => {
                w.write_u8(1);
                value.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        match r.read_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(PersistError::Corrupt(format!(
                "option tag must be 0 or 1, found {other}"
            ))),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl Encode for Duration {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(self.as_secs());
        w.write_u32(self.subsec_nanos());
    }
}

impl Decode for Duration {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        let secs = r.read_u64()?;
        let nanos = r.read_u32()?;
        if nanos >= 1_000_000_000 {
            return Err(PersistError::Corrupt(format!(
                "duration nanoseconds out of range: {nanos}"
            )));
        }
        Ok(Duration::new(secs, nanos))
    }
}

impl Encode for EntityId {
    fn encode(&self, w: &mut Writer) {
        w.write_u32(self.0);
    }
}

impl Decode for EntityId {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        Ok(EntityId(r.read_u32()?))
    }
}

impl Encode for DatasetKind {
    fn encode(&self, w: &mut Writer) {
        w.write_u8(match self {
            DatasetKind::CleanClean => 0,
            DatasetKind::Dirty => 1,
        });
    }
}

impl Decode for DatasetKind {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        match r.read_u8()? {
            0 => Ok(DatasetKind::CleanClean),
            1 => Ok(DatasetKind::Dirty),
            other => Err(PersistError::Corrupt(format!(
                "unknown dataset-kind tag {other}"
            ))),
        }
    }
}

impl Encode for Attribute {
    fn encode(&self, w: &mut Writer) {
        w.write_str(&self.name);
        w.write_str(&self.value);
    }
}

impl Decode for Attribute {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        Ok(Attribute {
            name: r.read_str()?,
            value: r.read_str()?,
        })
    }
}

impl Encode for EntityProfile {
    fn encode(&self, w: &mut Writer) {
        w.write_str(&self.external_id);
        self.attributes.encode(w);
    }
}

impl Decode for EntityProfile {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        Ok(EntityProfile {
            external_id: r.read_str()?,
            attributes: Vec::<Attribute>::decode(r)?,
        })
    }
}

impl Encode for GroundTruth {
    fn encode(&self, w: &mut Writer) {
        self.pairs().encode(w);
    }
}

impl Decode for GroundTruth {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        let pairs = Vec::<(EntityId, EntityId)>::decode(r)?;
        // `from_pairs` re-normalises and rebuilds the lookup index, so the
        // non-serialised parts of the type are reconstructed here.
        Ok(GroundTruth::from_pairs(pairs))
    }
}

impl Encode for Dataset {
    fn encode(&self, w: &mut Writer) {
        w.write_str(&self.name);
        self.kind.encode(w);
        self.profiles.encode(w);
        w.write_usize(self.split);
        self.ground_truth.encode(w);
    }
}

impl Decode for Dataset {
    fn decode(r: &mut Reader<'_>) -> PersistResult<Self> {
        let name = r.read_str()?;
        let kind = DatasetKind::decode(r)?;
        let profiles = Vec::<EntityProfile>::decode(r)?;
        let split = r.read_usize()?;
        let ground_truth = GroundTruth::decode(r)?;
        if split > profiles.len() {
            return Err(PersistError::Corrupt(format!(
                "dataset split {split} exceeds profile count {}",
                profiles.len()
            )));
        }
        Ok(Dataset {
            name,
            kind,
            profiles,
            split,
            ground_truth,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = encode_to_vec(&value);
        let back: T = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(String::from("πλοκή"));
        round_trip(Duration::new(12, 345_678_910));
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for v in [0.0f64, -0.0, 1.5, f64::MIN_POSITIVE, f64::INFINITY] {
            let bytes = encode_to_vec(&v);
            let back: f64 = decode_from_slice(&bytes).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
        let nan_bits = f64::NAN.to_bits() | 0xDEAD;
        let bytes = encode_to_vec(&f64::from_bits(nan_bits));
        let back: f64 = decode_from_slice(&bytes).unwrap();
        assert_eq!(back.to_bits(), nan_bits, "NaN payload must survive");
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip(Some(7u32));
        round_trip(Option::<u32>::None);
        round_trip((EntityId(3), 0.25f64));
        round_trip(vec![(EntityId(0), EntityId(9)), (EntityId(1), EntityId(2))]);
    }

    #[test]
    fn core_types_round_trip() {
        round_trip(EntityId(42));
        round_trip(DatasetKind::CleanClean);
        round_trip(DatasetKind::Dirty);
        round_trip(Attribute::new("name", "Apple iPhone X"));
        round_trip(
            EntityProfile::new("e1")
                .with_attribute("model", "iphone")
                .with_attribute("category", "smartphone"),
        );
    }

    #[test]
    fn dataset_round_trip_rebuilds_the_ground_truth_index() {
        let profiles = vec![
            EntityProfile::new("a").with_attribute("n", "x y"),
            EntityProfile::new("b").with_attribute("n", "y z"),
        ];
        let dataset = Dataset {
            name: "toy".into(),
            kind: DatasetKind::Dirty,
            profiles,
            split: 2,
            ground_truth: GroundTruth::from_pairs(vec![(EntityId(1), EntityId(0))]),
        };
        let bytes = encode_to_vec(&dataset);
        let back: Dataset = decode_from_slice(&bytes).unwrap();
        assert_eq!(back.name, dataset.name);
        assert_eq!(back.profiles, dataset.profiles);
        assert_eq!(back.split, dataset.split);
        assert_eq!(back.ground_truth.pairs(), dataset.ground_truth.pairs());
        assert!(back.ground_truth.is_match(EntityId(0), EntityId(1)));
    }

    #[test]
    fn truncated_input_yields_typed_errors() {
        let bytes = encode_to_vec(&String::from("hello"));
        for cut in 0..bytes.len() {
            let err = decode_from_slice::<String>(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, PersistError::Truncated { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn invalid_content_yields_corrupt_errors() {
        // Bad bool byte.
        let err = decode_from_slice::<bool>(&[7]).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)));
        // Bad option tag.
        let err = decode_from_slice::<Option<u8>>(&[9]).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)));
        // Bad UTF-8.
        let mut w = Writer::new();
        w.write_bytes(&[0xFF, 0xFE]);
        let err = decode_from_slice::<String>(w.as_bytes()).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)));
        // Unknown dataset-kind tag.
        let err = decode_from_slice::<DatasetKind>(&[9]).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)));
        // Trailing garbage.
        let mut bytes = encode_to_vec(&3u32);
        bytes.push(0);
        let err = decode_from_slice::<u32>(&bytes).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)));
    }

    #[test]
    fn corrupt_vec_length_fails_without_allocating() {
        let mut w = Writer::new();
        w.write_u64(u64::MAX); // absurd element count
        let err = decode_from_slice::<Vec<u64>>(w.as_bytes()).unwrap_err();
        assert!(matches!(err, PersistError::Truncated { .. }));
    }
}
