//! Durability for the meta-blocking workspace: a hand-rolled, versioned,
//! checksummed little-endian binary codec plus the two halves of a
//! crash-recoverable store.
//!
//! * [`codec`] — explicit [`Encode`]/[`Decode`] implementations over a
//!   [`Writer`]/[`Reader`] pair (no serde; the workspace's serde shims are
//!   no-ops by design, and this format does not want them back — see the
//!   README's persistence section);
//! * [`snapshot`] — atomic point-in-time images (temp file + rename, a
//!   header carrying magic bytes, the format version, a payload tag and a
//!   corpus fingerprint, and a CRC-64/XZ digest over the payload);
//! * [`wal`] — an append-only write-ahead log of checksummed records with
//!   torn-tail-tolerant replay.
//!
//! The crates that own persistable state implement the codec traits for
//! their types and wire the two halves together: `er-stream` persists the
//! `StreamingIndex` and logs mutation batches
//! (`er_stream::persist::DurableMetaBlocker`), `er-learn` persists trained
//! models (`er_learn::SavedModel`), `er-eval` persists `PreparedDataset`s,
//! and `meta-blocking` persists whole streaming pipelines.  Recovery is
//! always *load the latest snapshot, replay the WAL tail*; compaction is
//! the snapshot/truncation point that garbage-collects the log.
//!
//! All error paths are typed ([`er_core::PersistError`]): corrupt bytes,
//! version skews, truncated records and mismatched fingerprints are
//! recoverable errors, never panics.

pub mod codec;
pub mod snapshot;
pub mod wal;

pub use codec::{decode_from_slice, encode_to_vec, Decode, Encode, Reader, Writer};
pub use er_core::{PersistError, PersistResult};
pub use snapshot::{read_snapshot, read_snapshot_bytes, write_snapshot, FORMAT_VERSION};
pub use wal::{read_wal, WalContents, WalReadMode, WalWriter};
