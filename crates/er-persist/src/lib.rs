//! Durability for the meta-blocking workspace: a hand-rolled, versioned,
//! checksummed little-endian binary codec plus the machinery of a
//! crash-recoverable, fault-tolerant store.
//!
//! * [`codec`] — explicit [`Encode`]/[`Decode`] implementations over a
//!   [`Writer`]/[`Reader`] pair (no serde; the workspace's serde shims are
//!   no-ops by design, and this format does not want them back — see the
//!   README's persistence section);
//! * [`vfs`] — the filesystem seam everything above does its IO through:
//!   [`StdVfs`] in production, the deterministic fault-injecting
//!   [`FaultVfs`] in the crash/fault suites, plus the bounded-retry
//!   [`RetryPolicy`] for the write paths;
//! * [`snapshot`] — atomic point-in-time images (temp file + rename, a
//!   header carrying magic bytes, the format version, a payload tag and a
//!   corpus fingerprint, and a CRC-64/XZ digest over the payload);
//! * [`wal`] — an append-only write-ahead log of checksummed records with
//!   torn-tail-tolerant replay;
//! * [`generation`] — generational snapshot stores: an atomic
//!   [`MANIFEST`](generation::MANIFEST_NAME) commit pointer over
//!   `snapshot.<gen>.gsmb` files, a recovery fallback chain that
//!   quarantines corrupt generations and replays longer WAL tails, and a
//!   [`RecoveryReport`] accounting for every degradation;
//! * [`multi`] — cross-shard generation sets: one [`ShardStore`] manifest
//!   committing a router snapshot plus N shard snapshots and N WALs
//!   atomically, so no shard ever recovers to a different batch boundary
//!   than its siblings.
//!
//! The crates that own persistable state implement the codec traits for
//! their types and wire the pieces together: `er-stream` persists the
//! `StreamingIndex` and logs mutation batches
//! (`er_stream::persist::DurableMetaBlocker`), `er-learn` persists trained
//! models (`er_learn::SavedModel`), `er-eval` persists `PreparedDataset`s,
//! and `meta-blocking` persists whole streaming pipelines.  Recovery is
//! always *load the newest readable snapshot generation, replay the WAL
//! chain*; a checkpoint commits a new generation and garbage-collects old
//! ones.
//!
//! All error paths are typed ([`er_core::PersistError`]): corrupt bytes,
//! version skews, truncated records and mismatched fingerprints are
//! recoverable errors, never panics.  Failures are further classified
//! retryable vs fatal ([`er_core::PersistErrorClass`]); the write paths
//! retry only the transient class, with bounded backoff.

pub mod codec;
pub mod generation;
pub mod multi;
mod obs;
pub mod snapshot;
pub mod vfs;
pub mod wal;

pub use codec::{decode_from_slice, encode_to_vec, Decode, Encode, Reader, Writer};
pub use er_core::{PersistError, PersistErrorClass, PersistResult};
pub use generation::{
    committed_generation, lock_path, manifest_path, quarantine_path, read_manifest, snapshot_path,
    wal_path, GenerationStore, RecoveredGeneration, RecoveryReport, LOCK_NAME,
};
pub use multi::{
    committed_shard_generation, read_shard_manifest, router_path, shard_snapshot_path,
    shard_wal_path, RecoveredShards, ShardStore, SHARD_MANIFEST_MAGIC,
};
pub use snapshot::{
    decode_snapshot_payload, read_snapshot, read_snapshot_bytes, read_snapshot_bytes_with,
    read_snapshot_with, sweep_tmp_files, sync_parent_dir, write_snapshot, write_snapshot_with,
    FORMAT_VERSION,
};
pub use vfs::{retrying, FaultKind, FaultVfs, InjectedFault, OpKind, RetryPolicy, StdVfs, Vfs};
pub use wal::{read_wal, read_wal_with, WalContents, WalReadMode, WalWriter};
