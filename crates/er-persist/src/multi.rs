//! Cross-shard generational stores: atomic checkpoints over N shards.
//!
//! A sharded service keeps one [`WalWriter`] per shard so ingestion
//! workers never serialise on a single log, but its checkpoints must be
//! **atomic across shards**: no shard may recover to a different batch
//! boundary than its siblings, or replay would reconstruct a state that
//! never existed.  A [`ShardStore`] extends the [`GenerationStore`]
//! protocol to a *generation set*:
//!
//! ```text
//! dir/
//!   MANIFEST                  magic │ version │ fingerprint │ num shards │ committed gen │ crc
//!   router.000041.gsmb        the cross-shard routing state of generation 41
//!   shard.000.000041.gsmb     shard 0's snapshot of generation 41
//!   shard.001.000041.gsmb     shard 1's snapshot
//!   wal.000.000041.gsmb       shard 0's mutations appended after generation 41
//!   wal.001.000041.gsmb       shard 1's WAL
//!   router.000040.gsmb        the previous generation (retained as fallback)
//!   ...
//!   quarantine/               corrupt files moved aside by recovery
//! ```
//!
//! A commit writes the router snapshot and **every** shard snapshot of
//! generation `g+1`, creates the `g+1` WALs, then atomically rewrites the
//! single `MANIFEST` — the one cross-shard commit point.  A crash anywhere
//! before the manifest rename leaves generation `g` committed for *all*
//! shards; the half-written `g+1` files are uncommitted debris swept on
//! the next open.  The whole sequence runs under the same exclusive
//! `LOCK` file as [`GenerationStore`], so two concurrent checkpointers
//! cannot interleave their generation sets.
//!
//! Recovery walks the fallback chain **as a unit**: a generation loads
//! only if its router *and every shard snapshot* validate; a corrupt file
//! quarantines the generation back to its predecessor for *all* shards,
//! and each shard then replays a longer WAL chain to the same committed
//! boundary.  Per-shard WAL records carry the global mutation sequence
//! number, so the caller re-interleaves them exactly.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use er_core::{crc64, PersistError, PersistResult};

use crate::codec::{Encode, Reader, Writer};
use crate::generation::{quarantine, StoreLock, RETAINED_GENERATIONS};
use crate::snapshot::{
    read_snapshot_bytes_with, sweep_tmp_files, write_file_atomic, write_snapshot_with,
    FORMAT_VERSION,
};
use crate::vfs::{RetryPolicy, StdVfs, Vfs};
use crate::wal::{read_wal_with, WalWriter};
use crate::{lock_path, manifest_path, RecoveryReport, WalReadMode};

/// Magic bytes opening the sharded manifest file.
pub const SHARD_MANIFEST_MAGIC: [u8; 8] = *b"GSMBSHM1";

/// Byte length of the sharded manifest (`magic | version | fingerprint |
/// num shards | committed generation | crc64 over everything before it`).
pub const SHARD_MANIFEST_LEN: usize = 8 + 4 + 8 + 4 + 8 + 8;

/// The router snapshot of generation `generation` inside `dir`.
pub fn router_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("router.{generation:06}.gsmb"))
}

/// Shard `shard`'s snapshot of generation `generation` inside `dir`.
pub fn shard_snapshot_path(dir: &Path, shard: u32, generation: u64) -> PathBuf {
    dir.join(format!("shard.{shard:03}.{generation:06}.gsmb"))
}

/// Shard `shard`'s write-ahead log of generation `generation` inside `dir`.
pub fn shard_wal_path(dir: &Path, shard: u32, generation: u64) -> PathBuf {
    dir.join(format!("wal.{shard:03}.{generation:06}.gsmb"))
}

/// Parses `router.GGGGGG.gsmb` / `shard.SSS.GGGGGG.gsmb` /
/// `wal.SSS.GGGGGG.gsmb` names, returning the generation.
fn parse_shard_file(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let parts: Vec<&str> = name.split('.').collect();
    match parts.as_slice() {
        ["router", generation, "gsmb"] => generation.parse().ok(),
        ["shard" | "wal", shard, generation, "gsmb"] => {
            shard.parse::<u32>().ok()?;
            generation.parse().ok()
        }
        _ => None,
    }
}

/// Everything a cross-shard recovery produced: one generation's payloads
/// for the router and every shard, the per-shard WAL records to replay on
/// top, and the report.  All shards are guaranteed to be at the **same**
/// committed boundary: the snapshots come from one generation set and the
/// WAL chains all end at the committed generation.
#[derive(Debug)]
pub struct RecoveredShards {
    /// The generation whose snapshot set loaded.
    pub generation: u64,
    /// The validated router payload.
    pub router_payload: Vec<u8>,
    /// The validated payload of every shard, in shard order.
    pub shard_payloads: Vec<Vec<u8>>,
    /// Per shard, the WAL records of its whole chain
    /// (`wal.<shard>.<generation>` through `wal.<shard>.<committed>`), in
    /// append order.  The caller merges them by their embedded sequence
    /// numbers.
    pub shard_records: Vec<Vec<Vec<u8>>>,
    /// Valid length of each shard's *committed* WAL, if every one was
    /// readable — the offsets to reopen them at for appending.  `None`
    /// means the recovery was degraded and the caller must commit a
    /// repair checkpoint instead.
    pub wal_valid_lens: Option<Vec<u64>>,
    /// The stream fingerprint the store carries.
    pub fingerprint: u64,
    /// The shard count recorded in the manifest.
    pub num_shards: u32,
    /// True if anything abnormal happened (fallback, rebuild, missing
    /// WAL): the caller should commit a fresh generation immediately
    /// after replay to restore redundancy.
    pub degraded: bool,
    /// The full account of what recovery did.
    pub report: RecoveryReport,
}

/// A directory of cross-shard generation sets with a single atomic
/// manifest commit pointer.  See the module docs for the layout and
/// protocol.
#[derive(Debug)]
pub struct ShardStore {
    vfs: Arc<dyn Vfs>,
    policy: RetryPolicy,
    dir: PathBuf,
    fingerprint: u64,
    num_shards: u32,
    committed: u64,
}

impl ShardStore {
    /// Initialises a fresh store in `dir` with generation 0: router
    /// snapshot, one snapshot and one empty WAL per shard, manifest.
    /// Returns the store and the open generation-0 WAL writers, in shard
    /// order.
    pub fn create(
        vfs: Arc<dyn Vfs>,
        policy: RetryPolicy,
        dir: &Path,
        payload_tag: u32,
        fingerprint: u64,
        router: &impl Encode,
        shards: &[impl Encode],
    ) -> PersistResult<(Self, Vec<WalWriter>)> {
        assert!(!shards.is_empty(), "a shard store needs at least one shard");
        crate::vfs::retrying(policy, || {
            vfs.create_dir_all(dir)
                .map_err(|e| PersistError::io(format!("create store directory {dir:?}"), &e))
        })?;
        let _lock = StoreLock::acquire(vfs.clone(), policy, dir, "create shard store")?;
        let mut store = ShardStore {
            vfs,
            policy,
            dir: dir.to_path_buf(),
            fingerprint,
            num_shards: u32::try_from(shards.len()).expect("shard count fits u32"),
            committed: 0,
        };
        let wals = store.write_generation(0, payload_tag, router, shards)?;
        store.write_manifest(0)?;
        Ok((store, wals))
    }

    /// Recovers a store from `dir`, walking the generation-set fallback
    /// chain.  On success the caller decodes the payloads, replays the
    /// merged shard records, then either reopens the committed WALs at
    /// `recovered.wal_valid_lens` (clean case) or commits a repair
    /// checkpoint (`recovered.degraded`).
    pub fn recover(
        vfs: Arc<dyn Vfs>,
        policy: RetryPolicy,
        dir: &Path,
        payload_tag: u32,
        expected_fingerprint: Option<u64>,
    ) -> PersistResult<(Self, RecoveredShards)> {
        let obs = crate::obs::obs();
        obs.recoveries.inc();
        let recovery_timer = obs.recovery_ns.start_timer();
        let mut report = RecoveryReport {
            tmp_files_removed: sweep_tmp_files(vfs.as_ref(), dir)?,
            ..RecoveryReport::default()
        };
        report.stale_lock_removed = match vfs.remove(&lock_path(dir)) {
            Ok(()) => true,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => false,
            Err(err) => {
                return Err(PersistError::io(
                    format!("sweep stale store lock in {dir:?}"),
                    &err,
                ))
            }
        };

        // The manifest is the one cross-shard commit pointer.  If it is
        // unreadable but complete generation sets exist, infer the newest
        // one and treat the recovery as degraded.
        let (fingerprint_hint, num_shards, committed) = match read_shard_manifest(vfs.as_ref(), dir)
        {
            Ok(manifest) => {
                let (fingerprint, num_shards, committed) = manifest;
                (Some(fingerprint), num_shards, committed)
            }
            Err(manifest_err) => {
                match newest_complete_generation(vfs.as_ref(), dir, payload_tag)? {
                    Some((generation, num_shards)) => {
                        report.manifest_rebuilt = true;
                        (None, num_shards, generation)
                    }
                    None => return Err(manifest_err),
                }
            }
        };
        if let (Some(expected), Some(found)) = (expected_fingerprint, fingerprint_hint) {
            if expected != found {
                return Err(PersistError::FingerprintMismatch { expected, found });
            }
        }
        report.committed_generation = committed;
        report.stale_generations_removed =
            remove_uncommitted_generations(vfs.as_ref(), dir, committed)?;

        // The fallback chain, a whole generation set at a time: the
        // router and every shard snapshot must validate together — a
        // corrupt member quarantines and sends *all* shards back one
        // generation, so no shard can recover ahead of its siblings.
        let expected_fingerprint = expected_fingerprint.or(fingerprint_hint);
        let mut generation = committed;
        let (router_payload, shard_payloads, fingerprint, generation) = loop {
            report.generations_tried += 1;
            match load_generation_set(
                vfs.as_ref(),
                dir,
                generation,
                num_shards,
                payload_tag,
                expected_fingerprint,
            ) {
                Ok((router_payload, shard_payloads, fingerprint)) => {
                    break (router_payload, shard_payloads, fingerprint, generation)
                }
                Err((bad_file, err)) => {
                    if let Some(path) = bad_file {
                        quarantine(vfs.as_ref(), dir, &path, &mut report)?;
                    }
                    if generation == 0 {
                        return Err(err);
                    }
                    generation -= 1;
                }
            }
        };

        // Per-shard WAL chains: the loaded generation's log through the
        // committed one.  A torn tail is only legal on the last log ever
        // appended to; a corrupt record anywhere is fatal (acknowledged
        // data must not be skipped); a missing log degrades the recovery
        // (the caller's sequence-contiguity check backstops real gaps).
        let mut shard_records: Vec<Vec<Vec<u8>>> = Vec::with_capacity(num_shards as usize);
        let mut wal_valid_lens = vec![None; num_shards as usize];
        let mut torn = false;
        let mut chain_complete = true;
        for shard in 0..num_shards {
            let mut records = Vec::new();
            for wal_generation in generation..=committed {
                let path = shard_wal_path(dir, shard, wal_generation);
                match read_wal_with(
                    vfs.as_ref(),
                    &path,
                    Some(fingerprint),
                    WalReadMode::Recovery,
                ) {
                    Ok(contents) => {
                        torn |= contents.torn_tail;
                        records.extend(contents.records);
                        if wal_generation == committed {
                            wal_valid_lens[shard as usize] = Some(contents.valid_len);
                        }
                    }
                    Err(PersistError::Io {
                        kind: std::io::ErrorKind::NotFound,
                        ..
                    }) => {
                        chain_complete = false;
                    }
                    Err(err) => return Err(err),
                }
            }
            shard_records.push(records);
        }
        report.used_generation = generation;
        report.torn_tail_truncated = torn;

        let wal_valid_lens: Option<Vec<u64>> = wal_valid_lens.into_iter().collect();
        let degraded = generation != committed
            || report.manifest_rebuilt
            || !chain_complete
            || wal_valid_lens.is_none()
            || !report.quarantined.is_empty();
        if degraded {
            obs.recoveries_degraded.inc();
        }
        obs.quarantined_bytes.add(report.quarantined_bytes());
        recovery_timer.observe();

        let store = ShardStore {
            vfs,
            policy,
            dir: dir.to_path_buf(),
            fingerprint,
            num_shards,
            committed,
        };
        Ok((
            store,
            RecoveredShards {
                generation,
                router_payload,
                shard_payloads,
                shard_records,
                wal_valid_lens: if degraded { None } else { wal_valid_lens },
                fingerprint,
                num_shards,
                degraded,
                report,
            },
        ))
    }

    /// Commits a new generation set: router + every shard snapshot of
    /// `committed + 1`, fresh WALs for it, then the single manifest flip
    /// (the cross-shard commit point).  Returns the new generation's open
    /// WAL writers, in shard order.  Old generations beyond the retention
    /// window are cleaned up best-effort afterwards.
    pub fn commit(
        &mut self,
        payload_tag: u32,
        router: &impl Encode,
        shards: &[impl Encode],
    ) -> PersistResult<Vec<WalWriter>> {
        assert_eq!(
            shards.len(),
            self.num_shards as usize,
            "a commit must cover every shard"
        );
        let generation = self.committed + 1;
        let _lock = StoreLock::acquire(
            self.vfs.clone(),
            self.policy,
            &self.dir,
            &format!("commit shard generation {generation}"),
        )?;
        let wals = self.write_generation(generation, payload_tag, router, shards)?;
        self.write_manifest(generation)?;
        self.committed = generation;
        // Retention is advisory: a failure here never loses committed
        // state, it only leaves extra fallback generations behind.
        let _ = self.apply_retention();
        Ok(wals)
    }

    /// Reopens the committed generation's WALs for appending, truncating
    /// torn tails at `valid_lens` first.
    pub fn open_committed_wals(&self, valid_lens: &[u64]) -> PersistResult<Vec<WalWriter>> {
        assert_eq!(valid_lens.len(), self.num_shards as usize);
        (0..self.num_shards)
            .map(|shard| {
                WalWriter::open_with(
                    self.vfs.clone(),
                    self.policy,
                    &shard_wal_path(&self.dir, shard, self.committed),
                    valid_lens[shard as usize],
                )
            })
            .collect()
    }

    /// The committed generation number.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// The number of shards the store was created with.
    pub fn num_shards(&self) -> u32 {
        self.num_shards
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The stream fingerprint every file in the store carries.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Writes generation `generation`'s snapshot set and creates its
    /// WALs, without touching the manifest.
    ///
    /// The router snapshot is written **last**: when the manifest is lost
    /// and [`newest_complete_generation`] has to infer the committed set
    /// from the files on disk, a validating router certifies that every
    /// shard snapshot and WAL of its generation was fully written before
    /// it — a crash mid-set leaves no router, so a partial set can never
    /// be mistaken for a complete store with fewer shards.
    fn write_generation(
        &mut self,
        generation: u64,
        payload_tag: u32,
        router: &impl Encode,
        shards: &[impl Encode],
    ) -> PersistResult<Vec<WalWriter>> {
        for (shard, payload) in shards.iter().enumerate() {
            write_snapshot_with(
                self.vfs.as_ref(),
                self.policy,
                &shard_snapshot_path(&self.dir, shard as u32, generation),
                payload_tag,
                self.fingerprint,
                payload,
            )?;
        }
        let wals: PersistResult<Vec<WalWriter>> = (0..self.num_shards)
            .map(|shard| {
                WalWriter::create_with(
                    self.vfs.clone(),
                    self.policy,
                    &shard_wal_path(&self.dir, shard, generation),
                    self.fingerprint,
                )
            })
            .collect();
        let wals = wals?;
        write_snapshot_with(
            self.vfs.as_ref(),
            self.policy,
            &router_path(&self.dir, generation),
            payload_tag,
            self.fingerprint,
            router,
        )?;
        Ok(wals)
    }

    fn write_manifest(&self, committed: u64) -> PersistResult<()> {
        let mut w = Writer::with_capacity(SHARD_MANIFEST_LEN);
        w.write_raw(&SHARD_MANIFEST_MAGIC);
        w.write_u32(FORMAT_VERSION);
        w.write_u64(self.fingerprint);
        w.write_u32(self.num_shards);
        w.write_u64(committed);
        let crc = crc64(w.as_bytes());
        w.write_u64(crc);
        write_file_atomic(
            self.vfs.as_ref(),
            self.policy,
            &manifest_path(&self.dir),
            w.as_bytes(),
        )
    }

    /// Deletes generation files older than the retention window.
    fn apply_retention(&self) -> PersistResult<()> {
        let oldest_kept = self.committed.saturating_sub(RETAINED_GENERATIONS - 1);
        let entries = self
            .vfs
            .list(&self.dir)
            .map_err(|e| PersistError::io(format!("list store directory {:?}", self.dir), &e))?;
        for path in entries {
            if let Some(generation) = parse_shard_file(&path) {
                if generation < oldest_kept {
                    self.vfs.remove(&path).map_err(|e| {
                        PersistError::io(format!("remove retired generation file {path:?}"), &e)
                    })?;
                }
            }
        }
        Ok(())
    }
}

/// Reads and validates the sharded manifest, returning
/// `(fingerprint, num_shards, committed)`.
pub fn read_shard_manifest(vfs: &dyn Vfs, dir: &Path) -> PersistResult<(u64, u32, u64)> {
    let path = manifest_path(dir);
    let data = vfs
        .read(&path)
        .map_err(|e| PersistError::io(format!("read manifest {path:?}"), &e))?;
    if data.len() < SHARD_MANIFEST_LEN {
        return Err(PersistError::BadMagic {
            context: format!("shard manifest {path:?}"),
        });
    }
    let mut r = Reader::new(&data);
    let magic = r.read_raw(8)?;
    if magic != SHARD_MANIFEST_MAGIC {
        return Err(PersistError::BadMagic {
            context: format!("shard manifest {path:?}"),
        });
    }
    let version = r.read_u32()?;
    if version != FORMAT_VERSION {
        return Err(PersistError::VersionMismatch {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let fingerprint = r.read_u64()?;
    let num_shards = r.read_u32()?;
    let committed = r.read_u64()?;
    let recorded_crc = r.read_u64()?;
    r.expect_end().map_err(|_| {
        PersistError::Corrupt(format!("shard manifest {path:?} carries trailing bytes"))
    })?;
    let actual_crc = crc64(&data[..SHARD_MANIFEST_LEN - 8]);
    if actual_crc != recorded_crc {
        return Err(PersistError::ChecksumMismatch {
            context: format!("shard manifest {path:?}"),
            expected: recorded_crc,
            found: actual_crc,
        });
    }
    if num_shards == 0 {
        return Err(PersistError::Corrupt(format!(
            "shard manifest {path:?} declares zero shards"
        )));
    }
    Ok((fingerprint, num_shards, committed))
}

/// Loads one generation set (router + every shard snapshot).  On failure
/// returns the corrupt file to quarantine (`None` if it was merely
/// missing) and the error.
#[allow(clippy::type_complexity)]
fn load_generation_set(
    vfs: &dyn Vfs,
    dir: &Path,
    generation: u64,
    num_shards: u32,
    payload_tag: u32,
    expected_fingerprint: Option<u64>,
) -> Result<(Vec<u8>, Vec<Vec<u8>>, u64), (Option<PathBuf>, PersistError)> {
    let classify = |path: PathBuf, err: PersistError| {
        let missing = matches!(
            &err,
            PersistError::Io { kind, .. } if *kind == std::io::ErrorKind::NotFound
        );
        (if missing { None } else { Some(path) }, err)
    };
    let path = router_path(dir, generation);
    let (router_payload, fingerprint) =
        read_snapshot_bytes_with(vfs, &path, payload_tag, expected_fingerprint)
            .map_err(|err| classify(path, err))?;
    let mut shard_payloads = Vec::with_capacity(num_shards as usize);
    for shard in 0..num_shards {
        let path = shard_snapshot_path(dir, shard, generation);
        let (payload, shard_fingerprint) =
            read_snapshot_bytes_with(vfs, &path, payload_tag, expected_fingerprint)
                .map_err(|err| classify(path.clone(), err))?;
        if shard_fingerprint != fingerprint {
            return Err((
                Some(path),
                PersistError::FingerprintMismatch {
                    expected: fingerprint,
                    found: shard_fingerprint,
                },
            ));
        }
        shard_payloads.push(payload);
    }
    Ok((router_payload, shard_payloads, fingerprint))
}

/// The newest generation with a complete snapshot set in `dir`, with its
/// shard count — used to rebuild a lost manifest.
fn newest_complete_generation(
    vfs: &dyn Vfs,
    dir: &Path,
    payload_tag: u32,
) -> PersistResult<Option<(u64, u32)>> {
    let entries = match vfs.list(dir) {
        Ok(entries) => entries,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(err) => {
            return Err(PersistError::io(
                format!("list store directory {dir:?}"),
                &err,
            ))
        }
    };
    // Candidate generations, newest first, with the shard count observed
    // on disk; a generation counts only if its full set validates.
    let mut generations: Vec<u64> = entries.iter().filter_map(|p| parse_shard_file(p)).collect();
    generations.sort_unstable();
    generations.dedup();
    for &generation in generations.iter().rev() {
        let num_shards = (0..)
            .take_while(|&shard| {
                entries
                    .iter()
                    .any(|p| *p == shard_snapshot_path(dir, shard, generation))
            })
            .count() as u32;
        if num_shards == 0 {
            continue;
        }
        if load_generation_set(vfs, dir, generation, num_shards, payload_tag, None).is_ok() {
            return Ok(Some((generation, num_shards)));
        }
    }
    Ok(None)
}

/// Removes generation files newer than the committed generation (debris
/// of a crash mid-commit), returning how many files were removed.
fn remove_uncommitted_generations(
    vfs: &dyn Vfs,
    dir: &Path,
    committed: u64,
) -> PersistResult<usize> {
    let entries = vfs
        .list(dir)
        .map_err(|e| PersistError::io(format!("list store directory {dir:?}"), &e))?;
    let mut removed = 0;
    for path in entries {
        if let Some(generation) = parse_shard_file(&path) {
            if generation > committed {
                vfs.remove(&path).map_err(|e| {
                    PersistError::io(format!("remove uncommitted generation file {path:?}"), &e)
                })?;
                removed += 1;
            }
        }
    }
    Ok(removed)
}

/// Reads the committed generation number of the shard store in `dir` on
/// the production filesystem — a convenience for tests and benchmarks.
pub fn committed_shard_generation(dir: &Path) -> PersistResult<u64> {
    read_shard_manifest(&StdVfs, dir).map(|(_, _, committed)| committed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_file_names_parse_and_generation_files_do_not_collide() {
        let dir = Path::new("/x");
        assert_eq!(parse_shard_file(&router_path(dir, 41)), Some(41));
        assert_eq!(parse_shard_file(&shard_snapshot_path(dir, 3, 41)), Some(41));
        assert_eq!(parse_shard_file(&shard_wal_path(dir, 0, 7)), Some(7));
        assert_eq!(parse_shard_file(Path::new("/x/MANIFEST")), None);
        assert_eq!(parse_shard_file(Path::new("/x/LOCK")), None);
        assert_eq!(parse_shard_file(Path::new("/x/quarantine")), None);
        assert_eq!(
            parse_shard_file(Path::new("/x/shard.abc.000001.gsmb")),
            None
        );
        // Single-store names do not parse as sharded ones and vice versa.
        assert_eq!(parse_shard_file(Path::new("/x/snapshot.000041.gsmb")), None);
    }
}
