//! The write-ahead log: an append-only file of checksummed records.
//!
//! Layout:
//!
//! ```text
//! header:  magic "GSMBWAL1" (8 B) │ version u32 │ fingerprint u64
//! record:  payload len u32 │ len guard u32 (= !len) │ payload crc u64 │ payload bytes
//! record:  ...
//! ```
//!
//! The **length guard** (the bitwise complement of the length, checked
//! before the length is trusted) exists so that a corrupted length field in
//! the *middle* of the log cannot masquerade as a torn tail: without it, a
//! bit flip that raises a record's declared length past the end of the file
//! would look exactly like a crash artefact and recovery would silently
//! drop — and then truncate away — every valid record behind it.
//!
//! Records are framed, not indexed: replay is a linear scan.  Each record
//! is appended with a single `write` followed by an fsync, so after a
//! crash the file is a valid prefix of the log plus, at worst, one **torn
//! tail** — a final record whose bytes were only partially written.
//!
//! [`read_wal`] distinguishes the two failure shapes:
//!
//! * a record cut short *at the end of the file* is the expected crash
//!   artefact — [`WalReadMode::Recovery`] stops cleanly before it and
//!   reports the valid prefix length so the writer can truncate it away,
//!   while [`WalReadMode::Strict`] turns it into
//!   [`PersistError::Truncated`];
//! * a record whose checksum fails is corruption (bit rot, an external
//!   edit) and is a typed [`PersistError::ChecksumMismatch`] in **both**
//!   modes — recovery never silently skips over a damaged record to
//!   resurrect data behind it.
//!
//! Log creation goes through a temp file + rename like snapshots, so a
//! crash during [`WalWriter::create`] (the compaction truncation point)
//! leaves either the old log or a fresh empty one, never a half header.
//!
//! All IO goes through a [`Vfs`] seam; transient (`EINTR`-class) append
//! failures are retried under the writer's [`RetryPolicy`], with the file
//! truncated back to the last whole record between attempts.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use er_core::{crc64, PersistError, PersistResult};

use crate::codec::{Reader, Writer};
use crate::snapshot::{write_file_atomic, FORMAT_VERSION};
use crate::vfs::{retrying, RetryPolicy, StdVfs, Vfs};

/// Magic bytes opening every write-ahead log.
pub const WAL_MAGIC: [u8; 8] = *b"GSMBWAL1";

/// Byte length of the fixed WAL header.
pub const WAL_HEADER_LEN: usize = 8 + 4 + 8;

/// Byte length of a record frame before its payload
/// (`len | len guard | crc`).
const RECORD_FRAME_LEN: usize = 4 + 4 + 8;

/// How [`read_wal`] treats a record cut short at the end of the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalReadMode {
    /// Any anomaly is an error — used to audit a log that should be whole.
    Strict,
    /// A torn final record is tolerated (it is the expected artefact of a
    /// crash mid-append); checksum mismatches remain errors.
    Recovery,
}

/// The outcome of scanning a write-ahead log.
#[derive(Debug)]
pub struct WalContents {
    /// The validated record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// File length up to and including the last valid record — the offset
    /// a recovering writer truncates to before appending again.
    pub valid_len: u64,
    /// True if a torn final record was skipped (recovery mode only).
    pub torn_tail: bool,
    /// The stream fingerprint recorded in the header.
    pub fingerprint: u64,
}

/// An open write-ahead log positioned for appending.
#[derive(Debug)]
pub struct WalWriter {
    vfs: Arc<dyn Vfs>,
    policy: RetryPolicy,
    path: PathBuf,
    /// Length of the log up to the last fully appended record; a failed
    /// append truncates back to this offset so no partial frame is ever
    /// left in front of later records.
    len: u64,
    /// Number of append calls performed (each is one `write`).
    appends: u64,
    /// Number of fsyncs issued — with group commit this can be far below
    /// the number of records appended.
    syncs: u64,
}

impl WalWriter {
    /// Creates (or replaces) the log with a fresh header through the given
    /// VFS.  Atomic: the new log is assembled under a temp name and renamed
    /// into place, making this the WAL truncation point of a compaction.
    pub fn create_with(
        vfs: Arc<dyn Vfs>,
        policy: RetryPolicy,
        path: &Path,
        fingerprint: u64,
    ) -> PersistResult<Self> {
        let mut header = Writer::with_capacity(WAL_HEADER_LEN);
        header.write_raw(&WAL_MAGIC);
        header.write_u32(FORMAT_VERSION);
        header.write_u64(fingerprint);
        write_file_atomic(vfs.as_ref(), policy, path, header.as_bytes())?;
        Ok(WalWriter {
            vfs,
            policy,
            path: path.to_path_buf(),
            len: WAL_HEADER_LEN as u64,
            appends: 0,
            syncs: 0,
        })
    }

    /// Creates (or replaces) the log with a fresh header on the production
    /// filesystem with the default write-path retry policy.
    pub fn create(path: &Path, fingerprint: u64) -> PersistResult<Self> {
        WalWriter::create_with(
            StdVfs::arc(),
            RetryPolicy::default_write(),
            path,
            fingerprint,
        )
    }

    /// Opens an existing log for appending through the given VFS,
    /// truncating it to `valid_len` first (dropping a torn tail reported by
    /// [`read_wal`]).
    pub fn open_with(
        vfs: Arc<dyn Vfs>,
        policy: RetryPolicy,
        path: &Path,
        valid_len: u64,
    ) -> PersistResult<Self> {
        vfs.truncate(path, valid_len)
            .map_err(|e| PersistError::io(format!("truncate wal torn tail in {path:?}"), &e))?;
        Ok(WalWriter {
            vfs,
            policy,
            path: path.to_path_buf(),
            len: valid_len,
            appends: 0,
            syncs: 0,
        })
    }

    /// Opens an existing log for appending on the production filesystem.
    pub fn open(path: &Path, valid_len: u64) -> PersistResult<Self> {
        WalWriter::open_with(StdVfs::arc(), RetryPolicy::default_write(), path, valid_len)
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Length of the log up to the last fully appended record.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the log holds no records (header only).
    pub fn is_empty(&self) -> bool {
        self.len <= WAL_HEADER_LEN as u64
    }

    /// Appends one record (frame + payload in a single write) and syncs it
    /// to stable storage before returning.  On a failed or partial write
    /// (e.g. a full disk) the file is truncated back to the last fully
    /// appended record, so a later successful append never lands behind a
    /// partial frame.  Transient failures are retried under the writer's
    /// [`RetryPolicy`]; each retry starts from the clean prefix.
    pub fn append(&mut self, payload: &[u8]) -> PersistResult<()> {
        self.append_group(&[payload])
    }

    /// Group commit: appends several records as **one** write followed by
    /// **one** fsync.  All records in the group become durable together (a
    /// crash mid-group leaves a valid prefix plus at most one torn frame,
    /// exactly like a single append), so callers may coalesce every batch
    /// queued behind the same log and acknowledge them after one sync —
    /// the fsync cost per batch drops with the queue depth.
    ///
    /// An empty group is a no-op (no write, no sync).  Failure semantics
    /// match [`WalWriter::append`]: the file is truncated back to the last
    /// fully appended group, and transient failures retry from that clean
    /// prefix.
    pub fn append_group(&mut self, payloads: &[&[u8]]) -> PersistResult<()> {
        if payloads.is_empty() {
            return Ok(());
        }
        let total: usize = payloads.iter().map(|p| RECORD_FRAME_LEN + p.len()).sum();
        let mut frame = Writer::with_capacity(total);
        for payload in payloads {
            let len = u32::try_from(payload.len()).map_err(|_| {
                PersistError::Corrupt(format!("wal record of {} bytes exceeds u32", payload.len()))
            })?;
            frame.write_u32(len);
            frame.write_u32(!len);
            frame.write_u64(crc64(payload));
            frame.write_raw(payload);
        }

        let base = self.len;
        let vfs = self.vfs.as_ref();
        let path = &self.path;
        let (appends, syncs) = (&mut self.appends, &mut self.syncs);
        let o = crate::obs::obs();
        retrying(self.policy, || {
            *appends += 1;
            o.wal_appends.inc();
            o.wal_append_bytes.add(frame.len() as u64);
            let write = vfs
                .append(path, frame.as_bytes())
                .map_err(|e| PersistError::io("append wal record", &e))
                .and_then(|()| {
                    *syncs += 1;
                    o.wal_fsyncs.inc();
                    let fsync_timer = o.fsync_ns.start_timer();
                    let synced = vfs
                        .sync_file(path)
                        .map_err(|e| PersistError::io("sync wal record", &e));
                    fsync_timer.observe();
                    synced
                });
            if write.is_err() {
                // Best effort: drop whatever partial frame made it to disk
                // so a retry (or a later successful append) starts clean.
                let _ = vfs.truncate(path, base);
            }
            write
        })?;
        self.len += frame.len() as u64;
        Ok(())
    }

    /// Number of append writes performed by this writer.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Number of fsyncs issued by this writer — the group-commit metric
    /// (`syncs / records` falls below 1 as groups deepen).
    pub fn syncs(&self) -> u64 {
        self.syncs
    }
}

/// Scans a write-ahead log through the given VFS, validating the header
/// and every record checksum.  See [`WalReadMode`] for how a torn tail is
/// treated.
pub fn read_wal_with(
    vfs: &dyn Vfs,
    path: &Path,
    expected_fingerprint: Option<u64>,
    mode: WalReadMode,
) -> PersistResult<WalContents> {
    let data = vfs
        .read(path)
        .map_err(|e| PersistError::io(format!("read wal {path:?}"), &e))?;
    if data.len() < WAL_HEADER_LEN {
        return Err(PersistError::BadMagic {
            context: format!("wal {path:?}"),
        });
    }
    let mut r = Reader::new(&data);
    let magic = r.read_raw(8)?;
    if magic != WAL_MAGIC {
        return Err(PersistError::BadMagic {
            context: format!("wal {path:?}"),
        });
    }
    let version = r.read_u32()?;
    if version != FORMAT_VERSION {
        return Err(PersistError::VersionMismatch {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let fingerprint = r.read_u64()?;
    if let Some(expected) = expected_fingerprint {
        if fingerprint != expected {
            return Err(PersistError::FingerprintMismatch {
                expected,
                found: fingerprint,
            });
        }
    }

    let mut records = Vec::new();
    let mut valid_len = WAL_HEADER_LEN as u64;
    let mut torn_tail = false;
    while r.remaining() > 0 {
        // A record cut short by the end of the file is a torn tail;
        // anything that parses but fails a check is corruption.  The
        // length is only trusted once its guard (the stored complement)
        // validates — a corrupted length must surface as corruption, not
        // pose as a torn tail and hide valid records behind it.
        let torn = |mode| match mode {
            WalReadMode::Recovery => Ok(true),
            WalReadMode::Strict => Err(PersistError::Truncated {
                context: "wal record".into(),
            }),
        };
        if r.remaining() < 8 {
            torn_tail = torn(mode)?;
            break;
        }
        let at = data.len() - r.remaining();
        let len = u32::from_le_bytes(data[at..at + 4].try_into().unwrap());
        let guard = u32::from_le_bytes(data[at + 4..at + 8].try_into().unwrap());
        if guard != !len {
            return Err(PersistError::ChecksumMismatch {
                context: "wal record length guard".into(),
                expected: u64::from(!len),
                found: u64::from(guard),
            });
        }
        let len = len as usize;
        if r.remaining() < RECORD_FRAME_LEN + len {
            torn_tail = torn(mode)?;
            break;
        }
        r.read_u32()?;
        r.read_u32()?;
        let recorded_crc = r.read_u64()?;
        let payload = r.read_raw(len)?;
        let actual_crc = crc64(payload);
        if actual_crc != recorded_crc {
            return Err(PersistError::ChecksumMismatch {
                context: "wal record".into(),
                expected: recorded_crc,
                found: actual_crc,
            });
        }
        records.push(payload.to_vec());
        valid_len += (RECORD_FRAME_LEN + len) as u64;
    }
    Ok(WalContents {
        records,
        valid_len,
        torn_tail,
        fingerprint,
    })
}

/// Scans a write-ahead log on the production filesystem.  See
/// [`read_wal_with`].
pub fn read_wal(
    path: &Path,
    expected_fingerprint: Option<u64>,
    mode: WalReadMode,
) -> PersistResult<WalContents> {
    read_wal_with(&StdVfs, path, expected_fingerprint, mode)
}
