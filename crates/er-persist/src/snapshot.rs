//! Atomic, checksummed snapshot files.
//!
//! A snapshot is one self-describing file:
//!
//! ```text
//! ┌──────────────┬─────────┬─────────────┬─────────────┬─────────────┬─────────────┬─────────┐
//! │ magic (8 B)  │ version │ payload tag │ fingerprint │ payload len │ payload crc │ payload │
//! │ "GSMBSNP1"   │ u32     │ u32         │ u64         │ u64         │ u64 (CRC-64)│ bytes   │
//! └──────────────┴─────────┴─────────────┴─────────────┴─────────────┴─────────────┴─────────┘
//! ```
//!
//! * the **payload tag** names what the payload is (a streaming index, a
//!   trained model, a prepared dataset, ...) so loading the wrong kind of
//!   snapshot fails cleanly instead of mis-decoding;
//! * the **fingerprint** ties the file to its corpus/stream — recovery
//!   refuses to mix state from different streams;
//! * the **CRC-64/XZ** digest covers the entire payload, so any flipped or
//!   missing byte surfaces as [`PersistError::ChecksumMismatch`] or
//!   [`PersistError::Truncated`] before a single field is decoded.
//!
//! Writes are atomic: the file is assembled under a temporary name in the
//! same directory, fsynced, and renamed over the destination, so a crash
//! mid-write leaves either the old snapshot or the new one — never a
//! half-written file.  (A crash can leak the temp file itself;
//! [`sweep_tmp_files`] removes leaked temps when a store is opened.)
//!
//! All IO goes through a [`Vfs`]: production uses [`StdVfs`](crate::StdVfs),
//! the fault-injection suites substitute a `FaultVfs`.  The `*_with`
//! functions take the seam explicitly; the plain names are std-VFS
//! conveniences with the default write-path [`RetryPolicy`].

use std::path::Path;
use std::sync::Arc;

use er_core::{crc64, PersistError, PersistResult};

use crate::codec::{Decode, Encode, Reader, Writer};
use crate::vfs::{retrying, RetryPolicy, StdVfs, Vfs};

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"GSMBSNP1";

/// The on-disk format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Byte length of the fixed snapshot header.
pub const SNAPSHOT_HEADER_LEN: usize = 8 + 4 + 4 + 8 + 8 + 8;

/// True for the errors a directory fsync is allowed to return on
/// filesystems that simply do not support syncing directories (the only
/// tolerated failures — the fsyncgate class of bug was swallowing *all*
/// of them).
fn dir_sync_unsupported(err: &std::io::Error) -> bool {
    matches!(
        err.kind(),
        std::io::ErrorKind::Unsupported | std::io::ErrorKind::InvalidInput
    ) || matches!(err.raw_os_error(), Some(95) | Some(22)) // ENOTSUP | EINVAL
}

/// Fsyncs a directory so renames and unlinks inside it are durable.
/// Filesystems that refuse directory fsync (ENOTSUP/EINVAL) are tolerated;
/// every other failure propagates.
pub fn sync_dir_tolerant(vfs: &dyn Vfs, dir: &Path) -> PersistResult<()> {
    match vfs.sync_dir(dir) {
        Ok(()) => Ok(()),
        Err(err) if dir_sync_unsupported(&err) => Ok(()),
        Err(err) => Err(PersistError::io(format!("sync directory {dir:?}"), &err)),
    }
}

/// Fsyncs the directory containing `path` so a rename or unlink inside it
/// is durable.  See [`sync_dir_tolerant`] for the tolerated failures.
pub fn sync_parent_dir(vfs: &dyn Vfs, path: &Path) -> PersistResult<()> {
    match path.parent() {
        Some(parent) => sync_dir_tolerant(vfs, parent),
        None => Ok(()),
    }
}

/// Removes `*.tmp` files leaked into `dir` by a crash mid-snapshot-write,
/// returning how many were swept.  A missing directory sweeps nothing.
pub fn sweep_tmp_files(vfs: &dyn Vfs, dir: &Path) -> PersistResult<usize> {
    let entries = match vfs.list(dir) {
        Ok(entries) => entries,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(err) => return Err(PersistError::io(format!("list directory {dir:?}"), &err)),
    };
    let mut swept = 0;
    for path in entries {
        if path.extension().and_then(|e| e.to_str()) == Some("tmp") {
            vfs.remove(&path)
                .map_err(|e| PersistError::io(format!("remove stale temp file {path:?}"), &e))?;
            swept += 1;
        }
    }
    if swept > 0 {
        sync_dir_tolerant(vfs, dir)?;
    }
    Ok(swept)
}

/// Assembles the full snapshot file image for `payload`.
pub(crate) fn snapshot_file_bytes(
    payload_tag: u32,
    fingerprint: u64,
    payload: &impl Encode,
) -> Vec<u8> {
    let mut body = Writer::new();
    payload.encode(&mut body);
    let body = body.into_bytes();

    let mut file_bytes = Writer::with_capacity(SNAPSHOT_HEADER_LEN + body.len());
    file_bytes.write_raw(&SNAPSHOT_MAGIC);
    file_bytes.write_u32(FORMAT_VERSION);
    file_bytes.write_u32(payload_tag);
    file_bytes.write_u64(fingerprint);
    file_bytes.write_u64(body.len() as u64);
    file_bytes.write_u64(crc64(&body));
    file_bytes.write_raw(&body);
    file_bytes.into_bytes()
}

/// Writes a pre-assembled file image atomically: temp file in the same
/// directory, fsync, rename over the destination, parent-directory fsync.
/// The whole sequence is one retry unit — after a failed fsync the temp
/// file's durability is unknown, so a retry re-writes it from scratch
/// rather than re-syncing (the fsyncgate rule).
pub(crate) fn write_file_atomic(
    vfs: &dyn Vfs,
    policy: RetryPolicy,
    path: &Path,
    bytes: &[u8],
) -> PersistResult<()> {
    let tmp = path.with_extension("tmp");
    retrying(policy, || {
        vfs.create(&tmp, bytes)
            .map_err(|e| PersistError::io(format!("create temp file {tmp:?}"), &e))?;
        vfs.sync_file(&tmp)
            .map_err(|e| PersistError::io(format!("sync temp file {tmp:?}"), &e))?;
        vfs.rename(&tmp, path)
            .map_err(|e| PersistError::io(format!("rename {tmp:?} into place at {path:?}"), &e))?;
        sync_parent_dir(vfs, path)
    })
}

/// Encodes `payload` and writes it atomically to `path` through the given
/// VFS and retry policy.
pub fn write_snapshot_with(
    vfs: &dyn Vfs,
    policy: RetryPolicy,
    path: &Path,
    payload_tag: u32,
    fingerprint: u64,
    payload: &impl Encode,
) -> PersistResult<()> {
    let bytes = snapshot_file_bytes(payload_tag, fingerprint, payload);
    let o = crate::obs::obs();
    o.snapshot_writes.inc();
    o.snapshot_bytes.add(bytes.len() as u64);
    write_file_atomic(vfs, policy, path, &bytes)
}

/// Encodes `payload` and writes it atomically (temp file + rename) to
/// `path` under the given payload tag and corpus fingerprint, using the
/// production filesystem and the default write-path retry policy.
pub fn write_snapshot(
    path: &Path,
    payload_tag: u32,
    fingerprint: u64,
    payload: &impl Encode,
) -> PersistResult<()> {
    write_snapshot_with(
        &StdVfs,
        RetryPolicy::default_write(),
        path,
        payload_tag,
        fingerprint,
        payload,
    )
}

/// Validates a snapshot image in memory, returning the payload slice and
/// the fingerprint recorded in the header.
fn validated_payload<'a>(
    data: &'a [u8],
    path: &Path,
    payload_tag: u32,
    expected_fingerprint: Option<u64>,
) -> PersistResult<(&'a [u8], u64)> {
    let mut r = Reader::new(data);
    let magic = r.read_raw(8).map_err(|_| PersistError::BadMagic {
        context: format!("snapshot {path:?}"),
    })?;
    if magic != SNAPSHOT_MAGIC {
        return Err(PersistError::BadMagic {
            context: format!("snapshot {path:?}"),
        });
    }
    let version = r.read_u32()?;
    if version != FORMAT_VERSION {
        return Err(PersistError::VersionMismatch {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let tag = r.read_u32()?;
    if tag != payload_tag {
        return Err(PersistError::Corrupt(format!(
            "snapshot payload tag {tag:#010x} does not match the expected {payload_tag:#010x}"
        )));
    }
    let fingerprint = r.read_u64()?;
    if let Some(expected) = expected_fingerprint {
        if fingerprint != expected {
            return Err(PersistError::FingerprintMismatch {
                expected,
                found: fingerprint,
            });
        }
    }
    let len = r.read_usize()?;
    let recorded_crc = r.read_u64()?;
    if r.remaining() < len {
        return Err(PersistError::Truncated {
            context: "snapshot payload".into(),
        });
    }
    if r.remaining() > len {
        return Err(PersistError::Corrupt(format!(
            "{} bytes beyond the declared snapshot payload",
            r.remaining() - len
        )));
    }
    let payload = r.read_raw(len)?;
    let actual_crc = crc64(payload);
    if actual_crc != recorded_crc {
        return Err(PersistError::ChecksumMismatch {
            context: "snapshot payload".into(),
            expected: recorded_crc,
            found: actual_crc,
        });
    }
    Ok((payload, fingerprint))
}

fn read_file(vfs: &dyn Vfs, path: &Path) -> PersistResult<Vec<u8>> {
    vfs.read(path)
        .map_err(|e| PersistError::io(format!("read snapshot {path:?}"), &e))
}

/// Reads and validates a snapshot file through the given VFS, returning
/// the raw payload bytes and the fingerprint recorded in the header.
pub fn read_snapshot_bytes_with(
    vfs: &dyn Vfs,
    path: &Path,
    payload_tag: u32,
    expected_fingerprint: Option<u64>,
) -> PersistResult<(Vec<u8>, u64)> {
    let data = read_file(vfs, path)?;
    let (payload, fingerprint) = validated_payload(&data, path, payload_tag, expected_fingerprint)?;
    Ok((payload.to_vec(), fingerprint))
}

/// Reads and validates a snapshot file, returning the raw payload bytes and
/// the fingerprint recorded in the header.
///
/// `expected_fingerprint` of `Some(f)` additionally enforces that the file
/// belongs to the expected corpus/stream.
pub fn read_snapshot_bytes(
    path: &Path,
    payload_tag: u32,
    expected_fingerprint: Option<u64>,
) -> PersistResult<(Vec<u8>, u64)> {
    read_snapshot_bytes_with(&StdVfs, path, payload_tag, expected_fingerprint)
}

/// Reads, validates and decodes a snapshot through the given VFS.
pub fn read_snapshot_with<T: Decode>(
    vfs: &dyn Vfs,
    path: &Path,
    payload_tag: u32,
    expected_fingerprint: Option<u64>,
) -> PersistResult<(T, u64)> {
    let data = read_file(vfs, path)?;
    let (payload, fingerprint) = validated_payload(&data, path, payload_tag, expected_fingerprint)?;
    let mut r = Reader::new(payload);
    let value = T::decode(&mut r)?;
    r.expect_end()?;
    Ok((value, fingerprint))
}

/// Reads, validates and decodes a snapshot, returning the payload and the
/// fingerprint recorded in the header.  Decodes straight from the validated
/// file image — no second copy of the payload is made.
pub fn read_snapshot<T: Decode>(
    path: &Path,
    payload_tag: u32,
    expected_fingerprint: Option<u64>,
) -> PersistResult<(T, u64)> {
    read_snapshot_with(&StdVfs, path, payload_tag, expected_fingerprint)
}

/// Decodes an already-validated payload image (as returned inside a
/// [`RecoveredGeneration`](crate::generation::RecoveredGeneration)).
pub fn decode_snapshot_payload<T: Decode>(payload: &[u8]) -> PersistResult<T> {
    let mut r = Reader::new(payload);
    let value = T::decode(&mut r)?;
    r.expect_end()?;
    Ok(value)
}

/// A shared handle to a [`Vfs`] — the form the higher layers store.
pub type VfsHandle = Arc<dyn Vfs>;
