//! Atomic, checksummed snapshot files.
//!
//! A snapshot is one self-describing file:
//!
//! ```text
//! ┌──────────────┬─────────┬─────────────┬─────────────┬─────────────┬─────────────┬─────────┐
//! │ magic (8 B)  │ version │ payload tag │ fingerprint │ payload len │ payload crc │ payload │
//! │ "GSMBSNP1"   │ u32     │ u32         │ u64         │ u64         │ u64 (CRC-64)│ bytes   │
//! └──────────────┴─────────┴─────────────┴─────────────┴─────────────┴─────────────┴─────────┘
//! ```
//!
//! * the **payload tag** names what the payload is (a streaming index, a
//!   trained model, a prepared dataset, ...) so loading the wrong kind of
//!   snapshot fails cleanly instead of mis-decoding;
//! * the **fingerprint** ties the file to its corpus/stream — recovery
//!   refuses to mix state from different streams;
//! * the **CRC-64/XZ** digest covers the entire payload, so any flipped or
//!   missing byte surfaces as [`PersistError::ChecksumMismatch`] or
//!   [`PersistError::Truncated`] before a single field is decoded.
//!
//! Writes are atomic: the file is assembled under a temporary name in the
//! same directory, fsynced, and renamed over the destination, so a crash
//! mid-write leaves either the old snapshot or the new one — never a
//! half-written file.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use er_core::{crc64, PersistError, PersistResult};

use crate::codec::{Decode, Encode, Reader, Writer};

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"GSMBSNP1";

/// The on-disk format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Byte length of the fixed snapshot header.
pub const SNAPSHOT_HEADER_LEN: usize = 8 + 4 + 4 + 8 + 8 + 8;

/// Fsyncs the directory containing `path` so the rename itself is durable.
/// Best effort: some filesystems refuse to sync directories.
pub(crate) fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
}

/// Encodes `payload` and writes it atomically (temp file + rename) to
/// `path` under the given payload tag and corpus fingerprint.
pub fn write_snapshot(
    path: &Path,
    payload_tag: u32,
    fingerprint: u64,
    payload: &impl Encode,
) -> PersistResult<()> {
    let mut body = Writer::new();
    payload.encode(&mut body);
    let body = body.into_bytes();

    let mut file_bytes = Writer::with_capacity(SNAPSHOT_HEADER_LEN + body.len());
    file_bytes.write_raw(&SNAPSHOT_MAGIC);
    file_bytes.write_u32(FORMAT_VERSION);
    file_bytes.write_u32(payload_tag);
    file_bytes.write_u64(fingerprint);
    file_bytes.write_u64(body.len() as u64);
    file_bytes.write_u64(crc64(&body));
    file_bytes.write_raw(&body);

    let tmp = path.with_extension("tmp");
    let mut file = fs::File::create(&tmp)
        .map_err(|e| PersistError::io(format!("create snapshot temp file {tmp:?}"), &e))?;
    file.write_all(file_bytes.as_bytes())
        .map_err(|e| PersistError::io("write snapshot payload", &e))?;
    file.sync_all()
        .map_err(|e| PersistError::io("sync snapshot temp file", &e))?;
    drop(file);
    fs::rename(&tmp, path)
        .map_err(|e| PersistError::io(format!("rename snapshot into place at {path:?}"), &e))?;
    sync_parent_dir(path);
    Ok(())
}

/// Validates a snapshot image in memory, returning the payload slice and
/// the fingerprint recorded in the header.
fn validated_payload<'a>(
    data: &'a [u8],
    path: &Path,
    payload_tag: u32,
    expected_fingerprint: Option<u64>,
) -> PersistResult<(&'a [u8], u64)> {
    let mut r = Reader::new(data);
    let magic = r.read_raw(8).map_err(|_| PersistError::BadMagic {
        context: format!("snapshot {path:?}"),
    })?;
    if magic != SNAPSHOT_MAGIC {
        return Err(PersistError::BadMagic {
            context: format!("snapshot {path:?}"),
        });
    }
    let version = r.read_u32()?;
    if version != FORMAT_VERSION {
        return Err(PersistError::VersionMismatch {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let tag = r.read_u32()?;
    if tag != payload_tag {
        return Err(PersistError::Corrupt(format!(
            "snapshot payload tag {tag:#010x} does not match the expected {payload_tag:#010x}"
        )));
    }
    let fingerprint = r.read_u64()?;
    if let Some(expected) = expected_fingerprint {
        if fingerprint != expected {
            return Err(PersistError::FingerprintMismatch {
                expected,
                found: fingerprint,
            });
        }
    }
    let len = r.read_usize()?;
    let recorded_crc = r.read_u64()?;
    if r.remaining() < len {
        return Err(PersistError::Truncated {
            context: "snapshot payload".into(),
        });
    }
    if r.remaining() > len {
        return Err(PersistError::Corrupt(format!(
            "{} bytes beyond the declared snapshot payload",
            r.remaining() - len
        )));
    }
    let payload = r.read_raw(len)?;
    let actual_crc = crc64(payload);
    if actual_crc != recorded_crc {
        return Err(PersistError::ChecksumMismatch {
            context: "snapshot payload".into(),
            expected: recorded_crc,
            found: actual_crc,
        });
    }
    Ok((payload, fingerprint))
}

/// Reads and validates a snapshot file, returning the raw payload bytes and
/// the fingerprint recorded in the header.
///
/// `expected_fingerprint` of `Some(f)` additionally enforces that the file
/// belongs to the expected corpus/stream.
pub fn read_snapshot_bytes(
    path: &Path,
    payload_tag: u32,
    expected_fingerprint: Option<u64>,
) -> PersistResult<(Vec<u8>, u64)> {
    let data =
        fs::read(path).map_err(|e| PersistError::io(format!("read snapshot {path:?}"), &e))?;
    let (payload, fingerprint) = validated_payload(&data, path, payload_tag, expected_fingerprint)?;
    Ok((payload.to_vec(), fingerprint))
}

/// Reads, validates and decodes a snapshot, returning the payload and the
/// fingerprint recorded in the header.  Decodes straight from the validated
/// file image — no second copy of the payload is made.
pub fn read_snapshot<T: Decode>(
    path: &Path,
    payload_tag: u32,
    expected_fingerprint: Option<u64>,
) -> PersistResult<(T, u64)> {
    let data =
        fs::read(path).map_err(|e| PersistError::io(format!("read snapshot {path:?}"), &e))?;
    let (payload, fingerprint) = validated_payload(&data, path, payload_tag, expected_fingerprint)?;
    let mut r = Reader::new(payload);
    let value = T::decode(&mut r)?;
    r.expect_end()?;
    Ok((value, fingerprint))
}
