//! The filesystem seam: every byte the durability layer moves goes through
//! a [`Vfs`].
//!
//! Production code uses [`StdVfs`], a thin veneer over `std::fs`.  Tests
//! use [`FaultVfs`], a deterministic, seeded wrapper that can inject the
//! failure modes real storage exhibits:
//!
//! * **ENOSPC** — a write lands partially and then the disk is full;
//! * **fsync failure** — the sync call fails and (per the fsyncgate
//!   lesson) must *not* be retried: the write path has to re-issue the
//!   whole operation;
//! * **short writes** — a prefix of the data reaches the file before the
//!   error;
//! * **torn renames** — the rename returns an error and (seeded coin)
//!   either took effect or did not;
//! * **kill-after-op-N crash points** — the N-th operation applies
//!   *partially* (writes keep a seeded prefix, renames flip a seeded
//!   coin, everything else is dropped) and every later operation fails,
//!   simulating the process dying at that exact point.  The directory
//!   left behind is exactly what a recovery sees after a real crash.
//!
//! Every operation a [`FaultVfs`] performs is counted and logged
//! ([`FaultVfs::op_count`], [`FaultVfs::op_log`]), so a test can first run
//! a trace against a counting instance, then re-run it once per operation
//! index with a crash or fault planted there — the ALICE-style exploration
//! in `er-stream/tests/crash_points.rs`.
//!
//! The trait is path-based (no open-handle state): appends and syncs name
//! the file each time.  The write paths are fsync-bound, so the extra
//! opens are noise, and a stateless seam makes fault injection exact —
//! one call, one crash point.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use er_core::{derive_seed, PersistResult};

/// The filesystem operations the durability layer performs.  Everything in
/// `er-persist` (and the durable wrappers above it) does its IO through
/// this trait, so a test can substitute [`FaultVfs`] and fail any single
/// operation.
pub trait Vfs: Send + Sync + std::fmt::Debug {
    /// Creates (or truncates) `path` and writes `data` to it.  Not atomic
    /// and not synced — callers wanting atomicity write a temp file, sync
    /// it and [`rename`](Vfs::rename) it into place.
    fn create(&self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Creates `path` and writes `data` to it, failing with
    /// [`std::io::ErrorKind::AlreadyExists`] if the file exists — the
    /// atomic test-and-set primitive exclusive lock files are built on
    /// (`O_CREAT | O_EXCL`).
    fn create_new(&self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Appends `data` at the end of an existing file.
    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Truncates (or extends with zeros) `path` to `len` bytes.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;

    /// Flushes a file's data and metadata to stable storage (`fsync`).
    fn sync_file(&self, path: &Path) -> io::Result<()>;

    /// Flushes a *directory*, making renames and unlinks inside it
    /// durable.  Callers use [`sync_parent_dir`](crate::snapshot::sync_parent_dir),
    /// which tolerates filesystems that refuse directory fsync.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;

    /// Atomically renames `from` to `to`, replacing `to` if it exists.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Lists the entries of a directory (files and subdirectories).
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;

    /// Removes a file.
    fn remove(&self, path: &Path) -> io::Result<()>;

    /// Creates a directory and all its parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
}

/// The production [`Vfs`]: straight `std::fs` calls.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdVfs;

impl StdVfs {
    /// A shared handle to the production VFS.
    pub fn arc() -> Arc<dyn Vfs> {
        Arc::new(StdVfs)
    }
}

impl Vfs for StdVfs {
    fn create(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        fs::write(path, data)
    }

    fn create_new(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut file = fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)?;
        file.write_all(data)
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut file = fs::OpenOptions::new().append(true).open(path)?;
        file.write_all(data)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let file = fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(len)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        // fsync flushes the file, not the descriptor: a fresh read-only
        // handle is enough to make previously written data durable.
        let file = fs::File::open(path)?;
        file.sync_all()
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        let dir = fs::File::open(path)?;
        dir.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut entries = Vec::new();
        for entry in fs::read_dir(dir)? {
            entries.push(entry?.path());
        }
        entries.sort();
        Ok(entries)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }
}

/// The kind of a VFS operation, as recorded in a [`FaultVfs`] op log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// [`Vfs::create`].
    Create,
    /// [`Vfs::create_new`].
    CreateNew,
    /// [`Vfs::append`].
    Append,
    /// [`Vfs::truncate`].
    Truncate,
    /// [`Vfs::sync_file`].
    SyncFile,
    /// [`Vfs::sync_dir`].
    SyncDir,
    /// [`Vfs::rename`].
    Rename,
    /// [`Vfs::read`].
    Read,
    /// [`Vfs::list`].
    List,
    /// [`Vfs::remove`].
    Remove,
    /// [`Vfs::create_dir_all`].
    CreateDirAll,
}

impl OpKind {
    /// True for the operations that mutate the directory — the ones worth
    /// injecting write-path faults into.
    pub fn is_write(self) -> bool {
        !matches!(self, OpKind::Read | OpKind::List)
    }

    /// The operation's snake_case name, as it appears in op-log renderings
    /// and `vfs_fault` events.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Create => "create",
            OpKind::CreateNew => "create_new",
            OpKind::Append => "append",
            OpKind::Truncate => "truncate",
            OpKind::SyncFile => "sync_file",
            OpKind::SyncDir => "sync_dir",
            OpKind::Rename => "rename",
            OpKind::Read => "read",
            OpKind::List => "list",
            OpKind::Remove => "remove",
            OpKind::CreateDirAll => "create_dir_all",
        }
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A fault to inject at one specific operation index of a [`FaultVfs`].
#[derive(Debug, Clone, Copy)]
pub struct InjectedFault {
    /// The zero-based operation index the fault fires at.
    pub at_op: u64,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// The failure modes a [`FaultVfs`] can inject (one-shot, at a planned
/// operation index; the VFS keeps working afterwards — unlike a
/// [crash](FaultVfs::crash_at), which is terminal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The disk fills mid-write: a seeded prefix of the data lands, then
    /// the call fails with `ENOSPC`.
    Enospc,
    /// `fsync` fails (the EIO class of fsyncgate).  The data's durability
    /// is unknown; the write path must re-issue the whole operation.
    SyncFailure,
    /// A seeded prefix of the data lands, then a generic write error.
    ShortWrite,
    /// The rename fails; a seeded coin decides whether it took effect
    /// (POSIX renames are atomic — "torn" means the caller cannot know
    /// which side of the atom it is on).
    TornRename,
    /// A transient `EINTR`-class failure: nothing happened, retrying the
    /// same call succeeds.  Exercises the bounded-retry path.
    Transient,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FaultKind::Enospc => "enospc",
            FaultKind::SyncFailure => "sync_failure",
            FaultKind::ShortWrite => "short_write",
            FaultKind::TornRename => "torn_rename",
            FaultKind::Transient => "transient",
        })
    }
}

#[derive(Debug)]
struct FaultState {
    next_op: u64,
    crashed: bool,
    log: Vec<(OpKind, PathBuf)>,
}

/// A deterministic fault-injecting [`Vfs`] wrapping a real directory tree
/// (all effects land through an inner [`StdVfs`], so a recovery with the
/// production VFS sees exactly the bytes the faults left behind).
#[derive(Debug)]
pub struct FaultVfs {
    inner: StdVfs,
    seed: u64,
    crash_at: Option<u64>,
    faults: Vec<InjectedFault>,
    state: Mutex<FaultState>,
}

impl FaultVfs {
    fn new(seed: u64, crash_at: Option<u64>, faults: Vec<InjectedFault>) -> Arc<Self> {
        Arc::new(FaultVfs {
            inner: StdVfs,
            seed,
            crash_at,
            faults,
            state: Mutex::new(FaultState {
                next_op: 0,
                crashed: false,
                log: Vec::new(),
            }),
        })
    }

    /// A fault-free instance that only counts and logs operations — the
    /// dry run that tells an exploration test how many crash points a
    /// trace has.
    pub fn counting(seed: u64) -> Arc<Self> {
        FaultVfs::new(seed, None, Vec::new())
    }

    /// Kills the process at operation `op`: that operation applies
    /// partially (seeded), every later one fails.
    pub fn crash_at(seed: u64, op: u64) -> Arc<Self> {
        FaultVfs::new(seed, Some(op), Vec::new())
    }

    /// Injects the given one-shot faults at their operation indices.
    pub fn with_faults(seed: u64, faults: Vec<InjectedFault>) -> Arc<Self> {
        FaultVfs::new(seed, None, faults)
    }

    /// Number of operations performed (or attempted) so far.
    pub fn op_count(&self) -> u64 {
        self.state.lock().unwrap().next_op
    }

    /// The `(kind, path)` trace of every operation seen so far.
    pub fn op_log(&self) -> Vec<(OpKind, PathBuf)> {
        self.state.lock().unwrap().log.clone()
    }

    /// The op log as a displayable trace — one `#index kind path` line per
    /// operation, the form crash-exploration failures print.
    pub fn op_trace(&self) -> OpTrace {
        OpTrace(self.op_log())
    }

    /// True once the planned crash point has fired.
    pub fn has_crashed(&self) -> bool {
        self.state.lock().unwrap().crashed
    }

    /// A seeded value in `0..=max`, stable per (seed, op index).
    fn seeded(&self, op: u64, max: u64) -> u64 {
        if max == 0 {
            0
        } else {
            derive_seed(self.seed, op) % (max + 1)
        }
    }

    fn crash_error() -> io::Error {
        io::Error::other("simulated crash: the process is dead")
    }

    /// Books one operation: records it, and returns the verdict — proceed
    /// normally, apply partially then die, or fail with an injected fault.
    fn book(&self, kind: OpKind, path: &Path) -> Verdict {
        let mut state = self.state.lock().unwrap();
        if state.crashed {
            return Verdict::Dead;
        }
        let op = state.next_op;
        state.next_op += 1;
        state.log.push((kind, path.to_path_buf()));
        if self.crash_at == Some(op) {
            state.crashed = true;
            er_obs::event::emit("vfs_crash_point", |e| {
                e.push("op", op)
                    .push("kind", kind)
                    .push("path", path.display());
            });
            return Verdict::CrashNow(op);
        }
        if let Some(fault) = self.faults.iter().find(|f| f.at_op == op) {
            er_obs::event::emit("vfs_fault", |e| {
                e.push("op", op)
                    .push("kind", kind)
                    .push("fault", fault.kind)
                    .push("path", path.display());
            });
            return Verdict::Fault(op, fault.kind);
        }
        Verdict::Proceed
    }

    /// Applies a seeded prefix of `data` to the file (create or append),
    /// modelling a write torn by a crash or a filling disk.
    fn partial_write(&self, op: u64, path: &Path, data: &[u8], appending: bool) -> io::Result<()> {
        let keep = self.seeded(op, data.len() as u64) as usize;
        if appending {
            if keep > 0 {
                self.inner.append(path, &data[..keep])?;
            }
        } else {
            self.inner.create(path, &data[..keep])?;
        }
        Ok(())
    }

    fn faulted(
        &self,
        op: u64,
        kind: FaultKind,
        path: &Path,
        data: Option<(&[u8], bool)>,
    ) -> io::Error {
        match kind {
            FaultKind::Enospc => {
                if let Some((data, appending)) = data {
                    let _ = self.partial_write(op, path, data, appending);
                }
                io::Error::from_raw_os_error(28) // ENOSPC
            }
            FaultKind::ShortWrite => {
                if let Some((data, appending)) = data {
                    let _ = self.partial_write(op, path, data, appending);
                }
                io::Error::new(io::ErrorKind::WriteZero, "simulated short write")
            }
            FaultKind::SyncFailure => {
                io::Error::other("simulated fsync failure (EIO): durability unknown")
            }
            FaultKind::TornRename => io::Error::other("simulated torn rename"),
            FaultKind::Transient => {
                io::Error::new(io::ErrorKind::Interrupted, "simulated transient EINTR")
            }
        }
    }
}

/// A displayable [`FaultVfs`] op log: one `#index kind path` line per
/// operation, in execution order.
#[derive(Debug, Clone)]
pub struct OpTrace(pub Vec<(OpKind, PathBuf)>);

impl std::fmt::Display for OpTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, (kind, path)) in self.0.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "#{i:04} {kind} {}", path.display())?;
        }
        Ok(())
    }
}

enum Verdict {
    Proceed,
    /// The crash point: apply the op partially, then die.
    CrashNow(u64),
    /// A one-shot planned fault at this op.
    Fault(u64, FaultKind),
    /// A crash already happened; everything fails.
    Dead,
}

impl Vfs for FaultVfs {
    fn create(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        match self.book(OpKind::Create, path) {
            Verdict::Proceed => self.inner.create(path, data),
            Verdict::CrashNow(op) => {
                let _ = self.partial_write(op, path, data, false);
                Err(FaultVfs::crash_error())
            }
            Verdict::Fault(op, kind) => Err(self.faulted(op, kind, path, Some((data, false)))),
            Verdict::Dead => Err(FaultVfs::crash_error()),
        }
    }

    fn create_new(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        match self.book(OpKind::CreateNew, path) {
            Verdict::Proceed => self.inner.create_new(path, data),
            Verdict::CrashNow(op) => {
                // Only tear the write if the exclusive create would have
                // won; a lost race leaves the existing file untouched.
                if !path.exists() {
                    let _ = self.partial_write(op, path, data, false);
                }
                Err(FaultVfs::crash_error())
            }
            Verdict::Fault(op, kind) => {
                if path.exists() {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        "file exists (simulated fault raced a held lock)",
                    ));
                }
                // A *survived* failure leaves no file: the exclusive
                // create either wins whole or not at all, so the caller's
                // retry sees a free slot (only a crash leaves the torn
                // file behind, and recovery sweeps that).
                Err(self.faulted(op, kind, path, None))
            }
            Verdict::Dead => Err(FaultVfs::crash_error()),
        }
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        match self.book(OpKind::Append, path) {
            Verdict::Proceed => self.inner.append(path, data),
            Verdict::CrashNow(op) => {
                let _ = self.partial_write(op, path, data, true);
                Err(FaultVfs::crash_error())
            }
            Verdict::Fault(op, kind) => Err(self.faulted(op, kind, path, Some((data, true)))),
            Verdict::Dead => Err(FaultVfs::crash_error()),
        }
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        match self.book(OpKind::Truncate, path) {
            Verdict::Proceed => self.inner.truncate(path, len),
            Verdict::CrashNow(_) => Err(FaultVfs::crash_error()),
            Verdict::Fault(op, kind) => Err(self.faulted(op, kind, path, None)),
            Verdict::Dead => Err(FaultVfs::crash_error()),
        }
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        match self.book(OpKind::SyncFile, path) {
            Verdict::Proceed => self.inner.sync_file(path),
            Verdict::CrashNow(_) => Err(FaultVfs::crash_error()),
            Verdict::Fault(op, kind) => Err(self.faulted(op, kind, path, None)),
            Verdict::Dead => Err(FaultVfs::crash_error()),
        }
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        match self.book(OpKind::SyncDir, path) {
            Verdict::Proceed => self.inner.sync_dir(path),
            Verdict::CrashNow(_) => Err(FaultVfs::crash_error()),
            Verdict::Fault(op, kind) => Err(self.faulted(op, kind, path, None)),
            Verdict::Dead => Err(FaultVfs::crash_error()),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.book(OpKind::Rename, from) {
            Verdict::Proceed => self.inner.rename(from, to),
            Verdict::CrashNow(op) => {
                // The rename is atomic on disk; the seeded coin decides
                // which side of the atom the crash landed on.
                if self.seeded(op, 1) == 1 {
                    let _ = self.inner.rename(from, to);
                }
                Err(FaultVfs::crash_error())
            }
            Verdict::Fault(op, kind) => {
                if kind == FaultKind::TornRename && self.seeded(op, 1) == 1 {
                    let _ = self.inner.rename(from, to);
                }
                Err(self.faulted(op, kind, from, None))
            }
            Verdict::Dead => Err(FaultVfs::crash_error()),
        }
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.book(OpKind::Read, path) {
            Verdict::Proceed => self.inner.read(path),
            Verdict::CrashNow(_) | Verdict::Dead => Err(FaultVfs::crash_error()),
            Verdict::Fault(op, kind) => Err(self.faulted(op, kind, path, None)),
        }
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        match self.book(OpKind::List, dir) {
            Verdict::Proceed => self.inner.list(dir),
            Verdict::CrashNow(_) | Verdict::Dead => Err(FaultVfs::crash_error()),
            Verdict::Fault(op, kind) => Err(self.faulted(op, kind, dir, None)),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match self.book(OpKind::Remove, path) {
            Verdict::Proceed => self.inner.remove(path),
            Verdict::CrashNow(_) | Verdict::Dead => Err(FaultVfs::crash_error()),
            Verdict::Fault(op, kind) => Err(self.faulted(op, kind, path, None)),
        }
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        match self.book(OpKind::CreateDirAll, path) {
            Verdict::Proceed => self.inner.create_dir_all(path),
            Verdict::CrashNow(_) | Verdict::Dead => Err(FaultVfs::crash_error()),
            Verdict::Fault(op, kind) => Err(self.faulted(op, kind, path, None)),
        }
    }
}

/// Bounded retry with exponential backoff for the write paths.  Only
/// failures classified [retryable](er_core::PersistError::is_retryable)
/// (`EINTR`-class transients) are retried; ENOSPC, failed fsyncs and
/// corrupt bytes surface immediately.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before attempt `k+1` is `base_backoff * 2^k`.
    pub base_backoff: Duration,
}

impl RetryPolicy {
    /// No retries: every failure surfaces immediately.
    pub const fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
        }
    }

    /// The default write-path policy: 4 attempts, 200µs doubling backoff
    /// (total worst-case sleep ≈ 1.4ms — transient by definition).
    pub const fn default_write() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_micros(200),
        }
    }

    /// The backoff before retrying after `attempt` failures.
    pub fn backoff(&self, attempt: u32) -> Duration {
        self.base_backoff * 2u32.saturating_pow(attempt.min(16))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::default_write()
    }
}

/// Runs `op`, retrying [retryable](er_core::PersistError::is_retryable)
/// failures up to the policy's attempt budget with exponential backoff.
pub fn retrying<T>(
    policy: RetryPolicy,
    mut op: impl FnMut() -> PersistResult<T>,
) -> PersistResult<T> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Err(err) => {
                let o = crate::obs::obs();
                o.errors
                    .with_label(match err.class() {
                        er_core::PersistErrorClass::Retryable => "retryable",
                        er_core::PersistErrorClass::Fatal => "fatal",
                    })
                    .inc();
                if err.is_retryable() && attempt + 1 < policy.max_attempts.max(1) {
                    o.retries.inc();
                    let pause = policy.backoff(attempt);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                    attempt += 1;
                } else {
                    return Err(err);
                }
            }
            ok => return ok,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::PersistError;

    fn scratch(test: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("er-persist-vfs-{test}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn std_vfs_round_trips() {
        let dir = scratch("std");
        let vfs = StdVfs;
        let file = dir.join("a.bin");
        vfs.create(&file, b"hello").unwrap();
        vfs.append(&file, b" world").unwrap();
        assert_eq!(vfs.read(&file).unwrap(), b"hello world");
        vfs.truncate(&file, 5).unwrap();
        assert_eq!(vfs.read(&file).unwrap(), b"hello");
        vfs.sync_file(&file).unwrap();
        vfs.sync_dir(&dir).unwrap();
        let renamed = dir.join("b.bin");
        vfs.rename(&file, &renamed).unwrap();
        assert_eq!(vfs.list(&dir).unwrap(), vec![renamed.clone()]);
        vfs.remove(&renamed).unwrap();
        assert!(vfs.list(&dir).unwrap().is_empty());
    }

    #[test]
    fn create_new_is_an_exclusive_test_and_set() {
        let dir = scratch("createnew");
        let file = dir.join("LOCK");
        StdVfs.create_new(&file, b"1").unwrap();
        let err = StdVfs.create_new(&file, b"2").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        assert_eq!(StdVfs.read(&file).unwrap(), b"1");
        // The fault VFS models a lost race the same way.
        let vfs = FaultVfs::counting(5);
        let err = vfs.create_new(&file, b"3").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        StdVfs.remove(&file).unwrap();
        vfs.create_new(&file, b"4").unwrap();
        assert_eq!(StdVfs.read(&file).unwrap(), b"4");
    }

    #[test]
    fn crash_point_tears_the_write_and_kills_everything_after() {
        let dir = scratch("crash");
        let vfs = FaultVfs::crash_at(7, 1);
        let file = dir.join("a.bin");
        vfs.create(&file, b"first").unwrap(); // op 0
        let err = vfs.create(&file, b"0123456789").unwrap_err(); // op 1: crash
        assert!(err.to_string().contains("simulated crash"));
        assert!(vfs.has_crashed());
        // The torn write left a strict prefix (possibly empty, never more).
        let left = StdVfs.read(&file).unwrap();
        assert!(left.len() <= 10);
        assert!(b"0123456789".starts_with(&left));
        // Everything after the crash fails, including reads.
        assert!(vfs.read(&file).is_err());
        assert!(vfs.sync_file(&file).is_err());
        assert_eq!(vfs.op_count(), 2, "dead ops are not counted");
    }

    #[test]
    fn injected_faults_are_one_shot_and_deterministic() {
        let dir = scratch("faults");
        let file = dir.join("a.bin");
        let vfs = FaultVfs::with_faults(
            3,
            vec![InjectedFault {
                at_op: 1,
                kind: FaultKind::Enospc,
            }],
        );
        vfs.create(&file, b"seed").unwrap(); // op 0
        let err = vfs.create(&file, b"abcdef").unwrap_err(); // op 1: ENOSPC
        assert_eq!(err.raw_os_error(), Some(28));
        // The VFS keeps working after a non-crash fault.
        vfs.create(&file, b"recovered").unwrap();
        assert_eq!(StdVfs.read(&file).unwrap(), b"recovered");

        // Same seed, same plan => same torn prefix.
        let torn = |seed| {
            let dir = scratch(&format!("torn-{seed}"));
            let file = dir.join("t.bin");
            let vfs = FaultVfs::with_faults(
                seed,
                vec![InjectedFault {
                    at_op: 0,
                    kind: FaultKind::ShortWrite,
                }],
            );
            vfs.create(&file, b"0123456789").unwrap_err();
            StdVfs.read(&file).unwrap()
        };
        assert_eq!(torn(11), torn(11));
    }

    #[test]
    fn transient_faults_are_retryable_and_fsync_failures_are_not() {
        let transient = io::Error::new(io::ErrorKind::Interrupted, "x");
        assert!(PersistError::io("op", &transient).is_retryable());
        let vfs = FaultVfs::with_faults(
            1,
            vec![InjectedFault {
                at_op: 0,
                kind: FaultKind::SyncFailure,
            }],
        );
        let dir = scratch("sync");
        let file = dir.join("a.bin");
        StdVfs.create(&file, b"x").unwrap();
        let err = vfs.sync_file(&file).unwrap_err();
        assert!(!PersistError::io("sync", &err).is_retryable());
    }

    #[test]
    fn retrying_retries_transients_with_a_bounded_budget() {
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::ZERO,
        };
        let mut calls = 0;
        let out: PersistResult<u32> = retrying(policy, || {
            calls += 1;
            if calls < 3 {
                Err(PersistError::io(
                    "op",
                    &io::Error::new(io::ErrorKind::Interrupted, "transient"),
                ))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(calls, 3);

        // Budget exhausted: the last error surfaces.
        let mut calls = 0;
        let out: PersistResult<u32> = retrying(policy, || {
            calls += 1;
            Err(PersistError::io(
                "op",
                &io::Error::new(io::ErrorKind::Interrupted, "transient"),
            ))
        });
        assert!(out.unwrap_err().is_retryable());
        assert_eq!(calls, 3);

        // Fatal errors are never retried.
        let mut calls = 0;
        let out: PersistResult<u32> = retrying(policy, || {
            calls += 1;
            Err(PersistError::Corrupt("bad".into()))
        });
        assert!(matches!(out.unwrap_err(), PersistError::Corrupt(_)));
        assert_eq!(calls, 1);
    }
}
