//! er-obs metric handles for the durability layer, resolved once per
//! process.  Everything is recorded at IO-operation or recovery
//! granularity: one registry touch per append group, per snapshot write,
//! per retry decision, per recovery — never per byte or per record.

use std::sync::OnceLock;

use er_obs::{Counter, Family, Histogram};

pub(crate) struct PersistObs {
    /// WAL append writes issued (one per group, retries included).
    pub(crate) wal_appends: &'static Counter,
    /// Bytes handed to WAL append writes (frames + payloads).
    pub(crate) wal_append_bytes: &'static Counter,
    /// Fsyncs issued by WAL writers (group commit keeps this below the
    /// record count).
    pub(crate) wal_fsyncs: &'static Counter,
    /// WAL fsync latency, nanoseconds.
    pub(crate) fsync_ns: &'static Histogram,
    /// Atomic snapshot-image writes (temp file + rename) performed.
    pub(crate) snapshot_writes: &'static Counter,
    /// Bytes written by atomic snapshot-image writes.
    pub(crate) snapshot_bytes: &'static Counter,
    /// Write-path retries after a transient failure.
    pub(crate) retries: &'static Counter,
    /// Errors surfaced by retried write paths, by
    /// [`PersistErrorClass`](er_core::PersistErrorClass).
    pub(crate) errors: &'static Family<Counter>,
    /// Generation-store recoveries performed.
    pub(crate) recoveries: &'static Counter,
    /// Recoveries that came back degraded (fallback generation, rebuilt
    /// manifest, incomplete WAL chain).
    pub(crate) recoveries_degraded: &'static Counter,
    /// Recovery duration (fallback walk + WAL scan), nanoseconds.
    pub(crate) recovery_ns: &'static Histogram,
    /// Bytes moved into `quarantine/` by recoveries.
    pub(crate) quarantined_bytes: &'static Counter,
    /// WAL records replayed on top of recovered snapshots.
    pub(crate) records_replayed: &'static Counter,
}

pub(crate) fn obs() -> &'static PersistObs {
    static OBS: OnceLock<PersistObs> = OnceLock::new();
    OBS.get_or_init(|| PersistObs {
        wal_appends: er_obs::counter(
            "persist_wal_appends_total",
            "WAL append writes issued (one per group commit, retries included)",
        ),
        wal_append_bytes: er_obs::counter(
            "persist_wal_append_bytes_total",
            "Bytes handed to WAL append writes (frames plus payloads)",
        ),
        wal_fsyncs: er_obs::counter("persist_wal_fsyncs_total", "Fsyncs issued by WAL writers"),
        fsync_ns: er_obs::histogram("persist_fsync_ns", "WAL fsync latency, nanoseconds"),
        snapshot_writes: er_obs::counter(
            "persist_snapshot_writes_total",
            "Atomic snapshot-image writes (temp file + fsync + rename)",
        ),
        snapshot_bytes: er_obs::counter(
            "persist_snapshot_bytes_total",
            "Bytes written by atomic snapshot-image writes",
        ),
        retries: er_obs::counter(
            "persist_retries_total",
            "Write-path retries after a transient failure",
        ),
        errors: er_obs::counter_family(
            "persist_errors_total",
            "Errors surfaced inside retried write paths, by class",
            "class",
            er_obs::DEFAULT_MAX_CARDINALITY,
        ),
        recoveries: er_obs::counter(
            "persist_recoveries_total",
            "Generation-store recoveries performed",
        ),
        recoveries_degraded: er_obs::counter(
            "persist_recoveries_degraded_total",
            "Recoveries that fell back past the committed generation or lost the manifest",
        ),
        recovery_ns: er_obs::histogram(
            "persist_recovery_ns",
            "Generation-store recovery duration, nanoseconds",
        ),
        quarantined_bytes: er_obs::counter(
            "persist_quarantined_bytes_total",
            "Bytes moved into quarantine/ by recoveries",
        ),
        records_replayed: er_obs::counter(
            "persist_wal_records_replayed_total",
            "WAL records replayed on top of recovered snapshots",
        ),
    })
}
