//! File-level corruption tests: flipped bytes and truncation in snapshots
//! and write-ahead logs must surface as clean typed errors — never panics,
//! never partially decoded state.

use std::fs;
use std::path::{Path, PathBuf};

use er_core::PersistError;
use er_persist::{read_snapshot, read_wal, write_snapshot, WalReadMode, WalWriter, FORMAT_VERSION};

const TAG: u32 = 0x7e57_0001;
const FINGERPRINT: u64 = 0xfeed_face_cafe_d00d;

/// A scratch directory under the cargo target dir (inside the workspace).
fn scratch(test: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("corruption-{test}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn sample_payload() -> Vec<u64> {
    (0..257u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect()
}

#[test]
fn snapshot_round_trips() {
    let dir = scratch("snapshot-roundtrip");
    let path = dir.join("snapshot.gsmb");
    let payload = sample_payload();
    write_snapshot(&path, TAG, FINGERPRINT, &payload).unwrap();
    let (back, fingerprint): (Vec<u64>, u64) =
        read_snapshot(&path, TAG, Some(FINGERPRINT)).unwrap();
    assert_eq!(back, payload);
    assert_eq!(fingerprint, FINGERPRINT);
    // The temp file used for the atomic write must be gone.
    assert!(!path.with_extension("tmp").exists());
}

#[test]
fn snapshot_overwrite_is_atomic_replacement() {
    let dir = scratch("snapshot-overwrite");
    let path = dir.join("snapshot.gsmb");
    write_snapshot(&path, TAG, FINGERPRINT, &vec![1u64, 2, 3]).unwrap();
    write_snapshot(&path, TAG, FINGERPRINT, &vec![9u64]).unwrap();
    let (back, _): (Vec<u64>, u64) = read_snapshot(&path, TAG, Some(FINGERPRINT)).unwrap();
    assert_eq!(back, vec![9]);
}

#[test]
fn every_flipped_snapshot_byte_yields_a_typed_error() {
    let dir = scratch("snapshot-flip");
    let path = dir.join("snapshot.gsmb");
    write_snapshot(&path, TAG, FINGERPRINT, &sample_payload()).unwrap();
    let clean = fs::read(&path).unwrap();
    // Flip one byte at a spread of offsets covering header and payload.
    for at in (0..clean.len()).step_by(7) {
        let mut bad = clean.clone();
        bad[at] ^= 0x40;
        fs::write(&path, &bad).unwrap();
        let err = read_snapshot::<Vec<u64>>(&path, TAG, Some(FINGERPRINT)).unwrap_err();
        assert!(
            matches!(
                err,
                PersistError::BadMagic { .. }
                    | PersistError::VersionMismatch { .. }
                    | PersistError::ChecksumMismatch { .. }
                    | PersistError::FingerprintMismatch { .. }
                    | PersistError::Truncated { .. }
                    | PersistError::Corrupt(_)
            ),
            "flip at byte {at} produced {err:?}"
        );
    }
}

#[test]
fn every_snapshot_truncation_yields_a_typed_error() {
    let dir = scratch("snapshot-truncate");
    let path = dir.join("snapshot.gsmb");
    write_snapshot(&path, TAG, FINGERPRINT, &sample_payload()).unwrap();
    let clean = fs::read(&path).unwrap();
    for keep in (0..clean.len()).step_by(11) {
        fs::write(&path, &clean[..keep]).unwrap();
        let err = read_snapshot::<Vec<u64>>(&path, TAG, Some(FINGERPRINT)).unwrap_err();
        assert!(
            matches!(
                err,
                PersistError::BadMagic { .. } | PersistError::Truncated { .. }
            ),
            "truncation to {keep} bytes produced {err:?}"
        );
    }
}

#[test]
fn snapshot_rejects_wrong_tag_and_fingerprint() {
    let dir = scratch("snapshot-mismatch");
    let path = dir.join("snapshot.gsmb");
    write_snapshot(&path, TAG, FINGERPRINT, &vec![1u64]).unwrap();
    let err = read_snapshot::<Vec<u64>>(&path, TAG + 1, None).unwrap_err();
    assert!(matches!(err, PersistError::Corrupt(_)), "{err:?}");
    let err = read_snapshot::<Vec<u64>>(&path, TAG, Some(FINGERPRINT + 1)).unwrap_err();
    assert!(matches!(err, PersistError::FingerprintMismatch { .. }));
    // Ignoring the fingerprint still works.
    assert!(read_snapshot::<Vec<u64>>(&path, TAG, None).is_ok());
}

#[test]
fn missing_snapshot_is_an_io_error() {
    let dir = scratch("snapshot-missing");
    let err = read_snapshot::<Vec<u64>>(&dir.join("nope.gsmb"), TAG, None).unwrap_err();
    assert!(matches!(err, PersistError::Io { .. }));
}

fn write_wal_records(dir: &Path, records: &[&[u8]]) -> PathBuf {
    let path = dir.join("wal.gsmb");
    let mut wal = WalWriter::create(&path, FINGERPRINT).unwrap();
    for record in records {
        wal.append(record).unwrap();
    }
    path
}

#[test]
fn wal_round_trips_in_both_modes() {
    let dir = scratch("wal-roundtrip");
    let path = write_wal_records(&dir, &[b"alpha", b"", b"gamma gamma"]);
    for mode in [WalReadMode::Strict, WalReadMode::Recovery] {
        let contents = read_wal(&path, Some(FINGERPRINT), mode).unwrap();
        assert_eq!(contents.records.len(), 3);
        assert_eq!(contents.records[0], b"alpha");
        assert_eq!(contents.records[1], b"");
        assert_eq!(contents.records[2], b"gamma gamma");
        assert!(!contents.torn_tail);
        assert_eq!(contents.valid_len, fs::metadata(&path).unwrap().len());
        assert_eq!(contents.fingerprint, FINGERPRINT);
    }
}

#[test]
fn group_commit_is_byte_identical_to_individual_appends() {
    let records: &[&[u8]] = &[b"alpha", b"", b"gamma gamma", b"delta"];

    let dir = scratch("wal-group");
    let grouped = dir.join("grouped.gsmb");
    let mut wal = WalWriter::create(&grouped, FINGERPRINT).unwrap();
    wal.append_group(&[]).unwrap();
    wal.append_group(records).unwrap();
    // One write + one fsync for the whole group; the empty group cost none.
    assert_eq!(wal.appends(), 1);
    assert_eq!(wal.syncs(), 1);

    let single = write_wal_records(&dir, records);
    assert_eq!(fs::read(&grouped).unwrap(), fs::read(&single).unwrap());

    let contents = read_wal(&grouped, Some(FINGERPRINT), WalReadMode::Strict).unwrap();
    assert_eq!(contents.records, records);
    assert_eq!(contents.valid_len, fs::metadata(&grouped).unwrap().len());
}

#[test]
fn torn_tail_is_tolerated_in_recovery_and_typed_in_strict() {
    let dir = scratch("wal-torn");
    let path = write_wal_records(&dir, &[b"first record", b"second record"]);
    let clean = fs::read(&path).unwrap();
    let contents = read_wal(&path, Some(FINGERPRINT), WalReadMode::Recovery).unwrap();
    let first_end = contents.valid_len as usize - (4 + 4 + 8 + b"second record".len());

    // Cut anywhere inside the second record: recovery keeps the first and
    // reports the torn tail; strict mode errors.
    for keep in first_end + 1..clean.len() {
        fs::write(&path, &clean[..keep]).unwrap();
        let recovered = read_wal(&path, Some(FINGERPRINT), WalReadMode::Recovery).unwrap();
        assert_eq!(recovered.records, vec![b"first record".to_vec()]);
        assert!(recovered.torn_tail);
        assert_eq!(recovered.valid_len as usize, first_end);

        let err = read_wal(&path, Some(FINGERPRINT), WalReadMode::Strict).unwrap_err();
        assert!(
            matches!(err, PersistError::Truncated { .. }),
            "keep {keep}: {err:?}"
        );
    }
}

#[test]
fn flipped_wal_payload_bytes_are_checksum_mismatches_in_both_modes() {
    let dir = scratch("wal-flip");
    let path = write_wal_records(&dir, &[b"first record", b"second record"]);
    let clean = fs::read(&path).unwrap();
    // Flip a byte in the middle of the *first* record's payload: this is
    // mid-log corruption, which even recovery must refuse to skip.
    let at = er_persist::wal::WAL_HEADER_LEN + 4 + 4 + 8 + 3;
    let mut bad = clean.clone();
    bad[at] ^= 0x01;
    fs::write(&path, &bad).unwrap();
    for mode in [WalReadMode::Strict, WalReadMode::Recovery] {
        let err = read_wal(&path, Some(FINGERPRINT), mode).unwrap_err();
        assert!(
            matches!(err, PersistError::ChecksumMismatch { .. }),
            "{mode:?}: {err:?}"
        );
    }
}

#[test]
fn corrupted_mid_log_length_fields_never_pose_as_torn_tails() {
    let dir = scratch("wal-length-flip");
    let path = write_wal_records(&dir, &[b"first record", b"second record"]);
    let clean = fs::read(&path).unwrap();
    // Corrupt the *length field* of the first record so it claims to run
    // past the end of the file.  Without the length guard this would look
    // exactly like a torn tail and recovery would silently drop (and then
    // truncate away) both perfectly valid records.
    for byte in 0..4 {
        let mut bad = clean.clone();
        bad[er_persist::wal::WAL_HEADER_LEN + byte] ^= 0x80;
        fs::write(&path, &bad).unwrap();
        for mode in [WalReadMode::Strict, WalReadMode::Recovery] {
            let err = read_wal(&path, Some(FINGERPRINT), mode).unwrap_err();
            assert!(
                matches!(err, PersistError::ChecksumMismatch { .. }),
                "length byte {byte}, {mode:?}: {err:?}"
            );
        }
    }
}

#[test]
fn wal_header_anomalies_are_typed() {
    let dir = scratch("wal-header");
    let path = write_wal_records(&dir, &[b"x"]);
    let clean = fs::read(&path).unwrap();

    // Wrong magic.
    let mut bad = clean.clone();
    bad[0] ^= 0xFF;
    fs::write(&path, &bad).unwrap();
    let err = read_wal(&path, None, WalReadMode::Recovery).unwrap_err();
    assert!(matches!(err, PersistError::BadMagic { .. }));

    // Future version.
    let mut bad = clean.clone();
    bad[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    fs::write(&path, &bad).unwrap();
    let err = read_wal(&path, None, WalReadMode::Recovery).unwrap_err();
    assert!(matches!(err, PersistError::VersionMismatch { .. }));

    // Foreign fingerprint.
    fs::write(&path, &clean).unwrap();
    let err = read_wal(&path, Some(FINGERPRINT + 1), WalReadMode::Recovery).unwrap_err();
    assert!(matches!(err, PersistError::FingerprintMismatch { .. }));

    // File shorter than the header.
    fs::write(&path, &clean[..er_persist::wal::WAL_HEADER_LEN - 1]).unwrap();
    let err = read_wal(&path, None, WalReadMode::Recovery).unwrap_err();
    assert!(matches!(err, PersistError::BadMagic { .. }));
}

#[test]
fn zero_length_and_partial_header_wals_are_typed_in_both_modes() {
    let dir = scratch("wal-empty");
    let header_only = write_wal_records(&dir, &[]);
    let full_header = fs::read(&header_only).unwrap();
    assert_eq!(full_header.len(), er_persist::wal::WAL_HEADER_LEN);

    // A zero-length log: the crash happened before the header hit disk.
    // No mode accepts it — there is no fingerprint to trust.
    let path = dir.join("torn-header.gsmb");
    fs::write(&path, b"").unwrap();
    for mode in [WalReadMode::Strict, WalReadMode::Recovery] {
        let err = read_wal(&path, Some(FINGERPRINT), mode).unwrap_err();
        assert!(
            matches!(err, PersistError::BadMagic { .. }),
            "zero-length, {mode:?}: {err:?}"
        );
    }

    // Every strict prefix of the header is equally refused.
    for keep in 1..full_header.len() {
        fs::write(&path, &full_header[..keep]).unwrap();
        for mode in [WalReadMode::Strict, WalReadMode::Recovery] {
            let err = read_wal(&path, Some(FINGERPRINT), mode).unwrap_err();
            assert!(
                matches!(err, PersistError::BadMagic { .. }),
                "header prefix {keep}, {mode:?}: {err:?}"
            );
        }
    }

    // The complete header with zero records is a valid empty log.
    for mode in [WalReadMode::Strict, WalReadMode::Recovery] {
        let contents = read_wal(&header_only, Some(FINGERPRINT), mode).unwrap();
        assert!(contents.records.is_empty());
        assert!(!contents.torn_tail);
        assert_eq!(contents.valid_len, full_header.len() as u64);
    }
}

#[test]
fn a_torn_record_followed_by_valid_bytes_never_resurrects_later_records() {
    let dir = scratch("wal-tear-splice");
    let path = write_wal_records(&dir, &[b"first record", b"second record", b"third record"]);
    let clean = fs::read(&path).unwrap();
    let frame = |payload: usize| 4 + 4 + 8 + payload;
    let header = er_persist::wal::WAL_HEADER_LEN;
    let second_end = header + frame(b"first record".len()) + frame(b"second record".len());

    // Splice `cut` bytes out of the end of the second record's frame, so
    // the third record's perfectly valid bytes directly follow the tear.
    // This is NOT a torn tail (a tear is only legal at the literal end of
    // the file): recovery must refuse the log rather than drop the second
    // record and resurrect — or silently lose — the third.
    for cut in 1..frame(b"second record".len()) {
        let mut bad = clean[..second_end - cut].to_vec();
        bad.extend_from_slice(&clean[second_end..]);
        fs::write(&path, &bad).unwrap();
        for mode in [WalReadMode::Strict, WalReadMode::Recovery] {
            let err = read_wal(&path, Some(FINGERPRINT), mode).unwrap_err();
            assert!(
                matches!(err, PersistError::ChecksumMismatch { .. }),
                "cut {cut}, {mode:?}: {err:?}"
            );
        }
    }
}

#[test]
fn reopening_a_torn_wal_truncates_and_appends_cleanly() {
    let dir = scratch("wal-reopen");
    let path = write_wal_records(&dir, &[b"keep me", b"torn away"]);
    let clean = fs::read(&path).unwrap();
    fs::write(&path, &clean[..clean.len() - 3]).unwrap();

    let contents = read_wal(&path, Some(FINGERPRINT), WalReadMode::Recovery).unwrap();
    assert!(contents.torn_tail);
    let mut wal = WalWriter::open(&path, contents.valid_len).unwrap();
    wal.append(b"after recovery").unwrap();

    let contents = read_wal(&path, Some(FINGERPRINT), WalReadMode::Strict).unwrap();
    assert_eq!(
        contents.records,
        vec![b"keep me".to_vec(), b"after recovery".to_vec()]
    );
}

#[test]
fn wal_create_replaces_an_existing_log_atomically() {
    let dir = scratch("wal-recreate");
    let path = write_wal_records(&dir, &[b"old history"]);
    let mut wal = WalWriter::create(&path, FINGERPRINT).unwrap();
    wal.append(b"new era").unwrap();
    let contents = read_wal(&path, Some(FINGERPRINT), WalReadMode::Strict).unwrap();
    assert_eq!(contents.records, vec![b"new era".to_vec()]);
    assert!(!path.with_extension("tmp").exists());
}
