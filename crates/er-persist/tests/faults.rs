//! Store-level fault-injection and graceful-degradation tests for
//! [`GenerationStore`]: fallback chains, quarantine, manifest rebuild,
//! retention, tmp-file sweeping, and injected write-path faults.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use er_core::{PersistError, PersistErrorClass};
use er_persist::{
    manifest_path, quarantine_path, read_manifest, snapshot_path, sweep_tmp_files, wal_path,
    FaultKind, FaultVfs, GenerationStore, InjectedFault, RetryPolicy, StdVfs, Vfs, WalReadMode,
};

const TAG: u32 = 0x7e57_0002;
const FINGERPRINT: u64 = 0xabad_1dea_0ddb_a115;

fn scratch(test: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("faults-{test}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn payload(generation: u64) -> Vec<u64> {
    (0..64u64).map(|i| i * 31 + generation * 1000).collect()
}

/// Creates a store with `commits` committed generations beyond 0, each WAL
/// carrying two records tagged with its generation.
fn build_store(dir: &Path, commits: u64) -> GenerationStore {
    let (mut store, mut wal) = GenerationStore::create(
        StdVfs::arc(),
        RetryPolicy::default_write(),
        dir,
        TAG,
        FINGERPRINT,
        &payload(0),
    )
    .unwrap();
    for generation in 1..=commits {
        wal.append(format!("rec-{}-a", generation - 1).as_bytes())
            .unwrap();
        wal.append(format!("rec-{}-b", generation - 1).as_bytes())
            .unwrap();
        wal = store.commit(TAG, &payload(generation)).unwrap();
    }
    wal.append(format!("rec-{commits}-a").as_bytes()).unwrap();
    wal.append(format!("rec-{commits}-b").as_bytes()).unwrap();
    store
}

fn recover(
    dir: &Path,
) -> er_core::PersistResult<(GenerationStore, er_persist::RecoveredGeneration)> {
    GenerationStore::recover(
        StdVfs::arc(),
        RetryPolicy::default_write(),
        dir,
        TAG,
        Some(FINGERPRINT),
    )
}

#[test]
fn clean_recovery_reopens_the_committed_generation() {
    let dir = scratch("clean");
    let store = build_store(&dir, 2);
    assert_eq!(store.committed(), 2);
    drop(store);

    let (store, recovered) = recover(&dir).unwrap();
    assert_eq!(store.committed(), 2);
    assert_eq!(recovered.generation, 2);
    assert!(!recovered.degraded);
    assert!(recovered.wal_valid_len.is_some());
    assert_eq!(
        er_persist::decode_snapshot_payload::<Vec<u64>>(&recovered.payload).unwrap(),
        payload(2)
    );
    // Only the committed generation's WAL records ride along.
    assert_eq!(
        recovered.records,
        vec![b"rec-2-a".to_vec(), b"rec-2-b".to_vec()]
    );
    assert!(recovered.report.is_clean());
    assert_eq!(recovered.report.generations_tried, 1);

    // The reopened WAL appends where the old one left off.
    let mut wal = store
        .open_committed_wal(recovered.wal_valid_len.unwrap())
        .unwrap();
    wal.append(b"rec-2-c").unwrap();
    let contents =
        er_persist::read_wal(&wal_path(&dir, 2), Some(FINGERPRINT), WalReadMode::Strict).unwrap();
    assert_eq!(contents.records.len(), 3);
}

#[test]
fn corrupt_newest_snapshot_falls_back_and_replays_the_longer_chain() {
    let dir = scratch("fallback");
    build_store(&dir, 2);

    // Flip a payload byte of the committed snapshot.
    let newest = snapshot_path(&dir, 2);
    let mut bytes = fs::read(&newest).unwrap();
    let at = bytes.len() - 3;
    bytes[at] ^= 0x04;
    fs::write(&newest, &bytes).unwrap();

    let (store, recovered) = recover(&dir).unwrap();
    assert_eq!(store.committed(), 2);
    assert_eq!(recovered.generation, 1);
    assert!(recovered.degraded);
    assert!(
        recovered.wal_valid_len.is_none(),
        "degraded recovery must not reopen the WAL"
    );
    assert_eq!(
        er_persist::decode_snapshot_payload::<Vec<u64>>(&recovered.payload).unwrap(),
        payload(1)
    );
    // The chain replays generation 1's WAL *and* the committed one's.
    assert_eq!(
        recovered.records,
        vec![
            b"rec-1-a".to_vec(),
            b"rec-1-b".to_vec(),
            b"rec-2-a".to_vec(),
            b"rec-2-b".to_vec(),
        ]
    );
    let report = &recovered.report;
    assert!(!report.is_clean());
    assert_eq!(report.committed_generation, 2);
    assert_eq!(report.used_generation, 1);
    assert_eq!(report.generations_tried, 2);
    assert_eq!(report.quarantined.len(), 1);
    assert!(quarantine_path(&dir).join("snapshot.000002.gsmb").exists());
    assert!(!newest.exists());
}

#[test]
fn exhausting_the_fallback_chain_surfaces_the_error() {
    let dir = scratch("exhausted");
    build_store(&dir, 1);
    for generation in [0u64, 1] {
        let path = snapshot_path(&dir, generation);
        let mut bytes = fs::read(&path).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x08;
        fs::write(&path, &bytes).unwrap();
    }
    let err = recover(&dir).unwrap_err();
    assert!(
        matches!(err, PersistError::ChecksumMismatch { .. }),
        "{err:?}"
    );
    // Both corpses were still moved aside for post-mortem.
    assert!(quarantine_path(&dir).join("snapshot.000001.gsmb").exists());
    assert!(quarantine_path(&dir).join("snapshot.000000.gsmb").exists());
}

#[test]
fn a_lost_manifest_is_rebuilt_from_the_newest_snapshot() {
    let dir = scratch("manifest-lost");
    build_store(&dir, 2);
    fs::remove_file(manifest_path(&dir)).unwrap();

    let (store, recovered) = recover(&dir).unwrap();
    assert_eq!(store.committed(), 2);
    assert_eq!(recovered.generation, 2);
    assert!(
        recovered.degraded,
        "a rebuilt commit pointer is not a clean recovery"
    );
    assert!(recovered.report.manifest_rebuilt);
    assert!(!recovered.report.is_clean());
}

#[test]
fn a_corrupt_manifest_is_rebuilt_from_the_newest_snapshot() {
    let dir = scratch("manifest-corrupt");
    build_store(&dir, 1);
    let path = manifest_path(&dir);
    let mut bytes = fs::read(&path).unwrap();
    let len = bytes.len();
    bytes[len - 1] ^= 0xFF; // the manifest CRC
    fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        read_manifest(&StdVfs, &dir).unwrap_err(),
        PersistError::ChecksumMismatch { .. }
    ));

    let (store, recovered) = recover(&dir).unwrap();
    assert_eq!(store.committed(), 1);
    assert!(recovered.report.manifest_rebuilt);
}

#[test]
fn a_missing_store_is_a_typed_io_error() {
    let dir = scratch("missing");
    let err = recover(&dir.join("never-created")).unwrap_err();
    assert!(matches!(err, PersistError::Io { .. }), "{err:?}");
}

#[test]
fn stale_tmp_files_and_uncommitted_generations_are_swept_on_recovery() {
    let dir = scratch("sweep");
    build_store(&dir, 1);
    // A crash mid-commit leaks the next generation's files (the manifest
    // never flipped to them) and possibly a temp file.
    fs::write(snapshot_path(&dir, 2), b"half-written debris").unwrap();
    fs::write(wal_path(&dir, 2), b"more debris").unwrap();
    fs::write(dir.join("snapshot.000002.gsmb.tmp"), b"temp debris").unwrap();

    let (store, recovered) = recover(&dir).unwrap();
    assert_eq!(store.committed(), 1);
    assert!(!recovered.degraded);
    assert_eq!(recovered.report.tmp_files_removed, 1);
    assert_eq!(recovered.report.stale_generations_removed, 2);
    assert!(!snapshot_path(&dir, 2).exists());
    assert!(!wal_path(&dir, 2).exists());
    assert!(!dir.join("snapshot.000002.gsmb.tmp").exists());
}

#[test]
fn retention_keeps_the_committed_generation_and_one_fallback() {
    let dir = scratch("retention");
    let store = build_store(&dir, 3);
    assert_eq!(store.committed(), 3);
    assert!(snapshot_path(&dir, 3).exists());
    assert!(snapshot_path(&dir, 2).exists());
    assert!(wal_path(&dir, 3).exists());
    assert!(wal_path(&dir, 2).exists());
    // Generations 0 and 1 aged out.
    assert!(!snapshot_path(&dir, 0).exists());
    assert!(!snapshot_path(&dir, 1).exists());
    assert!(!wal_path(&dir, 0).exists());
    assert!(!wal_path(&dir, 1).exists());
}

#[test]
fn concurrent_checkpointers_get_a_typed_lock_error() {
    let dir = scratch("lock-held");
    let mut store = build_store(&dir, 1);

    // Another checkpointer "holds" the lock: commit must fail typed, not
    // race the snapshot/manifest/retention sequence.
    StdVfs
        .create_new(&er_persist::lock_path(&dir), b"")
        .unwrap();
    let err = store.commit(TAG, &payload(9)).unwrap_err();
    assert!(matches!(err, PersistError::Locked { .. }), "{err:?}");
    assert!(err.to_string().contains("exclusive lock"));
    assert_eq!(err.class(), PersistErrorClass::Fatal);
    assert_eq!(store.committed(), 1, "a refused commit must not advance");

    // `create` on a locked directory is refused the same way.
    let err = GenerationStore::create(
        StdVfs::arc(),
        RetryPolicy::default_write(),
        &dir,
        TAG,
        FINGERPRINT,
        &payload(0),
    )
    .unwrap_err();
    assert!(matches!(err, PersistError::Locked { .. }), "{err:?}");

    // Once the holder releases, the loser can commit — and the lock never
    // outlives the commit.
    StdVfs.remove(&er_persist::lock_path(&dir)).unwrap();
    store.commit(TAG, &payload(2)).unwrap();
    assert_eq!(store.committed(), 2);
    assert!(!er_persist::lock_path(&dir).exists());
}

#[test]
fn recovery_sweeps_a_stale_lock() {
    let dir = scratch("lock-stale");
    let store = build_store(&dir, 1);
    drop(store);

    // A checkpointer crashed while holding the lock.
    StdVfs
        .create_new(&er_persist::lock_path(&dir), b"")
        .unwrap();
    let (store, recovered) = recover(&dir).unwrap();
    assert!(recovered.report.stale_lock_removed);
    assert!(
        recovered.report.is_clean(),
        "a stale lock alone does not degrade recovery: {:?}",
        recovered.report
    );
    assert!(!er_persist::lock_path(&dir).exists());

    // The swept lock is free for the next commit.
    let mut store = store;
    store.commit(TAG, &payload(2)).unwrap();
    assert_eq!(store.committed(), 2);
}

#[test]
fn sweep_tmp_files_only_touches_tmp_files() {
    let dir = scratch("tmp-only");
    fs::write(dir.join("a.tmp"), b"x").unwrap();
    fs::write(dir.join("b.tmp"), b"y").unwrap();
    fs::write(dir.join("keep.gsmb"), b"z").unwrap();
    assert_eq!(sweep_tmp_files(&StdVfs, &dir).unwrap(), 2);
    assert!(dir.join("keep.gsmb").exists());
    assert!(!dir.join("a.tmp").exists());
    // A missing directory sweeps nothing instead of erroring.
    assert_eq!(sweep_tmp_files(&StdVfs, &dir.join("nope")).unwrap(), 0);
}

/// A VFS that refuses directory fsyncs the way some filesystems do.
#[derive(Debug)]
struct NoDirSync {
    kind: io::ErrorKind,
}

impl Vfs for NoDirSync {
    fn create(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        StdVfs.create(path, data)
    }
    fn create_new(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        StdVfs.create_new(path, data)
    }
    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        StdVfs.append(path, data)
    }
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        StdVfs.truncate(path, len)
    }
    fn sync_file(&self, path: &Path) -> io::Result<()> {
        StdVfs.sync_file(path)
    }
    fn sync_dir(&self, _path: &Path) -> io::Result<()> {
        Err(io::Error::new(self.kind, "directory fsync refused"))
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        StdVfs.rename(from, to)
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        StdVfs.read(path)
    }
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        StdVfs.list(dir)
    }
    fn remove(&self, path: &Path) -> io::Result<()> {
        StdVfs.remove(path)
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        StdVfs.create_dir_all(path)
    }
}

#[test]
fn unsupported_directory_fsync_is_tolerated_but_real_failures_propagate() {
    // ENOTSUP-class refusals (filesystems that cannot sync directories)
    // are tolerated: the store still works.
    let dir = scratch("nodirsync-tolerated");
    let vfs: Arc<dyn Vfs> = Arc::new(NoDirSync {
        kind: io::ErrorKind::Unsupported,
    });
    let (mut store, mut wal) = GenerationStore::create(
        vfs,
        RetryPolicy::none(),
        &dir,
        TAG,
        FINGERPRINT,
        &payload(0),
    )
    .unwrap();
    wal.append(b"record").unwrap();
    store.commit(TAG, &payload(1)).unwrap();

    // Any other directory-fsync failure is a real error — the fsyncgate
    // bug was swallowing these.
    let dir = scratch("nodirsync-propagates");
    let vfs: Arc<dyn Vfs> = Arc::new(NoDirSync {
        kind: io::ErrorKind::PermissionDenied,
    });
    let err = GenerationStore::create(
        vfs,
        RetryPolicy::none(),
        &dir,
        TAG,
        FINGERPRINT,
        &payload(0),
    )
    .unwrap_err();
    assert!(matches!(err, PersistError::Io { .. }), "{err:?}");
}

#[test]
fn injected_write_faults_surface_as_typed_errors_and_leave_the_store_recoverable() {
    // Count the ops of a clean create+append+commit sequence.
    let dir = scratch("inject-count");
    let counting = FaultVfs::counting(7);
    let (mut store, mut wal) = GenerationStore::create(
        counting.clone(),
        RetryPolicy::none(),
        &dir,
        TAG,
        FINGERPRINT,
        &payload(0),
    )
    .unwrap();
    wal.append(b"one").unwrap();
    wal.append(b"two").unwrap();
    store.commit(TAG, &payload(1)).unwrap();
    let total_ops = counting.op_count();
    // Lock release is best effort (a failure leaves a stale lock for the
    // next recovery sweep, not an error) — every *other* write op must
    // surface its fault.
    let write_ops: Vec<u64> = counting
        .op_log()
        .iter()
        .enumerate()
        .filter(|(_, (kind, path))| {
            kind.is_write()
                && !(*kind == er_persist::OpKind::Remove
                    && path.file_name().is_some_and(|n| n == er_persist::LOCK_NAME))
        })
        .map(|(i, _)| i as u64)
        .collect();
    assert!(total_ops > 0 && !write_ops.is_empty());

    for kind in [
        FaultKind::Enospc,
        FaultKind::SyncFailure,
        FaultKind::ShortWrite,
    ] {
        for &at_op in &write_ops {
            let dir = scratch(&format!("inject-{kind:?}-{at_op}"));
            let vfs = FaultVfs::with_faults(7, vec![InjectedFault { at_op, kind }]);
            let outcome = (|| -> er_core::PersistResult<()> {
                let (mut store, mut wal) = GenerationStore::create(
                    vfs.clone(),
                    RetryPolicy::none(),
                    &dir,
                    TAG,
                    FINGERPRINT,
                    &payload(0),
                )?;
                wal.append(b"one")?;
                wal.append(b"two")?;
                store.commit(TAG, &payload(1))?;
                Ok(())
            })();
            let err = outcome.expect_err("the injected fault must surface");
            assert!(
                matches!(err, PersistError::Io { .. }),
                "{kind:?} at op {at_op}: {err:?}"
            );
            assert_eq!(
                err.class(),
                PersistErrorClass::Fatal,
                "{kind:?} at op {at_op}"
            );

            // Whatever the fault interrupted, the directory must still
            // recover (possibly to an earlier state) or be cleanly absent.
            match recover(&dir) {
                Ok((store, recovered)) => {
                    let state: Vec<u64> =
                        er_persist::decode_snapshot_payload(&recovered.payload).unwrap();
                    assert!(
                        state == payload(0) || state == payload(1),
                        "{kind:?} at op {at_op}: impossible recovered state"
                    );
                    assert!(store.committed() <= 1);
                }
                Err(PersistError::Io { .. }) => {
                    // Legal only if the fault hit before generation 0's
                    // manifest was ever committed.
                    assert!(
                        !manifest_path(&dir).exists(),
                        "{kind:?} at op {at_op}: manifest exists but recovery failed"
                    );
                }
                Err(other) => panic!("{kind:?} at op {at_op}: {other:?}"),
            }
        }
    }
}

#[test]
fn transient_faults_are_retried_under_the_default_policy() {
    let dir = scratch("transient");
    // Inject a transient (EINTR-class) fault on every seventh op: with the
    // default retry policy the whole sequence still succeeds.  (The stride
    // is coprime to the 4-op atomic-write retry unit, so retries are not
    // re-faulted indefinitely.)
    let faults: Vec<InjectedFault> = (0..64)
        .step_by(7)
        .map(|at_op| InjectedFault {
            at_op,
            kind: FaultKind::Transient,
        })
        .collect();
    let vfs = FaultVfs::with_faults(11, faults);
    let (mut store, mut wal) = GenerationStore::create(
        vfs.clone(),
        RetryPolicy::default_write(),
        &dir,
        TAG,
        FINGERPRINT,
        &payload(0),
    )
    .unwrap();
    wal.append(b"one").unwrap();
    store.commit(TAG, &payload(1)).unwrap();
    drop(store);

    let (_, recovered) = recover(&dir).unwrap();
    assert_eq!(recovered.generation, 1);
    assert!(recovered.report.is_clean());
}

#[test]
fn crash_points_during_commit_never_lose_the_previous_generation() {
    // Count a full create + append + commit sequence, then kill the store
    // at every op index and prove recovery lands on generation 0's state
    // (with its WAL records) or generation 1's — never in between, never
    // a panic.
    let dir = scratch("crash-count");
    let counting = FaultVfs::counting(13);
    let (mut store, mut wal) = GenerationStore::create(
        counting.clone(),
        RetryPolicy::none(),
        &dir,
        TAG,
        FINGERPRINT,
        &payload(0),
    )
    .unwrap();
    wal.append(b"one").unwrap();
    store.commit(TAG, &payload(1)).unwrap();
    let total_ops = counting.op_count();

    for crash_at in 0..total_ops {
        let dir = scratch(&format!("crash-{crash_at}"));
        let vfs = FaultVfs::crash_at(13, crash_at);
        let _ = (|| -> er_core::PersistResult<()> {
            let (mut store, mut wal) = GenerationStore::create(
                vfs.clone(),
                RetryPolicy::none(),
                &dir,
                TAG,
                FINGERPRINT,
                &payload(0),
            )?;
            wal.append(b"one")?;
            store.commit(TAG, &payload(1))?;
            Ok(())
        })();

        match recover(&dir) {
            Ok((store, recovered)) => {
                let state: Vec<u64> =
                    er_persist::decode_snapshot_payload(&recovered.payload).unwrap();
                if store.committed() == 0 || recovered.generation == 0 {
                    assert_eq!(state, payload(0), "crash at op {crash_at}");
                } else {
                    assert_eq!(state, payload(1), "crash at op {crash_at}");
                }
            }
            Err(PersistError::Io { .. }) => {
                assert!(
                    !manifest_path(&dir).exists(),
                    "crash at op {crash_at}: manifest exists but recovery failed"
                );
            }
            Err(other) => panic!("crash at op {crash_at}: {other:?}"),
        }
    }
}

// ---- cross-shard stores -------------------------------------------------

const SHARDS: u32 = 3;

fn shard_state(shard: u64, generation: u64) -> Vec<u64> {
    (0..16u64)
        .map(|i| i * 13 + shard * 100 + generation * 10_000)
        .collect()
}

fn shard_states(generation: u64) -> Vec<Vec<u64>> {
    (0..u64::from(SHARDS))
        .map(|shard| shard_state(shard, generation))
        .collect()
}

/// Creates a 3-shard store with `commits` committed generations beyond 0;
/// each shard's WAL carries one record per generation tagged with both.
fn build_shard_store(dir: &Path, commits: u64) -> er_persist::ShardStore {
    let (mut store, mut wals) = er_persist::ShardStore::create(
        StdVfs::arc(),
        RetryPolicy::default_write(),
        dir,
        TAG,
        FINGERPRINT,
        &payload(0),
        &shard_states(0),
    )
    .unwrap();
    for generation in 1..=commits {
        for (shard, wal) in wals.iter_mut().enumerate() {
            wal.append(format!("s{}-g{}", shard, generation - 1).as_bytes())
                .unwrap();
        }
        wals = store
            .commit(TAG, &payload(generation), &shard_states(generation))
            .unwrap();
    }
    for (shard, wal) in wals.iter_mut().enumerate() {
        wal.append(format!("s{shard}-g{commits}").as_bytes())
            .unwrap();
    }
    store
}

fn recover_shards(
    dir: &Path,
) -> er_core::PersistResult<(er_persist::ShardStore, er_persist::RecoveredShards)> {
    er_persist::ShardStore::recover(
        StdVfs::arc(),
        RetryPolicy::default_write(),
        dir,
        TAG,
        Some(FINGERPRINT),
    )
}

#[test]
fn shard_store_round_trips_and_recovers_cleanly() {
    let dir = scratch("shard-clean");
    let store = build_shard_store(&dir, 2);
    assert_eq!(store.committed(), 2);
    drop(store);

    let (store, recovered) = recover_shards(&dir).unwrap();
    assert_eq!(store.committed(), 2);
    assert_eq!(recovered.generation, 2);
    assert_eq!(recovered.num_shards, SHARDS);
    assert!(!recovered.degraded);
    assert!(recovered.report.is_clean());
    assert_eq!(
        er_persist::decode_snapshot_payload::<Vec<u64>>(&recovered.router_payload).unwrap(),
        payload(2)
    );
    for shard in 0..SHARDS as usize {
        assert_eq!(
            er_persist::decode_snapshot_payload::<Vec<u64>>(&recovered.shard_payloads[shard])
                .unwrap(),
            shard_state(shard as u64, 2)
        );
        // Only the committed generation's records ride along.
        assert_eq!(
            recovered.shard_records[shard],
            vec![format!("s{shard}-g2").into_bytes()]
        );
    }

    // Every reopened WAL appends where its old one left off.
    let lens = recovered.wal_valid_lens.unwrap();
    let mut wals = store.open_committed_wals(&lens).unwrap();
    for wal in &mut wals {
        wal.append(b"more").unwrap();
    }
    for shard in 0..SHARDS {
        let contents = er_persist::read_wal(
            &er_persist::shard_wal_path(&dir, shard, 2),
            Some(FINGERPRINT),
            WalReadMode::Strict,
        )
        .unwrap();
        assert_eq!(contents.records.len(), 2);
    }
}

#[test]
fn a_corrupt_shard_snapshot_falls_back_the_whole_generation_set() {
    let dir = scratch("shard-fallback");
    build_shard_store(&dir, 2);

    // Flip a payload byte in ONE shard's committed snapshot: the whole
    // generation set must fall back so no shard recovers ahead of its
    // siblings.
    let bad = er_persist::shard_snapshot_path(&dir, 1, 2);
    let mut bytes = fs::read(&bad).unwrap();
    let at = bytes.len() - 3;
    bytes[at] ^= 0x04;
    fs::write(&bad, &bytes).unwrap();

    let (store, recovered) = recover_shards(&dir).unwrap();
    assert_eq!(store.committed(), 2);
    assert_eq!(recovered.generation, 1, "the set falls back as a unit");
    assert!(recovered.degraded);
    assert!(recovered.wal_valid_lens.is_none());
    assert_eq!(
        er_persist::decode_snapshot_payload::<Vec<u64>>(&recovered.router_payload).unwrap(),
        payload(1)
    );
    for shard in 0..SHARDS as usize {
        // Every shard — including the two whose gen-2 snapshots were
        // intact — recovers from generation 1 with the longer WAL chain.
        assert_eq!(
            er_persist::decode_snapshot_payload::<Vec<u64>>(&recovered.shard_payloads[shard])
                .unwrap(),
            shard_state(shard as u64, 1)
        );
        assert_eq!(
            recovered.shard_records[shard],
            vec![
                format!("s{shard}-g1").into_bytes(),
                format!("s{shard}-g2").into_bytes(),
            ]
        );
    }
    assert_eq!(recovered.report.quarantined.len(), 1);
    assert!(er_persist::quarantine_path(&dir)
        .join("shard.001.000002.gsmb")
        .exists());
}

#[test]
fn shard_store_commit_is_refused_while_locked() {
    let dir = scratch("shard-locked");
    let mut store = build_shard_store(&dir, 1);
    StdVfs
        .create_new(&er_persist::lock_path(&dir), b"")
        .unwrap();
    let err = store
        .commit(TAG, &payload(9), &shard_states(9))
        .unwrap_err();
    assert!(matches!(err, PersistError::Locked { .. }), "{err:?}");
    assert_eq!(store.committed(), 1);
    StdVfs.remove(&er_persist::lock_path(&dir)).unwrap();
    store.commit(TAG, &payload(2), &shard_states(2)).unwrap();
    assert_eq!(store.committed(), 2);
    assert!(!er_persist::lock_path(&dir).exists());
}

#[test]
fn a_lost_shard_manifest_is_rebuilt_from_the_newest_complete_set() {
    let dir = scratch("shard-manifest-lost");
    build_shard_store(&dir, 2);
    fs::remove_file(manifest_path(&dir)).unwrap();

    let (store, recovered) = recover_shards(&dir).unwrap();
    assert_eq!(store.committed(), 2);
    assert!(recovered.report.manifest_rebuilt);
    assert!(recovered.degraded);
    assert_eq!(recovered.num_shards, SHARDS);
    assert_eq!(
        er_persist::decode_snapshot_payload::<Vec<u64>>(&recovered.router_payload).unwrap(),
        payload(2)
    );
}

#[test]
fn shard_retention_keeps_two_generations() {
    let dir = scratch("shard-retention");
    build_shard_store(&dir, 3);
    for shard in 0..SHARDS {
        assert!(er_persist::shard_snapshot_path(&dir, shard, 3).exists());
        assert!(er_persist::shard_snapshot_path(&dir, shard, 2).exists());
        assert!(!er_persist::shard_snapshot_path(&dir, shard, 1).exists());
        assert!(!er_persist::shard_wal_path(&dir, shard, 1).exists());
    }
    assert!(er_persist::router_path(&dir, 2).exists());
    assert!(!er_persist::router_path(&dir, 1).exists());
    assert_eq!(er_persist::committed_shard_generation(&dir).unwrap(), 3);
}
