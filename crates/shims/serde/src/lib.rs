//! Minimal stand-in for `serde`.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched.  The workspace only uses `#[derive(Serialize, Deserialize)]` as
//! forward-looking annotations (no serialisation is performed anywhere), so
//! this shim provides the two marker traits plus the no-op derive macros.
//! Swap the `serde` entry in the workspace `Cargo.toml` back to the registry
//! crate to restore real serialisation support.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

impl<T> Serialize for T {}

impl<'de, T> Deserialize<'de> for T {}
