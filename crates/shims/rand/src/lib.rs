//! Minimal stand-in for the `rand` 0.8 API surface this workspace uses.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched.  This shim implements exactly the subset the workspace calls —
//! `StdRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` and
//! `SliceRandom::shuffle` — on top of the xoshiro256++ generator seeded with
//! SplitMix64, matching the reference implementations by Blackman and Vigna.
//!
//! The generated streams are deterministic for a given seed (everything the
//! reproduction needs) but intentionally do **not** match the real `StdRng`
//! byte-for-byte; no experiment in this repository depends on the concrete
//! stream of the upstream crate.

use std::ops::{Range, RangeInclusive};

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Distribution-style sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution
    /// (uniform over all values for integers, uniform in `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Samples a uniform integer in `[0, bound)` via Lemire's multiply-shift
/// (the modulo bias is negligible for the 64-bit state used here).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + <$t as Standard>::sample(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                start + <$t as Standard>::sample(rng) * (end - start)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers, mirroring `rand::seq`.

    use super::{uniform_below, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let va: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&w));
            let u = rng.gen_range(5u32..=5);
            assert_eq!(u, 5);
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
