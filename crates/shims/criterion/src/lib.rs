//! Minimal stand-in for the `criterion` benchmarking API used by this
//! workspace.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched.  This shim keeps the `criterion_group!`/`criterion_main!` bench
//! targets compiling and producing useful wall-clock numbers: each
//! `Bencher::iter` call is warmed up, run for a fixed number of samples and
//! reported as min/mean/median nanoseconds per iteration on stdout.
//!
//! It is *not* a statistical framework — swap the workspace `criterion`
//! dependency back to the registry crate for confidence intervals, HTML
//! reports and regression detection.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock budget for one benchmark's measurement phase.
const MEASUREMENT_BUDGET: Duration = Duration::from_secs(2);

/// The benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of measured samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers and immediately runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Finishes the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` measures the routine.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures `routine`, collecting one duration per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: find how many iterations fit in ~10ms.
        let calibration_start = Instant::now();
        black_box(routine());
        let once = calibration_start.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample =
            (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;

        let budget_start = Instant::now();
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample);
            if budget_start.elapsed() > MEASUREMENT_BUDGET {
                break;
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<60} (no samples)");
        return;
    }
    let mut nanos: Vec<u128> = bencher.samples.iter().map(Duration::as_nanos).collect();
    nanos.sort_unstable();
    let min = nanos[0];
    let median = nanos[nanos.len() / 2];
    let mean = nanos.iter().sum::<u128>() / nanos.len() as u128;
    println!(
        "{id:<60} min {:>12}  mean {:>12}  median {:>12}  ({} samples)",
        format_nanos(min),
        format_nanos(mean),
        format_nanos(median),
        nanos.len()
    );
}

fn format_nanos(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Mirrors `criterion::criterion_group!`: defines a function running each
/// benchmark with a shared [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: defines `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn groups_scope_names_and_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut runs = 0u32;
        group.bench_function("grouped", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn format_covers_magnitudes() {
        assert_eq!(format_nanos(12), "12 ns");
        assert!(format_nanos(12_345).contains("µs"));
        assert!(format_nanos(12_345_678).contains("ms"));
        assert!(format_nanos(12_345_678_900).ends_with(" s"));
    }
}
