//! No-op stand-in for `serde_derive`.
//!
//! The build environment has no network access, so the workspace cannot pull
//! the real `serde`/`serde_derive` crates.  Nothing in this repository
//! actually serialises data — the derives only annotate types for future use —
//! so the derive macros expand to nothing while still accepting the `#[serde]`
//! helper attribute.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and emits
/// no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes) and
/// emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
