//! Cross-engine equivalence and tile edge cases for the cache-blocked radix
//! scoreboard.
//!
//! The contract under test: [`FeatureMatrix::build_with`] and
//! [`FeatureMatrix::score_rows_with`] produce **bit-identical** output for
//! every scoreboard engine, tile width, dense-remap limit and worker-thread
//! count — on Clean-Clean and Dirty collections, across block structures
//! mimicking all three redundancy-positive blocking schemes.  The flat
//! `O(num_entities)`-scratch board is the retained reference; the tiled
//! engine must match it bit for bit, including at degenerate tile widths
//! (1, wider than the corpus) and with the dense fast path forced on or
//! off.

use er_blocking::{Block, BlockCollection, BlockStats, CandidatePairs};
use er_core::{DatasetKind, EntityId};
use er_features::{
    scoreboard_metrics, FeatureContext, FeatureMatrix, FeatureSet, FlatScoreboard, RadixScoreboard,
    ScoreboardConfig, ScoreboardEngine,
};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Deterministic xorshift generator — no rand dependency needed here.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }
}

/// Synthetic block structures shaped like the three redundancy-positive
/// blocking schemes: few large overlapping blocks (token), many small
/// blocks with high redundancy (q-grams), and tiny low-redundancy blocks
/// (suffix arrays).
#[derive(Clone, Copy, Debug)]
enum SchemeShape {
    Token,
    Qgrams,
    Suffix,
}

impl SchemeShape {
    fn all() -> [SchemeShape; 3] {
        [SchemeShape::Token, SchemeShape::Qgrams, SchemeShape::Suffix]
    }

    /// (number of blocks, max members per block) at a given corpus size.
    fn dimensions(self, num_entities: usize) -> (usize, usize) {
        match self {
            SchemeShape::Token => (num_entities / 8, 24),
            SchemeShape::Qgrams => (num_entities / 2, 8),
            SchemeShape::Suffix => (num_entities, 4),
        }
    }
}

/// Builds a random block collection with the given scheme shape.  For
/// Clean-Clean collections every block mixes members from both sources;
/// Dirty collections use the whole id space.
fn synthetic_blocks(
    kind: DatasetKind,
    shape: SchemeShape,
    num_entities: usize,
    seed: u64,
) -> BlockCollection {
    let split = match kind {
        DatasetKind::CleanClean => num_entities / 2,
        DatasetKind::Dirty => num_entities,
    };
    let (num_blocks, max_members) = shape.dimensions(num_entities);
    let mut rng = Lcg(seed | 1);
    let mut blocks = Vec::with_capacity(num_blocks);
    for b in 0..num_blocks {
        let mut members: Vec<EntityId> = Vec::new();
        let len = 2 + rng.below(max_members.saturating_sub(1));
        match kind {
            DatasetKind::CleanClean => {
                // At least one member per source so the block yields pairs.
                let from_e1 = 1 + rng.below(len - 1);
                for _ in 0..from_e1 {
                    members.push(EntityId(rng.below(split) as u32));
                }
                for _ in from_e1..len {
                    members.push(EntityId((split + rng.below(num_entities - split)) as u32));
                }
            }
            DatasetKind::Dirty => {
                for _ in 0..len {
                    members.push(EntityId(rng.below(num_entities) as u32));
                }
            }
        }
        members.sort_unstable();
        members.dedup();
        if members.len() < 2 {
            continue;
        }
        blocks.push(Block::new(format!("b{b}"), members));
    }
    BlockCollection {
        dataset_name: format!("{shape:?}-{kind:?}"),
        kind,
        split,
        num_entities,
        blocks,
    }
}

/// Asserts that the tiled engine matches the flat reference bit for bit on
/// one collection, for every thread count, with the given configuration.
fn assert_engines_agree(blocks: &BlockCollection, tiled: &ScoreboardConfig, label: &str) {
    let stats = BlockStats::new(blocks);
    let candidates = CandidatePairs::from_blocks(blocks);
    let context = FeatureContext::new(&stats, &candidates);
    let set = FeatureSet::all_schemes();
    let flat = ScoreboardConfig::flat();
    let score = |row: &[f64]| {
        row.iter()
            .enumerate()
            .map(|(i, v)| v * (i + 1) as f64)
            .sum()
    };

    let reference = FeatureMatrix::build_with(&context, set, 1, &flat);
    let reference_scores = FeatureMatrix::score_rows_with(&context, set, 1, &flat, score);
    for threads in THREAD_COUNTS {
        let produced = FeatureMatrix::build_with(&context, set, threads, tiled);
        for (id, row) in reference.rows() {
            assert_eq!(
                produced.row(id),
                row,
                "{label}: row {id:?} at {threads} threads"
            );
        }
        let scores = FeatureMatrix::score_rows_with(&context, set, threads, tiled, score);
        assert_eq!(
            scores, reference_scores,
            "{label}: scores at {threads} threads"
        );

        // Flat must also be thread-invariant against its own sequential run.
        let flat_parallel = FeatureMatrix::build_with(&context, set, threads, &flat);
        for (id, row) in reference.rows() {
            assert_eq!(
                flat_parallel.row(id),
                row,
                "{label}: flat row {id:?} at {threads} threads"
            );
        }
    }

    // Candidate subsets exercise the untouched-candidate (zero-aggregate)
    // paths: keep every third pair only.
    let subset = CandidatePairs::from_pairs(
        blocks.num_entities,
        candidates
            .iter()
            .filter(|(id, _, _)| id.index() % 3 == 0)
            .map(|(_, a, b)| (a, b)),
    );
    let context = FeatureContext::new(&stats, &subset);
    let expected = FeatureMatrix::build_with(&context, set, 1, &flat);
    for threads in THREAD_COUNTS {
        let produced = FeatureMatrix::build_with(&context, set, threads, tiled);
        for (id, row) in expected.rows() {
            assert_eq!(
                produced.row(id),
                row,
                "{label}: subset row {id:?} at {threads} threads"
            );
        }
    }
}

#[test]
fn tiled_matches_flat_across_schemes_kinds_and_threads() {
    for kind in [DatasetKind::CleanClean, DatasetKind::Dirty] {
        for shape in SchemeShape::all() {
            let blocks = synthetic_blocks(kind, shape, 300, 0x9e3779b97f4a7c15);
            assert_engines_agree(
                &blocks,
                &ScoreboardConfig::default(),
                &format!("{shape:?}/{kind:?}"),
            );
        }
    }
}

#[test]
fn tile_widths_do_not_change_output() {
    let blocks = synthetic_blocks(DatasetKind::CleanClean, SchemeShape::Token, 250, 42);
    // 1 = one partner per tile, 64 = many boundary crossings, 4096 = the
    // default, 1 << 20 = a single tile wider than the corpus.
    for tile in [1usize, 64, 4096, 1 << 20] {
        assert_engines_agree(
            &blocks,
            &ScoreboardConfig::with_tile(tile),
            &format!("tile={tile}"),
        );
    }
}

#[test]
fn dense_fast_path_on_and_off_is_bit_identical() {
    let blocks = synthetic_blocks(DatasetKind::Dirty, SchemeShape::Qgrams, 250, 7);
    // dense_remap_limit = 0 forces the radix path for every entity; 1024
    // (above any candidate-list length here) forces the dense remap path.
    for limit in [0usize, 1024] {
        let config = ScoreboardConfig {
            dense_remap_limit: limit,
            ..ScoreboardConfig::default()
        };
        assert_engines_agree(&blocks, &config, &format!("dense_limit={limit}"));
    }
}

#[test]
fn partners_straddling_tile_boundaries_and_empty_tiles() {
    // Hand-built Dirty collection on a tile width of 4: entity 0's partners
    // sit at the last slot of tile 0 (id 3), both edges of the tile 0→1
    // boundary (3, 4), the middle of tile 2 (id 10), and the first slot of
    // the last, partially-filled tile (id 12).  Tiles 1 and 3 stay empty in
    // some blocks, and id 13 never co-occurs with 0 at all.
    let ids = |v: &[u32]| v.iter().copied().map(EntityId).collect::<Vec<_>>();
    let blocks = BlockCollection {
        dataset_name: "straddle".into(),
        kind: DatasetKind::Dirty,
        split: 14,
        num_entities: 14,
        blocks: vec![
            Block::new("edge", ids(&[0, 3, 4])),
            Block::new("mid", ids(&[0, 4, 10])),
            Block::new("tail", ids(&[0, 10, 12])),
            Block::new("other", ids(&[3, 12, 13])),
        ],
    };
    for tile in [1usize, 4, 64] {
        assert_engines_agree(
            &blocks,
            &ScoreboardConfig::with_tile(tile),
            &format!("straddle tile={tile}"),
        );
    }
}

#[test]
fn effective_tile_handles_degenerate_widths() {
    let config = ScoreboardConfig::default();
    assert_eq!(config.effective_tile(0), 4096);
    let one = ScoreboardConfig::with_tile(1);
    assert_eq!(one.effective_tile(1_000_000), 1);
    let huge = ScoreboardConfig::with_tile(usize::MAX);
    // Caps at a power of two at least as large as the corpus.
    assert!(huge.effective_tile(100).is_power_of_two());
    assert!(huge.effective_tile(100) >= 100);
}

#[test]
fn metrics_report_tile_scaled_scratch() {
    let blocks = synthetic_blocks(DatasetKind::Dirty, SchemeShape::Token, 400, 3);
    let stats = BlockStats::new(&blocks);
    let candidates = CandidatePairs::from_blocks(&blocks);
    let context = FeatureContext::new(&stats, &candidates);
    let set = FeatureSet::all_schemes();

    let tiled = ScoreboardConfig::with_tile(64);
    let flat = ScoreboardConfig::flat();
    let before = scoreboard_metrics();
    let a = FeatureMatrix::build_with(&context, set, 1, &tiled);
    let b = FeatureMatrix::build_with(&context, set, 1, &flat);
    for (id, row) in b.rows() {
        assert_eq!(a.row(id), row);
    }

    // Both builds publish into the shared er-obs registry; other tests in
    // this process may flush concurrently, so assert monotone deltas and
    // high-water lower bounds.  The flat pass records its corpus-sized
    // scratch (20 B per entity in the three arrays); the tiled pass routes
    // every entity through one of the two paths.
    let after = scoreboard_metrics();
    assert!(after.scratch_bytes_hwm >= 20 * blocks.num_entities as u64);
    assert!(after.partners_hwm > 0);
    assert!(after.contributions_hwm >= after.partners_hwm);
    assert!(
        after.radix_entities + after.dense_entities > before.radix_entities + before.dense_entities
    );
    // The scratch separation itself is a board property: a tiled board for
    // this corpus allocates far less than the flat reference.
    let tiled_board = RadixScoreboard::new(blocks.num_entities, &tiled);
    let flat_board = FlatScoreboard::new(blocks.num_entities);
    assert!(tiled_board.scratch_bytes() < flat_board.scratch_bytes());
}

#[test]
fn engine_selection_is_respected() {
    assert_eq!(ScoreboardConfig::default().engine, ScoreboardEngine::Tiled);
    assert_eq!(ScoreboardConfig::flat().engine, ScoreboardEngine::Flat);
}
