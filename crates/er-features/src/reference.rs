//! The retained pre-refactor feature engine, kept verbatim for equivalence
//! tests and before/after benchmarking.
//!
//! This module reproduces the original hot path faithfully:
//!
//! * block statistics through the nested `Vec<Vec<BlockId>>` adjacency
//!   ([`er_blocking::reference::NaiveBlockStats`]);
//! * one division per common block and one `ln()` per CF-IBF/EJS factor on
//!   **every** pair evaluation (nothing precomputed beyond the per-entity
//!   normalisation sums the old code cached);
//! * matrix construction with a temporary row vector per pair, EJS
//!   re-deriving JS through `score_with`, and fixed per-thread chunking
//!   instead of a work-stealing queue.
//!
//! The production engine ([`crate::FeatureContext`] +
//! [`crate::FeatureMatrix`]) must produce values within 1e-12 of this module
//! on any input; benchmarks compare the two to quantify the CSR/fused-pass
//! speedup.  Nothing here should be used on a hot path.

use er_blocking::reference::NaiveBlockStats;
use er_blocking::{BlockCollection, CandidatePairs};
use er_core::EntityId;

use crate::feature_set::FeatureSet;
use crate::generator::FeatureMatrix;
use crate::schemes::Scheme;

/// The pre-refactor feature context: per-entity normalisation sums only,
/// everything else derived per pair.
#[derive(Debug)]
pub struct NaiveFeatureContext<'a> {
    stats: NaiveBlockStats,
    candidates: &'a CandidatePairs,
    /// Σ_{b ∈ B_i} 1/||b|| per entity (denominator of WJS).
    entity_inv_comparisons: Vec<f64>,
    /// Σ_{b ∈ B_i} 1/|b| per entity (denominator of NRS).
    entity_inv_sizes: Vec<f64>,
    num_blocks: f64,
    total_comparisons: f64,
}

/// The per-pair co-occurrence aggregates, as the old code computed them
/// (divisions inside the merge loop).
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveCooccurrence {
    /// |B_i ∩ B_j|.
    pub common_blocks: usize,
    /// Σ 1/||b|| over common blocks.
    pub inv_comparisons_sum: f64,
    /// Σ 1/|b| over common blocks.
    pub inv_sizes_sum: f64,
}

impl<'a> NaiveFeatureContext<'a> {
    /// Builds the naive context (computing its own nested-vec statistics).
    pub fn new(blocks: &BlockCollection, candidates: &'a CandidatePairs) -> Self {
        let stats = NaiveBlockStats::new(blocks);
        let n = stats.num_entities();
        let mut entity_inv_comparisons = vec![0.0; n];
        let mut entity_inv_sizes = vec![0.0; n];
        for e in 0..n {
            let entity = EntityId::from(e);
            let mut inv_comp = 0.0;
            let mut inv_size = 0.0;
            for &b in stats.blocks_of(entity) {
                let comparisons = stats.block_comparisons(b);
                if comparisons > 0 {
                    inv_comp += 1.0 / comparisons as f64;
                }
                let size = stats.block_size(b);
                if size > 0 {
                    inv_size += 1.0 / f64::from(size);
                }
            }
            entity_inv_comparisons[e] = inv_comp;
            entity_inv_sizes[e] = inv_size;
        }
        let num_blocks = stats.num_blocks() as f64;
        let total_comparisons = stats.total_comparisons() as f64;
        NaiveFeatureContext {
            stats,
            candidates,
            entity_inv_comparisons,
            entity_inv_sizes,
            num_blocks,
            total_comparisons,
        }
    }

    /// One merge over the common blocks, dividing on every hit like the
    /// original implementation.
    pub fn cooccurrence(&self, a: EntityId, b: EntityId) -> NaiveCooccurrence {
        let mut agg = NaiveCooccurrence::default();
        self.stats.for_each_common_block(a, b, |block| {
            agg.common_blocks += 1;
            let comparisons = self.stats.block_comparisons(block);
            if comparisons > 0 {
                agg.inv_comparisons_sum += 1.0 / comparisons as f64;
            }
            let size = self.stats.block_size(block);
            if size > 0 {
                agg.inv_sizes_sum += 1.0 / f64::from(size);
            }
        });
        agg
    }

    /// Evaluates one scheme from precomputed aggregates, re-deriving the
    /// logarithmic factors on every call exactly like the original code.
    pub fn score_with(
        &self,
        scheme: Scheme,
        a: EntityId,
        b: EntityId,
        agg: &NaiveCooccurrence,
    ) -> f64 {
        match scheme {
            Scheme::CfIbf => agg.common_blocks as f64 * self.ibf(a) * self.ibf(b),
            Scheme::Raccb => agg.inv_comparisons_sum,
            Scheme::Js => {
                let cb = agg.common_blocks as f64;
                let union =
                    self.stats.num_blocks_of(a) as f64 + self.stats.num_blocks_of(b) as f64 - cb;
                if union > 0.0 {
                    cb / union
                } else {
                    0.0
                }
            }
            Scheme::Lcp => self.lcp(a),
            Scheme::Ejs => {
                let js = self.score_with(Scheme::Js, a, b, agg);
                js * self.inverse_candidate_frequency(a) * self.inverse_candidate_frequency(b)
            }
            Scheme::Wjs => {
                let numerator = agg.inv_comparisons_sum;
                let denominator = self.entity_inv_comparisons[a.index()]
                    + self.entity_inv_comparisons[b.index()]
                    - numerator;
                if denominator > 0.0 {
                    numerator / denominator
                } else {
                    0.0
                }
            }
            Scheme::Rs => agg.inv_sizes_sum,
            Scheme::Nrs => {
                let numerator = agg.inv_sizes_sum;
                let denominator =
                    self.entity_inv_sizes[a.index()] + self.entity_inv_sizes[b.index()] - numerator;
                if denominator > 0.0 {
                    numerator / denominator
                } else {
                    0.0
                }
            }
        }
    }

    fn ibf(&self, entity: EntityId) -> f64 {
        let blocks_of = self.stats.num_blocks_of(entity) as f64;
        if blocks_of > 0.0 && self.num_blocks > 0.0 {
            (self.num_blocks / blocks_of).ln()
        } else {
            0.0
        }
    }

    fn inverse_candidate_frequency(&self, entity: EntityId) -> f64 {
        let entity_comparisons = self.stats.entity_comparisons(entity) as f64;
        if entity_comparisons > 0.0 && self.total_comparisons > 0.0 {
            (self.total_comparisons / entity_comparisons).ln()
        } else {
            0.0
        }
    }

    fn lcp(&self, entity: EntityId) -> f64 {
        f64::from(self.candidates.candidates_of(entity))
    }

    /// Writes the feature vector of a pair into `out` (cleared first),
    /// evaluating every scheme independently.
    pub fn pair_features(&self, a: EntityId, b: EntityId, set: FeatureSet, out: &mut Vec<f64>) {
        out.clear();
        let agg = self.cooccurrence(a, b);
        for scheme in Scheme::ALL {
            if !set.contains(scheme) {
                continue;
            }
            if scheme == Scheme::Lcp {
                out.push(self.lcp(a));
                out.push(self.lcp(b));
            } else {
                out.push(self.score_with(scheme, a, b, &agg));
            }
        }
    }

    /// Builds the full feature matrix the pre-refactor way: a temporary row
    /// vector per pair and fixed contiguous per-thread chunks (the original
    /// crossbeam layout, here on `std::thread::scope`).
    pub fn build_matrix(&self, set: FeatureSet, threads: usize) -> FeatureMatrix {
        let pairs = self.candidates.pairs();
        let num_features = set.vector_len();
        let num_pairs = pairs.len();
        let mut values = vec![0.0f64; num_features * num_pairs];

        let threads = threads.max(1).min(num_pairs.max(1));
        if threads <= 1 || num_pairs < 1024 {
            let mut row = Vec::with_capacity(num_features);
            for (i, &(a, b)) in pairs.iter().enumerate() {
                self.pair_features(a, b, set, &mut row);
                values[i * num_features..(i + 1) * num_features].copy_from_slice(&row);
            }
        } else {
            let chunk_rows = num_pairs.div_ceil(threads);
            let chunk_len = chunk_rows * num_features;
            std::thread::scope(|scope| {
                for (chunk_index, chunk) in values.chunks_mut(chunk_len).enumerate() {
                    let start = chunk_index * chunk_rows;
                    scope.spawn(move || {
                        let mut row = Vec::with_capacity(num_features);
                        for (offset, slot) in chunk.chunks_mut(num_features).enumerate() {
                            let (a, b) = pairs[start + offset];
                            self.pair_features(a, b, set, &mut row);
                            slot.copy_from_slice(&row);
                        }
                    });
                }
            });
        }

        FeatureMatrix::from_parts(set, num_features, num_pairs, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FeatureContext;
    use er_blocking::{Block, BlockStats};
    use er_core::DatasetKind;

    fn fixture() -> BlockCollection {
        let ids = |v: &[u32]| v.iter().copied().map(EntityId).collect::<Vec<_>>();
        BlockCollection {
            dataset_name: "t".into(),
            kind: DatasetKind::CleanClean,
            split: 3,
            num_entities: 6,
            blocks: vec![
                Block::new("a", ids(&[0, 3])),
                Block::new("b", ids(&[0, 1, 3, 4])),
                Block::new("c", ids(&[1, 4])),
                Block::new("d", ids(&[2, 5])),
                Block::new("e", ids(&[0, 1, 2, 3, 4, 5])),
            ],
        }
    }

    #[test]
    fn naive_engine_matches_production_engine() {
        let bc = fixture();
        let stats = BlockStats::new(&bc);
        let candidates = CandidatePairs::from_blocks(&bc);
        let naive_ctx = NaiveFeatureContext::new(&bc, &candidates);
        let ctx = FeatureContext::new(&stats, &candidates);
        for set in [FeatureSet::all_schemes(), FeatureSet::rcnp_optimal()] {
            let naive = naive_ctx.build_matrix(set, 1);
            let fused = FeatureMatrix::build(&ctx, set);
            assert_eq!(naive.num_pairs(), fused.num_pairs());
            for (id, row) in naive.rows() {
                for (x, y) in fused.row(id).iter().zip(row) {
                    assert!((x - y).abs() < 1e-12, "{set}: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn naive_parallel_build_matches_sequential() {
        let bc = fixture();
        let candidates = CandidatePairs::from_blocks(&bc);
        let naive_ctx = NaiveFeatureContext::new(&bc, &candidates);
        let set = FeatureSet::all_schemes();
        let sequential = naive_ctx.build_matrix(set, 1);
        let parallel = naive_ctx.build_matrix(set, 4);
        for (id, row) in sequential.rows() {
            assert_eq!(parallel.row(id), row);
        }
    }
}
