//! Feature context: per-entity aggregates and per-pair scheme evaluation.

use er_blocking::{BlockStats, CandidatePairs};
use er_core::EntityId;

use crate::feature_set::FeatureSet;
use crate::schemes::Scheme;

/// Everything needed to score a candidate pair with any weighting scheme.
///
/// The context borrows the block statistics and candidate pairs and
/// pre-computes every per-entity quantity any scheme needs — the WJS/NRS
/// normalisation sums, the CF-IBF `log(|B|/|B_i|)` factors, the EJS
/// `log(||B||/||e_i||)` factors and the LCP counts — so that each per-pair
/// evaluation costs a single merge over the two sorted CSR block lists with
/// no divisions and no logarithms.
#[derive(Debug)]
pub struct FeatureContext<'a> {
    stats: &'a BlockStats,
    candidates: &'a CandidatePairs,
    /// Σ_{b ∈ B_i} 1/||b|| per entity (denominator of WJS).
    entity_inv_comparisons: Vec<f64>,
    /// Σ_{b ∈ B_i} 1/|b| per entity (denominator of NRS).
    entity_inv_sizes: Vec<f64>,
    /// `log(|B| / |B_i|)` per entity (the CF-IBF factor).
    entity_ibf: Vec<f64>,
    /// `log(||B|| / ||e_i||)` per entity (the EJS factor).
    entity_icf: Vec<f64>,
}

/// The raw per-pair co-occurrence aggregates from which every scheme is
/// computed: one merge over the common blocks yields all three sums.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PairCooccurrence {
    /// |B_i ∩ B_j|: number of common blocks.
    pub common_blocks: usize,
    /// Σ_{b ∈ B_i ∩ B_j} 1/||b||.
    pub inv_comparisons_sum: f64,
    /// Σ_{b ∈ B_i ∩ B_j} 1/|b|.
    pub inv_sizes_sum: f64,
}

/// The per-entity aggregates every weighting scheme reads.
///
/// [`FeatureContext`] precomputes these for the whole corpus; incremental
/// consumers (the `er-stream` delta scorer) compute them only for the
/// entities touched by a batch and feed the same fused writer,
/// [`write_features_from`] — so the scheme formulas live in exactly one
/// place no matter which engine evaluates them.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EntityAggregates {
    /// `|B_i|`: number of blocks containing the entity, as an `f64` (the JS
    /// union formula consumes it in floating point).
    pub num_blocks: f64,
    /// Σ_{b ∈ B_i} 1/||b|| (denominator of WJS).
    pub inv_comparisons: f64,
    /// Σ_{b ∈ B_i} 1/|b| (denominator of NRS).
    pub inv_sizes: f64,
    /// `ln(|B| / |B_i|)`: the CF-IBF inverse-block-frequency factor.
    pub ibf: f64,
    /// `ln(||B|| / ||e_i||)`: the EJS inverse-candidate-frequency factor.
    pub icf: f64,
    /// LCP: the entity's number of distinct candidates.
    pub lcp: f64,
}

/// Writes the feature vector of a pair from its co-occurrence aggregates and
/// the two endpoints' per-entity aggregates.  `out` must be exactly
/// `set.vector_len()` long; columns follow the canonical scheme order with
/// LCP expanding into `LCP(e_i), LCP(e_j)`.
///
/// This is the single home of the per-pair scheme formulas: the corpus-wide
/// [`FeatureContext::write_pair_features_with`] and the incremental
/// `er-stream` scorer both delegate here, so their outputs are bit-identical
/// whenever their aggregates are.
#[inline]
pub fn write_features_from(
    a: &EntityAggregates,
    b: &EntityAggregates,
    agg: &PairCooccurrence,
    set: FeatureSet,
    out: &mut [f64],
) {
    debug_assert_eq!(out.len(), set.vector_len());
    let cb = agg.common_blocks as f64;

    // JS is needed by both the Js and Ejs columns; derive it once.
    let needs_js = set.contains(Scheme::Js) || set.contains(Scheme::Ejs);
    let js = if needs_js {
        let union = a.num_blocks + b.num_blocks - cb;
        if union > 0.0 {
            cb / union
        } else {
            0.0
        }
    } else {
        0.0
    };

    let mut cursor = 0;
    let mut push = |slot: &mut usize, value: f64| {
        out[*slot] = value;
        *slot += 1;
    };
    if set.contains(Scheme::CfIbf) {
        push(&mut cursor, cb * a.ibf * b.ibf);
    }
    if set.contains(Scheme::Raccb) {
        push(&mut cursor, agg.inv_comparisons_sum);
    }
    if set.contains(Scheme::Js) {
        push(&mut cursor, js);
    }
    if set.contains(Scheme::Lcp) {
        push(&mut cursor, a.lcp);
        push(&mut cursor, b.lcp);
    }
    if set.contains(Scheme::Ejs) {
        push(&mut cursor, js * a.icf * b.icf);
    }
    if set.contains(Scheme::Wjs) {
        let numerator = agg.inv_comparisons_sum;
        let denominator = a.inv_comparisons + b.inv_comparisons - numerator;
        push(
            &mut cursor,
            if denominator > 0.0 {
                numerator / denominator
            } else {
                0.0
            },
        );
    }
    if set.contains(Scheme::Rs) {
        push(&mut cursor, agg.inv_sizes_sum);
    }
    if set.contains(Scheme::Nrs) {
        let numerator = agg.inv_sizes_sum;
        let denominator = a.inv_sizes + b.inv_sizes - numerator;
        push(
            &mut cursor,
            if denominator > 0.0 {
                numerator / denominator
            } else {
                0.0
            },
        );
    }
    debug_assert_eq!(cursor, out.len());
}

/// The four per-entity tables every scheme reads, derived from the block
/// statistics alone (no candidate set needed): the WJS/NRS normalisation
/// sums, the CF-IBF factor and the EJS factor.  [`FeatureContext`] (batch)
/// and [`StreamFeatureContext`] (streamed) both build exactly these, so
/// their per-pair outputs are bit-identical whenever their LCP tables are.
struct EntityTables {
    inv_comparisons: Vec<f64>,
    inv_sizes: Vec<f64>,
    ibf: Vec<f64>,
    icf: Vec<f64>,
}

impl EntityTables {
    fn new(stats: &BlockStats) -> Self {
        let n = stats.num_entities();
        let num_blocks = stats.num_blocks() as f64;
        let total_comparisons = stats.total_comparisons() as f64;
        let inv_comp_table = stats.inv_comparisons_table();
        let inv_size_table = stats.inv_sizes_table();

        let mut inv_comparisons = vec![0.0; n];
        let mut inv_sizes = vec![0.0; n];
        let mut ibf = vec![0.0; n];
        let mut icf = vec![0.0; n];
        for e in 0..n {
            let entity = EntityId::from(e);
            let list = stats.blocks_of(entity);
            let mut inv_comp = 0.0;
            let mut inv_size = 0.0;
            for &b in list {
                inv_comp += inv_comp_table[b.index()];
                inv_size += inv_size_table[b.index()];
            }
            inv_comparisons[e] = inv_comp;
            inv_sizes[e] = inv_size;

            let blocks_of = list.len() as f64;
            ibf[e] = if blocks_of > 0.0 && num_blocks > 0.0 {
                (num_blocks / blocks_of).ln()
            } else {
                0.0
            };
            let entity_comparisons = stats.entity_comparisons(entity) as f64;
            icf[e] = if entity_comparisons > 0.0 && total_comparisons > 0.0 {
                (total_comparisons / entity_comparisons).ln()
            } else {
                0.0
            };
        }
        EntityTables {
            inv_comparisons,
            inv_sizes,
            ibf,
            icf,
        }
    }
}

/// Computes the per-pair co-occurrence aggregates with a single merge of the
/// two sorted CSR block lists, reading the precomputed reciprocal tables.
/// Shared by both context flavours.
#[inline]
fn cooccurrence_from(stats: &BlockStats, a: EntityId, b: EntityId) -> PairCooccurrence {
    let inv_comp = stats.inv_comparisons_table();
    let inv_size = stats.inv_sizes_table();
    let mut agg = PairCooccurrence::default();
    stats.for_each_common_block(a, b, |block| {
        agg.common_blocks += 1;
        agg.inv_comparisons_sum += inv_comp[block.index()];
        agg.inv_sizes_sum += inv_size[block.index()];
    });
    agg
}

/// The per-entity aggregate provider the fused entity-major engine reads —
/// implemented by [`FeatureContext`] (LCP from a materialised
/// [`CandidatePairs`]) and [`StreamFeatureContext`] (LCP from a
/// [`CandidateStream`](er_blocking::CandidateStream) counting pass).
pub(crate) trait PairAggregateSource: Sync {
    /// The precomputed per-entity aggregates of one entity.
    fn source_aggregates(&self, entity: EntityId) -> EntityAggregates;
    /// The per-pair merge fallback for pairs the scoreboard never
    /// accumulates (same-source Clean-Clean candidates).
    fn source_cooccurrence(&self, a: EntityId, b: EntityId) -> PairCooccurrence;
}

impl PairAggregateSource for FeatureContext<'_> {
    #[inline]
    fn source_aggregates(&self, entity: EntityId) -> EntityAggregates {
        self.entity_aggregates(entity)
    }

    #[inline]
    fn source_cooccurrence(&self, a: EntityId, b: EntityId) -> PairCooccurrence {
        self.cooccurrence(a, b)
    }
}

impl PairAggregateSource for StreamFeatureContext<'_> {
    #[inline]
    fn source_aggregates(&self, entity: EntityId) -> EntityAggregates {
        self.entity_aggregates(entity)
    }

    #[inline]
    fn source_cooccurrence(&self, a: EntityId, b: EntityId) -> PairCooccurrence {
        self.cooccurrence(a, b)
    }
}

/// The streamed counterpart of [`FeatureContext`]: the same per-entity
/// tables, but the LCP counts come from a
/// [`CandidateStream`](er_blocking::CandidateStream)'s counting pass instead
/// of a materialised [`CandidatePairs`].  The LCP table is the *only*
/// candidate-dependent per-entity aggregate, so a streamed scorer built on
/// this context is bit-identical to the batch scorer without the pair index
/// ever existing in memory.
#[derive(Debug)]
pub struct StreamFeatureContext<'a> {
    stats: &'a BlockStats,
    /// Per-entity distinct-candidate counts (the LCP feature values).
    lcp: &'a [u32],
    entity_inv_comparisons: Vec<f64>,
    entity_inv_sizes: Vec<f64>,
    entity_ibf: Vec<f64>,
    entity_icf: Vec<f64>,
}

impl<'a> StreamFeatureContext<'a> {
    /// Builds the context from block statistics and a per-entity
    /// distinct-candidate table (one entry per entity — typically
    /// [`CandidateStream::lcp_table`](er_blocking::CandidateStream::lcp_table)).
    pub fn new(stats: &'a BlockStats, lcp: &'a [u32]) -> Self {
        assert_eq!(
            lcp.len(),
            stats.num_entities(),
            "LCP table must have one entry per entity"
        );
        let tables = EntityTables::new(stats);
        StreamFeatureContext {
            stats,
            lcp,
            entity_inv_comparisons: tables.inv_comparisons,
            entity_inv_sizes: tables.inv_sizes,
            entity_ibf: tables.ibf,
            entity_icf: tables.icf,
        }
    }

    /// The underlying block statistics.
    pub fn stats(&self) -> &BlockStats {
        self.stats
    }

    /// The per-pair co-occurrence aggregates (single sorted-list merge).
    #[inline]
    pub fn cooccurrence(&self, a: EntityId, b: EntityId) -> PairCooccurrence {
        cooccurrence_from(self.stats, a, b)
    }

    /// The precomputed per-entity aggregates of one entity.
    #[inline]
    pub fn entity_aggregates(&self, entity: EntityId) -> EntityAggregates {
        let i = entity.index();
        EntityAggregates {
            num_blocks: self.stats.num_blocks_of(entity) as f64,
            inv_comparisons: self.entity_inv_comparisons[i],
            inv_sizes: self.entity_inv_sizes[i],
            ibf: self.entity_ibf[i],
            icf: self.entity_icf[i],
            lcp: f64::from(self.lcp[i]),
        }
    }
}

impl<'a> FeatureContext<'a> {
    /// Builds the context for a block collection's statistics and candidate
    /// pairs.
    pub fn new(stats: &'a BlockStats, candidates: &'a CandidatePairs) -> Self {
        let tables = EntityTables::new(stats);
        FeatureContext {
            stats,
            candidates,
            entity_inv_comparisons: tables.inv_comparisons,
            entity_inv_sizes: tables.inv_sizes,
            entity_ibf: tables.ibf,
            entity_icf: tables.icf,
        }
    }

    /// The underlying block statistics.
    pub fn stats(&self) -> &BlockStats {
        self.stats
    }

    /// The candidate pairs the context was built over.
    pub fn candidates(&self) -> &CandidatePairs {
        self.candidates
    }

    /// Computes the per-pair co-occurrence aggregates with a single merge of
    /// the two sorted CSR block lists
    /// ([`BlockStats::for_each_common_block`]), reading the precomputed
    /// reciprocal tables (no division in the loop).
    #[inline]
    pub fn cooccurrence(&self, a: EntityId, b: EntityId) -> PairCooccurrence {
        cooccurrence_from(self.stats, a, b)
    }

    /// Evaluates a single weighting scheme for a pair.
    ///
    /// For [`Scheme::Lcp`], which is defined per entity, the value returned is
    /// `LCP(e_i)`; use [`FeatureContext::lcp`] for an individual entity or
    /// [`FeatureContext::pair_features`] to obtain both endpoints' values.
    pub fn score(&self, scheme: Scheme, a: EntityId, b: EntityId) -> f64 {
        let agg = self.cooccurrence(a, b);
        self.score_with(scheme, a, b, &agg)
    }

    /// Evaluates a scheme given precomputed co-occurrence aggregates.
    ///
    /// This is the retained per-scheme reference path; the fused
    /// [`FeatureContext::write_pair_features`] computes whole vectors without
    /// re-deriving shared sub-expressions.
    pub fn score_with(
        &self,
        scheme: Scheme,
        a: EntityId,
        b: EntityId,
        agg: &PairCooccurrence,
    ) -> f64 {
        match scheme {
            Scheme::CfIbf => {
                let cb = agg.common_blocks as f64;
                cb * self.ibf(a) * self.ibf(b)
            }
            Scheme::Raccb => agg.inv_comparisons_sum,
            Scheme::Js => {
                let cb = agg.common_blocks as f64;
                let union =
                    self.stats.num_blocks_of(a) as f64 + self.stats.num_blocks_of(b) as f64 - cb;
                if union > 0.0 {
                    cb / union
                } else {
                    0.0
                }
            }
            Scheme::Lcp => self.lcp(a),
            Scheme::Ejs => {
                let js = self.score_with(Scheme::Js, a, b, agg);
                js * self.inverse_candidate_frequency(a) * self.inverse_candidate_frequency(b)
            }
            Scheme::Wjs => {
                let numerator = agg.inv_comparisons_sum;
                let denominator = self.entity_inv_comparisons[a.index()]
                    + self.entity_inv_comparisons[b.index()]
                    - numerator;
                if denominator > 0.0 {
                    numerator / denominator
                } else {
                    0.0
                }
            }
            Scheme::Rs => agg.inv_sizes_sum,
            Scheme::Nrs => {
                let numerator = agg.inv_sizes_sum;
                let denominator =
                    self.entity_inv_sizes[a.index()] + self.entity_inv_sizes[b.index()] - numerator;
                if denominator > 0.0 {
                    numerator / denominator
                } else {
                    0.0
                }
            }
        }
    }

    /// `log(|B| / |B_i|)`, the inverse-block-frequency factor of CF-IBF
    /// (precomputed per entity).
    #[inline]
    fn ibf(&self, entity: EntityId) -> f64 {
        self.entity_ibf[entity.index()]
    }

    /// `log(||B|| / ||e_i||)`, the inverse-candidate-frequency factor of EJS
    /// (precomputed per entity).
    #[inline]
    fn inverse_candidate_frequency(&self, entity: EntityId) -> f64 {
        self.entity_icf[entity.index()]
    }

    /// The LCP value of an entity: its number of distinct candidates.
    #[inline]
    pub fn lcp(&self, entity: EntityId) -> f64 {
        f64::from(self.candidates.candidates_of(entity))
    }

    /// Writes the feature vector of a pair directly into `out`, which must be
    /// exactly `set.vector_len()` long.
    ///
    /// This is the fused hot path: one merge produces the co-occurrence
    /// aggregates, every selected scheme is written in canonical order, and
    /// shared sub-expressions (JS inside EJS, the union size) are computed
    /// once instead of per scheme.
    #[inline]
    pub fn write_pair_features(&self, a: EntityId, b: EntityId, set: FeatureSet, out: &mut [f64]) {
        let agg = self.cooccurrence(a, b);
        self.write_pair_features_with(a, b, &agg, set, out);
    }

    /// The precomputed per-entity aggregates of one entity, in the shape the
    /// shared fused writer ([`write_features_from`]) consumes.
    #[inline]
    pub fn entity_aggregates(&self, entity: EntityId) -> EntityAggregates {
        let i = entity.index();
        EntityAggregates {
            num_blocks: self.stats.num_blocks_of(entity) as f64,
            inv_comparisons: self.entity_inv_comparisons[i],
            inv_sizes: self.entity_inv_sizes[i],
            ibf: self.entity_ibf[i],
            icf: self.entity_icf[i],
            lcp: self.lcp(entity),
        }
    }

    /// Writes the feature vector of a pair from already-computed
    /// co-occurrence aggregates (the entity-major scoreboard pass in
    /// [`crate::FeatureMatrix`] accumulates them without any merge).
    #[inline]
    pub fn write_pair_features_with(
        &self,
        a: EntityId,
        b: EntityId,
        agg: &PairCooccurrence,
        set: FeatureSet,
        out: &mut [f64],
    ) {
        write_features_from(
            &self.entity_aggregates(a),
            &self.entity_aggregates(b),
            agg,
            set,
            out,
        );
    }

    /// Writes the feature vector of a pair for the given feature set into
    /// `out` (cleared first).  The layout follows the canonical scheme order;
    /// LCP expands into `LCP(e_i), LCP(e_j)`.
    ///
    /// Retained reference path: evaluates each scheme independently through
    /// [`FeatureContext::score_with`].
    pub fn pair_features(&self, a: EntityId, b: EntityId, set: FeatureSet, out: &mut Vec<f64>) {
        out.clear();
        let agg = self.cooccurrence(a, b);
        for scheme in Scheme::ALL {
            if !set.contains(scheme) {
                continue;
            }
            if scheme == Scheme::Lcp {
                out.push(self.lcp(a));
                out.push(self.lcp(b));
            } else {
                out.push(self.score_with(scheme, a, b, &agg));
            }
        }
    }

    /// Convenience wrapper returning a freshly allocated feature vector.
    pub fn pair_feature_vec(&self, a: EntityId, b: EntityId, set: FeatureSet) -> Vec<f64> {
        let mut out = Vec::with_capacity(set.vector_len());
        self.pair_features(a, b, set, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_blocking::{Block, BlockCollection};
    use er_core::DatasetKind;

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    /// A small Clean-Clean collection with entities 0,1 in E1 and 2,3 in E2.
    ///
    /// Blocks: a = {0,2}, b = {0,1,2,3}, c = {1,3}, d = {0,2}.
    fn fixture() -> (BlockCollection, BlockStats, CandidatePairs) {
        let bc = BlockCollection {
            dataset_name: "t".into(),
            kind: DatasetKind::CleanClean,
            split: 2,
            num_entities: 4,
            blocks: vec![
                Block::new("a", ids(&[0, 2])),
                Block::new("b", ids(&[0, 1, 2, 3])),
                Block::new("c", ids(&[1, 3])),
                Block::new("d", ids(&[0, 2])),
            ],
        };
        let stats = BlockStats::new(&bc);
        let cands = CandidatePairs::from_blocks(&bc);
        (bc, stats, cands)
    }

    #[test]
    fn cooccurrence_aggregates() {
        let (_bc, stats, cands) = fixture();
        let ctx = FeatureContext::new(&stats, &cands);
        let agg = ctx.cooccurrence(EntityId(0), EntityId(2));
        // Common blocks of 0 and 2: a, b, d.
        assert_eq!(agg.common_blocks, 3);
        // ||a|| = 1, ||b|| = 4, ||d|| = 1.
        assert!((agg.inv_comparisons_sum - (1.0 + 0.25 + 1.0)).abs() < 1e-12);
        // |a| = 2, |b| = 4, |d| = 2.
        assert!((agg.inv_sizes_sum - (0.5 + 0.25 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn jaccard_matches_hand_computation() {
        let (_bc, stats, cands) = fixture();
        let ctx = FeatureContext::new(&stats, &cands);
        // B_0 = {a,b,d}, B_2 = {a,b,d} → JS = 3 / (3+3-3) = 1.
        assert!((ctx.score(Scheme::Js, EntityId(0), EntityId(2)) - 1.0).abs() < 1e-12);
        // B_0 = {a,b,d}, B_3 = {b,c} → common = {b}; JS = 1 / (3+2-1) = 0.25.
        assert!((ctx.score(Scheme::Js, EntityId(0), EntityId(3)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn cfibf_matches_hand_computation() {
        let (_bc, stats, cands) = fixture();
        let ctx = FeatureContext::new(&stats, &cands);
        // |B| = 4, |B_0| = 3, |B_3| = 2, common(0,3) = 1.
        let expected = 1.0 * (4.0f64 / 3.0).ln() * (4.0f64 / 2.0).ln();
        assert!((ctx.score(Scheme::CfIbf, EntityId(0), EntityId(3)) - expected).abs() < 1e-12);
    }

    #[test]
    fn raccb_and_rs_match_hand_computation() {
        let (_bc, stats, cands) = fixture();
        let ctx = FeatureContext::new(&stats, &cands);
        // Pair (0,3): common block b with ||b|| = 4 and |b| = 4.
        assert!((ctx.score(Scheme::Raccb, EntityId(0), EntityId(3)) - 0.25).abs() < 1e-12);
        assert!((ctx.score(Scheme::Rs, EntityId(0), EntityId(3)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn wjs_and_nrs_are_normalised_to_unit_interval() {
        let (_bc, stats, cands) = fixture();
        let ctx = FeatureContext::new(&stats, &cands);
        for &(a, b) in cands.pairs() {
            let wjs = ctx.score(Scheme::Wjs, a, b);
            let nrs = ctx.score(Scheme::Nrs, a, b);
            assert!((0.0..=1.0).contains(&wjs), "WJS({a},{b}) = {wjs}");
            assert!((0.0..=1.0).contains(&nrs), "NRS({a},{b}) = {nrs}");
        }
    }

    #[test]
    fn identical_block_signatures_maximise_wjs_and_nrs() {
        let (_bc, stats, cands) = fixture();
        let ctx = FeatureContext::new(&stats, &cands);
        // Entities 0 and 2 have identical block lists → both normalised
        // schemes reach 1.
        assert!((ctx.score(Scheme::Wjs, EntityId(0), EntityId(2)) - 1.0).abs() < 1e-12);
        assert!((ctx.score(Scheme::Nrs, EntityId(0), EntityId(2)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lcp_counts_distinct_candidates() {
        let (_bc, stats, cands) = fixture();
        let ctx = FeatureContext::new(&stats, &cands);
        // Every E1 entity co-occurs with both E2 entities via block b.
        assert_eq!(ctx.lcp(EntityId(0)), 2.0);
        assert_eq!(ctx.lcp(EntityId(3)), 2.0);
    }

    #[test]
    fn ejs_scales_jaccard_by_rarity() {
        let (_bc, stats, cands) = fixture();
        let ctx = FeatureContext::new(&stats, &cands);
        let js = ctx.score(Scheme::Js, EntityId(0), EntityId(2));
        let ejs = ctx.score(Scheme::Ejs, EntityId(0), EntityId(2));
        // ||B|| = 1+4+1+1 = 7, ||e_0|| = 6, ||e_2|| = 6.
        let expected = js * (7.0f64 / 6.0).ln() * (7.0f64 / 6.0).ln();
        assert!((ejs - expected).abs() < 1e-12);
    }

    #[test]
    fn pair_features_layout_follows_canonical_order() {
        let (_bc, stats, cands) = fixture();
        let ctx = FeatureContext::new(&stats, &cands);
        let set = FeatureSet::original();
        let v = ctx.pair_feature_vec(EntityId(0), EntityId(2), set);
        assert_eq!(v.len(), 5);
        assert!((v[0] - ctx.score(Scheme::CfIbf, EntityId(0), EntityId(2))).abs() < 1e-12);
        assert!((v[1] - ctx.score(Scheme::Raccb, EntityId(0), EntityId(2))).abs() < 1e-12);
        assert!((v[2] - ctx.score(Scheme::Js, EntityId(0), EntityId(2))).abs() < 1e-12);
        assert_eq!(v[3], ctx.lcp(EntityId(0)));
        assert_eq!(v[4], ctx.lcp(EntityId(2)));
    }

    #[test]
    fn fused_writer_matches_reference_for_every_feature_set() {
        let (_bc, stats, cands) = fixture();
        let ctx = FeatureContext::new(&stats, &cands);
        for set in FeatureSet::all_combinations() {
            let mut fused = vec![0.0; set.vector_len()];
            for &(a, b) in cands.pairs() {
                ctx.write_pair_features(a, b, set, &mut fused);
                let reference = ctx.pair_feature_vec(a, b, set);
                assert_eq!(fused, reference, "{set} pair ({a},{b})");
            }
        }
    }

    #[test]
    fn matching_like_pairs_score_higher_than_random_pairs() {
        let (_bc, stats, cands) = fixture();
        let ctx = FeatureContext::new(&stats, &cands);
        // (0,2) share all blocks; (0,3) share only the big block.
        for scheme in [
            Scheme::CfIbf,
            Scheme::Raccb,
            Scheme::Js,
            Scheme::Rs,
            Scheme::Nrs,
            Scheme::Wjs,
            Scheme::Ejs,
        ] {
            let close = ctx.score(scheme, EntityId(0), EntityId(2));
            let far = ctx.score(scheme, EntityId(0), EntityId(3));
            assert!(close > far, "{scheme}: {close} !> {far}");
        }
    }
}
