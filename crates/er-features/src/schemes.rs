//! The eight weighting schemes.

use serde::{Deserialize, Serialize};

/// A schema-agnostic weighting scheme.
///
/// The first four are the optimal feature set of the original Supervised
/// Meta-blocking paper; the last four are the new schemes introduced by the
/// Generalized Supervised Meta-blocking paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Co-occurrence Frequency – Inverse Block Frequency:
    /// `|B_i ∩ B_j| · log(|B|/|B_i|) · log(|B|/|B_j|)`.
    CfIbf,
    /// Reciprocal Aggregate Cardinality of Common Blocks:
    /// `Σ_{b ∈ B_i ∩ B_j} 1 / ||b||`.
    Raccb,
    /// Jaccard Scheme: `|B_i ∩ B_j| / (|B_i| + |B_j| − |B_i ∩ B_j|)`.
    Js,
    /// Local Candidate Pairs: the number of distinct candidates of an entity.
    /// Applies per entity, so it contributes two features to a vector
    /// (LCP(e_i) and LCP(e_j)).
    Lcp,
    /// Enhanced Jaccard Scheme: `JS · log(||B||/||e_i||) · log(||B||/||e_j||)`.
    Ejs,
    /// Weighted Jaccard Scheme: RACCB normalised by the per-entity sums of
    /// reciprocal block comparison cardinalities.
    Wjs,
    /// Reciprocal Sizes Scheme: `Σ_{b ∈ B_i ∩ B_j} 1 / |b|`.
    Rs,
    /// Normalized Reciprocal Sizes Scheme: RS normalised by the per-entity
    /// sums of reciprocal block sizes.
    Nrs,
}

impl Scheme {
    /// All schemes in canonical order (the order used for feature-set bit
    /// masks and feature-vector layout).
    pub const ALL: [Scheme; 8] = [
        Scheme::CfIbf,
        Scheme::Raccb,
        Scheme::Js,
        Scheme::Lcp,
        Scheme::Ejs,
        Scheme::Wjs,
        Scheme::Rs,
        Scheme::Nrs,
    ];

    /// The canonical index of the scheme (its bit position in a
    /// [`crate::FeatureSet`]).
    pub fn index(self) -> usize {
        match self {
            Scheme::CfIbf => 0,
            Scheme::Raccb => 1,
            Scheme::Js => 2,
            Scheme::Lcp => 3,
            Scheme::Ejs => 4,
            Scheme::Wjs => 5,
            Scheme::Rs => 6,
            Scheme::Nrs => 7,
        }
    }

    /// Number of feature-vector entries the scheme contributes (2 for LCP,
    /// 1 for everything else).
    pub fn arity(self) -> usize {
        if self == Scheme::Lcp {
            2
        } else {
            1
        }
    }

    /// Short display name used in experiment reports.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::CfIbf => "CF-IBF",
            Scheme::Raccb => "RACCB",
            Scheme::Js => "JS",
            Scheme::Lcp => "LCP",
            Scheme::Ejs => "EJS",
            Scheme::Wjs => "WJS",
            Scheme::Rs => "RS",
            Scheme::Nrs => "NRS",
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order_matches_indices() {
        for (i, scheme) in Scheme::ALL.iter().enumerate() {
            assert_eq!(scheme.index(), i);
        }
    }

    #[test]
    fn lcp_contributes_two_features() {
        assert_eq!(Scheme::Lcp.arity(), 2);
        assert_eq!(Scheme::Js.arity(), 1);
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> = Scheme::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 8);
        assert_eq!(Scheme::CfIbf.to_string(), "CF-IBF");
    }
}
