//! Weighting schemes and feature-vector generation for (Generalized)
//! Supervised Meta-blocking.
//!
//! Every candidate pair is represented as a vector of *weighting-scheme*
//! scores, each proportional to the pair's matching likelihood and derived
//! purely from the pair's co-occurrence pattern in the block collection.  The
//! paper uses the four schemes of the original Supervised Meta-blocking work
//! (CF-IBF, RACCB, JS, LCP) and introduces four new ones (EJS, WJS, RS, NRS).
//!
//! [`FeatureContext`] precomputes the per-entity aggregates each scheme needs;
//! [`FeatureSet`] selects which schemes form the vector (all 255 non-empty
//! combinations can be enumerated for the feature-selection experiment); and
//! [`FeatureMatrix`] materialises the vectors for every candidate pair.

//!
//! The partner-aggregation engine behind [`FeatureMatrix`] is the
//! cache-blocked radix scoreboard in [`scoreboard`]: per-worker scratch is
//! `O(tile)`, not `O(num_entities)`, with output bit-identical to the
//! retained flat reference board.

pub mod context;
pub mod feature_set;
pub mod generator;
pub mod reference;
pub mod schemes;
pub mod scoreboard;

pub use context::{
    write_features_from, EntityAggregates, FeatureContext, PairCooccurrence, StreamFeatureContext,
};
pub use feature_set::FeatureSet;
pub use generator::{for_each_scored_chunk, FeatureMatrix};
pub use schemes::Scheme;
pub use scoreboard::{
    reset_scoreboard_metrics, scoreboard_metrics, FlatScoreboard, RadixScoreboard,
    ScoreboardConfig, ScoreboardEngine, ScoreboardMetricsSnapshot,
};
