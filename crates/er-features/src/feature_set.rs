//! Feature sets: subsets of the eight weighting schemes.
//!
//! The feature-selection experiment of the paper (Tables 3 and 4) evaluates
//! every one of the `2^8 − 1 = 255` non-empty scheme combinations.  A feature
//! set is represented as a bit mask over [`Scheme::ALL`]; the mask value is
//! the set's identifier in experiment reports.

use serde::{Deserialize, Serialize};

use crate::schemes::Scheme;

/// A non-empty subset of weighting schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FeatureSet {
    bits: u8,
}

impl FeatureSet {
    /// The optimal feature set of the original Supervised Meta-blocking paper:
    /// {CF-IBF, RACCB, JS, LCP}.
    pub fn original() -> Self {
        FeatureSet::from_schemes([Scheme::CfIbf, Scheme::Raccb, Scheme::Js, Scheme::Lcp])
    }

    /// The feature set selected for BLAST in this paper (Formula 1):
    /// {CF-IBF, RACCB, RS, NRS}.
    pub fn blast_optimal() -> Self {
        FeatureSet::from_schemes([Scheme::CfIbf, Scheme::Raccb, Scheme::Rs, Scheme::Nrs])
    }

    /// The feature set selected for RCNP in this paper (Formula 2):
    /// {CF-IBF, RACCB, JS, LCP, WJS}.
    pub fn rcnp_optimal() -> Self {
        FeatureSet::from_schemes([
            Scheme::CfIbf,
            Scheme::Raccb,
            Scheme::Js,
            Scheme::Lcp,
            Scheme::Wjs,
        ])
    }

    /// The full set of all eight schemes.
    pub fn all_schemes() -> Self {
        FeatureSet { bits: 0xFF }
    }

    /// Builds a feature set from a collection of schemes.
    ///
    /// # Panics
    /// Panics if the collection is empty.
    pub fn from_schemes(schemes: impl IntoIterator<Item = Scheme>) -> Self {
        let mut bits = 0u8;
        for scheme in schemes {
            bits |= 1 << scheme.index();
        }
        assert!(bits != 0, "a feature set must contain at least one scheme");
        FeatureSet { bits }
    }

    /// Builds a feature set from its bit-mask identifier (1..=255).
    pub fn from_id(id: u8) -> Option<Self> {
        if id == 0 {
            None
        } else {
            Some(FeatureSet { bits: id })
        }
    }

    /// The bit-mask identifier of the set.
    pub fn id(self) -> u8 {
        self.bits
    }

    /// True if the set contains the scheme.
    pub fn contains(self, scheme: Scheme) -> bool {
        self.bits & (1 << scheme.index()) != 0
    }

    /// The schemes in the set, in canonical order.
    pub fn schemes(self) -> Vec<Scheme> {
        Scheme::ALL
            .into_iter()
            .filter(|s| self.contains(*s))
            .collect()
    }

    /// Number of schemes in the set.
    pub fn num_schemes(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Length of the feature vectors this set produces (LCP counts twice).
    pub fn vector_len(self) -> usize {
        self.schemes().iter().map(|s| s.arity()).sum()
    }

    /// Enumerates all 255 non-empty feature sets in increasing id order.
    pub fn all_combinations() -> impl Iterator<Item = FeatureSet> {
        (1u8..=255).map(|bits| FeatureSet { bits })
    }

    /// True if the set includes the expensive LCP feature (the paper's
    /// explanation for the run-time gap between the BLAST and RCNP sets).
    pub fn uses_lcp(self) -> bool {
        self.contains(Scheme::Lcp)
    }
}

impl std::fmt::Display for FeatureSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.schemes().iter().map(|s| s.name()).collect();
        write!(f, "{{{}}}", names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_sets_match_the_paper() {
        assert_eq!(
            FeatureSet::original().schemes(),
            vec![Scheme::CfIbf, Scheme::Raccb, Scheme::Js, Scheme::Lcp]
        );
        assert_eq!(
            FeatureSet::blast_optimal().schemes(),
            vec![Scheme::CfIbf, Scheme::Raccb, Scheme::Rs, Scheme::Nrs]
        );
        assert_eq!(
            FeatureSet::rcnp_optimal().schemes(),
            vec![
                Scheme::CfIbf,
                Scheme::Raccb,
                Scheme::Js,
                Scheme::Lcp,
                Scheme::Wjs
            ]
        );
    }

    #[test]
    fn vector_length_counts_lcp_twice() {
        assert_eq!(FeatureSet::original().vector_len(), 5);
        assert_eq!(FeatureSet::blast_optimal().vector_len(), 4);
        assert_eq!(FeatureSet::rcnp_optimal().vector_len(), 6);
        assert_eq!(FeatureSet::all_schemes().vector_len(), 9);
    }

    #[test]
    fn there_are_255_combinations() {
        let sets: Vec<_> = FeatureSet::all_combinations().collect();
        assert_eq!(sets.len(), 255);
        let ids: std::collections::HashSet<u8> = sets.iter().map(|s| s.id()).collect();
        assert_eq!(ids.len(), 255);
    }

    #[test]
    fn id_roundtrip() {
        let set = FeatureSet::rcnp_optimal();
        assert_eq!(FeatureSet::from_id(set.id()), Some(set));
        assert_eq!(FeatureSet::from_id(0), None);
    }

    #[test]
    fn display_lists_scheme_names() {
        let set = FeatureSet::blast_optimal();
        assert_eq!(set.to_string(), "{CF-IBF, RACCB, RS, NRS}");
    }

    #[test]
    #[should_panic(expected = "at least one scheme")]
    fn empty_set_is_rejected() {
        let _ = FeatureSet::from_schemes(std::iter::empty());
    }

    #[test]
    fn uses_lcp_flag() {
        assert!(FeatureSet::original().uses_lcp());
        assert!(!FeatureSet::blast_optimal().uses_lcp());
    }
}
