//! Feature-matrix generation: materialise the feature vector of every
//! candidate pair.
//!
//! Feature generation dominates the run-time of (Generalized) Supervised
//! Meta-blocking on the larger datasets (Figures 7, 9 and 10 of the paper), so
//! the matrix is built in parallel over disjoint pair ranges using scoped
//! crossbeam threads.

use er_core::PairId;
use serde::{Deserialize, Serialize};

use crate::context::FeatureContext;
use crate::feature_set::FeatureSet;

/// A dense, row-major matrix holding one feature vector per candidate pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureMatrix {
    feature_set: FeatureSet,
    num_features: usize,
    num_pairs: usize,
    values: Vec<f64>,
}

impl FeatureMatrix {
    /// Builds the matrix for every candidate pair in the context, single
    /// threaded.
    pub fn build(context: &FeatureContext<'_>, set: FeatureSet) -> Self {
        Self::build_with_threads(context, set, 1)
    }

    /// Builds the matrix using up to `threads` worker threads.
    pub fn build_parallel(context: &FeatureContext<'_>, set: FeatureSet) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8);
        Self::build_with_threads(context, set, threads)
    }

    /// Builds the matrix with an explicit thread count.
    pub fn build_with_threads(
        context: &FeatureContext<'_>,
        set: FeatureSet,
        threads: usize,
    ) -> Self {
        let pairs = context.candidates().pairs();
        let num_features = set.vector_len();
        let num_pairs = pairs.len();
        let mut values = vec![0.0f64; num_features * num_pairs];

        let threads = threads.max(1).min(num_pairs.max(1));
        if threads <= 1 || num_pairs < 1024 {
            let mut row = Vec::with_capacity(num_features);
            for (i, &(a, b)) in pairs.iter().enumerate() {
                context.pair_features(a, b, set, &mut row);
                values[i * num_features..(i + 1) * num_features].copy_from_slice(&row);
            }
        } else {
            let chunk_rows = num_pairs.div_ceil(threads);
            let chunk_len = chunk_rows * num_features;
            crossbeam::thread::scope(|scope| {
                for (chunk_index, chunk) in values.chunks_mut(chunk_len).enumerate() {
                    let start = chunk_index * chunk_rows;
                    scope.spawn(move |_| {
                        let mut row = Vec::with_capacity(num_features);
                        for (offset, slot) in chunk.chunks_mut(num_features).enumerate() {
                            let (a, b) = pairs[start + offset];
                            context.pair_features(a, b, set, &mut row);
                            slot.copy_from_slice(&row);
                        }
                    });
                }
            })
            .expect("feature generation worker panicked");
        }

        FeatureMatrix {
            feature_set: set,
            num_features,
            num_pairs,
            values,
        }
    }

    /// The feature set the matrix was built for.
    pub fn feature_set(&self) -> FeatureSet {
        self.feature_set
    }

    /// Number of columns (features per pair).
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of rows (candidate pairs).
    pub fn num_pairs(&self) -> usize {
        self.num_pairs
    }

    /// The feature vector of one pair.
    pub fn row(&self, pair: PairId) -> &[f64] {
        let start = pair.index() * self.num_features;
        &self.values[start..start + self.num_features]
    }

    /// Iterates over `(PairId, row)` tuples.
    pub fn rows(&self) -> impl Iterator<Item = (PairId, &[f64])> {
        self.values
            .chunks(self.num_features.max(1))
            .enumerate()
            .take(self.num_pairs)
            .map(|(i, row)| (PairId::from(i), row))
    }

    /// Projects the matrix onto a sub-feature-set, selecting the relevant
    /// columns without recomputing any scheme.
    ///
    /// This is how the 255-combination feature-selection sweep (Tables 3 and
    /// 4 of the paper) is made affordable: the all-schemes matrix is built
    /// once per dataset and every combination is a cheap column selection.
    ///
    /// # Panics
    /// Panics if `target` contains a scheme that is absent from this matrix's
    /// feature set.
    pub fn project(&self, target: FeatureSet) -> FeatureMatrix {
        use crate::schemes::Scheme;
        assert!(
            target
                .schemes()
                .iter()
                .all(|s| self.feature_set.contains(*s)),
            "cannot project {} out of {}",
            target,
            self.feature_set
        );
        // Column offsets of each scheme in the source layout.
        let mut columns = Vec::with_capacity(target.vector_len());
        let mut offset = 0usize;
        for scheme in Scheme::ALL {
            if !self.feature_set.contains(scheme) {
                continue;
            }
            if target.contains(scheme) {
                for i in 0..scheme.arity() {
                    columns.push(offset + i);
                }
            }
            offset += scheme.arity();
        }
        let num_features = columns.len();
        let mut values = Vec::with_capacity(num_features * self.num_pairs);
        for (_, row) in self.rows() {
            for &c in &columns {
                values.push(row[c]);
            }
        }
        FeatureMatrix {
            feature_set: target,
            num_features,
            num_pairs: self.num_pairs,
            values,
        }
    }

    /// Per-column means (used by the feature standardiser).
    pub fn column_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.num_features];
        if self.num_pairs == 0 {
            return means;
        }
        for (_, row) in self.rows() {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= self.num_pairs as f64;
        }
        means
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_blocking::{Block, BlockCollection, BlockStats, CandidatePairs};
    use er_core::{DatasetKind, EntityId};

    fn fixture() -> (BlockCollection, Vec<(EntityId, EntityId)>) {
        let ids = |v: &[u32]| v.iter().copied().map(EntityId).collect::<Vec<_>>();
        let bc = BlockCollection {
            dataset_name: "t".into(),
            kind: DatasetKind::CleanClean,
            split: 3,
            num_entities: 6,
            blocks: vec![
                Block::new("a", ids(&[0, 3])),
                Block::new("b", ids(&[0, 1, 3, 4])),
                Block::new("c", ids(&[1, 4])),
                Block::new("d", ids(&[2, 5])),
                Block::new("e", ids(&[0, 1, 2, 3, 4, 5])),
            ],
        };
        let pairs = vec![];
        (bc, pairs)
    }

    #[test]
    fn matrix_shape_matches_candidates_and_feature_set() {
        let (bc, _) = fixture();
        let stats = BlockStats::new(&bc);
        let cands = CandidatePairs::from_blocks(&bc);
        let ctx = FeatureContext::new(&stats, &cands);
        let matrix = FeatureMatrix::build(&ctx, FeatureSet::original());
        assert_eq!(matrix.num_pairs(), cands.len());
        assert_eq!(matrix.num_features(), 5);
        assert_eq!(matrix.rows().count(), cands.len());
    }

    #[test]
    fn rows_match_direct_computation() {
        let (bc, _) = fixture();
        let stats = BlockStats::new(&bc);
        let cands = CandidatePairs::from_blocks(&bc);
        let ctx = FeatureContext::new(&stats, &cands);
        let set = FeatureSet::all_schemes();
        let matrix = FeatureMatrix::build(&ctx, set);
        for (id, a, b) in cands.iter() {
            let expected = ctx.pair_feature_vec(a, b, set);
            assert_eq!(matrix.row(id), expected.as_slice());
        }
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let (bc, _) = fixture();
        let stats = BlockStats::new(&bc);
        let cands = CandidatePairs::from_blocks(&bc);
        let ctx = FeatureContext::new(&stats, &cands);
        let set = FeatureSet::blast_optimal();
        let sequential = FeatureMatrix::build_with_threads(&ctx, set, 1);
        let parallel = FeatureMatrix::build_with_threads(&ctx, set, 4);
        for (id, row) in sequential.rows() {
            assert_eq!(row, parallel.row(id));
        }
    }

    #[test]
    fn projection_matches_direct_build() {
        let (bc, _) = fixture();
        let stats = BlockStats::new(&bc);
        let cands = CandidatePairs::from_blocks(&bc);
        let ctx = FeatureContext::new(&stats, &cands);
        let full = FeatureMatrix::build(&ctx, FeatureSet::all_schemes());
        for target in [
            FeatureSet::original(),
            FeatureSet::blast_optimal(),
            FeatureSet::rcnp_optimal(),
        ] {
            let projected = full.project(target);
            let direct = FeatureMatrix::build(&ctx, target);
            assert_eq!(projected.num_features(), direct.num_features());
            for (id, row) in direct.rows() {
                assert_eq!(projected.row(id), row, "mismatch for {target}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot project")]
    fn projection_onto_missing_scheme_panics() {
        let (bc, _) = fixture();
        let stats = BlockStats::new(&bc);
        let cands = CandidatePairs::from_blocks(&bc);
        let ctx = FeatureContext::new(&stats, &cands);
        let small = FeatureMatrix::build(&ctx, FeatureSet::blast_optimal());
        let _ = small.project(FeatureSet::original());
    }

    #[test]
    fn column_means_average_rows() {
        let (bc, _) = fixture();
        let stats = BlockStats::new(&bc);
        let cands = CandidatePairs::from_blocks(&bc);
        let ctx = FeatureContext::new(&stats, &cands);
        let matrix = FeatureMatrix::build(&ctx, FeatureSet::blast_optimal());
        let means = matrix.column_means();
        assert_eq!(means.len(), 4);
        let manual: f64 = matrix.rows().map(|(_, row)| row[0]).sum::<f64>() / matrix.num_pairs() as f64;
        assert!((means[0] - manual).abs() < 1e-12);
    }
}
