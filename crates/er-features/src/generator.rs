//! Feature-matrix generation: materialise the feature vector of every
//! candidate pair.
//!
//! Feature generation dominates the run-time of (Generalized) Supervised
//! Meta-blocking on the larger datasets (Figures 7, 9 and 10 of the paper), so
//! this module is built around one fused, entity-major single pass:
//!
//! 1. Candidate pairs are grouped by their smaller endpoint (the
//!    [`er_blocking::CandidatePairs`] CSR index), so each task processes a
//!    contiguous run of output rows.
//! 2. For each entity the pass walks its blocks once through the flat
//!    [`er_blocking::BlockStats`] index and *accumulates* every partner's
//!    co-occurrence aggregates on a scoreboard — no per-pair merge of block
//!    lists, no hashing, no divisions (the reciprocal tables are precomputed).
//!    Contributions arrive in ascending block-id order, which makes the
//!    floating-point sums bit-identical to the per-pair merge.
//! 3. Every selected scheme column is then written straight into the
//!    destination slice ([`FeatureContext::write_pair_features_with`]), and
//!    [`FeatureMatrix::score_rows`] fuses the same pass with a per-row scoring
//!    function so probability-only callers never materialise the matrix.
//!
//! Tasks are pulled from a shared cursor by worker threads carrying their own
//! scoreboard ([`er_core::for_each_task_with_state`]) — work stealing instead
//! of fixed per-thread partitions.

use er_blocking::{BlockStats, CandidateStream, ChunkArena};
use er_core::{EntityId, PairId};
use serde::{Deserialize, Serialize};

use crate::context::{
    write_features_from, FeatureContext, PairAggregateSource, PairCooccurrence,
    StreamFeatureContext,
};
use crate::feature_set::FeatureSet;
use crate::scoreboard::{FlatScoreboard, RadixScoreboard, ScoreboardConfig, ScoreboardEngine};

/// Rows per work-queue chunk: large enough to amortise queue locking, small
/// enough that stealing keeps skewed tails balanced.
const CHUNK_ROWS: usize = 4096;

/// Below this many pairs the parallel drivers fall back to one thread.
const PARALLEL_THRESHOLD: usize = 1024;

/// A dense, row-major matrix holding one feature vector per candidate pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureMatrix {
    feature_set: FeatureSet,
    num_features: usize,
    num_pairs: usize,
    values: Vec<f64>,
}

impl FeatureMatrix {
    /// Builds the matrix for every candidate pair in the context, single
    /// threaded.
    pub fn build(context: &FeatureContext<'_>, set: FeatureSet) -> Self {
        Self::build_with_threads(context, set, 1)
    }

    /// Builds the matrix using the default worker-thread count.
    pub fn build_parallel(context: &FeatureContext<'_>, set: FeatureSet) -> Self {
        Self::build_with_threads(context, set, er_core::available_threads())
    }

    /// Builds the matrix with an explicit thread count via the fused
    /// entity-major single-pass engine (default scoreboard configuration).
    pub fn build_with_threads(
        context: &FeatureContext<'_>,
        set: FeatureSet,
        threads: usize,
    ) -> Self {
        Self::build_with(context, set, threads, &ScoreboardConfig::default())
    }

    /// Builds the matrix with an explicit thread count and scoreboard
    /// configuration.  Output is bit-identical across engines, tile widths
    /// and thread counts; the configuration only changes scratch locality.
    pub fn build_with(
        context: &FeatureContext<'_>,
        set: FeatureSet,
        threads: usize,
        scoreboard: &ScoreboardConfig,
    ) -> Self {
        let num_features = set.vector_len();
        let num_pairs = context.candidates().len();
        let mut values = vec![0.0f64; num_features * num_pairs];

        fused_entity_major_pass(
            context,
            set,
            threads,
            num_features,
            &mut values,
            scoreboard,
            |_pair, row, slot| slot.copy_from_slice(row),
        );

        FeatureMatrix {
            feature_set: set,
            num_features,
            num_pairs,
            values,
        }
    }

    /// Builds the matrix through the retained naive reference path: one
    /// temporary row vector per pair, every scheme evaluated independently
    /// via [`FeatureContext::score_with`].  Kept for equivalence tests and
    /// the before/after benchmark comparison; never use it on a hot path.
    pub fn build_reference(context: &FeatureContext<'_>, set: FeatureSet) -> Self {
        let pairs = context.candidates().pairs();
        let num_features = set.vector_len();
        let num_pairs = pairs.len();
        let mut values = vec![0.0f64; num_features * num_pairs];
        let mut row = Vec::with_capacity(num_features);
        for (i, &(a, b)) in pairs.iter().enumerate() {
            context.pair_features(a, b, set, &mut row);
            values[i * num_features..(i + 1) * num_features].copy_from_slice(&row);
        }
        FeatureMatrix {
            feature_set: set,
            num_features,
            num_pairs,
            values,
        }
    }

    /// Computes `score` over every candidate pair's feature vector without
    /// materialising the matrix: each worker fills its scratch row via the
    /// fused entity-major pass and immediately reduces it to one `f64`.
    ///
    /// This is the fused feature → probability path the pipeline uses when
    /// only probabilities are needed; the output is deterministic and
    /// identical to building the matrix first and scoring row by row.
    pub fn score_rows(
        context: &FeatureContext<'_>,
        set: FeatureSet,
        threads: usize,
        score: impl Fn(&[f64]) -> f64 + Sync,
    ) -> Vec<f64> {
        Self::score_rows_with(context, set, threads, &ScoreboardConfig::default(), score)
    }

    /// [`FeatureMatrix::score_rows`] with an explicit scoreboard
    /// configuration.
    pub fn score_rows_with(
        context: &FeatureContext<'_>,
        set: FeatureSet,
        threads: usize,
        scoreboard: &ScoreboardConfig,
        score: impl Fn(&[f64]) -> f64 + Sync,
    ) -> Vec<f64> {
        let num_pairs = context.candidates().len();
        let mut out = vec![0.0f64; num_pairs];
        fused_entity_major_pass(
            context,
            set,
            threads,
            1,
            &mut out,
            scoreboard,
            |_pair, row, slot| slot[0] = score(row),
        );
        out
    }

    /// Scores every candidate pair of a [`CandidateStream`] without the pair
    /// index ever existing in memory: chunks of `chunk_pairs` pairs are
    /// extracted into per-worker [`ChunkArena`] scratch, pushed through the
    /// same fused entity-major pass as [`FeatureMatrix::score_rows_with`],
    /// and reduced to one `f64` each.  Peak memory is `O(chunk_pairs ×
    /// workers + aggregates)`; the output vector is indexed by the stream's
    /// global pair id and bit-identical to the materialised path at any
    /// thread count and chunk size (chunks are the parallel work units).
    pub fn score_stream_with(
        context: &StreamFeatureContext<'_>,
        stream: &CandidateStream<'_>,
        set: FeatureSet,
        threads: usize,
        scoreboard: &ScoreboardConfig,
        chunk_pairs: usize,
        score: impl Fn(&[f64]) -> f64 + Sync,
    ) -> Vec<f64> {
        let num_pairs = usize::try_from(stream.total_pairs())
            .expect("streamed score vector exceeds addressable memory");
        let mut out = vec![0.0f64; num_pairs];
        fused_stream_pass(
            context,
            stream,
            set,
            threads,
            1,
            chunk_pairs,
            &mut out,
            scoreboard,
            |_pair, row, slot| slot[0] = score(row),
        );
        out
    }

    /// Assembles a matrix from raw parts (used by the retained naive
    /// reference engine in [`crate::reference`]).
    pub(crate) fn from_parts(
        feature_set: FeatureSet,
        num_features: usize,
        num_pairs: usize,
        values: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(values.len(), num_features * num_pairs);
        FeatureMatrix {
            feature_set,
            num_features,
            num_pairs,
            values,
        }
    }

    /// The feature set the matrix was built for.
    pub fn feature_set(&self) -> FeatureSet {
        self.feature_set
    }

    /// Number of columns (features per pair).
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of rows (candidate pairs).
    pub fn num_pairs(&self) -> usize {
        self.num_pairs
    }

    /// The feature vector of one pair.
    pub fn row(&self, pair: PairId) -> &[f64] {
        let start = pair.index() * self.num_features;
        &self.values[start..start + self.num_features]
    }

    /// Iterates over `(PairId, row)` tuples.
    ///
    /// Always yields exactly [`FeatureMatrix::num_pairs`] rows — including
    /// the degenerate `num_features == 0` matrix, where every row is the
    /// empty slice.
    pub fn rows(&self) -> impl Iterator<Item = (PairId, &[f64])> {
        (0..self.num_pairs).map(|i| {
            let start = i * self.num_features;
            (
                PairId::from(i),
                &self.values[start..start + self.num_features],
            )
        })
    }

    /// Projects the matrix onto a sub-feature-set, selecting the relevant
    /// columns without recomputing any scheme.
    ///
    /// This is how the 255-combination feature-selection sweep (Tables 3 and
    /// 4 of the paper) is made affordable: the all-schemes matrix is built
    /// once per dataset and every combination is a cheap column selection.
    ///
    /// # Panics
    /// Panics if `target` contains a scheme that is absent from this matrix's
    /// feature set.
    pub fn project(&self, target: FeatureSet) -> FeatureMatrix {
        use crate::schemes::Scheme;
        assert!(
            target
                .schemes()
                .iter()
                .all(|s| self.feature_set.contains(*s)),
            "cannot project {} out of {}",
            target,
            self.feature_set
        );
        // Column offsets of each scheme in the source layout.
        let mut columns = Vec::with_capacity(target.vector_len());
        let mut offset = 0usize;
        for scheme in Scheme::ALL {
            if !self.feature_set.contains(scheme) {
                continue;
            }
            if target.contains(scheme) {
                for i in 0..scheme.arity() {
                    columns.push(offset + i);
                }
            }
            offset += scheme.arity();
        }
        let num_features = columns.len();
        let mut values = Vec::with_capacity(num_features * self.num_pairs);
        for (_, row) in self.rows() {
            for &c in &columns {
                values.push(row[c]);
            }
        }
        FeatureMatrix {
            feature_set: target,
            num_features,
            num_pairs: self.num_pairs,
            values,
        }
    }

    /// Per-column means (used by the feature standardiser).
    pub fn column_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.num_features];
        if self.num_pairs == 0 {
            return means;
        }
        for (_, row) in self.rows() {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= self.num_pairs as f64;
        }
        means
    }
}

/// Clamps a requested thread count to something useful for `num_pairs` rows.
fn effective_threads(threads: usize, num_pairs: usize) -> usize {
    if num_pairs < PARALLEL_THRESHOLD {
        1
    } else {
        threads.clamp(1, num_pairs)
    }
}

/// Per-worker accumulation state of the entity-major pass: either the
/// retained flat board (one slot per entity) or the cache-blocked radix
/// board with its reusable drained-partner buffer.
enum WorkerBoard {
    Flat(FlatScoreboard),
    Tiled {
        board: RadixScoreboard,
        partners: Vec<(u32, PairCooccurrence)>,
    },
}

/// Builds one worker's scoreboard for the configured engine.
fn make_worker_board(num_entities: usize, scoreboard: &ScoreboardConfig) -> WorkerBoard {
    match scoreboard.engine {
        ScoreboardEngine::Flat => WorkerBoard::Flat(FlatScoreboard::new(num_entities)),
        ScoreboardEngine::Tiled => WorkerBoard::Tiled {
            board: RadixScoreboard::new(num_entities, scoreboard),
            partners: Vec::new(),
        },
    }
}

/// Publishes a worker board's batched metrics to the er-obs registry at
/// task end.
fn flush_worker_metrics(worker: &mut WorkerBoard) {
    match worker {
        WorkerBoard::Flat(board) => crate::scoreboard::obs()
            .scratch_bytes_hwm
            .record_max(board.scratch_bytes() as u64),
        WorkerBoard::Tiled { board, .. } => board.flush_metrics(),
    }
}

/// Accumulates and emits one entity's candidate run — the shared inner block
/// of the batch ([`fused_entity_major_pass`]) and streamed
/// ([`fused_stream_pass`]) engines.
///
/// Walks `a`'s blocks once through the flat [`BlockStats`] reverse index,
/// accumulating every partner's `(common blocks, Σ1/||b||, Σ1/|b|)` on the
/// worker's scoreboard, then emits one `row_width`-wide output row per
/// candidate in `cands` into `out` (which must be exactly `cands.len() ×
/// row_width` long).  `cands` may be any prefix/suffix slice of `a`'s full
/// partner run: the board accumulates from the block walk alone, and each
/// emitted candidate only reads its own slot, so a chunk boundary splitting
/// the run changes nothing about the emitted values.  Contributions arrive in
/// ascending block-id order on every strategy, which keeps the
/// floating-point sums bit-identical to a per-pair merge of the sorted block
/// lists.
#[allow(clippy::too_many_arguments)]
fn process_entity_run<S, E>(
    stats: &BlockStats,
    inv_comp_table: &[f64],
    inv_size_table: &[f64],
    source: &S,
    set: FeatureSet,
    a: EntityId,
    cands: &[(EntityId, EntityId)],
    worker: &mut WorkerBoard,
    row: &mut [f64],
    out: &mut [f64],
    row_width: usize,
    emit: &E,
) where
    S: PairAggregateSource,
    E: Fn((EntityId, EntityId), &[f64], &mut [f64]),
{
    debug_assert_eq!(out.len(), cands.len() * row_width);
    let kind = stats.kind();
    let split = stats.split();
    let e = a.0;
    // Enumerate a's block partners once (closure re-invoked per accumulation
    // strategy).  The walk only yields a's second-source partners for
    // Clean-Clean ER, so a candidate set built with
    // `CandidatePairs::from_pairs` may contain pairs the board has no data
    // for (both endpoints in E1); those fall back to the per-pair merge
    // below so every candidate set yields exactly the reference values.
    let walk_partners = |sink: &mut dyn FnMut(EntityId, f64, f64)| {
        for &bid in stats.blocks_of(a) {
            let block_inv_comp = inv_comp_table[bid.index()];
            let block_inv_size = inv_size_table[bid.index()];
            let members = stats.entities_of(bid);
            let partners = match kind {
                er_core::DatasetKind::CleanClean => {
                    &members[stats.first_source_count(bid) as usize..]
                }
                er_core::DatasetKind::Dirty => {
                    let start = members.partition_point(|p| p.index() <= e as usize);
                    &members[start..]
                }
            };
            for &p in partners {
                sink(p, block_inv_comp, block_inv_size);
            }
        }
    };
    let board_covers_pair = |b: EntityId| match kind {
        er_core::DatasetKind::CleanClean => b.index() >= split,
        er_core::DatasetKind::Dirty => true,
    };
    // a's per-entity aggregates are fixed across its whole partner run —
    // gather them once, not per pair.
    let a_aggregates = source.source_aggregates(a);
    let mut emit_row = |b: EntityId, agg: &PairCooccurrence, cursor: usize| {
        write_features_from(&a_aggregates, &source.source_aggregates(b), agg, set, row);
        emit(
            (a, b),
            row,
            &mut out[cursor * row_width..(cursor + 1) * row_width],
        );
    };
    let mut cursor = 0usize;
    match worker {
        WorkerBoard::Flat(board) => {
            walk_partners(&mut |p, ic, is| {
                let pi = p.index();
                if board.common[pi] == 0 {
                    board.touched.push(pi as u32);
                }
                board.common[pi] += 1;
                board.inv_comp[pi] += ic;
                board.inv_size[pi] += is;
            });
            for &(_, b) in cands {
                let bi = b.index();
                let agg = if board_covers_pair(b) {
                    PairCooccurrence {
                        common_blocks: board.common[bi] as usize,
                        inv_comparisons_sum: board.inv_comp[bi],
                        inv_sizes_sum: board.inv_size[bi],
                    }
                } else {
                    source.source_cooccurrence(a, b)
                };
                emit_row(b, &agg, cursor);
                cursor += 1;
            }
            // Reset every touched slot — the touched set can be a strict
            // superset of a's candidates (e.g. a pruned `from_pairs` subset
            // or a sub-run chunk), so resetting along the candidate list
            // would leak state into later entities.
            for &pi in &board.touched {
                board.common[pi as usize] = 0;
                board.inv_comp[pi as usize] = 0.0;
                board.inv_size[pi as usize] = 0.0;
            }
            board.touched.clear();
        }
        WorkerBoard::Tiled { board, partners: _ } if cands.len() <= board.dense_limit() => {
            // Dense partner remap: accumulate straight into the slot of the
            // (sorted) candidate list, skipping partners that were pruned
            // out of it — their aggregates would never be read.
            walk_partners(&mut |p, ic, is| {
                if let Ok(slot) = cands.binary_search_by(|probe| probe.1.cmp(&p)) {
                    board.add_dense(slot, ic, is);
                }
            });
            for (slot, &(_, b)) in cands.iter().enumerate() {
                let agg = if board_covers_pair(b) {
                    board.dense_agg(slot)
                } else {
                    source.source_cooccurrence(a, b)
                };
                emit_row(b, &agg, cursor);
                cursor += 1;
            }
            board.finish_dense(cands.len());
        }
        WorkerBoard::Tiled { board, partners } => {
            // Radix scatter + tile-local accumulate, then merge the drained
            // (ascending) partner list with the (ascending) candidate list.
            // Candidates absent from the drain keep zero aggregates —
            // exactly the flat board's never-written slots.
            walk_partners(&mut |p, ic, is| board.add(p.0, ic, is));
            board.drain_sorted_into(partners);
            let mut j = 0usize;
            for &(_, b) in cands {
                while j < partners.len() && partners[j].0 < b.0 {
                    j += 1;
                }
                let agg = if !board_covers_pair(b) {
                    source.source_cooccurrence(a, b)
                } else if j < partners.len() && partners[j].0 == b.0 {
                    partners[j].1
                } else {
                    PairCooccurrence::default()
                };
                emit_row(b, &agg, cursor);
                cursor += 1;
            }
        }
    }
}

/// The fused entity-major engine shared by [`FeatureMatrix::build_with`]
/// and [`FeatureMatrix::score_rows_with`].
///
/// Processes candidate pairs grouped by their smaller endpoint `a`: walks
/// `a`'s blocks once through the flat [`er_blocking::BlockStats`] reverse
/// index, accumulating every partner's `(common blocks, Σ1/||b||, Σ1/|b|)`
/// on the worker's scoreboard, then emits one `row_width`-wide output row
/// per candidate of `a`.  Because blocks are visited in ascending id order
/// — and the tiled board folds each partner's contributions in exactly that
/// append order — the accumulated sums are bit-identical to a per-pair
/// merge of the sorted block lists on every engine, tile width and thread
/// count.
///
/// `emit` receives `((a, b), feature_row, output_slot)`.
#[allow(clippy::too_many_arguments)]
fn fused_entity_major_pass<E>(
    context: &FeatureContext<'_>,
    set: FeatureSet,
    threads: usize,
    row_width: usize,
    out: &mut [f64],
    scoreboard: &ScoreboardConfig,
    emit: E,
) where
    E: Fn((EntityId, EntityId), &[f64], &mut [f64]) + Sync,
{
    let candidates = context.candidates();
    let stats = context.stats();
    let num_pairs = candidates.len();
    if num_pairs == 0 || row_width == 0 {
        return;
    }
    debug_assert_eq!(out.len(), num_pairs * row_width);
    let num_entities = candidates.num_entities();
    let num_features = set.vector_len();
    let threads = effective_threads(threads, num_pairs);

    // Entity-aligned tasks of roughly CHUNK_ROWS output rows each: the pair
    // CSR groups rows by smaller endpoint, so task boundaries on entity
    // boundaries give every task a contiguous output range.
    let mut tasks: Vec<(u32, u32, usize)> = Vec::new();
    {
        let (mut lo, mut row_lo, mut rows) = (0usize, 0usize, 0usize);
        for e in 0..num_entities {
            rows += candidates.pair_range(EntityId(e as u32)).len();
            if rows >= CHUNK_ROWS {
                tasks.push((lo as u32, (e + 1) as u32, row_lo));
                row_lo += rows;
                rows = 0;
                lo = e + 1;
            }
        }
        if rows > 0 {
            tasks.push((lo as u32, num_entities as u32, row_lo));
        }
    }

    // Pre-split the output into one disjoint slice per task; workers take
    // their slice by task index.
    let mut slices: Vec<Option<&mut [f64]>> = Vec::with_capacity(tasks.len());
    {
        let mut rest = out;
        for (i, &(_, _, row_lo)) in tasks.iter().enumerate() {
            let row_hi = tasks.get(i + 1).map(|t| t.2).unwrap_or(num_pairs);
            let (chunk, tail) = rest.split_at_mut((row_hi - row_lo) * row_width);
            slices.push(Some(chunk));
            rest = tail;
        }
    }
    let slices = std::sync::Mutex::new(slices);

    let inv_comp_table = stats.inv_comparisons_table();
    let inv_size_table = stats.inv_sizes_table();

    er_core::for_each_task_with_state(
        tasks.len(),
        threads,
        || {
            (
                make_worker_board(num_entities, scoreboard),
                vec![0.0f64; num_features],
            )
        },
        |task, (worker, row)| {
            let chunk = slices.lock().expect("task slices poisoned")[task]
                .take()
                .expect("task dispatched twice");
            let (lo, hi, _) = tasks[task];
            let mut cursor = 0usize;
            for e in lo..hi {
                let a = EntityId(e);
                let cands = candidates.pairs_of(a);
                if cands.is_empty() {
                    continue;
                }
                process_entity_run(
                    stats,
                    inv_comp_table,
                    inv_size_table,
                    context,
                    set,
                    a,
                    cands,
                    worker,
                    row,
                    &mut chunk[cursor * row_width..(cursor + cands.len()) * row_width],
                    row_width,
                    &emit,
                );
                cursor += cands.len();
            }
            flush_worker_metrics(worker);
            debug_assert_eq!(cursor * row_width, chunk.len());
        },
    );
}

/// The streamed counterpart of [`fused_entity_major_pass`]: chunks of the
/// [`CandidateStream`]'s pair-id space are the parallel work units.  Each
/// worker re-extracts its chunk into a reusable [`ChunkArena`], runs the
/// shared per-entity accumulate/emit block over the chunk's (possibly
/// partial) entity runs, and writes into the chunk's pre-split slice of
/// `out` — so the output is positionally identical to the batch pass at any
/// thread count and chunk size, while no worker ever holds more than one
/// chunk of pairs.
#[allow(clippy::too_many_arguments)]
fn fused_stream_pass<E>(
    context: &StreamFeatureContext<'_>,
    stream: &CandidateStream<'_>,
    set: FeatureSet,
    threads: usize,
    row_width: usize,
    chunk_pairs: usize,
    out: &mut [f64],
    scoreboard: &ScoreboardConfig,
    emit: E,
) where
    E: Fn((EntityId, EntityId), &[f64], &mut [f64]) + Sync,
{
    let stats = context.stats();
    let num_pairs = usize::try_from(stream.total_pairs())
        .expect("streamed output buffer exceeds addressable memory");
    if num_pairs == 0 || row_width == 0 {
        return;
    }
    debug_assert_eq!(out.len(), num_pairs * row_width);
    let num_entities = stream.num_entities();
    let num_features = set.vector_len();
    let threads = effective_threads(threads, num_pairs);
    let chunks = stream.chunks(chunk_pairs.max(1));

    // Pre-split the output into one disjoint slice per chunk; workers take
    // their slice by chunk index.
    let mut slices: Vec<Option<&mut [f64]>> = Vec::with_capacity(chunks.len());
    {
        let mut rest = out;
        for chunk in &chunks {
            let (head, tail) = rest.split_at_mut(chunk.len() * row_width);
            slices.push(Some(head));
            rest = tail;
        }
    }
    let slices = std::sync::Mutex::new(slices);

    let inv_comp_table = stats.inv_comparisons_table();
    let inv_size_table = stats.inv_sizes_table();

    er_core::for_each_task_with_state(
        chunks.len(),
        threads,
        || {
            (
                make_worker_board(num_entities, scoreboard),
                ChunkArena::new(),
                vec![0.0f64; num_features],
            )
        },
        |task, (worker, arena, row)| {
            let chunk_out = slices.lock().expect("chunk slices poisoned")[task]
                .take()
                .expect("chunk dispatched twice");
            stream.extract_chunk(chunks[task], arena);
            let mut cursor = 0usize;
            for (a, cands) in arena.runs() {
                process_entity_run(
                    stats,
                    inv_comp_table,
                    inv_size_table,
                    context,
                    set,
                    a,
                    cands,
                    worker,
                    row,
                    &mut chunk_out[cursor * row_width..(cursor + cands.len()) * row_width],
                    row_width,
                    &emit,
                );
                cursor += cands.len();
            }
            flush_worker_metrics(worker);
            debug_assert_eq!(cursor * row_width, chunk_out.len());
        },
    );
}

/// Streams scored chunks to a sequential consumer in ascending pair-id
/// order: chunks are scored in parallel waves of `2 × threads`, then each
/// wave is handed to `consume` in order as `(pairs, probabilities)` slices.
/// Peak memory is `O(threads × chunk_pairs)` — the full pair and probability
/// vectors never exist at once.  Concatenating the consumed chunks
/// reproduces the materialised `(pairs, score_rows)` output bit-for-bit;
/// this is the progressive-bootstrap seam (`StreamingSchedule::absorb` per
/// chunk equals one global absorb because stamps are assigned in the same
/// sequence).
#[allow(clippy::too_many_arguments)]
pub fn for_each_scored_chunk(
    context: &StreamFeatureContext<'_>,
    stream: &CandidateStream<'_>,
    set: FeatureSet,
    threads: usize,
    scoreboard: &ScoreboardConfig,
    chunk_pairs: usize,
    score: impl Fn(&[f64]) -> f64 + Sync,
    mut consume: impl FnMut(&[(EntityId, EntityId)], &[f64]),
) {
    let stats = context.stats();
    let num_pairs = usize::try_from(stream.total_pairs())
        .expect("streamed chunk walk exceeds addressable memory");
    if num_pairs == 0 {
        return;
    }
    let num_entities = stream.num_entities();
    let num_features = set.vector_len();
    let threads = effective_threads(threads, num_pairs);
    let chunks = stream.chunks(chunk_pairs.max(1));
    let inv_comp_table = stats.inv_comparisons_table();
    let inv_size_table = stats.inv_sizes_table();

    let score_chunk = |chunk: er_blocking::ChunkSpec| {
        let mut worker = make_worker_board(num_entities, scoreboard);
        let mut arena = ChunkArena::new();
        let mut row = vec![0.0f64; num_features];
        stream.extract_chunk(chunk, &mut arena);
        let mut probs = vec![0.0f64; chunk.len()];
        let mut cursor = 0usize;
        for (a, cands) in arena.runs() {
            process_entity_run(
                stats,
                inv_comp_table,
                inv_size_table,
                context,
                set,
                a,
                cands,
                &mut worker,
                &mut row,
                &mut probs[cursor..cursor + cands.len()],
                1,
                &|_pair, row, slot| slot[0] = score(row),
            );
            cursor += cands.len();
        }
        flush_worker_metrics(&mut worker);
        (arena.pairs().to_vec(), probs)
    };

    let wave = threads * 2;
    for base in (0..chunks.len()).step_by(wave) {
        let hi = (base + wave).min(chunks.len());
        let wave_results = er_core::map_ranges_parallel(hi - base, threads, hi - base, |range| {
            score_chunk(chunks[base + range.start])
        });
        for (pairs, probs) in &wave_results {
            consume(pairs, probs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_blocking::{Block, BlockCollection, BlockStats, CandidatePairs};
    use er_core::{DatasetKind, EntityId};

    fn fixture() -> BlockCollection {
        let ids = |v: &[u32]| v.iter().copied().map(EntityId).collect::<Vec<_>>();
        BlockCollection {
            dataset_name: "t".into(),
            kind: DatasetKind::CleanClean,
            split: 3,
            num_entities: 6,
            blocks: vec![
                Block::new("a", ids(&[0, 3])),
                Block::new("b", ids(&[0, 1, 3, 4])),
                Block::new("c", ids(&[1, 4])),
                Block::new("d", ids(&[2, 5])),
                Block::new("e", ids(&[0, 1, 2, 3, 4, 5])),
            ],
        }
    }

    #[test]
    fn matrix_shape_matches_candidates_and_feature_set() {
        let bc = fixture();
        let stats = BlockStats::new(&bc);
        let cands = CandidatePairs::from_blocks(&bc);
        let ctx = FeatureContext::new(&stats, &cands);
        let matrix = FeatureMatrix::build(&ctx, FeatureSet::original());
        assert_eq!(matrix.num_pairs(), cands.len());
        assert_eq!(matrix.num_features(), 5);
        assert_eq!(matrix.rows().count(), cands.len());
    }

    #[test]
    fn rows_match_direct_computation() {
        let bc = fixture();
        let stats = BlockStats::new(&bc);
        let cands = CandidatePairs::from_blocks(&bc);
        let ctx = FeatureContext::new(&stats, &cands);
        let set = FeatureSet::all_schemes();
        let matrix = FeatureMatrix::build(&ctx, set);
        for (id, a, b) in cands.iter() {
            let expected = ctx.pair_feature_vec(a, b, set);
            assert_eq!(matrix.row(id), expected.as_slice());
        }
    }

    #[test]
    fn fused_build_matches_reference_build() {
        let bc = fixture();
        let stats = BlockStats::new(&bc);
        let cands = CandidatePairs::from_blocks(&bc);
        let ctx = FeatureContext::new(&stats, &cands);
        for set in [
            FeatureSet::original(),
            FeatureSet::blast_optimal(),
            FeatureSet::all_schemes(),
        ] {
            let fused = FeatureMatrix::build(&ctx, set);
            let reference = FeatureMatrix::build_reference(&ctx, set);
            assert_eq!(fused.num_pairs(), reference.num_pairs());
            for (id, row) in reference.rows() {
                assert_eq!(fused.row(id), row, "{set}");
            }
        }
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let bc = fixture();
        let stats = BlockStats::new(&bc);
        let cands = CandidatePairs::from_blocks(&bc);
        let ctx = FeatureContext::new(&stats, &cands);
        let set = FeatureSet::blast_optimal();
        let sequential = FeatureMatrix::build_with_threads(&ctx, set, 1);
        let parallel = FeatureMatrix::build_with_threads(&ctx, set, 4);
        for (id, row) in sequential.rows() {
            assert_eq!(row, parallel.row(id));
        }
    }

    #[test]
    fn score_rows_matches_materialised_scoring() {
        let bc = fixture();
        let stats = BlockStats::new(&bc);
        let cands = CandidatePairs::from_blocks(&bc);
        let ctx = FeatureContext::new(&stats, &cands);
        let set = FeatureSet::all_schemes();
        let matrix = FeatureMatrix::build(&ctx, set);
        let score = |row: &[f64]| row.iter().sum::<f64>() / row.len() as f64;
        for threads in [1, 4] {
            let fused = FeatureMatrix::score_rows(&ctx, set, threads, score);
            assert_eq!(fused.len(), matrix.num_pairs());
            for (id, row) in matrix.rows() {
                assert_eq!(fused[id.index()], score(row), "{threads} threads");
            }
        }
    }

    #[test]
    fn fused_pass_handles_pruned_candidate_subsets() {
        // Regression: the scoreboard used to reset only the slots of pairs
        // present in the candidate CSR, so a `from_pairs` subset (the
        // documented re-materialisation path) leaked accumulated state from
        // one entity into the next.  Also exercises the merge fallback for
        // pairs the board never accumulates (same-source Clean-Clean pairs).
        let bc = fixture();
        let stats = BlockStats::new(&bc);
        let full = CandidatePairs::from_blocks(&bc);
        let mut kept: Vec<(EntityId, EntityId)> = full.pairs().iter().copied().step_by(2).collect();
        kept.push((EntityId(0), EntityId(1))); // both E1: board has no data
        let subset = CandidatePairs::from_pairs(bc.num_entities, kept);
        let ctx = FeatureContext::new(&stats, &subset);
        let set = FeatureSet::all_schemes();

        let reference = FeatureMatrix::build_reference(&ctx, set);
        for threads in [1, 4] {
            let fused = FeatureMatrix::build_with_threads(&ctx, set, threads);
            for (id, row) in reference.rows() {
                assert_eq!(fused.row(id), row, "{threads} threads, pair {id:?}");
            }
            let scored = FeatureMatrix::score_rows(&ctx, set, threads, |row| row[0]);
            for (id, row) in reference.rows() {
                assert_eq!(scored[id.index()], row[0], "{threads} threads");
            }
        }

        // Same exercise on a Dirty collection.
        let mut dirty = fixture();
        dirty.kind = DatasetKind::Dirty;
        dirty.split = dirty.num_entities;
        let dirty_stats = BlockStats::new(&dirty);
        let dirty_full = CandidatePairs::from_blocks(&dirty);
        let dirty_subset = CandidatePairs::from_pairs(
            dirty.num_entities,
            dirty_full.pairs().iter().copied().step_by(2),
        );
        let dirty_ctx = FeatureContext::new(&dirty_stats, &dirty_subset);
        let dirty_reference = FeatureMatrix::build_reference(&dirty_ctx, set);
        let dirty_fused = FeatureMatrix::build(&dirty_ctx, set);
        for (id, row) in dirty_reference.rows() {
            assert_eq!(dirty_fused.row(id), row, "dirty pair {id:?}");
        }
    }

    #[test]
    fn zero_feature_matrix_still_yields_every_row() {
        // `FeatureSet` cannot be empty through its public API, but a
        // degenerate matrix (deserialised, or built by future callers) must
        // still satisfy `rows().count() == num_pairs()`.  Regression test:
        // the former `values.chunks(num_features.max(1))` implementation
        // yielded 0 rows for `num_features == 0` while `num_pairs()` said 5.
        let matrix = FeatureMatrix {
            feature_set: FeatureSet::original(),
            num_features: 0,
            num_pairs: 5,
            values: Vec::new(),
        };
        assert_eq!(matrix.rows().count(), 5);
        for (i, (id, row)) in matrix.rows().enumerate() {
            assert_eq!(id, PairId::from(i));
            assert!(row.is_empty());
        }
    }

    #[test]
    fn projection_matches_direct_build() {
        let bc = fixture();
        let stats = BlockStats::new(&bc);
        let cands = CandidatePairs::from_blocks(&bc);
        let ctx = FeatureContext::new(&stats, &cands);
        let full = FeatureMatrix::build(&ctx, FeatureSet::all_schemes());
        for target in [
            FeatureSet::original(),
            FeatureSet::blast_optimal(),
            FeatureSet::rcnp_optimal(),
        ] {
            let projected = full.project(target);
            let direct = FeatureMatrix::build(&ctx, target);
            assert_eq!(projected.num_features(), direct.num_features());
            for (id, row) in direct.rows() {
                assert_eq!(projected.row(id), row, "mismatch for {target}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot project")]
    fn projection_onto_missing_scheme_panics() {
        let bc = fixture();
        let stats = BlockStats::new(&bc);
        let cands = CandidatePairs::from_blocks(&bc);
        let ctx = FeatureContext::new(&stats, &cands);
        let small = FeatureMatrix::build(&ctx, FeatureSet::blast_optimal());
        let _ = small.project(FeatureSet::original());
    }

    #[test]
    fn streamed_scoring_is_bit_identical_to_materialised_scoring() {
        let mut collections = vec![fixture()];
        let mut dirty = fixture();
        dirty.kind = DatasetKind::Dirty;
        dirty.split = dirty.num_entities;
        collections.push(dirty);

        let set = FeatureSet::all_schemes();
        let score = |row: &[f64]| row.iter().sum::<f64>();
        for bc in collections {
            let stats = BlockStats::new(&bc);
            let cands = CandidatePairs::from_blocks(&bc);
            let ctx = FeatureContext::new(&stats, &cands);
            let reference = FeatureMatrix::score_rows(&ctx, set, 1, score);

            let stream = er_blocking::CandidateStream::from_stats(&stats, 2);
            let sctx = StreamFeatureContext::new(&stats, stream.lcp_table());
            for threads in [1, 2, 4] {
                for chunk_pairs in [1usize, 3, 64, usize::MAX / 2] {
                    let streamed = FeatureMatrix::score_stream_with(
                        &sctx,
                        &stream,
                        set,
                        threads,
                        &ScoreboardConfig::default(),
                        chunk_pairs,
                        score,
                    );
                    assert_eq!(
                        streamed, reference,
                        "{:?} threads={threads} chunk_pairs={chunk_pairs}",
                        bc.kind
                    );
                }
            }
        }
    }

    #[test]
    fn scored_chunk_walk_concatenates_to_the_materialised_output() {
        let bc = fixture();
        let stats = BlockStats::new(&bc);
        let cands = CandidatePairs::from_blocks(&bc);
        let ctx = FeatureContext::new(&stats, &cands);
        let set = FeatureSet::blast_optimal();
        let score = |row: &[f64]| row.iter().sum::<f64>();
        let reference = FeatureMatrix::score_rows(&ctx, set, 1, score);

        let stream = er_blocking::CandidateStream::from_stats(&stats, 2);
        let sctx = StreamFeatureContext::new(&stats, stream.lcp_table());
        for threads in [1, 3] {
            for chunk_pairs in [1usize, 2, 5, 1024] {
                let mut pairs = Vec::new();
                let mut probs = Vec::new();
                crate::generator::for_each_scored_chunk(
                    &sctx,
                    &stream,
                    set,
                    threads,
                    &ScoreboardConfig::default(),
                    chunk_pairs,
                    score,
                    |chunk_pairs_slice, chunk_probs| {
                        pairs.extend_from_slice(chunk_pairs_slice);
                        probs.extend_from_slice(chunk_probs);
                    },
                );
                assert_eq!(pairs.as_slice(), cands.pairs());
                assert_eq!(probs, reference, "threads={threads} chunk={chunk_pairs}");
            }
        }
    }

    #[test]
    fn column_means_average_rows() {
        let bc = fixture();
        let stats = BlockStats::new(&bc);
        let cands = CandidatePairs::from_blocks(&bc);
        let ctx = FeatureContext::new(&stats, &cands);
        let matrix = FeatureMatrix::build(&ctx, FeatureSet::blast_optimal());
        let means = matrix.column_means();
        assert_eq!(means.len(), 4);
        let manual: f64 =
            matrix.rows().map(|(_, row)| row[0]).sum::<f64>() / matrix.num_pairs() as f64;
        assert!((means[0] - manual).abs() < 1e-12);
    }
}
