//! Cache-blocked radix scoreboard: the partner-aggregation engine behind the
//! fused entity-major feature pass.
//!
//! The original scoreboard (PR 1) kept three dense `O(num_entities)` arrays
//! per worker — `common` / `inv_comp` / `inv_size`, ~20 bytes per entity.
//! At 10^7 entities and 16 workers that is ~3.2 GB of cold scratch whose
//! random partner-indexed writes miss every cache level.  This module
//! replaces it with a tiled engine whose scratch is
//! `O(tile + contributions_of_one_entity)`:
//!
//! 1. **Radix scatter.**  The partner id space is split into power-of-two
//!    *tiles* ([`ScoreboardConfig::tile_entities`], auto-sized to
//!    [`DEFAULT_TILE_ENTITIES`]).  Each `(partner, 1/||b||, 1/|b|)`
//!    contribution of the current entity is appended to one entries array
//!    while a 4-byte-per-tile counter tracks its tile — a sequential push,
//!    never a corpus-sized random write.  At drain time a *stable* counting
//!    sort (prefix sums over the active tiles' counters, then an in-order
//!    scatter) groups the entries by tile; stability keeps each tile's run
//!    in append order.  Per-tile `Vec` buckets would do the same job but
//!    retain their historical max capacity forever, which sums to
//!    `O(num_tiles)`-sized scratch across a long pass — the two flat arrays
//!    keep retained capacity at `O(contributions_of_one_entity)`.
//! 2. **Tile-local accumulate.**  The grouped runs are visited in ascending
//!    tile order; each run is folded into tile-width accumulator arrays
//!    (cache-resident by construction) and emitted in ascending partner
//!    order.
//! 3. **Dense partner remap.**  When an entity's candidate list is short
//!    (≤ [`ScoreboardConfig::dense_remap_limit`]) the engine skips the radix
//!    pass entirely: every contribution is binary-searched into the sorted
//!    candidate list and accumulated at that slot, so the scratch touched is
//!    `O(candidates_of_a)`.
//!
//! **Bit-identity.**  A partner's floating-point sums are accumulated in
//! bucket-append order, which is exactly the block-walk order the flat
//! scoreboard used; per-partner addition sequences are therefore identical
//! and the drained aggregates are bit-for-bit the flat scoreboard's values.
//! The flat engine is retained ([`FlatScoreboard`],
//! [`ScoreboardEngine::Flat`]) as the reference for equivalence tests and
//! scratch-size comparisons.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::context::PairCooccurrence;

/// Default tile width (entities per tile) when auto-sizing: 4096 slots keep
/// the three accumulator arrays (20 bytes per slot) at 80 KiB — L2-resident
/// on current hardware — while keeping the per-tile counter array shallow
/// (`num_entities / 4096` four-byte counters).
pub const DEFAULT_TILE_ENTITIES: usize = 4096;

/// Default upper bound on candidate-list length for the dense partner-remap
/// fast path.
pub const DEFAULT_DENSE_REMAP_LIMIT: usize = 64;

/// Which partner-aggregation engine the fused pass runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ScoreboardEngine {
    /// The cache-blocked radix scoreboard (default).
    #[default]
    Tiled,
    /// The original flat `O(num_entities)`-scratch scoreboard, retained as
    /// the equivalence reference.
    Flat,
}

/// Configuration of the scoreboard engine, carried by
/// `MetaBlockingConfig` / `StreamingConfig`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoreboardConfig {
    /// Engine selection; [`ScoreboardEngine::Tiled`] unless a caller opts
    /// back into the flat reference.
    pub engine: ScoreboardEngine,
    /// Requested tile width in entities; `None` auto-sizes to
    /// [`DEFAULT_TILE_ENTITIES`].  Rounded up to a power of two and capped
    /// at `max(num_entities.next_power_of_two(), DEFAULT_TILE_ENTITIES)` —
    /// any request larger than the corpus degenerates to a single tile.
    pub tile_entities: Option<usize>,
    /// Entities whose candidate list is at most this long take the dense
    /// partner-remap fast path instead of the radix scatter.  `0` disables
    /// the fast path.
    pub dense_remap_limit: usize,
    /// Optional shared metrics sink; workers record scratch high-water marks
    /// and per-path entity counts into it.
    pub metrics: Option<Arc<ScoreboardMetrics>>,
}

impl Default for ScoreboardConfig {
    fn default() -> Self {
        ScoreboardConfig {
            engine: ScoreboardEngine::Tiled,
            tile_entities: None,
            dense_remap_limit: DEFAULT_DENSE_REMAP_LIMIT,
            metrics: None,
        }
    }
}

impl ScoreboardConfig {
    /// The flat reference engine.
    pub fn flat() -> Self {
        ScoreboardConfig {
            engine: ScoreboardEngine::Flat,
            ..Self::default()
        }
    }

    /// A tiled configuration with an explicit tile width.
    pub fn with_tile(tile_entities: usize) -> Self {
        ScoreboardConfig {
            tile_entities: Some(tile_entities),
            ..Self::default()
        }
    }

    /// Returns `self` with the metrics sink attached.
    pub fn with_metrics(mut self, metrics: Arc<ScoreboardMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The effective (power-of-two) tile width for a corpus of
    /// `num_entities`.
    pub fn effective_tile(&self, num_entities: usize) -> usize {
        // Entity ids are u32, so a tile never needs to exceed 2^31 slots
        // (and `partner >> tile_shift` must stay a valid u32 shift).
        let cap = num_entities
            .next_power_of_two()
            .clamp(DEFAULT_TILE_ENTITIES, 1 << 31);
        self.tile_entities
            .unwrap_or(DEFAULT_TILE_ENTITIES)
            .clamp(1, cap)
            .next_power_of_two()
    }
}

/// Shared scratch/path accounting, written by workers with relaxed atomics.
///
/// High-water marks use `fetch_max`, counters use `fetch_add`; workers batch
/// their updates ([`RadixScoreboard::flush_metrics`]) so the hot loop never
/// touches the shared cache line.
#[derive(Debug, Default)]
pub struct ScoreboardMetrics {
    scratch_bytes_hwm: AtomicUsize,
    partners_hwm: AtomicUsize,
    contributions_hwm: AtomicUsize,
    radix_entities: AtomicUsize,
    dense_entities: AtomicUsize,
}

impl ScoreboardMetrics {
    /// A fresh, shareable sink.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Records one worker's current scratch footprint.
    pub fn record_scratch(&self, bytes: usize) {
        self.scratch_bytes_hwm.fetch_max(bytes, Ordering::Relaxed);
    }

    fn record_flush(&self, partners: usize, contributions: usize, radix: usize, dense: usize) {
        self.partners_hwm.fetch_max(partners, Ordering::Relaxed);
        self.contributions_hwm
            .fetch_max(contributions, Ordering::Relaxed);
        if radix > 0 {
            self.radix_entities.fetch_add(radix, Ordering::Relaxed);
        }
        if dense > 0 {
            self.dense_entities.fetch_add(dense, Ordering::Relaxed);
        }
    }

    /// Largest per-worker scratch footprint observed, in bytes.
    pub fn scratch_bytes_hwm(&self) -> usize {
        self.scratch_bytes_hwm.load(Ordering::Relaxed)
    }

    /// Most distinct partners any single entity produced.
    pub fn partners_hwm(&self) -> usize {
        self.partners_hwm.load(Ordering::Relaxed)
    }

    /// Most `(block, partner)` contributions any single entity scattered.
    pub fn contributions_hwm(&self) -> usize {
        self.contributions_hwm.load(Ordering::Relaxed)
    }

    /// Entities processed through the radix scatter path.
    pub fn radix_entities(&self) -> usize {
        self.radix_entities.load(Ordering::Relaxed)
    }

    /// Entities processed through the dense partner-remap fast path.
    pub fn dense_entities(&self) -> usize {
        self.dense_entities.load(Ordering::Relaxed)
    }
}

/// One scattered contribution: partner id plus the block's precomputed
/// reciprocals.
#[derive(Debug, Clone, Copy)]
struct Contribution {
    partner: u32,
    inv_comp: f64,
    inv_size: f64,
}

/// The cache-blocked radix scoreboard.
///
/// `add` appends contributions to an entries array and counts them per
/// tile; `drain_sorted_into` groups them by tile with a stable counting
/// sort, folds each tile's run into cache-resident accumulators, and emits
/// `(partner, aggregates)` in ascending partner order.  The dense fast path
/// (`add_dense` / `dense_agg` / `finish_dense`) reuses the same accumulator
/// arrays, indexed by candidate-list slot instead of partner id.
#[derive(Debug)]
pub struct RadixScoreboard {
    tile_shift: u32,
    tile_mask: u32,
    dense_limit: usize,
    /// The current entity's contributions in append (block-walk) order.
    entries: Vec<Contribution>,
    /// Counting-sort scratch: `entries` regrouped by tile, stable.
    sorted: Vec<Contribution>,
    /// Per-tile contribution count; doubles as the scatter cursor during
    /// the drain.  4 bytes per tile is the whole per-tile footprint.
    tile_counts: Vec<u32>,
    active_tiles: Vec<u32>,
    common: Vec<u32>,
    inv_comp: Vec<f64>,
    inv_size: Vec<f64>,
    touched: Vec<u32>,
    metrics: Option<Arc<ScoreboardMetrics>>,
    local_partners_hwm: usize,
    local_contributions_hwm: usize,
    local_radix: usize,
    local_dense: usize,
}

impl RadixScoreboard {
    /// A scoreboard for partner ids `0..num_entities` (the tile counters
    /// grow on demand if larger ids show up — the streaming index relies on
    /// that).
    pub fn new(num_entities: usize, config: &ScoreboardConfig) -> Self {
        let tile = config.effective_tile(num_entities);
        let slots = tile.max(config.dense_remap_limit);
        RadixScoreboard {
            tile_shift: tile.trailing_zeros(),
            tile_mask: (tile - 1) as u32,
            dense_limit: config.dense_remap_limit,
            entries: Vec::new(),
            sorted: Vec::new(),
            tile_counts: vec![0; num_entities.div_ceil(tile)],
            active_tiles: Vec::new(),
            common: vec![0; slots],
            inv_comp: vec![0.0; slots],
            inv_size: vec![0.0; slots],
            touched: Vec::new(),
            metrics: config.metrics.clone(),
            local_partners_hwm: 0,
            local_contributions_hwm: 0,
            local_radix: 0,
            local_dense: 0,
        }
    }

    /// The effective tile width in entities.
    pub fn tile_entities(&self) -> usize {
        (self.tile_mask as usize) + 1
    }

    /// Candidate-list length at or below which the dense fast path applies.
    pub fn dense_limit(&self) -> usize {
        self.dense_limit
    }

    /// Scatters one contribution of the current entity.
    #[inline]
    pub fn add(&mut self, partner: u32, inv_comp: f64, inv_size: f64) {
        let tile = (partner >> self.tile_shift) as usize;
        if tile >= self.tile_counts.len() {
            self.tile_counts.resize(tile + 1, 0);
        }
        if self.tile_counts[tile] == 0 {
            self.active_tiles.push(tile as u32);
        }
        self.tile_counts[tile] += 1;
        self.entries.push(Contribution {
            partner,
            inv_comp,
            inv_size,
        });
    }

    /// Drains the current entity's contributions into `out` as
    /// `(partner, aggregates)`, ascending by partner, clearing the board.
    ///
    /// The counting sort is stable — within each tile the scattered run
    /// keeps append (= block-walk) order — so every partner's sums are
    /// folded in exactly the flat scoreboard's order and the drained
    /// aggregates are bit-identical to its values.
    pub fn drain_sorted_into(&mut self, out: &mut Vec<(u32, PairCooccurrence)>) {
        out.clear();
        self.active_tiles.sort_unstable();
        let contributions = self.entries.len();
        // Prefix sums: each active tile's counter becomes its run's start
        // offset in `sorted`, then serves as the scatter cursor.
        let mut offset = 0u32;
        for &t in &self.active_tiles {
            let count = self.tile_counts[t as usize];
            self.tile_counts[t as usize] = offset;
            offset += count;
        }
        // Stable scatter into tile-grouped order.
        self.sorted.clear();
        self.sorted.resize(
            contributions,
            Contribution {
                partner: 0,
                inv_comp: 0.0,
                inv_size: 0.0,
            },
        );
        for c in &self.entries {
            let tile = (c.partner >> self.tile_shift) as usize;
            let pos = self.tile_counts[tile] as usize;
            self.sorted[pos] = *c;
            self.tile_counts[tile] = (pos + 1) as u32;
        }
        self.entries.clear();
        // Tile-local accumulate: after the scatter each tile's counter holds
        // its run's end offset; runs are contiguous in active-tile order.
        let mut run_start = 0usize;
        for &t in &self.active_tiles {
            let run_end = self.tile_counts[t as usize] as usize;
            let base = (t as usize) << self.tile_shift;
            for c in &self.sorted[run_start..run_end] {
                let slot = (c.partner & self.tile_mask) as usize;
                if self.common[slot] == 0 {
                    self.touched.push(slot as u32);
                }
                self.common[slot] += 1;
                self.inv_comp[slot] += c.inv_comp;
                self.inv_size[slot] += c.inv_size;
            }
            run_start = run_end;
            self.tile_counts[t as usize] = 0;
            self.touched.sort_unstable();
            for &s in &self.touched {
                let slot = s as usize;
                out.push((
                    (base + slot) as u32,
                    PairCooccurrence {
                        common_blocks: self.common[slot] as usize,
                        inv_comparisons_sum: self.inv_comp[slot],
                        inv_sizes_sum: self.inv_size[slot],
                    },
                ));
                self.common[slot] = 0;
                self.inv_comp[slot] = 0.0;
                self.inv_size[slot] = 0.0;
            }
            self.touched.clear();
        }
        self.active_tiles.clear();
        self.local_radix += 1;
        self.local_partners_hwm = self.local_partners_hwm.max(out.len());
        self.local_contributions_hwm = self.local_contributions_hwm.max(contributions);
    }

    /// Dense fast path: accumulates one contribution at candidate-list slot
    /// `slot` (< `dense_limit`, already remapped by the caller).
    #[inline]
    pub fn add_dense(&mut self, slot: usize, inv_comp: f64, inv_size: f64) {
        self.common[slot] += 1;
        self.inv_comp[slot] += inv_comp;
        self.inv_size[slot] += inv_size;
    }

    /// The aggregates accumulated at a dense slot (zeros if untouched —
    /// identical to the flat scoreboard's never-written slot).
    #[inline]
    pub fn dense_agg(&self, slot: usize) -> PairCooccurrence {
        PairCooccurrence {
            common_blocks: self.common[slot] as usize,
            inv_comparisons_sum: self.inv_comp[slot],
            inv_sizes_sum: self.inv_size[slot],
        }
    }

    /// Resets dense slots `0..len` after emission.
    pub fn finish_dense(&mut self, len: usize) {
        for slot in 0..len {
            self.common[slot] = 0;
            self.inv_comp[slot] = 0.0;
            self.inv_size[slot] = 0.0;
        }
        self.local_dense += 1;
        self.local_partners_hwm = self.local_partners_hwm.max(len);
    }

    /// This worker's current scratch footprint in bytes (accumulators,
    /// entry/sort arrays, per-tile counters, bookkeeping lists).  O(1).
    pub fn scratch_bytes(&self) -> usize {
        use std::mem::size_of;
        self.entries.capacity() * size_of::<Contribution>()
            + self.sorted.capacity() * size_of::<Contribution>()
            + self.tile_counts.capacity() * size_of::<u32>()
            + self.common.capacity() * size_of::<u32>()
            + self.inv_comp.capacity() * size_of::<f64>()
            + self.inv_size.capacity() * size_of::<f64>()
            + self.touched.capacity() * size_of::<u32>()
            + self.active_tiles.capacity() * size_of::<u32>()
    }

    /// Publishes this worker's locally batched metrics to the shared sink
    /// (no-op without one).  Call once per task, not per entity.
    pub fn flush_metrics(&mut self) {
        if let Some(metrics) = &self.metrics {
            metrics.record_scratch(self.scratch_bytes());
            metrics.record_flush(
                self.local_partners_hwm,
                self.local_contributions_hwm,
                self.local_radix,
                self.local_dense,
            );
        }
        self.local_partners_hwm = 0;
        self.local_contributions_hwm = 0;
        self.local_radix = 0;
        self.local_dense = 0;
    }
}

/// The original flat scoreboard: one slot per entity, `O(num_entities)`
/// scratch per worker.  Retained as the reference engine
/// ([`ScoreboardEngine::Flat`]) for equivalence tests and the
/// scratch-footprint comparison in the scalability bench.
#[derive(Debug)]
pub struct FlatScoreboard {
    pub(crate) common: Vec<u32>,
    pub(crate) inv_comp: Vec<f64>,
    pub(crate) inv_size: Vec<f64>,
    pub(crate) touched: Vec<u32>,
}

impl FlatScoreboard {
    /// A flat board with one slot per entity.
    pub fn new(num_entities: usize) -> Self {
        FlatScoreboard {
            common: vec![0; num_entities],
            inv_comp: vec![0.0; num_entities],
            inv_size: vec![0.0; num_entities],
            touched: Vec::new(),
        }
    }

    /// This board's scratch footprint in bytes.
    pub fn scratch_bytes(&self) -> usize {
        use std::mem::size_of;
        self.common.capacity() * size_of::<u32>()
            + self.inv_comp.capacity() * size_of::<f64>()
            + self.inv_size.capacity() * size_of::<f64>()
            + self.touched.capacity() * size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_tile_rounds_and_caps() {
        let auto = ScoreboardConfig::default();
        assert_eq!(auto.effective_tile(1_000_000), DEFAULT_TILE_ENTITIES);
        assert_eq!(auto.effective_tile(0), DEFAULT_TILE_ENTITIES);
        assert_eq!(ScoreboardConfig::with_tile(1).effective_tile(100), 1);
        assert_eq!(ScoreboardConfig::with_tile(3).effective_tile(100), 4);
        // A request beyond the corpus degenerates to a single tile.
        let huge = ScoreboardConfig::with_tile(usize::MAX / 4);
        let tile = huge.effective_tile(100_000);
        assert!(tile >= 100_000);
        assert_eq!(100_000usize.div_ceil(tile), 1);
    }

    #[test]
    fn drain_accumulates_in_append_order_and_sorts() {
        let cfg = ScoreboardConfig::with_tile(4);
        let mut board = RadixScoreboard::new(16, &cfg);
        // Partners across three tiles, appended out of order.
        board.add(9, 0.5, 0.25);
        board.add(2, 1.0, 0.5);
        board.add(9, 0.125, 0.0625);
        board.add(14, 2.0, 1.0);
        board.add(2, 0.25, 0.125);
        let mut out = Vec::new();
        board.drain_sorted_into(&mut out);
        let partners: Vec<u32> = out.iter().map(|&(p, _)| p).collect();
        assert_eq!(partners, vec![2, 9, 14]);
        assert_eq!(out[0].1.common_blocks, 2);
        assert_eq!(out[0].1.inv_comparisons_sum, 1.25);
        assert_eq!(out[1].1.common_blocks, 2);
        assert_eq!(out[1].1.inv_comparisons_sum, 0.625);
        assert_eq!(out[2].1.common_blocks, 1);
        // Board is clean: a second drain yields nothing.
        board.drain_sorted_into(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn tile_counters_grow_on_demand() {
        let cfg = ScoreboardConfig::with_tile(2);
        let mut board = RadixScoreboard::new(0, &cfg);
        board.add(1000, 1.0, 1.0);
        let mut out = Vec::new();
        board.drain_sorted_into(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 1000);
    }

    #[test]
    fn tile_width_one_gives_one_partner_per_tile() {
        let cfg = ScoreboardConfig::with_tile(1);
        let mut board = RadixScoreboard::new(8, &cfg);
        assert_eq!(board.tile_entities(), 1);
        for p in [7u32, 0, 3, 7] {
            board.add(p, 1.0, 1.0);
        }
        let mut out = Vec::new();
        board.drain_sorted_into(&mut out);
        let partners: Vec<u32> = out.iter().map(|&(p, _)| p).collect();
        assert_eq!(partners, vec![0, 3, 7]);
        assert_eq!(out[2].1.common_blocks, 2);
    }

    #[test]
    fn dense_path_accumulates_and_resets() {
        let cfg = ScoreboardConfig::default();
        let mut board = RadixScoreboard::new(10, &cfg);
        board.add_dense(0, 0.5, 0.25);
        board.add_dense(2, 1.0, 1.0);
        board.add_dense(0, 0.5, 0.25);
        assert_eq!(board.dense_agg(0).common_blocks, 2);
        assert_eq!(board.dense_agg(0).inv_comparisons_sum, 1.0);
        assert_eq!(board.dense_agg(1).common_blocks, 0);
        board.finish_dense(3);
        assert_eq!(board.dense_agg(2).common_blocks, 0);
    }

    #[test]
    fn metrics_track_hwm_and_paths() {
        let metrics = ScoreboardMetrics::shared();
        let cfg = ScoreboardConfig::with_tile(4).with_metrics(metrics.clone());
        let mut board = RadixScoreboard::new(64, &cfg);
        board.add(1, 1.0, 1.0);
        board.add(9, 1.0, 1.0);
        board.add(9, 1.0, 1.0);
        let mut out = Vec::new();
        board.drain_sorted_into(&mut out);
        board.add_dense(0, 1.0, 1.0);
        board.finish_dense(1);
        board.flush_metrics();
        assert_eq!(metrics.partners_hwm(), 2);
        assert_eq!(metrics.contributions_hwm(), 3);
        assert_eq!(metrics.radix_entities(), 1);
        assert_eq!(metrics.dense_entities(), 1);
        assert!(metrics.scratch_bytes_hwm() > 0);
        assert!(metrics.scratch_bytes_hwm() >= board.scratch_bytes());
    }

    #[test]
    fn scratch_is_tile_scaled_not_corpus_scaled() {
        let cfg = ScoreboardConfig::default();
        let small = RadixScoreboard::new(10_000, &cfg);
        let large = RadixScoreboard::new(1_000_000, &cfg);
        let flat = FlatScoreboard::new(1_000_000);
        // The tiled board's 100x corpus costs only 4-byte tile counters more.
        assert!(large.scratch_bytes() < small.scratch_bytes() + 1_000_000 / 64);
        assert!(large.scratch_bytes() * 10 < flat.scratch_bytes());
    }
}
