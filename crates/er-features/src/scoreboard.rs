//! Cache-blocked radix scoreboard: the partner-aggregation engine behind the
//! fused entity-major feature pass.
//!
//! The original scoreboard (PR 1) kept three dense `O(num_entities)` arrays
//! per worker — `common` / `inv_comp` / `inv_size`, ~20 bytes per entity.
//! At 10^7 entities and 16 workers that is ~3.2 GB of cold scratch whose
//! random partner-indexed writes miss every cache level.  This module
//! replaces it with a tiled engine whose scratch is
//! `O(tile + contributions_of_one_entity)`:
//!
//! 1. **Radix scatter.**  The partner id space is split into power-of-two
//!    *tiles* ([`ScoreboardConfig::tile_entities`], auto-sized to
//!    [`DEFAULT_TILE_ENTITIES`]).  Each `(partner, 1/||b||, 1/|b|)`
//!    contribution of the current entity is appended to one entries array
//!    while a 4-byte-per-tile counter tracks its tile — a sequential push,
//!    never a corpus-sized random write.  At drain time a *stable* counting
//!    sort (prefix sums over the active tiles' counters, then an in-order
//!    scatter) groups the entries by tile; stability keeps each tile's run
//!    in append order.  Per-tile `Vec` buckets would do the same job but
//!    retain their historical max capacity forever, which sums to
//!    `O(num_tiles)`-sized scratch across a long pass — the two flat arrays
//!    keep retained capacity at `O(contributions_of_one_entity)`.
//! 2. **Tile-local accumulate.**  The grouped runs are visited in ascending
//!    tile order; each run is folded into tile-width accumulator arrays
//!    (cache-resident by construction) and emitted in ascending partner
//!    order.
//! 3. **Dense partner remap.**  When an entity's candidate list is short
//!    (≤ [`ScoreboardConfig::dense_remap_limit`]) the engine skips the radix
//!    pass entirely: every contribution is binary-searched into the sorted
//!    candidate list and accumulated at that slot, so the scratch touched is
//!    `O(candidates_of_a)`.
//!
//! **Bit-identity.**  A partner's floating-point sums are accumulated in
//! bucket-append order, which is exactly the block-walk order the flat
//! scoreboard used; per-partner addition sequences are therefore identical
//! and the drained aggregates are bit-for-bit the flat scoreboard's values.
//! The flat engine is retained ([`FlatScoreboard`],
//! [`ScoreboardEngine::Flat`]) as the reference for equivalence tests and
//! scratch-size comparisons.

use std::sync::OnceLock;

use er_obs::{Counter, Gauge, Histogram};
use serde::{Deserialize, Serialize};

use crate::context::PairCooccurrence;

/// Default tile width (entities per tile) when auto-sizing: 4096 slots keep
/// the three accumulator arrays (20 bytes per slot) at 80 KiB — L2-resident
/// on current hardware — while keeping the per-tile counter array shallow
/// (`num_entities / 4096` four-byte counters).
pub const DEFAULT_TILE_ENTITIES: usize = 4096;

/// Default upper bound on candidate-list length for the dense partner-remap
/// fast path.
pub const DEFAULT_DENSE_REMAP_LIMIT: usize = 64;

/// Which partner-aggregation engine the fused pass runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ScoreboardEngine {
    /// The cache-blocked radix scoreboard (default).
    #[default]
    Tiled,
    /// The original flat `O(num_entities)`-scratch scoreboard, retained as
    /// the equivalence reference.
    Flat,
}

/// Configuration of the scoreboard engine, carried by
/// `MetaBlockingConfig` / `StreamingConfig`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoreboardConfig {
    /// Engine selection; [`ScoreboardEngine::Tiled`] unless a caller opts
    /// back into the flat reference.
    pub engine: ScoreboardEngine,
    /// Requested tile width in entities; `None` auto-sizes to
    /// [`DEFAULT_TILE_ENTITIES`].  Rounded up to a power of two and capped
    /// at `max(num_entities.next_power_of_two(), DEFAULT_TILE_ENTITIES)` —
    /// any request larger than the corpus degenerates to a single tile.
    pub tile_entities: Option<usize>,
    /// Entities whose candidate list is at most this long take the dense
    /// partner-remap fast path instead of the radix scatter.  `0` disables
    /// the fast path.
    pub dense_remap_limit: usize,
}

impl Default for ScoreboardConfig {
    fn default() -> Self {
        ScoreboardConfig {
            engine: ScoreboardEngine::Tiled,
            tile_entities: None,
            dense_remap_limit: DEFAULT_DENSE_REMAP_LIMIT,
        }
    }
}

impl ScoreboardConfig {
    /// The flat reference engine.
    pub fn flat() -> Self {
        ScoreboardConfig {
            engine: ScoreboardEngine::Flat,
            ..Self::default()
        }
    }

    /// A tiled configuration with an explicit tile width.
    pub fn with_tile(tile_entities: usize) -> Self {
        ScoreboardConfig {
            tile_entities: Some(tile_entities),
            ..Self::default()
        }
    }

    /// The effective (power-of-two) tile width for a corpus of
    /// `num_entities`.
    pub fn effective_tile(&self, num_entities: usize) -> usize {
        // Entity ids are u32, so a tile never needs to exceed 2^31 slots
        // (and `partner >> tile_shift` must stay a valid u32 shift).
        let cap = num_entities
            .next_power_of_two()
            .clamp(DEFAULT_TILE_ENTITIES, 1 << 31);
        self.tile_entities
            .unwrap_or(DEFAULT_TILE_ENTITIES)
            .clamp(1, cap)
            .next_power_of_two()
    }
}

/// Scoreboard metric handles on the global [`er_obs`] registry, resolved
/// once.  High-water marks are `fetch_max` gauges, path counts are
/// counters; workers batch their updates
/// ([`RadixScoreboard::flush_metrics`], once per task) so the hot loop
/// never touches a shared cache line.
pub(crate) struct ScoreboardObs {
    pub(crate) scratch_bytes_hwm: &'static Gauge,
    pub(crate) partners_hwm: &'static Gauge,
    pub(crate) contributions_hwm: &'static Gauge,
    pub(crate) radix_entities: &'static Counter,
    pub(crate) dense_entities: &'static Counter,
    pub(crate) tile_partners: &'static Histogram,
}

pub(crate) fn obs() -> &'static ScoreboardObs {
    static OBS: OnceLock<ScoreboardObs> = OnceLock::new();
    OBS.get_or_init(|| ScoreboardObs {
        scratch_bytes_hwm: er_obs::gauge(
            "scoreboard_scratch_bytes_hwm",
            "Largest per-worker scoreboard scratch footprint observed, in bytes",
        ),
        partners_hwm: er_obs::gauge(
            "scoreboard_partners_hwm",
            "Most distinct partners any single entity produced",
        ),
        contributions_hwm: er_obs::gauge(
            "scoreboard_contributions_hwm",
            "Most (block, partner) contributions any single entity scattered",
        ),
        radix_entities: er_obs::counter(
            "scoreboard_radix_entities_total",
            "Entities aggregated through the radix scatter path",
        ),
        dense_entities: er_obs::counter(
            "scoreboard_dense_entities_total",
            "Entities aggregated through the dense partner-remap fast path",
        ),
        tile_partners: er_obs::histogram(
            "scoreboard_tile_partners",
            "Per-task partner high-water mark, a tile-occupancy distribution",
        ),
    })
}

/// A point-in-time copy of the scoreboard's registry metrics — what the
/// deleted `ScoreboardMetrics` sink used to accumulate, now read back from
/// the global [`er_obs`] registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScoreboardMetricsSnapshot {
    /// Largest per-worker scratch footprint observed, in bytes.
    pub scratch_bytes_hwm: u64,
    /// Most distinct partners any single entity produced.
    pub partners_hwm: u64,
    /// Most `(block, partner)` contributions any single entity scattered.
    pub contributions_hwm: u64,
    /// Entities processed through the radix scatter path.
    pub radix_entities: u64,
    /// Entities processed through the dense partner-remap fast path.
    pub dense_entities: u64,
}

/// Reads the scoreboard's current registry metrics.
pub fn scoreboard_metrics() -> ScoreboardMetricsSnapshot {
    let o = obs();
    ScoreboardMetricsSnapshot {
        scratch_bytes_hwm: o.scratch_bytes_hwm.get(),
        partners_hwm: o.partners_hwm.get(),
        contributions_hwm: o.contributions_hwm.get(),
        radix_entities: o.radix_entities.get(),
        dense_entities: o.dense_entities.get(),
    }
}

/// Zeroes the scoreboard's registry metrics, so a sequential bench phase
/// can read exact per-phase values.  Not for concurrent use.
pub fn reset_scoreboard_metrics() {
    let o = obs();
    o.scratch_bytes_hwm.reset();
    o.partners_hwm.reset();
    o.contributions_hwm.reset();
    o.radix_entities.reset();
    o.dense_entities.reset();
    o.tile_partners.reset();
}

/// One scattered contribution: partner id plus the block's precomputed
/// reciprocals.
#[derive(Debug, Clone, Copy)]
struct Contribution {
    partner: u32,
    inv_comp: f64,
    inv_size: f64,
}

/// The cache-blocked radix scoreboard.
///
/// `add` appends contributions to an entries array and counts them per
/// tile; `drain_sorted_into` groups them by tile with a stable counting
/// sort, folds each tile's run into cache-resident accumulators, and emits
/// `(partner, aggregates)` in ascending partner order.  The dense fast path
/// (`add_dense` / `dense_agg` / `finish_dense`) reuses the same accumulator
/// arrays, indexed by candidate-list slot instead of partner id.
#[derive(Debug)]
pub struct RadixScoreboard {
    tile_shift: u32,
    tile_mask: u32,
    dense_limit: usize,
    /// The current entity's contributions in append (block-walk) order.
    entries: Vec<Contribution>,
    /// Counting-sort scratch: `entries` regrouped by tile, stable.
    sorted: Vec<Contribution>,
    /// Per-tile contribution count; doubles as the scatter cursor during
    /// the drain.  4 bytes per tile is the whole per-tile footprint.
    tile_counts: Vec<u32>,
    active_tiles: Vec<u32>,
    common: Vec<u32>,
    inv_comp: Vec<f64>,
    inv_size: Vec<f64>,
    touched: Vec<u32>,
    local_partners_hwm: usize,
    local_contributions_hwm: usize,
    local_radix: usize,
    local_dense: usize,
}

impl RadixScoreboard {
    /// A scoreboard for partner ids `0..num_entities` (the tile counters
    /// grow on demand if larger ids show up — the streaming index relies on
    /// that).
    pub fn new(num_entities: usize, config: &ScoreboardConfig) -> Self {
        let tile = config.effective_tile(num_entities);
        let slots = tile.max(config.dense_remap_limit);
        RadixScoreboard {
            tile_shift: tile.trailing_zeros(),
            tile_mask: (tile - 1) as u32,
            dense_limit: config.dense_remap_limit,
            entries: Vec::new(),
            sorted: Vec::new(),
            tile_counts: vec![0; num_entities.div_ceil(tile)],
            active_tiles: Vec::new(),
            common: vec![0; slots],
            inv_comp: vec![0.0; slots],
            inv_size: vec![0.0; slots],
            touched: Vec::new(),
            local_partners_hwm: 0,
            local_contributions_hwm: 0,
            local_radix: 0,
            local_dense: 0,
        }
    }

    /// The effective tile width in entities.
    pub fn tile_entities(&self) -> usize {
        (self.tile_mask as usize) + 1
    }

    /// Candidate-list length at or below which the dense fast path applies.
    pub fn dense_limit(&self) -> usize {
        self.dense_limit
    }

    /// Scatters one contribution of the current entity.
    #[inline]
    pub fn add(&mut self, partner: u32, inv_comp: f64, inv_size: f64) {
        let tile = (partner >> self.tile_shift) as usize;
        if tile >= self.tile_counts.len() {
            self.tile_counts.resize(tile + 1, 0);
        }
        if self.tile_counts[tile] == 0 {
            self.active_tiles.push(tile as u32);
        }
        self.tile_counts[tile] += 1;
        self.entries.push(Contribution {
            partner,
            inv_comp,
            inv_size,
        });
    }

    /// Drains the current entity's contributions into `out` as
    /// `(partner, aggregates)`, ascending by partner, clearing the board.
    ///
    /// The counting sort is stable — within each tile the scattered run
    /// keeps append (= block-walk) order — so every partner's sums are
    /// folded in exactly the flat scoreboard's order and the drained
    /// aggregates are bit-identical to its values.
    pub fn drain_sorted_into(&mut self, out: &mut Vec<(u32, PairCooccurrence)>) {
        out.clear();
        self.active_tiles.sort_unstable();
        let contributions = self.entries.len();
        // Prefix sums: each active tile's counter becomes its run's start
        // offset in `sorted`, then serves as the scatter cursor.
        let mut offset = 0u32;
        for &t in &self.active_tiles {
            let count = self.tile_counts[t as usize];
            self.tile_counts[t as usize] = offset;
            offset += count;
        }
        // Stable scatter into tile-grouped order.
        self.sorted.clear();
        self.sorted.resize(
            contributions,
            Contribution {
                partner: 0,
                inv_comp: 0.0,
                inv_size: 0.0,
            },
        );
        for c in &self.entries {
            let tile = (c.partner >> self.tile_shift) as usize;
            let pos = self.tile_counts[tile] as usize;
            self.sorted[pos] = *c;
            self.tile_counts[tile] = (pos + 1) as u32;
        }
        self.entries.clear();
        // Tile-local accumulate: after the scatter each tile's counter holds
        // its run's end offset; runs are contiguous in active-tile order.
        let mut run_start = 0usize;
        for &t in &self.active_tiles {
            let run_end = self.tile_counts[t as usize] as usize;
            let base = (t as usize) << self.tile_shift;
            for c in &self.sorted[run_start..run_end] {
                let slot = (c.partner & self.tile_mask) as usize;
                if self.common[slot] == 0 {
                    self.touched.push(slot as u32);
                }
                self.common[slot] += 1;
                self.inv_comp[slot] += c.inv_comp;
                self.inv_size[slot] += c.inv_size;
            }
            run_start = run_end;
            self.tile_counts[t as usize] = 0;
            self.touched.sort_unstable();
            for &s in &self.touched {
                let slot = s as usize;
                out.push((
                    (base + slot) as u32,
                    PairCooccurrence {
                        common_blocks: self.common[slot] as usize,
                        inv_comparisons_sum: self.inv_comp[slot],
                        inv_sizes_sum: self.inv_size[slot],
                    },
                ));
                self.common[slot] = 0;
                self.inv_comp[slot] = 0.0;
                self.inv_size[slot] = 0.0;
            }
            self.touched.clear();
        }
        self.active_tiles.clear();
        self.local_radix += 1;
        self.local_partners_hwm = self.local_partners_hwm.max(out.len());
        self.local_contributions_hwm = self.local_contributions_hwm.max(contributions);
    }

    /// Dense fast path: accumulates one contribution at candidate-list slot
    /// `slot` (< `dense_limit`, already remapped by the caller).
    #[inline]
    pub fn add_dense(&mut self, slot: usize, inv_comp: f64, inv_size: f64) {
        self.common[slot] += 1;
        self.inv_comp[slot] += inv_comp;
        self.inv_size[slot] += inv_size;
    }

    /// The aggregates accumulated at a dense slot (zeros if untouched —
    /// identical to the flat scoreboard's never-written slot).
    #[inline]
    pub fn dense_agg(&self, slot: usize) -> PairCooccurrence {
        PairCooccurrence {
            common_blocks: self.common[slot] as usize,
            inv_comparisons_sum: self.inv_comp[slot],
            inv_sizes_sum: self.inv_size[slot],
        }
    }

    /// Resets dense slots `0..len` after emission.
    pub fn finish_dense(&mut self, len: usize) {
        for slot in 0..len {
            self.common[slot] = 0;
            self.inv_comp[slot] = 0.0;
            self.inv_size[slot] = 0.0;
        }
        self.local_dense += 1;
        self.local_partners_hwm = self.local_partners_hwm.max(len);
    }

    /// This worker's current scratch footprint in bytes (accumulators,
    /// entry/sort arrays, per-tile counters, bookkeeping lists).  O(1).
    pub fn scratch_bytes(&self) -> usize {
        use std::mem::size_of;
        self.entries.capacity() * size_of::<Contribution>()
            + self.sorted.capacity() * size_of::<Contribution>()
            + self.tile_counts.capacity() * size_of::<u32>()
            + self.common.capacity() * size_of::<u32>()
            + self.inv_comp.capacity() * size_of::<f64>()
            + self.inv_size.capacity() * size_of::<f64>()
            + self.touched.capacity() * size_of::<u32>()
            + self.active_tiles.capacity() * size_of::<u32>()
    }

    /// Publishes this worker's locally batched metrics to the global
    /// [`er_obs`] registry.  Call once per task, not per entity — the whole
    /// task costs a handful of relaxed atomic ops.
    pub fn flush_metrics(&mut self) {
        if self.local_radix + self.local_dense > 0 {
            let o = obs();
            o.scratch_bytes_hwm.record_max(self.scratch_bytes() as u64);
            o.partners_hwm.record_max(self.local_partners_hwm as u64);
            o.contributions_hwm
                .record_max(self.local_contributions_hwm as u64);
            o.radix_entities.add(self.local_radix as u64);
            o.dense_entities.add(self.local_dense as u64);
            o.tile_partners.record(self.local_partners_hwm as u64);
        }
        self.local_partners_hwm = 0;
        self.local_contributions_hwm = 0;
        self.local_radix = 0;
        self.local_dense = 0;
    }
}

/// The original flat scoreboard: one slot per entity, `O(num_entities)`
/// scratch per worker.  Retained as the reference engine
/// ([`ScoreboardEngine::Flat`]) for equivalence tests and the
/// scratch-footprint comparison in the scalability bench.
#[derive(Debug)]
pub struct FlatScoreboard {
    pub(crate) common: Vec<u32>,
    pub(crate) inv_comp: Vec<f64>,
    pub(crate) inv_size: Vec<f64>,
    pub(crate) touched: Vec<u32>,
}

impl FlatScoreboard {
    /// A flat board with one slot per entity.
    pub fn new(num_entities: usize) -> Self {
        FlatScoreboard {
            common: vec![0; num_entities],
            inv_comp: vec![0.0; num_entities],
            inv_size: vec![0.0; num_entities],
            touched: Vec::new(),
        }
    }

    /// This board's scratch footprint in bytes.
    pub fn scratch_bytes(&self) -> usize {
        use std::mem::size_of;
        self.common.capacity() * size_of::<u32>()
            + self.inv_comp.capacity() * size_of::<f64>()
            + self.inv_size.capacity() * size_of::<f64>()
            + self.touched.capacity() * size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_tile_rounds_and_caps() {
        let auto = ScoreboardConfig::default();
        assert_eq!(auto.effective_tile(1_000_000), DEFAULT_TILE_ENTITIES);
        assert_eq!(auto.effective_tile(0), DEFAULT_TILE_ENTITIES);
        assert_eq!(ScoreboardConfig::with_tile(1).effective_tile(100), 1);
        assert_eq!(ScoreboardConfig::with_tile(3).effective_tile(100), 4);
        // A request beyond the corpus degenerates to a single tile.
        let huge = ScoreboardConfig::with_tile(usize::MAX / 4);
        let tile = huge.effective_tile(100_000);
        assert!(tile >= 100_000);
        assert_eq!(100_000usize.div_ceil(tile), 1);
    }

    #[test]
    fn drain_accumulates_in_append_order_and_sorts() {
        let cfg = ScoreboardConfig::with_tile(4);
        let mut board = RadixScoreboard::new(16, &cfg);
        // Partners across three tiles, appended out of order.
        board.add(9, 0.5, 0.25);
        board.add(2, 1.0, 0.5);
        board.add(9, 0.125, 0.0625);
        board.add(14, 2.0, 1.0);
        board.add(2, 0.25, 0.125);
        let mut out = Vec::new();
        board.drain_sorted_into(&mut out);
        let partners: Vec<u32> = out.iter().map(|&(p, _)| p).collect();
        assert_eq!(partners, vec![2, 9, 14]);
        assert_eq!(out[0].1.common_blocks, 2);
        assert_eq!(out[0].1.inv_comparisons_sum, 1.25);
        assert_eq!(out[1].1.common_blocks, 2);
        assert_eq!(out[1].1.inv_comparisons_sum, 0.625);
        assert_eq!(out[2].1.common_blocks, 1);
        // Board is clean: a second drain yields nothing.
        board.drain_sorted_into(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn tile_counters_grow_on_demand() {
        let cfg = ScoreboardConfig::with_tile(2);
        let mut board = RadixScoreboard::new(0, &cfg);
        board.add(1000, 1.0, 1.0);
        let mut out = Vec::new();
        board.drain_sorted_into(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 1000);
    }

    #[test]
    fn tile_width_one_gives_one_partner_per_tile() {
        let cfg = ScoreboardConfig::with_tile(1);
        let mut board = RadixScoreboard::new(8, &cfg);
        assert_eq!(board.tile_entities(), 1);
        for p in [7u32, 0, 3, 7] {
            board.add(p, 1.0, 1.0);
        }
        let mut out = Vec::new();
        board.drain_sorted_into(&mut out);
        let partners: Vec<u32> = out.iter().map(|&(p, _)| p).collect();
        assert_eq!(partners, vec![0, 3, 7]);
        assert_eq!(out[2].1.common_blocks, 2);
    }

    #[test]
    fn dense_path_accumulates_and_resets() {
        let cfg = ScoreboardConfig::default();
        let mut board = RadixScoreboard::new(10, &cfg);
        board.add_dense(0, 0.5, 0.25);
        board.add_dense(2, 1.0, 1.0);
        board.add_dense(0, 0.5, 0.25);
        assert_eq!(board.dense_agg(0).common_blocks, 2);
        assert_eq!(board.dense_agg(0).inv_comparisons_sum, 1.0);
        assert_eq!(board.dense_agg(1).common_blocks, 0);
        board.finish_dense(3);
        assert_eq!(board.dense_agg(2).common_blocks, 0);
    }

    #[test]
    fn metrics_track_hwm_and_paths() {
        // Metrics land on the shared er-obs registry; other tests in this
        // process may flush concurrently, so assert monotone deltas and
        // high-water lower bounds rather than exact globals.
        let before = scoreboard_metrics();
        let cfg = ScoreboardConfig::with_tile(4);
        let mut board = RadixScoreboard::new(64, &cfg);
        board.add(1, 1.0, 1.0);
        board.add(9, 1.0, 1.0);
        board.add(9, 1.0, 1.0);
        let mut out = Vec::new();
        board.drain_sorted_into(&mut out);
        board.add_dense(0, 1.0, 1.0);
        board.finish_dense(1);
        let scratch = board.scratch_bytes();
        board.flush_metrics();
        let after = scoreboard_metrics();
        assert!(after.partners_hwm >= 2);
        assert!(after.contributions_hwm >= 3);
        assert!(after.radix_entities > before.radix_entities);
        assert!(after.dense_entities > before.dense_entities);
        assert!(after.scratch_bytes_hwm >= scratch as u64);
    }

    #[test]
    fn scratch_is_tile_scaled_not_corpus_scaled() {
        let cfg = ScoreboardConfig::default();
        let small = RadixScoreboard::new(10_000, &cfg);
        let large = RadixScoreboard::new(1_000_000, &cfg);
        let flat = FlatScoreboard::new(1_000_000);
        // The tiled board's 100x corpus costs only 4-byte tile counters more.
        assert!(large.scratch_bytes() < small.scratch_bytes() + 1_000_000 / 64);
        assert!(large.scratch_bytes() * 10 < flat.scratch_bytes());
    }
}
