//! The sharded streaming service: one mutation pipeline over N posting
//! shards, publishing immutable epoch views to concurrent readers.
//!
//! [`ShardedStreamingService`] wraps the generic
//! [`StreamingMetaBlocker`] over `er-stream`'s hash-partitioned
//! [`ShardedIndex`]: every mutation batch (ingest / remove / update) fans
//! out to the shards owning the touched keys, and the emitted
//! [`DeltaBatch`] is **bit-identical** to the single-shard blocker's for
//! any shard count and any thread count (property tested in
//! `tests/equivalence.rs` against the single-shard oracle and a batch
//! build of the survivors).
//!
//! Every batch and compaction boundary publishes an [`EpochView`] through
//! an ArcSwap-style pointer flip (see [`crate::epoch`]), so readers on
//! other threads never block writers and never observe a half-applied
//! batch.  Durability — per-shard WALs with group commit and an atomic
//! cross-shard manifest — is layered on by
//! [`crate::durable::DurableShardedService`].

use std::sync::Arc;

use er_blocking::{CsrBlockCollection, KeyGenerator};
use er_core::{EntityId, EntityProfile, PersistResult};
use er_features::FeatureSet;
use er_learn::ProbabilisticClassifier;
use er_stream::{
    DeltaBatch, DeltaIndex, MutationRecord, ShardedIndex, StreamingConfig, StreamingMetaBlocker,
};

use crate::epoch::{EpochCell, EpochReader, EpochView};

/// A multi-shard streaming meta-blocker with epoch-published reads.
///
/// Construction: [`ShardedStreamingService::new`] for an empty corpus, or
/// [`from_blocker`](ShardedStreamingService::from_blocker) around an
/// existing sharded blocker (the recovery path).  Mutations take
/// `&mut self`; readers obtained from
/// [`reader`](ShardedStreamingService::reader) are `Clone + Send + Sync`
/// and can be polled from any thread.
pub struct ShardedStreamingService<G: KeyGenerator> {
    blocker: StreamingMetaBlocker<G, ShardedIndex>,
    cell: Arc<EpochCell>,
    batches_applied: u64,
}

impl<G: KeyGenerator> std::fmt::Debug for ShardedStreamingService<G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStreamingService")
            .field("num_shards", &self.num_shards())
            .field("num_entities", &self.num_entities())
            .field("num_alive", &self.num_alive())
            .field("batches_applied", &self.batches_applied)
            .finish_non_exhaustive()
    }
}

impl<G: KeyGenerator> ShardedStreamingService<G> {
    /// An empty service with `num_shards` posting shards.  Fails if the
    /// generator's block-size cap cannot be honoured by the index (see
    /// [`StreamingMetaBlocker::with_index`]).
    pub fn new(config: StreamingConfig, generator: G, num_shards: usize) -> PersistResult<Self> {
        let cap = generator.max_block_size().unwrap_or(usize::MAX);
        let index = ShardedIndex::new(
            config.dataset_name.clone(),
            config.kind,
            config.split,
            cap,
            num_shards,
        );
        Ok(Self::from_blocker(StreamingMetaBlocker::with_index(
            config, generator, index,
        )?))
    }

    /// Wraps an existing sharded blocker (typically one rebuilt from a
    /// snapshot) and publishes its current state as the initial view.
    pub fn from_blocker(blocker: StreamingMetaBlocker<G, ShardedIndex>) -> Self {
        let cell = EpochCell::new(EpochView {
            epoch: blocker.index().epoch(),
            batches_applied: 0,
            num_entities: blocker.num_entities(),
            num_alive: blocker.num_alive(),
            baseline: Arc::new(blocker.view()),
            last_delta: None,
        });
        ShardedStreamingService {
            blocker,
            cell,
            batches_applied: 0,
        }
    }

    /// Attaches the classifier scoring future delta pairs.
    pub fn with_model(mut self, model: Box<dyn ProbabilisticClassifier>) -> Self {
        self.blocker = self.blocker.with_model(model);
        self
    }

    /// A cloneable handle to the published epoch views.
    pub fn reader(&self) -> EpochReader {
        EpochReader::new(self.cell.clone())
    }

    /// The most recently published view.
    pub fn current(&self) -> Arc<EpochView> {
        self.cell.load()
    }

    /// The underlying sharded index (read-only).
    pub fn index(&self) -> &ShardedIndex {
        self.blocker.index()
    }

    /// The wrapped blocker (read-only; mutations must go through the
    /// service so every batch publishes a view).
    pub fn blocker(&self) -> &StreamingMetaBlocker<G, ShardedIndex> {
        &self.blocker
    }

    /// Number of posting shards.
    pub fn num_shards(&self) -> usize {
        self.blocker.index().num_shards()
    }

    /// Number of entity ids ever assigned.
    pub fn num_entities(&self) -> usize {
        self.blocker.num_entities()
    }

    /// Number of entities currently alive.
    pub fn num_alive(&self) -> usize {
        self.blocker.num_alive()
    }

    /// The feature set delta pairs are scored with.
    pub fn feature_set(&self) -> FeatureSet {
        self.blocker.feature_set()
    }

    /// Number of mutation batches applied by this service instance.
    pub fn batches_applied(&self) -> u64 {
        self.batches_applied
    }

    /// See [`StreamingMetaBlocker::assert_remove_batch`].
    pub fn assert_remove_batch(&self, ids: &[EntityId]) {
        self.blocker.assert_remove_batch(ids);
    }

    /// See [`StreamingMetaBlocker::assert_update_batch`].
    pub fn assert_update_batch(&self, updates: &[(EntityId, EntityProfile)]) {
        self.blocker.assert_update_batch(updates);
    }

    /// Ingests a batch of new profiles and publishes the post-batch view.
    pub fn ingest(&mut self, profiles: &[EntityProfile]) -> DeltaBatch {
        let delta = self.blocker.ingest(profiles);
        self.publish_batch(&delta);
        delta
    }

    /// [`ingest`](ShardedStreamingService::ingest) without the feature /
    /// probability phase.
    pub fn ingest_unscored(&mut self, profiles: &[EntityProfile]) -> DeltaBatch {
        let delta = self.blocker.ingest_unscored(profiles);
        self.publish_batch(&delta);
        delta
    }

    /// Removes a batch of entities and publishes the post-batch view.
    ///
    /// # Panics
    /// Same contract as [`StreamingMetaBlocker::remove`].
    pub fn remove(&mut self, ids: &[EntityId]) -> DeltaBatch {
        let delta = self.blocker.remove(ids);
        self.publish_batch(&delta);
        delta
    }

    /// [`remove`](ShardedStreamingService::remove) without the feature /
    /// probability phase.
    pub fn remove_unscored(&mut self, ids: &[EntityId]) -> DeltaBatch {
        let delta = self.blocker.remove_unscored(ids);
        self.publish_batch(&delta);
        delta
    }

    /// Applies in-place profile updates and publishes the post-batch view.
    ///
    /// # Panics
    /// Same contract as [`StreamingMetaBlocker::update`].
    pub fn update(&mut self, updates: &[(EntityId, EntityProfile)]) -> DeltaBatch {
        let delta = self.blocker.update(updates);
        self.publish_batch(&delta);
        delta
    }

    /// [`update`](ShardedStreamingService::update) without the feature /
    /// probability phase.
    pub fn update_unscored(&mut self, updates: &[(EntityId, EntityProfile)]) -> DeltaBatch {
        let delta = self.blocker.update_unscored(updates);
        self.publish_batch(&delta);
        delta
    }

    /// Applies one [`MutationRecord`] — the dispatch the durable layer and
    /// WAL replay share, so logged batches cannot take a different code
    /// path than live ones.
    pub fn apply(&mut self, record: &MutationRecord, score: bool) -> DeltaBatch {
        match (record, score) {
            (MutationRecord::Ingest(profiles), true) => self.ingest(profiles),
            (MutationRecord::Ingest(profiles), false) => self.ingest_unscored(profiles),
            (MutationRecord::Remove(ids), true) => self.remove(ids),
            (MutationRecord::Remove(ids), false) => self.remove_unscored(ids),
            (MutationRecord::Update(updates), true) => self.update(updates),
            (MutationRecord::Update(updates), false) => self.update_unscored(updates),
        }
    }

    /// The batch view of the current corpus (no state change, nothing
    /// published).
    pub fn view(&self) -> CsrBlockCollection {
        self.blocker.view()
    }

    /// Ends the epoch: folds every shard's deltas into a fresh baseline
    /// (bit-identical to a batch build of the survivors) and publishes it
    /// as the new epoch view.
    pub fn compact(&mut self) -> Arc<CsrBlockCollection> {
        let baseline = Arc::new(self.blocker.compact());
        let o = crate::obs::obs();
        let publish_timer = o.epoch_publish_ns.start_timer();
        self.cell.publish(EpochView {
            epoch: self.blocker.index().epoch(),
            batches_applied: self.batches_applied,
            num_entities: self.blocker.num_entities(),
            num_alive: self.blocker.num_alive(),
            baseline: baseline.clone(),
            last_delta: None,
        });
        publish_timer.observe();
        o.epochs_published.inc();
        o.published_batches.set(self.batches_applied);
        baseline
    }

    /// Detaches the wrapped blocker (readers keep the last published
    /// view).
    pub fn into_blocker(self) -> StreamingMetaBlocker<G, ShardedIndex> {
        self.blocker
    }

    fn publish_batch(&mut self, delta: &DeltaBatch) {
        self.batches_applied += 1;
        let o = crate::obs::obs();
        let publish_timer = o.epoch_publish_ns.start_timer();
        let previous = self.cell.load();
        self.cell.publish(EpochView {
            epoch: delta.epoch,
            batches_applied: self.batches_applied,
            num_entities: self.blocker.num_entities(),
            num_alive: self.blocker.num_alive(),
            baseline: previous.baseline.clone(),
            last_delta: Some(Arc::new(delta.clone())),
        });
        publish_timer.observe();
        o.epochs_published.inc();
        o.published_batches.set(self.batches_applied);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_blocking::TokenKeys;
    use er_core::{Dataset, EntityCollection, GroundTruth};

    fn profile(id: &str, value: &str) -> EntityProfile {
        EntityProfile::new(id).with_attribute("name", value)
    }

    fn dataset() -> Dataset {
        let profiles = vec![
            profile("0", "apple iphone ten"),
            profile("1", "apple iphone x"),
            profile("2", "samsung galaxy phone"),
            profile("3", "galaxy phone samsung"),
        ];
        let gt = GroundTruth::from_pairs(vec![(EntityId(0), EntityId(1))]);
        Dataset::dirty("svc", EntityCollection::new("svc", profiles), gt).unwrap()
    }

    fn config(dataset: &Dataset) -> StreamingConfig {
        StreamingConfig {
            feature_set: FeatureSet::all_schemes(),
            threads: 1,
            ..StreamingConfig::for_dataset(dataset)
        }
    }

    #[test]
    fn batches_track_the_single_shard_blocker_and_publish_views() {
        let ds = dataset();
        let mut oracle = StreamingMetaBlocker::new(config(&ds), TokenKeys);
        let mut service = ShardedStreamingService::new(config(&ds), TokenKeys, 3).unwrap();
        let reader = service.reader();
        assert_eq!(reader.load().batches_applied, 0);

        for profile in &ds.profiles {
            let expected = oracle.ingest(std::slice::from_ref(profile));
            let got = service.ingest(std::slice::from_ref(profile));
            assert_eq!(expected.pairs, got.pairs);
            assert_eq!(expected.features, got.features);
            assert_eq!(expected.retracted, got.retracted);
            assert_eq!(expected.touched_keys, got.touched_keys);
        }
        let view = reader.load();
        assert_eq!(view.batches_applied, ds.num_entities() as u64);
        assert_eq!(view.num_entities, ds.num_entities());
        assert!(view.last_delta.is_some());

        // A compaction publishes the folded baseline; the delta of the old
        // view stays reachable through the reader's earlier snapshot.
        let compacted = service.compact();
        assert_eq!(
            compacted.to_block_collection().blocks,
            oracle.compact().to_block_collection().blocks
        );
        let after = reader.load();
        assert!(after.last_delta.is_none());
        assert_eq!(
            after.baseline.to_block_collection().blocks,
            compacted.to_block_collection().blocks
        );
        assert_eq!(view.batches_applied, ds.num_entities() as u64);
    }

    #[test]
    fn apply_dispatches_every_mutation_kind() {
        let ds = dataset();
        let mut a = ShardedStreamingService::new(config(&ds), TokenKeys, 2).unwrap();
        let mut b = ShardedStreamingService::new(config(&ds), TokenKeys, 2).unwrap();
        let steps = vec![
            MutationRecord::Ingest(ds.profiles.clone()),
            MutationRecord::Update(vec![(EntityId(1), profile("1", "samsung galaxy"))]),
            MutationRecord::Remove(vec![EntityId(0)]),
        ];
        for step in &steps {
            let expected = match step {
                MutationRecord::Ingest(p) => a.ingest(p),
                MutationRecord::Remove(ids) => a.remove(ids),
                MutationRecord::Update(u) => a.update(u),
            };
            let got = b.apply(step, true);
            assert_eq!(expected.pairs, got.pairs);
            assert_eq!(expected.retracted, got.retracted);
            assert_eq!(expected.rescored_pairs, got.rescored_pairs);
        }
        assert_eq!(
            a.compact().to_block_collection().blocks,
            b.compact().to_block_collection().blocks
        );
    }
}
